//! Quickstart: classify a UCQ, inspect the verdict, and enumerate answers
//! with the strategy the classifier picked.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ucq::prelude::*;

fn main() {
    // Example 2 of the paper: the union of an intractable CQ and an easy
    // one — tractable because Q2 provides {x, z, y} to Q1.
    let union = parse_ucq(
        "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
         Q2(x, y, w) <- R1(x, y), R2(y, w)",
    )
    .expect("well-formed UCQ");

    println!("Query:\n{union}\n");

    let engine = UcqEngine::new(union);
    let class = engine.classification();
    println!("Per-member status (Theorem 3): {:?}", class.statuses);
    match &class.verdict {
        Verdict::FreeConnex { plan } => {
            println!("Verdict: free-connex UCQ — in DelayClin (Theorem 12).");
            for atom in &plan.atoms {
                println!(
                    "  virtual atom {} for member {} (provided by member {} via S = {})",
                    atom.rel_name, atom.target, atom.provenance.provider, atom.provenance.s
                );
            }
        }
        Verdict::Intractable { witness } => {
            println!(
                "Verdict: intractable ({}, assuming {}).",
                witness.reference(),
                witness.hypothesis()
            );
        }
        Verdict::Unknown { notes } => {
            println!("Verdict: unknown. Notes: {notes:?}");
        }
    }
    println!("Evaluation strategy: {:?}\n", engine.strategy());

    // A small instance.
    let instance: Instance = [
        ("R1", Relation::from_pairs([(1, 2), (1, 5), (8, 9)])),
        ("R2", Relation::from_pairs([(2, 3), (5, 3), (9, 7)])),
        ("R3", Relation::from_pairs([(3, 4), (3, 6), (7, 0)])),
    ]
    .into_iter()
    .collect();

    let mut answers = engine.enumerate(&instance).expect("evaluates");
    println!("Answers:");
    while let Some(t) = answers.next() {
        println!("  {t}");
    }
}
