//! Example 18 run forward: deciding triangle existence through a union of
//! intractable CQs, cross-checked against direct detection.
//!
//! ```sh
//! cargo run --release --example triangle_detection
//! ```

use std::time::Instant;
use ucq::reductions::{example18_answers, has_triangle_via_example18, Graph};

fn main() {
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "n", "edges", "direct", "via UCQ", "t_direct", "t_ucq"
    );
    for (n, p) in [(32, 0.08), (64, 0.05), (96, 0.04), (128, 0.03)] {
        let g = Graph::gnp(n, p, 42 + n as u64);

        let t0 = Instant::now();
        let direct = g.has_triangle();
        let t_direct = t0.elapsed();

        let t0 = Instant::now();
        let via_ucq = has_triangle_via_example18(&g);
        let t_ucq = t0.elapsed();

        assert_eq!(direct, via_ucq, "the reduction must agree with reality");
        println!(
            "{:>6} {:>8} {:>10} {:>10} {:>12?} {:>12?}",
            n,
            g.n_edges(),
            direct,
            via_ucq,
            t_direct,
            t_ucq
        );
    }

    // Show what the answers look like on a planted triangle.
    let g = Graph::new(10).with_clique(&[2, 5, 7]);
    println!("\nUnion answers for a planted triangle {{2,5,7}}:");
    for t in example18_answers(&g) {
        println!("  {t}");
    }
    println!("(Q1 names the triangle as ((2#x),(5#y)); Q2 as a rotation; Q3 is empty.)");
}
