//! Classifies every query from the paper's catalog and prints the verdict
//! table — a machine-checked restatement of the paper's examples.
//!
//! ```sh
//! cargo run --release --example classify_catalog
//! ```

use ucq::prelude::*;
use ucq::workloads::{catalog, PaperVerdict};

fn main() {
    println!(
        "{:<16} {:<26} {:<14} {:<22} detail",
        "id", "paper ref", "paper verdict", "classifier"
    );
    println!("{}", "-".repeat(100));
    for entry in catalog() {
        let c = classify(&entry.ucq);
        let (verdict, detail) = match &c.verdict {
            Verdict::FreeConnex { plan } => (
                "FreeConnex".to_string(),
                format!("{} virtual atom(s)", plan.atoms.len()),
            ),
            Verdict::Intractable { witness } => (
                "Intractable".to_string(),
                format!("{} assuming {}", witness.reference(), witness.hypothesis()),
            ),
            Verdict::Unknown { .. } => ("Unknown".to_string(), String::new()),
        };
        let paper = match entry.verdict {
            PaperVerdict::Tractable => "tractable",
            PaperVerdict::Intractable => "intractable",
            PaperVerdict::Open => "open",
            PaperVerdict::OpenButProvenHard => "open (hard*)",
        };
        println!(
            "{:<16} {:<26} {:<14} {:<22} {}",
            entry.id, entry.paper_ref, paper, verdict, detail
        );
    }
    println!(
        "\n(*) proven hard ad hoc in the paper, outside the general theorems;\n    \
         the executable reductions in `ucq::reductions` demonstrate these bounds."
    );
}
