//! Example 13 run forward: three CQs, each intractable on its own, whose
//! union is enumerable with constant delay — the paper's most striking
//! upper bound. Prints the recursive union-extension plan and validates
//! the output against the naive evaluator.
//!
//! ```sh
//! cargo run --release --example union_of_hard_queries
//! ```

use std::collections::HashSet;
use ucq::prelude::*;
use ucq::workloads::{by_id, random_instance, InstanceSpec};

fn main() {
    let entry = by_id("example13").expect("catalog entry");
    println!("Query ({}):\n{}\n", entry.id, entry.ucq);

    let class = classify(&entry.ucq);
    println!("Per-member status (Theorem 3): {:?}", class.statuses);
    let Verdict::FreeConnex { plan } = &class.verdict else {
        panic!("Example 13 must classify free-connex");
    };
    println!("\nUnion-extension plan (materialization order):");
    for atom in &plan.atoms {
        println!(
            "  {} := π over member {} with S = {} (uses {} provider atom(s), stage {})",
            atom.rel_name,
            atom.provenance.provider,
            atom.provenance.s,
            atom.provenance.uses.len(),
            atom.provenance.stage,
        );
    }
    for (i, chosen) in plan.chosen.iter().enumerate() {
        println!(
            "  member {i} evaluates with {} virtual atom(s)",
            chosen.len()
        );
    }

    let engine = UcqEngine::new(entry.ucq.clone());
    println!("\nStrategy: {:?}", engine.strategy());

    let inst = random_instance(&entry.ucq, &InstanceSpec::scaled(4_000, 3));
    let (answers, prof) = measure(|| engine.enumerate(&inst).expect("pipeline"));
    println!(
        "\n|I| = {} tuples -> {} answers; {}",
        inst.total_tuples(),
        answers.len(),
        prof.summary()
    );

    let naive: HashSet<Tuple> = engine
        .enumerate_naive(&inst)
        .expect("naive")
        .into_iter()
        .collect();
    let got: HashSet<Tuple> = answers.into_iter().collect();
    assert_eq!(got, naive, "pipeline output must equal the naive union");
    println!("Validated against the naive evaluator: identical answer sets.");
}
