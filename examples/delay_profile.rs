//! Measures the per-answer delay of the DelayClin pipeline against the
//! naive materializing evaluator, across growing instances — the
//! operational meaning of "linear preprocessing, constant delay".
//!
//! ```sh
//! cargo run --release --example delay_profile
//! ```

use ucq::enumerate::VecEnumerator;
use ucq::prelude::*;
use ucq::workloads::{by_id, random_instance, InstanceSpec};

fn main() {
    let entry = by_id("example2").expect("catalog entry");
    let engine = UcqEngine::new(entry.ucq.clone());
    println!("Query ({}):\n{}\n", entry.id, entry.ucq);
    println!("Strategy: {:?}\n", engine.strategy());

    println!(
        "{:>9} {:>9} | {:>11} {:>10} {:>10} | {:>11} {:>12}",
        "|I|", "answers", "prep(pipe)", "med delay", "p99 delay", "prep(naive)", "total(naive)"
    );
    for rows in [2_000usize, 8_000, 32_000, 128_000] {
        let inst = random_instance(&entry.ucq, &InstanceSpec::scaled(rows, 7));

        // DelayClin pipeline, instrumented.
        let (answers, prof) = measure(|| engine.enumerate(&inst).expect("pipeline"));

        // Naive baseline: everything is preprocessing, enumeration is a
        // vector drain.
        let (nv, nprof) =
            measure(|| VecEnumerator::new(engine.enumerate_naive(&inst).expect("naive")));
        assert_eq!(
            answers.len(),
            nv.len(),
            "both strategies must agree on the answer count"
        );

        println!(
            "{:>9} {:>9} | {:>11?} {:>9}ns {:>9}ns | {:>11?} {:>12?}",
            inst.total_tuples(),
            answers.len(),
            prof.preprocessing,
            prof.median_ns(),
            prof.p99_ns(),
            nprof.preprocessing,
            nprof.preprocessing + nprof.total
        );
    }
    println!(
        "\nReading: pipeline preprocessing grows linearly with |I| while the\n\
         median/p99 per-answer delays stay flat — the DelayClin signature.\n\
         The naive evaluator pays everything up front and rematerializes."
    );
}
