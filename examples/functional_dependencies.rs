//! Remark 2 run forward: functional dependencies can turn an intractable
//! query tractable. `Π(x,y) ← A(x,z), B(z,y)` is the canonical
//! mat-mul-hard CQ — unless `A`'s first column is a key, in which case the
//! FD-extension is free-connex and the whole DelayClin machinery applies.
//!
//! ```sh
//! cargo run --release --example functional_dependencies
//! ```

use ucq::core::{Fd, FdSet, FdUcqEngine};
use ucq::prelude::*;

fn main() {
    let union = parse_ucq("Pi(x, y) <- A(x, z), B(z, y)").expect("well-formed");
    println!("Query:\n{union}\n");

    // Without FDs: intractable (Theorem 3(2), mat-mul).
    let plain = classify(&union);
    println!("Without FDs: {:?}\n", verdict_name(&plain.verdict));

    // With the key FD A : x → z (first column determines the second).
    let fds = FdSet::new(vec![Fd::new("A", vec![0], 1)]);
    let engine = FdUcqEngine::new(union.clone(), fds).expect("extends");
    println!(
        "With A: x → z, the FD-extension is:\n{}\n",
        engine.classification().minimized
    );
    println!(
        "Remark 2 verdict: {:?} (strategy {:?})\n",
        verdict_name(&engine.classification().verdict),
        engine.strategy()
    );

    // Evaluate on a key-respecting instance.
    let instance: Instance = ucq::storage::parse_instance(
        "A(1, 10). A(2, 20). A(3, 10).\n\
         B(10, 5). B(10, 6). B(20, 7).",
    )
    .expect("valid instance text");
    let mut answers = engine.enumerate(&instance).expect("FDs hold");
    println!("Answers over the key-respecting instance:");
    while let Some(t) = answers.next() {
        println!("  {t}");
    }

    // A violating instance is rejected up front.
    let bad: Instance = ucq::storage::parse_instance("A(1, 10). A(1, 11). B(10, 5).").unwrap();
    match engine.enumerate(&bad) {
        Err(e) => println!("\nViolating instance rejected: {e}"),
        Ok(_) => unreachable!("the FD check must fire"),
    }
}

fn verdict_name(v: &Verdict) -> &'static str {
    match v {
        Verdict::FreeConnex { .. } => "FreeConnex (DelayClin)",
        Verdict::Intractable { .. } => "Intractable",
        Verdict::Unknown { .. } => "Unknown",
    }
}
