//! Lemma 25 / Example 20 run forward: computing a Boolean matrix product by
//! enumerating a UCQ, validated against direct bitset multiplication.
//!
//! ```sh
//! cargo run --release --example matrix_multiplication
//! ```

use std::time::Instant;
use ucq::reductions::{bmm_via_cq, bmm_via_example20, BoolMat};

fn main() {
    println!(
        "{:>5} {:>9} {:>12} {:>14} {:>16}",
        "n", "ones(AB)", "t_direct", "t_via_Π", "t_via_Ex20"
    );
    for n in [32usize, 64, 96, 128] {
        let a = BoolMat::random(n, 0.08, n as u64);
        let b = BoolMat::random(n, 0.08, n as u64 + 1);

        let t0 = Instant::now();
        let direct = a.multiply(&b);
        let t_direct = t0.elapsed();

        let t0 = Instant::now();
        let via_pi = bmm_via_cq(&a, &b);
        let t_pi = t0.elapsed();

        let t0 = Instant::now();
        let via_ex20 = bmm_via_example20(&a, &b);
        let t_ex20 = t0.elapsed();

        assert_eq!(direct, via_pi, "Π route must reproduce the product");
        assert_eq!(
            direct, via_ex20,
            "Example 20 route must reproduce the product"
        );
        println!(
            "{:>5} {:>9} {:>12?} {:>14?} {:>16?}",
            n,
            direct.count_ones(),
            t_direct,
            t_pi,
            t_ex20
        );
    }
    println!(
        "\nBoth query routes compute the exact product — this is the paper's\n\
         point: if the UCQ of Example 20 were enumerable in DelayClin, Boolean\n\
         matrix multiplication would run in O(n²), contradicting mat-mul."
    );
}
