//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of the Criterion API its benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size` / `measurement_time`
//! / `bench_function` / `bench_with_input`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurements are real: each benchmark is warmed up, then timed over
//! `sample_size` samples (auto-scaled iteration counts), and the per-sample
//! median/mean are printed. When the `CRITERION_JSON` environment variable
//! names a file, one JSON line per benchmark is appended to it —
//! `{"group":…,"bench":…,"median_ns":…,"mean_ns":…,"samples":…}` — which is
//! how the committed `BENCH_*.json` baselines are produced.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter (`BenchmarkId::from_parameter(n)`).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one("", &id.name, 20, Duration::from_secs(2), &mut f);
        self
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &self.name,
            &id.name,
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Benchmarks `f` with an input handle.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.name,
            self.sample_size,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (prints nothing extra; kept for API compatibility).
    pub fn finish(self) {}
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f` (results are black-boxed).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    bench: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    // Quick mode (CRITERION_QUICK=1): clamp the sampling plan so a full
    // bench binary finishes in seconds — the CI bench-smoke job uses this
    // to catch probe-path regressions on PRs without paying for full
    // statistical precision.
    let (sample_size, measurement_time) = if quick_mode() {
        (
            sample_size.min(3),
            measurement_time.min(Duration::from_millis(300)),
        )
    } else {
        (sample_size, measurement_time)
    };
    // Calibrate: run single iterations until ~5ms or 10 runs to pick an
    // iteration count per sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let calib_start = Instant::now();
    let mut one_shot = Duration::ZERO;
    let mut calib_runs = 0u32;
    while calib_runs < 10 && calib_start.elapsed() < Duration::from_millis(50) {
        f(&mut b);
        one_shot = if calib_runs == 0 {
            b.elapsed
        } else {
            one_shot.min(b.elapsed)
        };
        calib_runs += 1;
    }
    let per_sample = measurement_time
        .checked_div(sample_size as u32)
        .unwrap_or(Duration::from_millis(10));
    let iters = if one_shot.is_zero() {
        1000
    } else {
        (per_sample.as_nanos() / one_shot.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let deadline = Instant::now() + measurement_time;
    let mut samples_ns: Vec<u64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bench_run = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bench_run);
        samples_ns.push((bench_run.elapsed.as_nanos() / iters as u128) as u64);
        if Instant::now() > deadline && samples_ns.len() >= 2 {
            break;
        }
    }
    samples_ns.sort_unstable();
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<u64>() / samples_ns.len() as u64;
    let label = if group.is_empty() {
        bench.to_string()
    } else {
        format!("{group}/{bench}")
    };
    println!(
        "{label:<48} median {:>12}  mean {:>12}  ({} samples × {iters} iters)",
        fmt_ns(median),
        fmt_ns(mean),
        samples_ns.len()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(
                    file,
                    "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{},\"mean_ns\":{},\"samples\":{}}}",
                    escape(group),
                    escape(bench),
                    median,
                    mean,
                    samples_ns.len()
                );
            }
        }
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("x", 5).name, "x/5");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }
}
