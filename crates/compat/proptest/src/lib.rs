//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of the `proptest` API its property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_filter` /
//! `prop_filter_map`, strategies for integer ranges, tuples, `Vec`s of
//! strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`bool::ANY`], [`strategy::Just`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! Semantics: each test case draws fresh random values from a deterministic
//! per-test RNG. Failing inputs are reported via `Debug`-style panic
//! messages; there is **no shrinking** — failures print the raw
//! counterexample seed index so reruns are reproducible.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub mod bool {
    //! Boolean strategies.
    use crate::strategy::Strategy;
    use crate::test_runner::{Reject, TestRng};

    /// Uniform `true`/`false`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> Result<bool, Reject> {
            Ok(rng.next_u64() & 1 == 1)
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).
    use crate::strategy::Strategy;
    use crate::test_runner::{Reject, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for collection strategies: an exact length or an
    /// inclusive-exclusive / inclusive-inclusive range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            if self.max <= self.min {
                self.min
            } else {
                self.min + (rng.next_u64() as usize) % (self.max - self.min + 1)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec`s of values from `element`, sized by `size` (a length, `a..b`,
    /// or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Reject> {
            let n = self.size.pick(rng);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.sample(rng)?);
            }
            Ok(out)
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet`s of values from `element`. Rejects the sample (retried by
    /// the runner) if the element domain cannot fill the minimum size.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Result<BTreeSet<S::Value>, Reject> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n {
                out.insert(self.element.sample(rng)?);
                attempts += 1;
                if attempts > 64 + 16 * n {
                    if out.len() >= self.size.min {
                        break;
                    }
                    return Err(Reject("btree_set: element domain too small"));
                }
            }
            Ok(out)
        }
    }
}

pub mod num {
    //! Numeric strategies are plain ranges; see the `Strategy` impls for
    //! `Range<T>` / `RangeInclusive<T>` in [`crate::strategy`].
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_sample() {
        let mut rng = TestRng::from_seed(1);
        let s = (0..5u32, crate::collection::vec(0i64..4, 2..=3));
        for _ in 0..50 {
            let (a, v) = s.sample(&mut rng).unwrap();
            assert!(a < 5);
            assert!((2..=3).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..4).contains(&x)));
        }
    }

    #[test]
    fn filter_map_retries_then_rejects() {
        let mut rng = TestRng::from_seed(2);
        let evens = (0..10u32).prop_filter_map("even", |x| (x % 2 == 0).then_some(x));
        for _ in 0..20 {
            assert_eq!(evens.sample(&mut rng).unwrap() % 2, 0);
        }
        let never = (0..10u32).prop_filter_map("never", |_| None::<u32>);
        assert!(never.sample(&mut rng).is_err());
    }

    #[test]
    fn vec_of_strategies_is_a_strategy() {
        let mut rng = TestRng::from_seed(3);
        let strategies: Vec<_> = (0..4).map(Just).collect();
        assert_eq!(strategies.sample(&mut rng).unwrap(), vec![0, 1, 2, 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_and_asserts(x in 0..100u32, (a, b) in (0..10u32, 0..10u32)) {
            prop_assert!(x < 100);
            prop_assert_eq!(a + b, b + a, "commutes for {} {}", a, b);
        }

        #[test]
        fn assume_skips_cases(x in 0..20u32) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
