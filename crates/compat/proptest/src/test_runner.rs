//! The case runner behind the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A strategy-level rejection (filter never matched, assume failed, …).
/// The runner skips the case and draws a new one.
#[derive(Clone, Copy, Debug)]
pub struct Reject(pub &'static str);

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case is invalid and should be skipped (e.g. `prop_assume!`).
    Reject(String),
    /// A real assertion failure.
    Fail(String),
}

impl TestCaseError {
    /// Convenience constructor used by the assertion macros.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Convenience constructor used by `prop_assume!`.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// The per-case outcome type the macro-generated closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies: deterministic per (test name, case index).
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the RNG from a raw seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `case` until `config.cases` cases are accepted, skipping rejected
/// samples (with a global cap so a pathological filter cannot loop forever),
/// and panics with the counterexample's case seed on the first failure.
pub fn run_proptest(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let base = fnv1a(test_name);
    let mut accepted: u32 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = (config.cases as u64) * 32 + 1024;
    let mut rejected: u64 = 0;
    while accepted < config.cases {
        if attempt >= max_attempts {
            panic!(
                "proptest {test_name}: gave up after {attempt} attempts \
                 ({accepted}/{} cases accepted, {rejected} rejected)",
                config.cases
            );
        }
        let mut rng = TestRng::from_seed(base.wrapping_add(attempt));
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest {test_name} failed at case seed {} (attempt {attempt}): {msg}",
                base.wrapping_add(attempt - 1)
            ),
        }
    }
}

/// Declares property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0..10u32, (a, b) in (0..3u32, 0..3u32)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run_proptest(&__config, stringify!($name), |__rng| {
                    $(
                        let $pat = match $crate::strategy::Strategy::sample(&($strat), __rng) {
                            Ok(v) => v,
                            Err(r) => {
                                return Err($crate::test_runner::TestCaseError::reject(r.0))
                            }
                        };
                    )+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Skips the current case (without counting it) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}
