//! The [`Strategy`] trait and its combinators.

use crate::test_runner::{Reject, TestRng};
use std::ops::{Range, RangeInclusive};

/// How many times filtering combinators locally resample before giving up
/// and rejecting the whole test case.
const FILTER_RETRIES: usize = 64;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no shrinking: `sample` either produces a
/// value or rejects (e.g. a filter that never matched), in which case the
/// runner skips the case and draws a new one.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Reject>;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a second strategy from it with `f`, and
    /// samples that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (resampling a bounded number of
    /// times; `whence` labels the rejection).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Simultaneously filters and maps: `f` returning `None` resamples (a
    /// bounded number of times).
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Result<T, Reject> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Result<O, Reject> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Result<S2::Value, Reject> {
        let first = self.inner.sample(rng)?;
        (self.f)(first).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.sample(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Reject(self.whence))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Result<O, Reject> {
        for _ in 0..FILTER_RETRIES {
            if let Some(out) = (self.f)(self.inner.sample(rng)?) {
                return Ok(out);
            }
        }
        Err(Reject(self.whence))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                Ok((self.start as i128 + v as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                Ok((start as i128 + v as i128) as $t)
            }
        }
    )*};
}

impl_range_strategy!(i64, u64, i32, u32, usize, u8, u16, i8, i16);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
                let ($($name,)+) = self;
                Ok(($($name.sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// A `Vec` of same-typed strategies samples element-wise into a `Vec` of
/// values (mirrors proptest's impl).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Reject> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
        (**self).sample(rng)
    }
}

/// String-literal strategies. Real proptest interprets the literal as a
/// regex; this stand-in supports the one shape the workspace uses —
/// `\PC{m,n}` (m..=n printable characters) — and panics loudly on anything
/// else so unsupported patterns cannot silently degrade.
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> Result<String, Reject> {
        let (min, max) = match parse_pc_repeat(self) {
            Some(bounds) => bounds,
            None => panic!(
                "string strategy {self:?}: this offline proptest stand-in only \
                 supports the \\PC{{m,n}} pattern"
            ),
        };
        let n = min + (rng.next_u64() as usize) % (max - min + 1);
        let mut out = String::with_capacity(n);
        for _ in 0..n {
            // Mostly printable ASCII, occasionally a multibyte char, to give
            // the parser fuzz tests realistic spread.
            let roll = rng.next_u64();
            let ch = if roll.is_multiple_of(16) {
                ['→', 'λ', 'é', '⊥', '∧', '𝛼'][(roll >> 8) as usize % 6]
            } else {
                (0x20 + ((roll >> 8) % 0x5f)) as u8 as char
            };
            out.push(ch);
        }
        Ok(out)
    }
}

/// Parses `\PC{m,n}` into `(m, n)`.
fn parse_pc_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix("\\PC{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    let (min, max) = (lo.parse().ok()?, hi.parse().ok()?);
    (min <= max).then_some((min, max))
}
