//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the small slice of the `rand` API its generators actually use: a seedable
//! RNG ([`rngs::StdRng`], here xoshiro256** seeded via SplitMix64),
//! [`Rng::gen`] for `f64`/`u64`/`u32`/`bool`, [`Rng::gen_range`] over integer
//! ranges, and [`Rng::gen_bool`]. Streams are deterministic per seed but are
//! **not** bit-compatible with the real `rand::rngs::StdRng` (ChaCha12); all
//! in-tree consumers only rely on per-seed determinism.

#![forbid(unsafe_code)]

/// Low-level entropy source: 64 random bits at a time.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i64, u64, i32, u32, usize, u8, u16, i8, i16);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from an integer range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNGs.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u: usize = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn f64_is_unit_interval_and_varied() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            distinct.insert(f.to_bits());
        }
        assert!(distinct.len() > 90, "samples should be spread out");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
