//! The DFS schedule explorer: executions, decision points, and replay.
//!
//! One [`Execution`] is a single run of the modeled program under a fixed
//! schedule prefix. Modeled threads are real OS threads, but exactly one is
//! ever running: every wrapped synchronization operation calls back into
//! the execution at a *decision point*, where the scheduler either replays
//! the next choice of the current schedule prefix or extends it with the
//! default choice (keep running the current thread; fall back to the
//! lowest-id runnable one). After each execution, [`next_schedule`]
//! backtracks depth-first to the latest decision with an untried
//! alternative whose preemption count stays within the bound, yielding a
//! systematic, exhaustive-within-bound exploration of interleavings.
//!
//! A *preemption* is choosing a thread other than the one that was just
//! running while that thread is still runnable; forced switches (the
//! running thread blocked or exited) are free. Bounding preemptions keeps
//! the schedule space polynomial while catching the overwhelming majority
//! of real concurrency bugs (the classic CHESS result).

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};

pub(crate) type Tid = usize;

/// Sentinel panic payload used to unwind modeled threads when an execution
/// aborts (failure elsewhere, deadlock, nondeterminism). Never reported as
/// a user failure.
pub(crate) struct ModelAbort;

/// One scheduling decision recorded during an execution.
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    /// Runnable thread ids (ascending) at this decision point.
    enabled: Vec<Tid>,
    /// Index into `enabled` that was chosen.
    chosen: usize,
    /// Position of the previously running thread in `enabled`, if it was
    /// still runnable — choosing any other index is a preemption.
    prev_idx: Option<usize>,
    /// Preemptions used up to and including this decision.
    preemptions: usize,
}

#[derive(Debug, Default)]
struct ThreadState {
    runnable: bool,
    finished: bool,
    /// Resource key this thread is blocked on (see `wake_key`).
    blocked_on: Option<u64>,
}

#[derive(Debug)]
struct Inner {
    threads: Vec<ThreadState>,
    current: Option<Tid>,
    last_running: Option<Tid>,
    /// Replay prefix: choice index per decision point.
    schedule: Vec<usize>,
    decisions: Vec<Decision>,
    preemptions: usize,
    unfinished: usize,
    abort: bool,
    failure: Option<String>,
}

/// Shared state of one modeled execution.
pub(crate) struct Execution {
    inner: Mutex<Inner>,
    cond: Condvar,
}

thread_local! {
    /// The execution/thread-id pair of the modeled thread running on this
    /// OS thread, if any. `None` outside a model: wrapped types fall back
    /// to plain `std` behavior.
    static CURRENT: RefCell<Option<(Arc<Execution>, Tid)>> = const { RefCell::new(None) };
    /// Set on modeled threads so the quiet panic hook can suppress output
    /// (the driver reports failures itself, with the schedule trace).
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

/// The `(execution, thread id)` of the calling modeled thread, if the
/// caller runs inside a model.
pub(crate) fn current() -> Option<(Arc<Execution>, Tid)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn panic_abort() -> ! {
    std::panic::panic_any(ModelAbort)
}

/// Installs (once, process-wide) a panic hook that stays silent for panics
/// on modeled threads: the model driver reports them itself, with the
/// failing schedule attached, instead of interleaving raw hook output from
/// detached threads into the test harness stream.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(Cell::get) {
                return;
            }
            prev(info);
        }));
    });
}

impl Execution {
    fn new(schedule: Vec<usize>) -> Execution {
        Execution {
            inner: Mutex::new(Inner {
                threads: Vec::new(),
                current: None,
                last_running: None,
                schedule,
                decisions: Vec::new(),
                preemptions: 0,
                unfinished: 0,
                abort: false,
                failure: None,
            }),
            cond: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a new runnable thread and returns its id. Called by the
    /// driver (root thread) and by modeled `thread::spawn`.
    pub(crate) fn register_thread(&self) -> Tid {
        let mut inner = self.lock();
        inner.threads.push(ThreadState {
            runnable: true,
            finished: false,
            blocked_on: None,
        });
        inner.unfinished += 1;
        inner.threads.len() - 1
    }

    fn set_failure(inner: &mut Inner, msg: String) {
        if inner.failure.is_none() {
            inner.failure = Some(msg);
        }
        inner.abort = true;
    }

    /// Records a failure (user panic) and aborts the execution.
    pub(crate) fn fail(&self, msg: String) {
        let mut inner = self.lock();
        Self::set_failure(&mut inner, msg);
        self.cond.notify_all();
    }

    /// The scheduler: picks the next thread to run at a decision point.
    /// Caller holds the lock; notifies all waiters.
    fn pick_next(&self, inner: &mut Inner) {
        let enabled: Vec<Tid> = inner
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.runnable && !t.finished)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if inner.unfinished == 0 {
                inner.current = None;
            } else {
                let blocked: Vec<(Tid, Option<u64>)> = inner
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.finished)
                    .map(|(i, t)| (i, t.blocked_on))
                    .collect();
                Self::set_failure(
                    inner,
                    format!("deadlock: every live thread is blocked (thread, key): {blocked:?}"),
                );
            }
            self.cond.notify_all();
            return;
        }
        let pos = inner.decisions.len();
        let prev_idx = inner
            .last_running
            .and_then(|p| enabled.iter().position(|&t| t == p));
        let chosen = if pos < inner.schedule.len() {
            let c = inner.schedule[pos];
            if c >= enabled.len() {
                Self::set_failure(
                    inner,
                    format!(
                        "nondeterministic execution: replaying choice {c} at decision {pos}, \
                         but only {} threads are enabled — model closures must be \
                         deterministic apart from scheduling",
                        enabled.len()
                    ),
                );
                self.cond.notify_all();
                return;
            }
            c
        } else {
            // Default: keep running the previous thread (no preemption);
            // fall back to the lowest-id runnable thread on forced switches.
            prev_idx.unwrap_or(0)
        };
        if matches!(prev_idx, Some(p) if p != chosen) {
            inner.preemptions += 1;
        }
        let next = enabled[chosen];
        inner.decisions.push(Decision {
            enabled,
            chosen,
            prev_idx,
            preemptions: inner.preemptions,
        });
        inner.current = Some(next);
        inner.last_running = Some(next);
        self.cond.notify_all();
    }

    /// Parks until `me` is scheduled for the first time; `false` if the
    /// execution aborted before that.
    fn wait_first(&self, me: Tid) -> bool {
        let mut inner = self.lock();
        while !inner.abort && inner.current != Some(me) {
            inner = self
                .cond
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        !inner.abort
    }

    /// A decision point where the caller stays runnable. Unwinds with the
    /// abort sentinel if the execution is aborting.
    pub(crate) fn yield_now(&self, me: Tid) {
        if !self.yield_inner(me) {
            panic_abort();
        }
    }

    /// As [`Execution::yield_now`], but returns instead of unwinding on
    /// abort — for use inside `Drop` impls, where a panic would escalate
    /// an in-flight unwind into a process abort.
    pub(crate) fn yield_quiet(&self, me: Tid) {
        let _ = self.yield_inner(me);
    }

    fn yield_inner(&self, me: Tid) -> bool {
        let mut inner = self.lock();
        if inner.abort {
            return false;
        }
        self.pick_next(&mut inner);
        while !inner.abort && inner.current != Some(me) {
            inner = self
                .cond
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        !inner.abort
    }

    /// Blocks the caller on `key` until some thread calls
    /// [`Execution::wake_all`] with the same key *and* the scheduler picks
    /// the caller again. Spurious wakeups are allowed (callers re-check
    /// their predicate and may block again).
    pub(crate) fn block_on(&self, me: Tid, key: u64) {
        let mut inner = self.lock();
        if inner.abort {
            drop(inner);
            panic_abort();
        }
        inner.threads[me].runnable = false;
        inner.threads[me].blocked_on = Some(key);
        self.pick_next(&mut inner);
        while !inner.abort && inner.current != Some(me) {
            inner = self
                .cond
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if inner.abort {
            drop(inner);
            panic_abort();
        }
    }

    fn wake_key(inner: &mut Inner, key: u64) {
        for t in &mut inner.threads {
            if t.blocked_on == Some(key) {
                t.blocked_on = None;
                t.runnable = true;
            }
        }
    }

    /// Makes every thread blocked on `key` runnable again (they still wait
    /// for the scheduler to pick them).
    pub(crate) fn wake_all(&self, key: u64) {
        let mut inner = self.lock();
        Self::wake_key(&mut inner, key);
    }

    /// Waits (scheduler-aware) until `target` finishes.
    pub(crate) fn join_wait(&self, me: Tid, target: Tid) {
        loop {
            {
                let inner = self.lock();
                if inner.abort {
                    drop(inner);
                    panic_abort();
                }
                if inner.threads[target].finished {
                    return;
                }
            }
            self.block_on(me, join_key(target));
        }
    }

    /// Thread exit: final bookkeeping plus the hand-off decision.
    pub(crate) fn exit_thread(&self, me: Tid) {
        let mut inner = self.lock();
        inner.threads[me].finished = true;
        inner.threads[me].runnable = false;
        inner.unfinished -= 1;
        Self::wake_key(&mut inner, join_key(me));
        if inner.abort {
            self.cond.notify_all();
            return;
        }
        self.pick_next(&mut inner);
    }

    /// Kicks off the execution: the initial scheduling decision.
    fn start(&self) {
        let mut inner = self.lock();
        self.pick_next(&mut inner);
    }

    /// Driver-side wait for quiescence: all threads finished, or aborted.
    fn wait_done(&self) -> (Option<String>, Vec<Decision>) {
        let mut inner = self.lock();
        while inner.unfinished > 0 && !inner.abort {
            inner = self
                .cond
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        (inner.failure.clone(), inner.decisions.clone())
    }
}

/// Key space for join waits, disjoint from resource addresses (userspace
/// addresses never have the top bit set).
fn join_key(tid: Tid) -> u64 {
    (1u64 << 63) | tid as u64
}

/// Runs `body` as modeled thread `tid` of `exec` on the calling OS thread.
fn run_modeled<T: Send + 'static>(
    exec: &Arc<Execution>,
    tid: Tid,
    slot: &Mutex<Option<T>>,
    body: impl FnOnce() -> T,
) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(exec), tid)));
    IN_MODEL.with(|f| f.set(true));
    if exec.wait_first(tid) {
        match catch_unwind(AssertUnwindSafe(body)) {
            Ok(v) => {
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
            }
            Err(payload) => {
                if payload.downcast_ref::<ModelAbort>().is_none() {
                    exec.fail(format!(
                        "modeled thread {tid} panicked: {}",
                        payload_message(&payload)
                    ));
                }
            }
        }
    }
    exec.exit_thread(tid);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Spawns `body` as a new modeled thread of `exec`; returns its id. The
/// result lands in `slot` when the thread completes.
pub(crate) fn spawn_modeled<T: Send + 'static>(
    exec: &Arc<Execution>,
    slot: Arc<Mutex<Option<T>>>,
    body: impl FnOnce() -> T + Send + 'static,
) -> Tid {
    let tid = exec.register_thread();
    let exec2 = Arc::clone(exec);
    std::thread::Builder::new()
        .name(format!("shuttle-model-{tid}"))
        .spawn(move || run_modeled(&exec2, tid, &slot, body))
        .expect("spawn modeled thread");
    tid
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Hard cap on explored schedules; hitting it sets `truncated`.
    pub max_schedules: usize,
    /// Bounded-preemption budget per schedule (forced switches are free).
    pub max_preemptions: usize,
}

impl Default for Config {
    fn default() -> Config {
        fn env_usize(name: &str, default: usize) -> usize {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        Config {
            max_schedules: env_usize("UCQ_SHUTTLE_MAX_SCHEDULES", 100_000),
            max_preemptions: env_usize("UCQ_SHUTTLE_PREEMPTIONS", 2),
        }
    }
}

/// What [`model`] reports back: how thoroughly the schedule space was
/// covered.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Distinct schedules (interleavings) explored.
    pub schedules: usize,
    /// Whether exploration stopped at `max_schedules` before exhausting
    /// the bounded-preemption schedule space.
    pub truncated: bool,
}

/// All outcomes of an [`explore`] run: the closure's return value under
/// every explored schedule, in exploration order.
#[derive(Clone, Debug)]
pub struct Exploration<T> {
    /// One entry per schedule.
    pub outcomes: Vec<T>,
    /// Distinct schedules explored.
    pub schedules: usize,
    /// Whether the schedule space was truncated at `max_schedules`.
    pub truncated: bool,
}

/// DFS backtracking: the next untried schedule within the preemption
/// budget, or `None` when the bounded space is exhausted.
fn next_schedule(decisions: &[Decision], max_preemptions: usize) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        let d = &decisions[i];
        let own_cost = usize::from(matches!(d.prev_idx, Some(p) if p != d.chosen));
        let before = d.preemptions - own_cost;
        for c in d.chosen + 1..d.enabled.len() {
            let cost = usize::from(matches!(d.prev_idx, Some(p) if p != c));
            if before + cost <= max_preemptions {
                let mut s: Vec<usize> = decisions[..i].iter().map(|x| x.chosen).collect();
                s.push(c);
                return Some(s);
            }
        }
    }
    None
}

fn trace(decisions: &[Decision]) -> Vec<Tid> {
    decisions.iter().map(|d| d.enabled[d.chosen]).collect()
}

/// Runs `f` under every schedule the bounds admit, collecting its return
/// value per schedule. Panics (with the failing schedule) if any schedule
/// panics or deadlocks — use plain data returns plus assertions on the
/// [`Exploration`] to *observe* racy outcomes without failing.
pub fn explore_with<T, F>(cfg: Config, f: F) -> Exploration<T>
where
    F: Fn() -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    assert!(
        current().is_none(),
        "nested model()/explore() inside a modeled thread is not supported"
    );
    install_quiet_panic_hook();
    let f = Arc::new(f);
    let mut schedule: Vec<usize> = Vec::new();
    let mut outcomes = Vec::new();
    let mut schedules = 0usize;
    let mut truncated = false;
    loop {
        schedules += 1;
        let exec = Arc::new(Execution::new(schedule));
        let slot = Arc::new(Mutex::new(None));
        {
            let f2 = Arc::clone(&f);
            spawn_modeled(&exec, Arc::clone(&slot), move || f2());
        }
        exec.start();
        let (failure, decisions) = exec.wait_done();
        if let Some(msg) = failure {
            panic!(
                "model checking failed on schedule {schedules} \
                 ({} decisions): {msg}\n  thread trace: {:?}",
                decisions.len(),
                trace(&decisions)
            );
        }
        if let Some(v) = slot.lock().unwrap_or_else(PoisonError::into_inner).take() {
            outcomes.push(v);
        }
        match next_schedule(&decisions, cfg.max_preemptions) {
            Some(s) if schedules < cfg.max_schedules => schedule = s,
            Some(_) => {
                truncated = true;
                break;
            }
            None => break,
        }
    }
    Exploration {
        outcomes,
        schedules,
        truncated,
    }
}

/// As [`explore_with`] with default bounds.
pub fn explore<T, F>(f: F) -> Exploration<T>
where
    F: Fn() -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    explore_with(Config::default(), f)
}

/// Model-checks `f`: runs it under every schedule the bounds admit and
/// panics on the first schedule where `f` panics or deadlocks (the
/// loom/shuttle entry point). Returns coverage numbers.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Config::default(), f)
}

/// As [`model`] with explicit bounds.
pub fn model_with<F>(cfg: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let e = explore_with(cfg, f);
    Report {
        schedules: e.schedules,
        truncated: e.truncated,
    }
}
