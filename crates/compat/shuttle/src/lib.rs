//! Offline, API-compatible subset of the `shuttle`/`loom` model checkers.
//!
//! The build environment has no registry access, so this crate hand-rolls
//! the core idea: run a concurrent closure under *every* thread
//! interleaving (up to a preemption bound), deterministically, using real
//! OS threads but letting exactly one run at a time. Code under test uses
//! [`thread::spawn`] and the wrapped primitives in [`sync`]
//! (`Mutex`, `OnceLock`, `atomic::*`); each operation on those types is a
//! decision point where the DFS scheduler may switch threads.
//!
//! Entry points:
//! - [`model`] / [`model_with`] — assert-style checking: panics on the
//!   first schedule where the closure panics or deadlocks, and returns a
//!   [`Report`] with the number of schedules explored.
//! - [`explore`] / [`explore_with`] — data-style checking: collects the
//!   closure's return value under every schedule into an
//!   [`Exploration`], so tests can assert over the *set* of reachable
//!   outcomes (e.g. "a lost update is reachable" for a seeded-bug
//!   mutation test) without turning racy schedules into panics.
//!
//! Outside a model run, every wrapped type behaves exactly like its
//! `std::sync` counterpart, so the same code compiles and runs correctly
//! in ordinary builds — that is what makes the `ucq_storage` cfg seam
//! cheap: the production types are swapped for these only under
//! `--cfg ucq_model_check`.
//!
//! Bounds default to 2 preemptions and 100 000 schedules and can be
//! overridden with `UCQ_SHUTTLE_PREEMPTIONS` / `UCQ_SHUTTLE_MAX_SCHEDULES`
//! or per-call via [`Config`].

#![forbid(unsafe_code)]

mod exec;
pub mod sync;
pub mod thread;

pub use exec::{explore, explore_with, model, model_with, Config, Exploration, Report};

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex, OnceLock};
    use super::*;

    fn small() -> Config {
        Config {
            max_schedules: 50_000,
            max_preemptions: 2,
        }
    }

    #[test]
    fn single_thread_runs_once() {
        let r = model(|| {
            let m = Mutex::new(1);
            *m.lock().unwrap() += 1;
            assert_eq!(*m.lock().unwrap(), 2);
        });
        assert_eq!(r.schedules, 1);
        assert!(!r.truncated);
    }

    #[test]
    fn finds_lost_update_on_unsynchronized_increment() {
        // Two threads do a non-atomic load-then-store increment; the
        // explorer must reach both the correct (2) and the lost-update (1)
        // outcomes.
        let e = explore_with(small(), || {
            let c = Arc::new(AtomicU64::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            c.load(Ordering::SeqCst)
        });
        assert!(e.schedules > 1, "explored only {} schedules", e.schedules);
        assert!(!e.truncated);
        assert!(e.outcomes.contains(&2), "missed the race-free outcome");
        assert!(e.outcomes.contains(&1), "missed the lost-update outcome");
    }

    #[test]
    fn mutex_guarded_increment_never_loses_updates() {
        let e = explore_with(small(), || {
            let c = Arc::new(Mutex::new(0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        let mut g = c.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            let v = *c.lock().unwrap();
            v
        });
        assert!(e.schedules > 1);
        assert!(e.outcomes.iter().all(|&v| v == 2), "mutex lost an update");
    }

    #[test]
    fn detects_abba_deadlock() {
        let caught = std::panic::catch_unwind(|| {
            model_with(small(), || {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop(_ga);
                drop(_gb);
                h.join().unwrap();
            });
        });
        let err = caught.expect_err("ABBA deadlock went undetected");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn once_lock_initializes_exactly_once_under_contention() {
        let e = explore_with(small(), || {
            let cell = Arc::new(OnceLock::new());
            let inits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|i| {
                    let cell = Arc::clone(&cell);
                    let inits = Arc::clone(&inits);
                    thread::spawn(move || {
                        *cell.get_or_init(|| {
                            inits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            10 + i
                        })
                    })
                })
                .collect();
            let seen: Vec<u64> = hs.into_iter().map(|h| h.join().unwrap()).collect();
            (seen, inits.load(std::sync::atomic::Ordering::SeqCst))
        });
        assert!(e.schedules > 1);
        for (seen, inits) in &e.outcomes {
            assert_eq!(*inits, 1, "initializer ran {inits} times");
            assert_eq!(seen[0], seen[1], "threads observed different values");
        }
        // Both threads can win the init race under different schedules.
        let winners: std::collections::BTreeSet<u64> =
            e.outcomes.iter().map(|(seen, _)| seen[0]).collect();
        assert!(winners.len() > 1, "only one init winner ever observed");
    }

    #[test]
    fn join_returns_spawned_value() {
        let r = model(|| {
            let h = thread::spawn(|| 41 + 1);
            assert_eq!(h.join().unwrap(), 42);
        });
        assert!(r.schedules >= 1);
    }

    #[test]
    fn truncation_is_reported() {
        let e = explore_with(
            Config {
                max_schedules: 2,
                max_preemptions: 2,
            },
            || {
                let c = Arc::new(AtomicU64::new(0));
                let hs: Vec<_> = (0..2)
                    .map(|_| {
                        let c = Arc::clone(&c);
                        thread::spawn(move || c.fetch_add(1, Ordering::SeqCst))
                    })
                    .collect();
                for h in hs {
                    h.join().unwrap();
                }
            },
        );
        assert_eq!(e.schedules, 2);
        assert!(e.truncated);
    }

    #[test]
    fn wrapped_types_work_outside_a_model() {
        // No model() wrapper: everything must behave like plain std.
        let m = Mutex::new(5);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 6);
        let cell: OnceLock<u32> = OnceLock::new();
        assert_eq!(*cell.get_or_init(|| 7), 7);
        assert_eq!(*cell.get_or_init(|| 8), 7);
        let a = AtomicU64::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(a.load(Ordering::SeqCst), 3);
        let h = thread::spawn(|| 9);
        assert_eq!(h.join().unwrap(), 9);
    }
}
