//! Model-aware drop-in replacements for `std::sync` primitives.
//!
//! Outside a [`crate::model`]/[`crate::explore`] run every type behaves
//! exactly like its `std` counterpart (plain delegation), so code compiled
//! against these types still works in ordinary builds and tests. Inside a
//! run, every operation is a *decision point*: it yields to the DFS
//! scheduler first, so the explorer can interleave threads at each
//! synchronization-relevant instruction.
//!
//! Memory-ordering parameters are accepted for API compatibility but the
//! model explores sequentially-consistent interleavings only (one thread
//! runs at a time); this checks atomicity/ordering of *operations*, not
//! weak-memory reorderings.

use crate::exec;

pub use std::sync::{Arc, LockResult, PoisonError};

fn addr_key<T: ?Sized>(r: &T) -> u64 {
    (r as *const T).cast::<()>() as usize as u64
}

// ---------------------------------------------------------------------------
// Mutex

/// A mutual-exclusion lock; `std::sync::Mutex` outside a model, a
/// scheduler-visible lock inside one.
pub struct Mutex<T: ?Sized> {
    /// Model-mode ownership flag; untouched in std mode (the inner mutex
    /// handles contention there).
    held: std::sync::atomic::AtomicBool,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock (and wakes modeled
/// waiters) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Arc<exec::Execution>, exec::Tid)>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            held: std::sync::atomic::AtomicBool::new(false),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        use std::sync::atomic::Ordering::SeqCst;
        match exec::current() {
            Some((ex, me)) => {
                loop {
                    ex.yield_now(me);
                    if !self.held.swap(true, SeqCst) {
                        break;
                    }
                    // Held by another modeled thread: park until the
                    // holder's guard drop wakes this address, then retry.
                    ex.block_on(me, addr_key(self));
                }
                // Only one modeled thread runs between the flag acquire
                // and here, so the inner lock is uncontended.
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: Some((ex, me)),
                })
            }
            None => match self.inner.lock() {
                Ok(inner) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: None,
                }),
                Err(poison) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(poison.into_inner()),
                    model: None,
                })),
            },
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before flipping the model flag: a woken
        // waiter must never find the flag clear while the inner std lock
        // is still held (that would be a real — not modeled — block).
        drop(self.inner.take());
        if let Some((ex, me)) = self.model.take() {
            self.lock
                .held
                .store(false, std::sync::atomic::Ordering::SeqCst);
            ex.wake_all(addr_key(self.lock));
            // Quiet yield: this drop may run during an abort unwind, and
            // a second panic here would escalate to a process abort.
            ex.yield_quiet(me);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar

/// A condition variable; `std::sync::Condvar` outside a model. Inside one,
/// `wait` is a scheduler-visible park: the guard's drop releases the
/// modeled mutex (waking lock waiters), the thread then blocks on the
/// condvar's address key until a notify bumps the wakeup generation, and
/// finally re-acquires the lock through the modeled path.
///
/// Notifies wake *every* modeled waiter (spurious wakeups are part of the
/// `Condvar` contract, so waiters must re-check their predicate anyway);
/// a missing notify still surfaces as a modeled deadlock, which is the
/// bug class the checker exists to catch.
#[derive(Default)]
pub struct Condvar {
    /// Model-mode wakeup generation. A plain (non-modeled) atomic on
    /// purpose: reading it must not be a decision point, so the
    /// check-then-block in `wait` runs without a scheduling gap.
    generation: std::sync::atomic::AtomicU64,
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            generation: std::sync::atomic::AtomicU64::new(0),
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        use std::sync::atomic::Ordering::SeqCst;
        let lock = guard.lock;
        match exec::current() {
            Some((ex, me)) => {
                // Read the generation while still holding the mutex: a
                // notify can only run after the guard drop below, so any
                // wakeup this waiter must see bumps past `seen`.
                let seen = self.generation.load(SeqCst);
                drop(guard);
                loop {
                    if self.generation.load(SeqCst) != seen {
                        break;
                    }
                    // No yield between the check and the park: only one
                    // modeled thread runs at a time, so no notify can
                    // slip into the gap (no lost wakeups).
                    ex.block_on(me, addr_key(self));
                }
                lock.lock()
            }
            None => {
                let mut guard = guard;
                let inner = guard.inner.take().expect("guard accessed after release");
                drop(guard); // model/flag bookkeeping is a no-op in std mode
                match self.inner.wait(inner) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                        model: None,
                    }),
                    Err(poison) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(poison.into_inner()),
                        model: None,
                    })),
                }
            }
        }
    }

    pub fn notify_one(&self) {
        self.notify(|inner| inner.notify_one());
    }

    pub fn notify_all(&self) {
        self.notify(|inner| inner.notify_all());
    }

    fn notify(&self, std_notify: impl FnOnce(&std::sync::Condvar)) {
        use std::sync::atomic::Ordering::SeqCst;
        match exec::current() {
            Some((ex, me)) => {
                ex.yield_now(me);
                self.generation.fetch_add(1, SeqCst);
                // Modeled notify is a broadcast either way: waiters
                // re-check predicates, and the explorer decides who wins
                // the re-acquire race.
                ex.wake_all(addr_key(self));
            }
            None => std_notify(&self.inner),
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// OnceLock

/// A write-once cell; `std::sync::OnceLock` outside a model. Inside one,
/// `get_or_init` exposes the initialize-vs-read race to the scheduler:
/// the winning initializer yields mid-initialization so other threads can
/// observe the "initializing" window.
pub struct OnceLock<T> {
    /// Model-mode claim flag for the initializer slot.
    initializing: std::sync::atomic::AtomicBool,
    inner: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    pub const fn new() -> OnceLock<T> {
        OnceLock {
            initializing: std::sync::atomic::AtomicBool::new(false),
            inner: std::sync::OnceLock::new(),
        }
    }

    pub fn get(&self) -> Option<&T> {
        if let Some((ex, me)) = exec::current() {
            ex.yield_now(me);
        }
        self.inner.get()
    }

    pub fn set(&self, value: T) -> Result<(), T> {
        match exec::current() {
            Some((ex, me)) => {
                ex.yield_now(me);
                let r = self.inner.set(value);
                ex.wake_all(addr_key(self));
                r
            }
            None => self.inner.set(value),
        }
    }

    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        use std::sync::atomic::Ordering::SeqCst;
        match exec::current() {
            Some((ex, me)) => {
                let mut f = Some(f);
                loop {
                    ex.yield_now(me);
                    if let Some(v) = self.inner.get() {
                        return v;
                    }
                    if !self.initializing.swap(true, SeqCst) {
                        // This thread won the initializer slot. Yield once
                        // mid-initialization so the explorer can run other
                        // threads while the value is still unpublished.
                        ex.yield_now(me);
                        let value = (f.take().expect("init closure reused"))();
                        let _ = self.inner.set(value);
                        self.initializing.store(false, SeqCst);
                        ex.wake_all(addr_key(self));
                        return self.inner.get().expect("value just published");
                    }
                    // Another thread is initializing: park until it
                    // publishes, then re-check.
                    ex.block_on(me, addr_key(self));
                }
            }
            None => self.inner.get_or_init(f),
        }
    }

    pub fn take(&mut self) -> Option<T> {
        self.inner.take()
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> OnceLock<T> {
        OnceLock::new()
    }
}

impl<T: Clone> Clone for OnceLock<T> {
    fn clone(&self) -> OnceLock<T> {
        OnceLock {
            initializing: std::sync::atomic::AtomicBool::new(false),
            inner: self.inner.clone(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// Atomics

pub mod atomic {
    //! Model-aware atomics. Every operation yields to the scheduler first
    //! (making it a decision point), then performs the real operation —
    //! sound because only one modeled thread runs at a time.

    use super::addr_key;
    use crate::exec;

    pub use std::sync::atomic::Ordering;

    fn decision_point() {
        if let Some((ex, me)) = exec::current() {
            ex.yield_now(me);
        }
    }

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $value:ty $(, $fetch:ident)*) => {
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub const fn new(v: $value) -> $name {
                    $name { inner: <$std>::new(v) }
                }

                pub fn load(&self, order: Ordering) -> $value {
                    decision_point();
                    self.inner.load(order)
                }

                pub fn store(&self, v: $value, order: Ordering) {
                    decision_point();
                    self.inner.store(v, order);
                    self.wake();
                }

                pub fn swap(&self, v: $value, order: Ordering) -> $value {
                    decision_point();
                    let r = self.inner.swap(v, order);
                    self.wake();
                    r
                }

                pub fn compare_exchange(
                    &self,
                    current: $value,
                    new: $value,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$value, $value> {
                    decision_point();
                    let r = self.inner.compare_exchange(current, new, success, failure);
                    self.wake();
                    r
                }

                pub fn into_inner(self) -> $value {
                    self.inner.into_inner()
                }

                fn wake(&self) {
                    if let Some((ex, _)) = exec::current() {
                        ex.wake_all(addr_key(self));
                    }
                }

                $(
                    pub fn $fetch(&self, v: $value, order: Ordering) -> $value {
                        decision_point();
                        let r = self.inner.$fetch(v, order);
                        self.wake();
                        r
                    }
                )*
            }
        };
    }

    model_atomic!(
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool,
        fetch_or,
        fetch_and
    );
    model_atomic!(
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64,
        fetch_add,
        fetch_sub,
        fetch_or,
        fetch_and,
        fetch_max,
        fetch_min
    );
    model_atomic!(
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize,
        fetch_add,
        fetch_sub,
        fetch_or,
        fetch_and,
        fetch_max,
        fetch_min
    );
}
