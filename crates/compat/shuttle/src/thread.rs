//! Model-aware `std::thread` subset: [`spawn`], [`JoinHandle`],
//! [`yield_now`]. Outside a model run these delegate to `std::thread`;
//! inside one, spawned closures become modeled threads scheduled by the
//! DFS explorer.

use crate::exec;
use std::sync::{Arc, Mutex, PoisonError};

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<exec::Execution>,
        tid: exec::Tid,
        slot: Arc<Mutex<Option<T>>>,
    },
}

/// Owned permission to join a spawned thread (API subset of
/// `std::thread::JoinHandle`).
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Inside a
    /// model, the wait is scheduler-aware (a blocked join is visible to
    /// deadlock detection).
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { exec, tid, slot } => {
                let (_, me) =
                    exec::current().expect("joining a modeled thread from outside its model run");
                exec.join_wait(me, tid);
                match slot.lock().unwrap_or_else(PoisonError::into_inner).take() {
                    Some(v) => Ok(v),
                    // Unreachable in practice: a panicked modeled thread
                    // aborts the whole execution before join returns.
                    None => Err(Box::new("modeled thread finished without a value")),
                }
            }
        }
    }
}

/// Spawns a new thread (modeled when called inside [`crate::model`] /
/// [`crate::explore`], a real `std` thread otherwise).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match exec::current() {
        Some((ex, _)) => {
            let slot = Arc::new(Mutex::new(None));
            let tid = exec::spawn_modeled(&ex, Arc::clone(&slot), f);
            JoinHandle(Inner::Model {
                exec: ex,
                tid,
                slot,
            })
        }
        None => JoinHandle(Inner::Std(std::thread::spawn(f))),
    }
}

/// A pure decision point: lets the scheduler switch threads here (a no-op
/// hint outside a model).
pub fn yield_now() {
    match exec::current() {
        Some((ex, me)) => ex.yield_now(me),
        None => std::thread::yield_now(),
    }
}
