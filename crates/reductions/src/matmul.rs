//! Boolean matrix multiplication through query enumeration.
//!
//! The mat-mul hypothesis (§2) says the product of two Boolean `n × n`
//! matrices cannot be computed in `O(n²)`; the paper's acyclic lower bounds
//! embed BMM into query answers. These functions run the embeddings
//! *forward*: build the instance, enumerate, decode the product — which
//! both validates the reductions (the decoded product must equal the direct
//! one) and lets experiments measure "BMM via query" against direct BMM.

use crate::matrix::BoolMat;
use ucq_core::evaluate_ucq_naive;
use ucq_query::{parse_cq, parse_ucq, Cq, Ucq};
use ucq_storage::{Instance, Relation, Tuple, Value};
use ucq_yannakakis::evaluate_cq_naive;

/// The canonical hard CQ `Π(x, y) ← A(x, z), B(z, y)` (§2).
pub fn matmul_query() -> Cq {
    parse_cq("Pi(x, y) <- A(x, z), B(z, y)").expect("well-formed")
}

/// Encodes two matrices as the instance `{A, B}` of [`matmul_query`].
pub fn encode_matrices(a: &BoolMat, b: &BoolMat) -> Instance {
    let mut inst = Instance::new();
    inst.insert(
        "A",
        Relation::from_pairs(a.ones().into_iter().map(|(i, j)| (i as i64, j as i64))),
    );
    inst.insert(
        "B",
        Relation::from_pairs(b.ones().into_iter().map(|(i, j)| (i as i64, j as i64))),
    );
    inst
}

/// Computes `A·B` by enumerating `Π(x, y)` (Theorem 3(2) forward).
pub fn bmm_via_cq(a: &BoolMat, b: &BoolMat) -> BoolMat {
    assert_eq!(a.n(), b.n());
    let q = matmul_query();
    let inst = encode_matrices(a, b);
    let answers = evaluate_cq_naive(&q, &inst).expect("evaluates");
    decode_product(a.n(), &answers)
}

/// Example 20's rewritten form: one body, two heads.
pub fn example20_rewritten() -> Ucq {
    parse_ucq(
        "Q1(w, y, z) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)\n\
         Q2(x, y, v) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)",
    )
    .expect("well-formed")
}

/// The Lemma 25 / Example 20 instance: `R1 = A`, `R2 = B`,
/// `R3 = {0..n} × {⊥}`, `R4 = {(⊥, ⊥)}`.
pub fn encode_example20(a: &BoolMat, b: &BoolMat) -> Instance {
    assert_eq!(a.n(), b.n());
    let n = a.n();
    let mut inst = Instance::new();
    inst.insert(
        "R1",
        Relation::from_pairs(a.ones().into_iter().map(|(i, j)| (i as i64, j as i64))),
    );
    inst.insert(
        "R2",
        Relation::from_pairs(b.ones().into_iter().map(|(i, j)| (i as i64, j as i64))),
    );
    let mut r3 = Relation::new(2);
    for y in 0..n {
        r3.push_row(&[Value::Int(y as i64), Value::Bottom]);
    }
    inst.insert("R3", r3);
    let mut r4 = Relation::new(2);
    r4.push_row(&[Value::Bottom, Value::Bottom]);
    inst.insert("R4", r4);
    inst
}

/// Computes `A·B` by enumerating the Example 20 union. The union has at
/// most `2n²` answers over this instance; `Q1`'s answers `(w, y, ⊥)` are
/// the product entries, while `Q2`'s all start with `⊥`.
pub fn bmm_via_example20(a: &BoolMat, b: &BoolMat) -> BoolMat {
    let u = example20_rewritten();
    let inst = encode_example20(a, b);
    let answers = evaluate_ucq_naive(&u, &inst).expect("evaluates");
    let mut out = BoolMat::zero(a.n());
    for t in &answers {
        if let (Value::Int(i), Value::Int(j)) = (t[0], t[1]) {
            out.set(i as usize, j as usize);
        }
    }
    out
}

fn decode_product(n: usize, answers: &[Tuple]) -> BoolMat {
    let mut out = BoolMat::zero(n);
    for t in answers {
        let (Value::Int(i), Value::Int(j)) = (t[0], t[1]) else {
            panic!("matmul answers are integer pairs");
        };
        out.set(i as usize, j as usize);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cq_route_matches_direct_product() {
        for seed in 0..3 {
            let a = BoolMat::random(24, 0.2, seed);
            let b = BoolMat::random(24, 0.25, seed + 100);
            assert_eq!(bmm_via_cq(&a, &b), a.multiply(&b));
        }
    }

    #[test]
    fn example20_route_matches_direct_product() {
        for seed in 0..3 {
            let a = BoolMat::random(20, 0.2, seed);
            let b = BoolMat::random(20, 0.3, seed + 7);
            assert_eq!(bmm_via_example20(&a, &b), a.multiply(&b));
        }
    }

    #[test]
    fn example20_answer_count_is_quadratic_not_cubic() {
        // The Lemma 25 point: over this instance the union produces at most
        // O(n²) answers even though the query is generally n³-ish.
        let n = 24;
        let a = BoolMat::random(n, 0.4, 1);
        let b = BoolMat::random(n, 0.4, 2);
        let u = example20_rewritten();
        let inst = encode_example20(&a, &b);
        let answers = evaluate_ucq_naive(&u, &inst).unwrap();
        assert!(
            answers.len() <= 2 * n * n,
            "paper bound: |Q(I)| ≤ 2n², got {}",
            answers.len()
        );
    }

    #[test]
    fn zero_matrices_give_zero() {
        let z = BoolMat::zero(8);
        assert_eq!(bmm_via_cq(&z, &z).count_ones(), 0);
        assert_eq!(bmm_via_example20(&z, &z).count_ones(), 0);
    }

    #[test]
    fn dense_matrices_saturate() {
        let a = BoolMat::random(10, 1.0, 0);
        let b = BoolMat::random(10, 1.0, 0);
        assert_eq!(bmm_via_cq(&a, &b).count_ones(), 100);
        assert_eq!(bmm_via_example20(&a, &b).count_ones(), 100);
    }
}
