//! The Lemma 14 exact reduction: disjoint per-variable domains.
//!
//! `σ` tags every value of every tuple with the variable occupying that
//! position, so distinct variables range over disjoint domains; relations
//! not mentioned by the hard member are left absent (= empty). `τ` strips
//! the tags from answers. When no other member has a body-homomorphism into
//! the hard member, the union's answers over `σ(I)` are exactly the hard
//! member's answers over `I` — i.e. `Enum⟨Q1⟩ ≤e Enum⟨Q⟩`.

use ucq_query::Cq;
use ucq_storage::{Instance, Relation, Tuple, Value};

/// The `σ` map: tags instance `inst` (which must only contain `Int`
/// values) along the atoms of `q1`.
pub fn encode_instance(q1: &Cq, inst: &Instance) -> Instance {
    let mut out = Instance::new();
    for atom in q1.atoms() {
        let Some(stored) = inst.get(&atom.rel) else {
            continue;
        };
        assert_eq!(stored.arity(), atom.args.len(), "schema mismatch");
        let mut rel = Relation::with_capacity(stored.arity(), stored.len());
        let mut row: Vec<Value> = vec![Value::Bottom; stored.arity()];
        for src in stored.iter_rows() {
            for (pos, (&val, &var)) in src.iter().zip(&atom.args).enumerate() {
                let Value::Int(v) = val else {
                    panic!("encode_instance expects plain Int values");
                };
                row[pos] = Value::tagged(var, v);
            }
            rel.push_row(&row);
        }
        out.insert(atom.rel.clone(), rel);
    }
    out
}

/// The `τ` map: strips tags from an answer tuple.
pub fn decode_answer(t: &Tuple) -> Tuple {
    t.untag()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use ucq_core::evaluate_ucq_naive;
    use ucq_query::{parse_cq, parse_ucq};
    use ucq_yannakakis::evaluate_cq_naive;

    fn inst(rels: &[(&str, Vec<(i64, i64)>)]) -> Instance {
        rels.iter()
            .map(|(n, pairs)| (n.to_string(), Relation::from_pairs(pairs.iter().copied())))
            .collect()
    }

    #[test]
    fn tagging_tags_by_variable() {
        let q = parse_cq("Q(x, y) <- R(x, y)").unwrap();
        let i = inst(&[("R", vec![(1, 2)])]);
        let enc = encode_instance(&q, &i);
        let rel = enc.get("R").unwrap();
        assert_eq!(rel.row(0), &[Value::tagged(0, 1), Value::tagged(1, 2)]);
    }

    #[test]
    fn lemma14_exact_reduction_example9() {
        // Example 9: no body-homomorphism from Q2 to Q1 (R4 blocks it), so
        // over σ(I) the union returns exactly τ⁻¹ of Q1's answers.
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w), R4(y)",
        )
        .unwrap();
        let q1 = &u.cqs()[0];
        let i = inst(&[
            ("R1", vec![(1, 2), (5, 2)]),
            ("R2", vec![(2, 3), (3, 5)]),
            ("R3", vec![(3, 4), (5, 1)]),
            ("R4", vec![]),
        ]);
        // Note R4 gets values too in the real instance; σ leaves it out.
        let encoded = encode_instance(q1, &i);
        assert!(!encoded.contains("R4"), "relations outside Q1 stay empty");

        let union_answers = evaluate_ucq_naive(&u, &encoded).unwrap();
        let decoded: HashSet<Tuple> = union_answers.iter().map(decode_answer).collect();
        let direct: HashSet<Tuple> = evaluate_cq_naive(q1, &i).unwrap().into_iter().collect();
        assert_eq!(decoded, direct);
        // And σ introduced no spurious duplicates.
        assert_eq!(union_answers.len(), decoded.len());
    }

    #[test]
    fn self_joins_in_instance_separate_under_tagging() {
        // The same relation R appears in two atoms of different variables —
        // tagging makes the two copies range over "disjoint" values, which
        // is exactly why Lemma 14 requires self-join-free queries. Here we
        // just confirm σ is per-atom.
        let q = parse_cq("Q(x, y) <- R(x, y)").unwrap();
        let i = inst(&[("R", vec![(7, 7)])]);
        let enc = encode_instance(&q, &i);
        let rel = enc.get("R").unwrap();
        // (7,7) becomes ((7#x),(7#y)) — different tagged values.
        assert_ne!(rel.row(0)[0], rel.row(0)[1]);
    }

    #[test]
    #[should_panic(expected = "plain Int")]
    fn rejects_pre_tagged_values() {
        let q = parse_cq("Q(x) <- R(x)").unwrap();
        let mut rel = Relation::new(1);
        rel.push_row(&[Value::tagged(0, 1)]);
        let mut i = Instance::new();
        i.insert("R", rel);
        encode_instance(&q, &i);
    }
}
