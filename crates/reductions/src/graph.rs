//! A small undirected-graph substrate: random graphs, triangle listing and
//! clique detection — the combinatorial problems behind the paper's
//! hardness hypotheses (§2: hyperclique, 4-clique).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected simple graph on vertices `0..n`, adjacency stored as
/// bitset rows.
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    words: usize,
    adj: Vec<u64>,
}

impl Graph {
    /// An empty graph on `n` vertices.
    pub fn new(n: usize) -> Graph {
        let words = n.div_ceil(64);
        Graph {
            n,
            words,
            adj: vec![0; n * words],
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}` (self-loops are ignored).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        if u == v {
            return;
        }
        assert!(u < self.n && v < self.n);
        self.adj[u * self.words + v / 64] |= 1u64 << (v % 64);
        self.adj[v * self.words + u / 64] |= 1u64 << (u % 64);
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v && self.adj[u * self.words + v / 64] >> (v % 64) & 1 == 1
    }

    /// The adjacency row of `u`.
    #[inline]
    fn row(&self, u: usize) -> &[u64] {
        &self.adj[u * self.words..(u + 1) * self.words]
    }

    /// All edges `{u, v}` with `u < v`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for u in 0..self.n {
            for v in u + 1..self.n {
                if self.has_edge(u, v) {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges().len()
    }

    /// An Erdős–Rényi `G(n, p)` graph (deterministic per seed).
    pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
        let mut g = Graph::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        for u in 0..n {
            for v in u + 1..n {
                if rng.gen::<f64>() < p {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// A graph guaranteed to contain the clique `verts` (on top of `base`).
    pub fn with_clique(mut self, verts: &[usize]) -> Graph {
        for (i, &u) in verts.iter().enumerate() {
            for &v in &verts[i + 1..] {
                self.add_edge(u, v);
            }
        }
        self
    }

    /// Lists all triangles `(a, b, c)` with `a < b < c`.
    pub fn triangles(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for (a, b) in self.edges() {
            // Common neighbours above b.
            for w in b + 1..self.n {
                if self.has_edge(a, w) && self.has_edge(b, w) {
                    out.push((a, b, w));
                }
            }
        }
        out
    }

    /// Whether the graph contains a triangle.
    pub fn has_triangle(&self) -> bool {
        for (a, b) in self.edges() {
            let ra = self.row(a);
            let rb = self.row(b);
            if ra.iter().zip(rb).any(|(x, y)| x & y != 0) {
                return true;
            }
        }
        false
    }

    /// Whether the graph contains a 4-clique (direct combinatorial check).
    pub fn has_4clique(&self) -> bool {
        for (a, b) in self.edges() {
            // Common neighbourhood of a and b.
            let ra = self.row(a);
            let rb = self.row(b);
            let common: Vec<usize> = (0..self.n)
                .filter(|&w| {
                    w != a
                        && w != b
                        && ra[w / 64] >> (w % 64) & 1 == 1
                        && rb[w / 64] >> (w % 64) & 1 == 1
                })
                .collect();
            for (i, &w) in common.iter().enumerate() {
                for &x in &common[i + 1..] {
                    if self.has_edge(w, x) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Whether the graph contains a `k`-clique (backtracking; fine for the
    /// small graphs used in experiments).
    pub fn has_k_clique(&self, k: usize) -> bool {
        if k <= 1 {
            return self.n >= k;
        }
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        self.k_clique_rec(0, k, &mut chosen)
    }

    fn k_clique_rec(&self, from: usize, k: usize, chosen: &mut Vec<usize>) -> bool {
        if chosen.len() == k {
            return true;
        }
        for v in from..self.n {
            if chosen.iter().all(|&u| self.has_edge(u, v)) {
                chosen.push(v);
                if self.k_clique_rec(v + 1, k, chosen) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_and_adjacency() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_edge(1, 1); // ignored self-loop
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 1));
        assert_eq!(g.edges(), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn triangles_of_k4() {
        let g = Graph::new(4).with_clique(&[0, 1, 2, 3]);
        assert_eq!(g.triangles().len(), 4);
        assert!(g.has_triangle());
        assert!(g.has_4clique());
        assert!(g.has_k_clique(4));
        assert!(!g.has_k_clique(5));
    }

    #[test]
    fn square_has_no_triangle() {
        let mut g = Graph::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            g.add_edge(u, v);
        }
        assert!(!g.has_triangle());
        assert!(!g.has_4clique());
        assert!(g.triangles().is_empty());
    }

    #[test]
    fn triangle_without_4clique() {
        let mut g = Graph::new(5);
        g = g.with_clique(&[0, 1, 2]);
        g.add_edge(3, 4);
        assert!(g.has_triangle());
        assert!(!g.has_4clique());
    }

    #[test]
    fn gnp_determinism_and_bounds() {
        let a = Graph::gnp(50, 0.2, 9);
        let b = Graph::gnp(50, 0.2, 9);
        assert_eq!(a.edges(), b.edges());
        let full = Graph::gnp(20, 1.0, 0);
        assert_eq!(full.n_edges(), 20 * 19 / 2);
        let empty = Graph::gnp(20, 0.0, 0);
        assert_eq!(empty.n_edges(), 0);
    }

    #[test]
    fn cross_word_boundaries() {
        // Vertices beyond 64 exercise multi-word bitsets.
        let g = Graph::new(130).with_clique(&[1, 70, 129]);
        assert!(g.has_edge(1, 129));
        assert!(g.has_triangle());
        assert_eq!(g.triangles(), vec![(1, 70, 129)]);
    }
}
