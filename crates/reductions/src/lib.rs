//! Executable lower-bound reductions from the paper, run *forward*: encode
//! the hard combinatorial problem into an instance, enumerate the union,
//! decode the answer — validating each reduction against a direct
//! combinatorial algorithm and powering experiments E4–E6.
//!
//! * [`matmul`] — Boolean matrix multiplication via the Π query
//!   (Theorem 3(2)) and via Example 20 (Lemma 25);
//! * [`triangles`] — triangle detection via Example 18 (Theorem 17);
//! * [`cliques`] — 4-clique detection via Examples 22 (Lemma 26), 31 and
//!   39;
//! * [`tagging`] — the Lemma 14 disjoint-domain exact reduction;
//! * [`graph`] / [`matrix`] — the combinatorial substrates.

#![forbid(unsafe_code)]

pub mod cliques;
pub mod graph;
pub mod matmul;
pub mod matrix;
pub mod tagging;
pub mod triangles;

pub use cliques::{
    encode_example22, encode_example31, encode_example39, example22_ucq, example31_k4_ucq,
    example39_ucq, has_4clique_via_example22, has_4clique_via_example31, has_4clique_via_example39,
};
pub use graph::Graph;
pub use matmul::{
    bmm_via_cq, bmm_via_example20, encode_example20, encode_matrices, example20_rewritten,
    matmul_query,
};
pub use matrix::BoolMat;
pub use tagging::{decode_answer, encode_instance};
pub use triangles::{
    encode_example18, example18_answers, example18_ucq, has_triangle_via_example18,
};
