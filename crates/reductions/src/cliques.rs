//! 4-clique detection through UCQ enumeration: the three routes the paper
//! takes in Example 22 (Lemma 26), Example 31 (k = 4), and Example 39.
//!
//! Each reduction computes a triangle- or edge-based instance of size
//! `O(n³)` (resp. `O(n²)`), enumerates the union, and inspects the `O(n³)`
//! answers for the pattern that closes a 4-clique — beating the naive
//! `O(n⁴)` scan whenever enumeration is efficient.

use crate::graph::Graph;
use ucq_core::evaluate_ucq_naive;
use ucq_query::{parse_ucq, Ucq};
use ucq_storage::{Instance, Relation, Value};

/// The Example 22 union `Q1(x,y,t), Q2(x,y,w) ← R1(x,w,t), R2(y,w,t)`.
pub fn example22_ucq() -> Ucq {
    parse_ucq(
        "Q1(x, y, t) <- R1(x, w, t), R2(y, w, t)\n\
         Q2(x, y, w) <- R1(x, w, t), R2(y, w, t)",
    )
    .expect("well-formed")
}

/// All orientations of all triangles of `g`, as an arity-3 relation.
fn triangle_relation(g: &Graph) -> Relation {
    let tris = g.triangles();
    let mut rel = Relation::with_capacity(3, tris.len() * 6);
    for (a, b, c) in tris {
        let (a, b, c) = (a as i64, b as i64, c as i64);
        for (p, q, r) in [
            (a, b, c),
            (a, c, b),
            (b, a, c),
            (b, c, a),
            (c, a, b),
            (c, b, a),
        ] {
            rel.push_row(&[Value::Int(p), Value::Int(q), Value::Int(r)]);
        }
    }
    rel
}

/// The Example 22 instance: `R1 = R2 = T` (all triangles).
pub fn encode_example22(g: &Graph) -> Instance {
    let t = triangle_relation(g);
    let mut inst = Instance::new();
    inst.insert("R1", t.clone());
    inst.insert("R2", t);
    inst
}

/// Decides 4-clique existence through the Example 22 union: every answer
/// `(a, b, _)` asserts two triangles sharing an edge; `{a,b}` being an edge
/// closes the clique (Figure 3).
pub fn has_4clique_via_example22(g: &Graph) -> bool {
    let answers = evaluate_ucq_naive(&example22_ucq(), &encode_example22(g)).expect("evaluates");
    answers.iter().any(|t| {
        let (Value::Int(a), Value::Int(b)) = (t[0], t[1]) else {
            return false;
        };
        a != b && g.has_edge(a as usize, b as usize)
    })
}

/// The Example 31 union for k = 4 (star body, all 3-of-4 heads).
pub fn example31_k4_ucq() -> Ucq {
    parse_ucq(
        "Q1(x1, x2, x3) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
         Q2(x1, x2, z) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
         Q3(x1, x3, z) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
         Q4(x2, x3, z) <- R1(x1, z), R2(x2, z), R3(x3, z)",
    )
    .expect("well-formed")
}

/// Variable tags for the Example 31 encoding.
const TAG_X: [u32; 3] = [1, 2, 3];
const TAG_Z: u32 = 0;

/// The Example 31 instance: each `R_i` holds every edge, oriented both
/// ways, with endpoints tagged `(·, x_i)` and `(·, z)`.
pub fn encode_example31(g: &Graph) -> Instance {
    let mut inst = Instance::new();
    for (i, tag_x) in TAG_X.iter().enumerate() {
        let mut rel = Relation::new(2);
        for (u, v) in g.edges() {
            let (u, v) = (u as i64, v as i64);
            rel.push_row(&[Value::tagged(*tag_x, u), Value::tagged(TAG_Z, v)]);
            rel.push_row(&[Value::tagged(*tag_x, v), Value::tagged(TAG_Z, u)]);
        }
        inst.insert(format!("R{}", i + 1), rel);
    }
    inst
}

/// Decides 4-clique existence through the Example 31 union: `Q1`'s answers
/// (recognized by their tags) are triples with a common neighbour; checking
/// the three closing edges takes constant time per answer.
pub fn has_4clique_via_example31(g: &Graph) -> bool {
    let answers = evaluate_ucq_naive(&example31_k4_ucq(), &encode_example31(g)).expect("evaluates");
    answers.iter().any(|t| {
        // Keep only Q1-shaped answers: tags (x1, x2, x3).
        let vals: Option<Vec<i64>> = (0..3)
            .map(|i| match t[i] {
                Value::Tagged { tag, val } if tag == TAG_X[i] => Some(val),
                _ => None,
            })
            .collect();
        let Some(vals) = vals else { return false };
        let (a, b, c) = (vals[0] as usize, vals[1] as usize, vals[2] as usize);
        a != b && a != c && b != c && g.has_edge(a, b) && g.has_edge(a, c) && g.has_edge(b, c)
    })
}

/// The Example 39 union (k = 4).
pub fn example39_ucq() -> Ucq {
    parse_ucq(
        "Q1(x2, x3, x4) <- R1(x2, x3, x4), R2(x1, x3, x4), R3(x1, x2, x4)\n\
         Q2(x2, x3, x4) <- R1(x2, x3, x1), R2(x4, x3, v)",
    )
    .expect("well-formed")
}

/// Variable tags for the Example 39 encoding.
const TAG39: [u32; 4] = [10, 11, 12, 13]; // x1, x2, x3, x4

/// The Example 39 instance: for every (oriented) triangle `(a, b, c)`,
/// `R1 += ((a,x2),(b,x3),(c,x4))`, `R2 += ((a,x1),(b,x3),(c,x4))`,
/// `R3 += ((a,x1),(b,x2),(c,x4))`.
pub fn encode_example39(g: &Graph) -> Instance {
    let tris = triangle_relation(g);
    let build = |tags: [u32; 3]| {
        let mut rel = Relation::with_capacity(3, tris.len());
        for row in tris.iter_rows() {
            let tagged: Vec<Value> = row
                .iter()
                .zip(tags)
                .map(|(v, tag)| match v {
                    Value::Int(x) => Value::tagged(tag, *x),
                    _ => unreachable!("triangle relations hold ints"),
                })
                .collect();
            rel.push_row(&tagged);
        }
        rel
    };
    let mut inst = Instance::new();
    inst.insert("R1", build([TAG39[1], TAG39[2], TAG39[3]]));
    inst.insert("R2", build([TAG39[0], TAG39[2], TAG39[3]]));
    inst.insert("R3", build([TAG39[0], TAG39[1], TAG39[3]]));
    inst
}

/// Decides 4-clique existence through the Example 39 union: a `Q1`-shaped
/// answer (tags `x2, x3, x4`) certifies three triangles pairwise sharing
/// edges with a common apex — a 4-clique.
pub fn has_4clique_via_example39(g: &Graph) -> bool {
    let answers = evaluate_ucq_naive(&example39_ucq(), &encode_example39(g)).expect("evaluates");
    answers
        .iter()
        .any(|t| (0..3).all(|i| matches!(t[i], Value::Tagged { tag, .. } if tag == TAG39[i + 1])))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all_routes(g: &Graph, label: &str) {
        let direct = g.has_4clique();
        assert_eq!(has_4clique_via_example22(g), direct, "ex22 on {label}");
        assert_eq!(has_4clique_via_example31(g), direct, "ex31 on {label}");
        assert_eq!(has_4clique_via_example39(g), direct, "ex39 on {label}");
    }

    #[test]
    fn planted_clique_found() {
        let g = Graph::gnp(20, 0.1, 3).with_clique(&[2, 7, 11, 19]);
        assert!(g.has_4clique());
        check_all_routes(&g, "planted");
    }

    #[test]
    fn dense_triangles_without_4clique() {
        // K4 minus an edge, plus noise: many triangles, no 4-clique.
        let mut g = Graph::new(8);
        g = g.with_clique(&[0, 1, 2]);
        g = g.with_clique(&[1, 2, 3]);
        g.add_edge(4, 5);
        assert!(g.has_triangle());
        assert!(!g.has_4clique());
        check_all_routes(&g, "K4 minus edge");
    }

    #[test]
    fn random_graphs_agree_with_direct() {
        for seed in 0..5 {
            let g = Graph::gnp(18, 0.25 + 0.05 * seed as f64, seed);
            check_all_routes(&g, &format!("gnp seed {seed}"));
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        check_all_routes(&Graph::new(5), "empty");
        let g = Graph::new(4).with_clique(&[0, 1, 2, 3]);
        check_all_routes(&g, "K4 exactly");
    }

    #[test]
    fn answer_bound_of_example22_is_cubic() {
        let g = Graph::gnp(16, 0.5, 1);
        let n = g.n();
        let answers = evaluate_ucq_naive(&example22_ucq(), &encode_example22(&g)).unwrap();
        assert!(
            answers.len() <= 2 * n * n * n,
            "paper bound: |Q(I)| = O(n³), got {} for n = {n}",
            answers.len()
        );
    }
}
