//! Triangle detection through the Example 18 union.
//!
//! Example 18's three-member union (two cyclic CQs and a hard acyclic one)
//! decides triangle existence: edges are encoded with variable-tagged
//! endpoints, `Q1` answers correspond to triangles `a < b < c`, `Q2`
//! answers to rotated triangles, and `Q3` returns nothing.

use crate::graph::Graph;
use ucq_core::evaluate_ucq_naive;
use ucq_query::{parse_ucq, Ucq};
use ucq_storage::{Instance, Relation, Tuple, Value};

/// Variable tags used in the encoding (`x`, `y`, `z` of the paper).
const TAG_X: u32 = 0;
const TAG_Y: u32 = 1;
const TAG_Z: u32 = 2;

/// The Example 18 union.
pub fn example18_ucq() -> Ucq {
    parse_ucq(
        "Q1(x, y) <- R1(x, y), R2(y, u), R3(x, u)\n\
         Q2(x, y) <- R1(y, v), R2(v, x), R3(y, x)\n\
         Q3(x, y) <- R1(x, z), R2(y, z)",
    )
    .expect("well-formed")
}

/// Encodes a graph per Example 18: for every edge `(u, v)` with `u < v`,
/// `R1 += ((u,x),(v,y))`, `R2 += ((u,y),(v,z))`, `R3 += ((u,x),(v,z))`.
pub fn encode_example18(g: &Graph) -> Instance {
    let mut r1 = Relation::new(2);
    let mut r2 = Relation::new(2);
    let mut r3 = Relation::new(2);
    for (u, v) in g.edges() {
        let (u, v) = (u as i64, v as i64);
        r1.push_row(&[Value::tagged(TAG_X, u), Value::tagged(TAG_Y, v)]);
        r2.push_row(&[Value::tagged(TAG_Y, u), Value::tagged(TAG_Z, v)]);
        r3.push_row(&[Value::tagged(TAG_X, u), Value::tagged(TAG_Z, v)]);
    }
    let mut inst = Instance::new();
    inst.insert("R1", r1);
    inst.insert("R2", r2);
    inst.insert("R3", r3);
    inst
}

/// All answers of the Example 18 union over the encoded graph.
pub fn example18_answers(g: &Graph) -> Vec<Tuple> {
    evaluate_ucq_naive(&example18_ucq(), &encode_example18(g)).expect("evaluates")
}

/// Decides triangle existence through the union (`Decide⟨Q⟩`).
pub fn has_triangle_via_example18(g: &Graph) -> bool {
    !example18_answers(g).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_detection_on_random_graphs() {
        for seed in 0..6 {
            let g = Graph::gnp(24, 0.12 + 0.03 * seed as f64, seed);
            assert_eq!(
                has_triangle_via_example18(&g),
                g.has_triangle(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn triangle_free_graph_yields_no_answers() {
        // A 6-cycle has no triangles.
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.add_edge(i, (i + 1) % 6);
        }
        assert!(example18_answers(&g).is_empty());
    }

    #[test]
    fn q1_answers_name_the_two_smallest_vertices() {
        // Single triangle 2-5-7: Q1 must return ((2,x),(5,y)).
        let g = Graph::new(8).with_clique(&[2, 5, 7]);
        let answers = example18_answers(&g);
        assert!(!answers.is_empty());
        let expected = Tuple(vec![Value::tagged(TAG_X, 2), Value::tagged(TAG_Y, 5)].into());
        assert!(
            answers.contains(&expected),
            "expected {expected} among {answers:?}"
        );
    }

    #[test]
    fn q3_contributes_nothing() {
        // Q3(x,y) <- R1(x,z), R2(y,z) needs a z-value in R1's second column
        // (tagged y) equal to one in R2's second column (tagged z):
        // impossible by tagging, so all answers come from Q1/Q2 and hence
        // from genuine triangles.
        let g = Graph::gnp(16, 0.5, 3);
        for t in example18_answers(&g) {
            let Value::Tagged { val: a, .. } = t[0] else {
                panic!()
            };
            let Value::Tagged { val: b, .. } = t[1] else {
                panic!()
            };
            // Both endpoints of every answer lie on a common triangle edge.
            assert!(g.has_edge(a as usize, b as usize));
        }
    }
}
