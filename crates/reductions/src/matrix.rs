//! Boolean matrices — the objects of the mat-mul hypothesis (§2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense Boolean `n × n` matrix with bitset rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoolMat {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl BoolMat {
    /// The zero matrix.
    pub fn zero(n: usize) -> BoolMat {
        let words = n.div_ceil(64);
        BoolMat {
            n,
            words,
            rows: vec![0; n * words],
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sets entry `(i, j)` to 1.
    pub fn set(&mut self, i: usize, j: usize) {
        assert!(i < self.n && j < self.n);
        self.rows[i * self.words + j / 64] |= 1u64 << (j % 64);
    }

    /// Reads entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.rows[i * self.words + j / 64] >> (j % 64) & 1 == 1
    }

    /// A random matrix with the given density of ones.
    pub fn random(n: usize, density: f64, seed: u64) -> BoolMat {
        let mut m = BoolMat::zero(n);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            for j in 0..n {
                if rng.gen::<f64>() < density {
                    m.set(i, j);
                }
            }
        }
        m
    }

    /// The 1-entries as `(row, col)` pairs.
    pub fn ones(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in 0..self.n {
                if self.get(i, j) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Number of 1-entries.
    pub fn count_ones(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Boolean matrix product via bitset row ORs — the "direct" baseline
    /// the query-based computation is validated against.
    pub fn multiply(&self, other: &BoolMat) -> BoolMat {
        assert_eq!(self.n, other.n);
        let mut out = BoolMat::zero(self.n);
        for i in 0..self.n {
            let dst_start = i * self.words;
            for k in 0..self.n {
                if self.get(i, k) {
                    let src = &other.rows[k * self.words..(k + 1) * self.words];
                    for (w, &s) in src.iter().enumerate() {
                        out.rows[dst_start + w] |= s;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = BoolMat::zero(70);
        m.set(0, 69);
        m.set(69, 0);
        assert!(m.get(0, 69) && m.get(69, 0));
        assert!(!m.get(0, 0));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn identity_multiplication() {
        let mut id = BoolMat::zero(5);
        for i in 0..5 {
            id.set(i, i);
        }
        let r = BoolMat::random(5, 0.5, 3);
        assert_eq!(id.multiply(&r), r);
        assert_eq!(r.multiply(&id), r);
    }

    #[test]
    fn small_product_by_hand() {
        // A = [[1,1],[0,0]], B = [[0,1],[1,0]] => AB = [[1,1],[0,0]].
        let mut a = BoolMat::zero(2);
        a.set(0, 0);
        a.set(0, 1);
        let mut b = BoolMat::zero(2);
        b.set(0, 1);
        b.set(1, 0);
        let c = a.multiply(&b);
        assert!(c.get(0, 0) && c.get(0, 1));
        assert!(!c.get(1, 0) && !c.get(1, 1));
    }

    #[test]
    fn random_is_deterministic() {
        assert_eq!(BoolMat::random(30, 0.3, 5), BoolMat::random(30, 0.3, 5));
    }

    #[test]
    fn ones_listing() {
        let mut m = BoolMat::zero(3);
        m.set(2, 1);
        m.set(0, 0);
        assert_eq!(m.ones(), vec![(0, 0), (2, 1)]);
    }
}
