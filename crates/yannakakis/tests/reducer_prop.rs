//! Property tests for the full reducer: idempotency, answer preservation,
//! and the guarantee CDY's constant delay rests on — after reduction every
//! remaining tuple participates in at least one full join result.

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use ucq_hypergraph::join_tree;
use ucq_query::Cq;
use ucq_storage::{CtxView, Instance, Relation, Tuple, Value};
use ucq_yannakakis::{evaluate_cq_naive, full_reduce, NodeRel};

const VARS: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

fn arb_acyclic_cq() -> impl Strategy<Value = Cq> {
    let atom = proptest::collection::vec(0..6u32, 1..=3);
    proptest::collection::vec(atom, 1..=4).prop_filter_map("acyclic", |atoms| {
        let used: HashSet<u32> = atoms.iter().flatten().copied().collect();
        let head: Vec<&str> = used.iter().map(|&v| VARS[v as usize]).collect();
        let specs: Vec<(String, Vec<&str>)> = atoms
            .iter()
            .enumerate()
            .map(|(i, args)| {
                (
                    format!("R{i}"),
                    args.iter().map(|&v| VARS[v as usize]).collect(),
                )
            })
            .collect();
        let refs: Vec<(&str, &[&str])> = specs
            .iter()
            .map(|(n, a)| (n.as_str(), a.as_slice()))
            .collect();
        let cq = Cq::build("Q", &head, &refs).ok()?;
        cq.is_acyclic().then_some(cq)
    })
}

fn arb_instance(cq: &Cq) -> impl Strategy<Value = Instance> {
    let specs: Vec<(String, usize)> = cq
        .atoms()
        .iter()
        .map(|a| (a.rel.clone(), a.args.len()))
        .collect();
    let mut strategies = Vec::new();
    for (name, arity) in specs {
        let rows = proptest::collection::vec(proptest::collection::vec(0i64..4, arity), 0..12);
        strategies.push(rows.prop_map(move |rows| {
            let mut rel = Relation::new(arity);
            for row in &rows {
                let vals: Vec<Value> = row.iter().map(|&x| Value::Int(x)).collect();
                rel.push_row(&vals);
            }
            (name.clone(), rel)
        }));
    }
    strategies.prop_map(|pairs| pairs.into_iter().collect())
}

fn node_rels(cq: &Cq, inst: &Instance, ctx: &CtxView) -> (ucq_hypergraph::JoinTree, Vec<NodeRel>) {
    let tree = join_tree(&cq.hypergraph()).expect("acyclic");
    let rels = tree
        .nodes()
        .iter()
        .map(|n| {
            let atom = &cq.atoms()[n.atom.expect("plain tree")];
            let stored = inst
                .get_shared(&atom.rel)
                .unwrap_or_else(|| Arc::new(Relation::new(atom.args.len())));
            NodeRel::from_atom(atom, &stored, ctx).expect("schema ok")
        })
        .collect();
    (tree, rels)
}

/// Decodes one row of a node relation back to values.
fn decoded_row(nr: &NodeRel, ctx: &CtxView, row: usize) -> Vec<Value> {
    (0..nr.rel.arity())
        .map(|c| ctx.decode(nr.rel.at(row, c)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Reducing twice changes nothing: the full reducer reaches a fixpoint
    /// in one (two-pass) application.
    #[test]
    fn full_reducer_is_idempotent((cq, inst) in arb_acyclic_cq()
        .prop_flat_map(|cq| { let i = arb_instance(&cq); (Just(cq), i) }))
    {
        let ctx = CtxView::new();
        let (tree, mut rels) = node_rels(&cq, &inst, &ctx);
        full_reduce(&tree, &mut rels);
        let snapshot: Vec<usize> = rels.iter().map(|r| r.rel.len()).collect();
        full_reduce(&tree, &mut rels);
        let again: Vec<usize> = rels.iter().map(|r| r.rel.len()).collect();
        prop_assert_eq!(snapshot, again);
    }

    /// Reduction never changes the query's answers.
    #[test]
    fn reduction_preserves_answers((cq, inst) in arb_acyclic_cq()
        .prop_flat_map(|cq| { let i = arb_instance(&cq); (Just(cq), i) }))
    {
        let before: HashSet<Tuple> =
            evaluate_cq_naive(&cq, &inst).unwrap().into_iter().collect();
        // Build a reduced instance and re-evaluate naively over it.
        let ctx = CtxView::new();
        let (tree, mut rels) = node_rels(&cq, &inst, &ctx);
        full_reduce(&tree, &mut rels);
        let mut reduced = Instance::new();
        for (node, nr) in tree.nodes().iter().zip(&rels) {
            let atom = &cq.atoms()[node.atom.expect("plain tree")];
            // Rebuild the relation in the atom's argument order.
            let mut rel = Relation::with_capacity(atom.args.len(), nr.rel.len());
            let mut buf: Vec<Value> = Vec::with_capacity(atom.args.len());
            for r in 0..nr.rel.len() {
                let row = decoded_row(nr, &ctx, r);
                buf.clear();
                for &v in &atom.args {
                    let col = nr.col_of(v).expect("atom var");
                    buf.push(row[col]);
                }
                rel.push_row(&buf);
            }
            reduced.insert(atom.rel.clone(), rel);
        }
        let after: HashSet<Tuple> =
            evaluate_cq_naive(&cq, &reduced).unwrap().into_iter().collect();
        prop_assert_eq!(before, after);
    }

    /// The backtrack-free guarantee: after reduction, every remaining tuple
    /// of every node extends to a full join result (checked by evaluating
    /// the query with that node pinned to the single tuple).
    #[test]
    fn no_dangling_tuples_after_reduction((cq, inst) in arb_acyclic_cq()
        .prop_flat_map(|cq| { let i = arb_instance(&cq); (Just(cq), i) }))
    {
        let ctx = CtxView::new();
        let (tree, mut rels) = node_rels(&cq, &inst, &ctx);
        let nonempty = full_reduce(&tree, &mut rels);
        // Full-head query so the join result determines all variables.
        let full = cq.with_head(
            cq.hypergraph().covered_vertices().iter().collect()
        ).unwrap();
        let results = evaluate_cq_naive(&full, &inst).unwrap();
        prop_assert_eq!(nonempty, !results.is_empty());
        for (node, nr) in tree.nodes().iter().zip(&rels) {
            let atom = &cq.atoms()[node.atom.expect("plain tree")];
            for r in 0..nr.rel.len().min(16) {
                let row = decoded_row(nr, &ctx, r);
                // Does some full result agree with this tuple?
                let participates = results.iter().any(|res| {
                    nr.vars.iter().enumerate().all(|(col, &v)| {
                        // position of v in the full head ordering
                        let pos = full
                            .head()
                            .iter()
                            .position(|&h| h == v)
                            .expect("covered");
                        res[pos] == row[col]
                    })
                });
                prop_assert!(
                    participates,
                    "dangling tuple survived reduction in {}", atom.rel
                );
            }
        }
    }
}
