//! Property tests: the CDY engine agrees with the naive evaluator on random
//! queries and instances, produces no duplicates, and its membership test
//! matches the answer set.

use proptest::prelude::*;
use std::collections::HashSet;
use ucq_query::Cq;
use ucq_storage::{Instance, Relation, Tuple, Value};
use ucq_yannakakis::{evaluate_cq_naive, CdyEngine};

/// A random CQ description: atoms over variables `v0..v5` plus a head.
#[derive(Debug, Clone)]
struct RandomQuery {
    cq: Cq,
}

fn arb_query() -> impl Strategy<Value = RandomQuery> {
    // 1..4 atoms, each over 1..3 variables out of six.
    let atom = proptest::collection::vec(0..6u32, 1..=3);
    (
        proptest::collection::vec(atom, 1..=4),
        proptest::collection::vec(proptest::bool::ANY, 6),
    )
        .prop_filter_map("valid query", |(atoms, head_bits)| {
            let var_names = ["a", "b", "c", "d", "e", "f"];
            let used: HashSet<u32> = atoms.iter().flatten().copied().collect();
            let head: Vec<&str> = (0..6u32)
                .filter(|v| head_bits[*v as usize] && used.contains(v))
                .map(|v| var_names[v as usize])
                .collect();
            let atom_specs: Vec<(String, Vec<&str>)> = atoms
                .iter()
                .enumerate()
                .map(|(i, args)| {
                    (
                        format!("R{i}"),
                        args.iter().map(|&v| var_names[v as usize]).collect(),
                    )
                })
                .collect();
            let atom_refs: Vec<(&str, &[&str])> = atom_specs
                .iter()
                .map(|(n, a)| (n.as_str(), a.as_slice()))
                .collect();
            Cq::build("Q", &head, &atom_refs)
                .ok()
                .map(|cq| RandomQuery { cq })
        })
}

/// A random instance for a query: every relation gets up to 16 tuples over a
/// small domain so joins actually hit.
fn arb_instance(cq: &Cq) -> impl Strategy<Value = Instance> {
    let specs: Vec<(String, usize)> = cq
        .atoms()
        .iter()
        .map(|a| (a.rel.clone(), a.args.len()))
        .collect();
    let mut strategies = Vec::new();
    for (name, arity) in specs {
        let rows = proptest::collection::vec(proptest::collection::vec(0i64..4, arity), 0..16);
        strategies.push(rows.prop_map(move |rows| {
            let mut rel = Relation::new(arity);
            for row in &rows {
                let vals: Vec<Value> = row.iter().map(|&x| Value::Int(x)).collect();
                rel.push_row(&vals);
            }
            (name.clone(), rel)
        }));
    }
    strategies.prop_map(|pairs| pairs.into_iter().collect())
}

fn query_and_instance() -> impl Strategy<Value = (RandomQuery, Instance)> {
    arb_query().prop_flat_map(|rq| {
        let inst = arb_instance(&rq.cq);
        (Just(rq), inst)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cdy_matches_naive_on_free_connex((rq, inst) in query_and_instance()) {
        prop_assume!(rq.cq.is_free_connex());
        let naive: HashSet<Tuple> =
            evaluate_cq_naive(&rq.cq, &inst).unwrap().into_iter().collect();
        let eng = CdyEngine::for_query(&rq.cq, &inst).unwrap();
        let answers = eng.iter().collect_all();
        let set: HashSet<Tuple> = answers.iter().cloned().collect();
        prop_assert_eq!(answers.len(), set.len(), "CDY must not emit duplicates");
        prop_assert_eq!(&set, &naive, "CDY answer set must equal naive for {}", rq.cq);
        prop_assert_eq!(eng.decide(), !naive.is_empty());
    }

    #[test]
    fn membership_matches_answer_set((rq, inst) in query_and_instance()) {
        prop_assume!(rq.cq.is_free_connex());
        let naive: HashSet<Tuple> =
            evaluate_cq_naive(&rq.cq, &inst).unwrap().into_iter().collect();
        let eng = CdyEngine::for_query(&rq.cq, &inst).unwrap();
        for t in &naive {
            prop_assert!(eng.contains(t), "answer {} must test positive", t);
        }
        // Some near-miss tuples.
        for t in naive.iter().take(4) {
            let mut vals = t.values().to_vec();
            if !vals.is_empty() {
                vals[0] = Value::Int(99);
                let probe = Tuple(vals.into());
                prop_assert_eq!(eng.contains(&probe), naive.contains(&probe));
            }
        }
    }

    #[test]
    fn projection_mode_matches_reheaded_naive((rq, inst) in query_and_instance()) {
        // Choose S = all variables (always S-connex for acyclic queries) and
        // compare against the naive evaluation with a full head.
        prop_assume!(rq.cq.is_acyclic());
        let s = rq.cq.hypergraph().covered_vertices();
        let full_head: Vec<u32> = s.iter().collect();
        let reheaded = rq.cq.with_head(full_head).unwrap();
        let naive: HashSet<Tuple> =
            evaluate_cq_naive(&reheaded, &inst).unwrap().into_iter().collect();
        let eng = CdyEngine::for_projection(&rq.cq, s, &inst).unwrap();
        let set: HashSet<Tuple> = eng.iter().collect_all().into_iter().collect();
        prop_assert_eq!(set, naive);
    }

    #[test]
    fn full_binding_extensions_are_homomorphisms((rq, inst) in query_and_instance()) {
        prop_assume!(rq.cq.is_free_connex());
        let eng = CdyEngine::for_query(&rq.cq, &inst).unwrap();
        let mut it = eng.iter();
        let mut count = 0;
        while let Some((_t, binding)) = it.next_with_full_binding() {
            count += 1;
            if count > 64 { break; }
            // The binding must satisfy every atom.
            for atom in rq.cq.atoms() {
                let row: Vec<Value> =
                    atom.args.iter().map(|&v| binding[v as usize]).collect();
                let stored = inst.get(&atom.rel).cloned().unwrap_or_else(|| Relation::new(atom.args.len()));
                prop_assert!(
                    stored.contains_row(&row),
                    "witness row {:?} missing from {}", row, atom.rel
                );
            }
        }
    }
}
