//! The Yannakakis / Constant-Delay-Yannakakis evaluation engine.
//!
//! Implements the positive side of the paper's Theorem 3: after linear
//! preprocessing (normalization + the Yannakakis full reducer over an
//! ext-S-connex tree), the answers of an `S`-connex acyclic CQ are
//! enumerated with constant delay and tested for membership in constant
//! time. Also provides the naive hash-join baseline every experiment
//! compares against.

#![forbid(unsafe_code)]

pub mod cdy;
pub mod naive;
pub mod noderel;
pub mod reducer;

pub use cdy::{CdyEngine, CdyIter, ContainsScratch, EvalError, OwnedCdyIter};
pub use naive::{
    evaluate_cq_naive, evaluate_cq_naive_ids_in, evaluate_cq_naive_in, evaluate_cq_naive_set,
    IdTable,
};
pub use noderel::{atom_signature, NodeRel};
pub use reducer::full_reduce;
