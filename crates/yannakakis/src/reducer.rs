//! The Yannakakis full reducer.
//!
//! Two sweeps of semijoins over a join tree — leaves-to-root, then
//! root-to-leaves — remove every *dangling* tuple: afterwards each remaining
//! tuple of each node participates in at least one result of the full join
//! (Yannakakis 1981 [20]). This is the linear preprocessing phase of the CDY
//! algorithm.

use crate::noderel::NodeRel;
use ucq_hypergraph::JoinTree;
use ucq_storage::ProbeScratch;

/// Runs the full reducer in place. `rels[i]` carries the data of tree node
/// `i`. Returns `false` iff some node ended up empty (the query has no
/// answers).
///
/// Every semijoin gathers the probing side's separator keys per block and
/// resolves them in bulk against a CSR index of the other side (see
/// [`NodeRel::semijoin_in_place_with`]); one [`ProbeScratch`] carries the
/// key-run and keep-mask buffers across **all** passes, so the sweeps
/// allocate a constant number of buffers regardless of tree size.
pub fn full_reduce(tree: &JoinTree, rels: &mut [NodeRel]) -> bool {
    assert_eq!(tree.len(), rels.len());
    let order = tree.bfs_order();
    let mut scratch = ProbeScratch::default();

    // Bottom-up: parent ⋉ child.
    for &n in order.iter().rev() {
        if let Some(p) = tree.parent(n) {
            let (child, parent) = index_two(rels, n, p);
            let sep = parent.var_set().inter(child.var_set());
            parent.semijoin_in_place_with(child, sep, &mut scratch);
        }
    }
    // Top-down: child ⋉ parent.
    for &n in order.iter() {
        if let Some(p) = tree.parent(n) {
            let (child, parent) = index_two(rels, n, p);
            let sep = parent.var_set().inter(child.var_set());
            child.semijoin_in_place_with(parent, sep, &mut scratch);
        }
    }
    rels.iter().all(|r| !r.rel.is_empty())
}

/// Mutable access to two distinct slice positions.
fn index_two<T>(slice: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = slice.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = slice.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ucq_hypergraph::{join_tree, VSet};
    use ucq_query::parse_cq;
    use ucq_storage::{CtxView, Relation, Value};

    fn iv(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    fn decoded_row(nr: &NodeRel, ctx: &CtxView, row: usize) -> Vec<Value> {
        (0..nr.rel.arity())
            .map(|c| ctx.decode(nr.rel.at(row, c)))
            .collect()
    }

    /// Builds node relations for a parsed path query over given data.
    fn setup(
        text: &str,
        data: &[Relation],
        ctx: &CtxView,
    ) -> (ucq_hypergraph::JoinTree, Vec<NodeRel>) {
        let q = parse_cq(text).unwrap();
        let tree = join_tree(&q.hypergraph()).unwrap();
        let shared: Vec<Arc<Relation>> = data.iter().cloned().map(Arc::new).collect();
        let rels: Vec<NodeRel> = tree
            .nodes()
            .iter()
            .map(|n| {
                let atom_idx = n.atom.expect("plain join tree");
                NodeRel::from_atom(&q.atoms()[atom_idx], &shared[atom_idx], ctx).unwrap()
            })
            .collect();
        (tree, rels)
    }

    #[test]
    fn dangling_tuples_removed() {
        // R(x,z) ⋈ S(z,y): R's (5,99) has no partner and must go.
        let ctx = CtxView::new();
        let (tree, mut rels) = setup(
            "Q(x, y) <- R(x, z), S(z, y)",
            &[
                Relation::from_pairs([(1, 2), (5, 99)]),
                Relation::from_pairs([(2, 3)]),
            ],
            &ctx,
        );
        assert!(full_reduce(&tree, &mut rels));
        let r_node = tree.nodes().iter().position(|n| n.atom == Some(0)).unwrap();
        assert_eq!(rels[r_node].rel.len(), 1);
        assert_eq!(decoded_row(&rels[r_node], &ctx, 0), iv(&[1, 2]));
    }

    #[test]
    fn unsatisfiable_join_reports_false() {
        let ctx = CtxView::new();
        let (tree, mut rels) = setup(
            "Q(x, y) <- R(x, z), S(z, y)",
            &[
                Relation::from_pairs([(1, 2)]),
                Relation::from_pairs([(7, 3)]),
            ],
            &ctx,
        );
        assert!(!full_reduce(&tree, &mut rels));
    }

    #[test]
    fn three_hop_path_consistency() {
        // R(x,a) ⋈ S(a,b) ⋈ T(b,y); only the 1-2-3-4 chain survives.
        let ctx = CtxView::new();
        let (tree, mut rels) = setup(
            "Q(x, y) <- R(x, a), S(a, b), T(b, y)",
            &[
                Relation::from_pairs([(1, 2), (1, 9)]),
                Relation::from_pairs([(2, 3), (8, 8)]),
                Relation::from_pairs([(3, 4)]),
            ],
            &ctx,
        );
        assert!(full_reduce(&tree, &mut rels));
        for nr in &rels {
            assert_eq!(nr.rel.len(), 1, "every node reduced to the chain");
        }
    }

    #[test]
    fn global_consistency_after_both_passes() {
        // Star join: middle node must agree with both leaves, and leaves
        // must be trimmed against the middle *after* it was trimmed.
        let ctx = CtxView::new();
        let (tree, mut rels) = setup(
            "Q(x, y, z) <- M(x, y, z), A(x), B(y)",
            &[
                Relation::from_rows(
                    3,
                    [iv(&[1, 2, 3]), iv(&[1, 5, 6]), iv(&[9, 2, 7])]
                        .iter()
                        .map(|r| r.as_slice()),
                ),
                Relation::from_rows(1, [iv(&[1])].iter().map(|r| r.as_slice())),
                Relation::from_rows(1, [iv(&[2]), iv(&[5])].iter().map(|r| r.as_slice())),
            ],
            &ctx,
        );
        assert!(full_reduce(&tree, &mut rels));
        // Surviving M rows: (1,2,3) and (1,5,6).
        let m = tree.nodes().iter().position(|n| n.atom == Some(0)).unwrap();
        assert_eq!(rels[m].rel.len(), 2);
        // B keeps both 2 and 5; A keeps only 1.
        let a = tree.nodes().iter().position(|n| n.atom == Some(1)).unwrap();
        assert_eq!(rels[a].rel.len(), 1);
    }

    #[test]
    fn separator_is_intersection() {
        let ctx = CtxView::new();
        let (tree, _) = setup(
            "Q(x, y) <- R(x, z), S(z, y)",
            &[Relation::new(2), Relation::new(2)],
            &ctx,
        );
        for n in 0..tree.len() {
            if let Some(p) = tree.parent(n) {
                let sep = tree.separator(n);
                assert_eq!(sep, tree.nodes()[n].vars.inter(tree.nodes()[p].vars));
                assert_eq!(sep, VSet::singleton(2)); // z
            }
        }
    }
}
