//! Node relations: interned relations whose columns are aligned with a
//! sorted list of query variables.
//!
//! Join-tree nodes carry their data in this normalized form: one column per
//! *distinct* variable, columns sorted by variable id, values interned to
//! [`ValueId`](ucq_storage::ValueId)s. Atoms with repeated variables
//! (`R(x,x)`) are normalized by
//! filtering rows whose repeated positions disagree and then dropping the
//! duplicate columns.
//!
//! Normalization is cached in the context view: two atoms reading the
//! same stored relation with the same *argument shape* (the
//! [`atom_signature`]) — even in different member CQs of a union — share
//! one normalized [`IdRel`]. [`NodeRel`] then clones that cached relation
//! only when a pipeline needs to mutate it (the full reducer's semijoins).

use std::sync::Arc;
use ucq_hypergraph::VSet;
use ucq_query::{Atom, VarId};
use ucq_storage::{par, CtxView, HashIndex, IdRel, IdSet, ProbeScratch, Relation};

/// The normalization signature of an atom's argument list: for each
/// position, the rank of its variable among the atom's sorted distinct
/// variables. Two atoms with equal signatures over the same relation
/// normalize to the *same* node relation — `R(x, z)` and `R(a, b)` share,
/// `R(x, x)` and `R(z, x)` do not.
pub fn atom_signature(args: &[VarId]) -> Vec<u32> {
    let mut sorted: Vec<VarId> = args.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    args.iter()
        .map(|v| sorted.binary_search(v).expect("present") as u32)
        .collect()
}

/// A relation with named (variable-id) columns in sorted order, interned.
#[derive(Clone, Debug)]
pub struct NodeRel {
    /// Distinct variables, sorted ascending; `rel` has one column per entry.
    pub vars: Vec<VarId>,
    /// The interned columnar data, column `i` holding ids of `vars[i]`.
    pub rel: IdRel,
}

impl NodeRel {
    /// The sorted distinct variables of an atom.
    fn distinct_vars(atom: &Atom) -> Vec<VarId> {
        let mut vars: Vec<VarId> = atom.args.clone();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Checks the stored arity against the atom.
    fn check_arity(atom: &Atom, stored_arity: usize) -> Result<(), String> {
        if stored_arity != atom.args.len() {
            return Err(format!(
                "relation {} has arity {}, atom expects {}",
                atom.rel,
                stored_arity,
                atom.args.len()
            ));
        }
        Ok(())
    }

    /// The cached normalized relation for `atom` over `stored` — shared
    /// (no copy) with every other atom of equal [`atom_signature`] reading
    /// the same relation through the same context.
    pub fn derived(
        atom: &Atom,
        stored: &Arc<Relation>,
        ctx: &CtxView,
    ) -> Result<(Vec<VarId>, Arc<IdRel>), String> {
        NodeRel::check_arity(atom, stored.arity())?;
        let sig = atom_signature(&atom.args);
        let rel = ctx.normalized_rel(stored, &sig);
        Ok((NodeRel::distinct_vars(atom), rel))
    }

    /// Normalizes an atom's stored relation into an owned (mutable) node
    /// relation. The normalization itself comes from the context cache;
    /// only the final copy (for in-place reduction) is per-call.
    pub fn from_atom(
        atom: &Atom,
        stored: &Arc<Relation>,
        ctx: &CtxView,
    ) -> Result<NodeRel, String> {
        let (vars, rel) = NodeRel::derived(atom, stored, ctx)?;
        Ok(NodeRel {
            vars,
            rel: (*rel).clone(),
        })
    }

    /// An empty node relation for an atom whose stored relation is missing
    /// (the paper's reductions "leave relations empty").
    pub fn empty(atom: &Atom) -> NodeRel {
        let vars = NodeRel::distinct_vars(atom);
        NodeRel {
            rel: IdRel::new(vars.len()),
            vars,
        }
    }

    /// The variable set.
    pub fn var_set(&self) -> VSet {
        self.vars.iter().copied().collect()
    }

    /// Column position of variable `v`, if present.
    pub fn col_of(&self, v: VarId) -> Option<usize> {
        self.vars.binary_search(&v).ok()
    }

    /// Column positions of each variable in `vs` (which must all be
    /// present), in `vs` iteration order (ascending).
    pub fn cols_of(&self, vs: VSet) -> Vec<usize> {
        vs.iter()
            .map(|v| self.col_of(v).expect("variable not in node"))
            .collect()
    }

    /// Projects onto a subset of this node's variables (deduplicating).
    pub fn project(&self, vs: VSet) -> NodeRel {
        let cols = self.cols_of(vs);
        NodeRel {
            vars: vs.iter().collect(),
            rel: self.rel.project_dedup(&cols),
        }
    }

    /// Removes rows whose projection onto `sep` has no match in `other`'s
    /// projection onto `sep` (the semijoin `self ⋉ other`, in place).
    pub fn semijoin_in_place(&mut self, other: &NodeRel, sep: VSet) {
        self.semijoin_in_place_with(other, sep, &mut ProbeScratch::default());
    }

    /// As [`NodeRel::semijoin_in_place`], reusing caller-provided probe
    /// buffers — the full reducer threads one scratch through all of its
    /// semijoin passes. A semijoin only needs key *existence* on the right
    /// side: when the right side builds on one core, an [`IdSet`] of its
    /// separator projection (packed `u128` keys for separators up to 4
    /// columns; one pass, no CSR counting/scatter) beats a throwaway
    /// index. Above the parallel row threshold the sharded CSR
    /// [`HashIndex`] build wins back multi-core speedup, so the right side
    /// is indexed and the left retained through batched probes instead.
    pub fn semijoin_in_place_with(
        &mut self,
        other: &NodeRel,
        sep: VSet,
        scratch: &mut ProbeScratch,
    ) {
        if sep.is_empty() {
            // Degenerate semijoin: keep everything iff `other` is non-empty.
            if other.rel.is_empty() {
                self.rel = IdRel::new(self.rel.arity());
            }
            return;
        }
        let right_cols = other.cols_of(sep);
        let left_cols = self.cols_of(sep);
        if par::workers_for(other.rel.len()) > 1 {
            let right = HashIndex::build(&other.rel, &right_cols);
            self.rel.retain_rows_by_index(&left_cols, &right, scratch);
        } else {
            let right = IdSet::build_projected(&other.rel, &right_cols);
            self.rel.retain_rows_by_set(&left_cols, &right, scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_query::parse_cq;
    use ucq_storage::Value;

    fn shared(rel: Relation) -> Arc<Relation> {
        Arc::new(rel)
    }

    fn decoded_row(nr: &NodeRel, ctx: &CtxView, row: usize) -> Vec<Value> {
        (0..nr.rel.arity())
            .map(|c| ctx.decode(nr.rel.at(row, c)))
            .collect()
    }

    #[test]
    fn signature_captures_shape_not_names() {
        let q = parse_cq("Q(x, y, z) <- R(x, z), R(y, z), R(x, x)").unwrap();
        let sigs: Vec<Vec<u32>> = q.atoms().iter().map(|a| atom_signature(&a.args)).collect();
        assert_eq!(sigs[0], sigs[1], "R(x,z) and R(y,z) share a shape");
        assert_ne!(sigs[0], sigs[2], "R(x,x) has a different shape");
    }

    #[test]
    fn normalization_sorts_columns() {
        // Atom R(y, x): x=0, y=1; sorted vars = [0, 1]; columns must be
        // swapped relative to storage.
        let q = parse_cq("Q(x, y) <- R(y, x)").unwrap();
        let ctx = CtxView::new();
        let stored = shared(Relation::from_pairs([(10, 20)])); // (y, x)
        let nr = NodeRel::from_atom(&q.atoms()[0], &stored, &ctx).unwrap();
        assert_eq!(nr.vars, vec![0, 1]);
        assert_eq!(
            decoded_row(&nr, &ctx, 0),
            vec![Value::Int(20), Value::Int(10)]
        );
    }

    #[test]
    fn repeated_variable_filters_rows() {
        let q = parse_cq("Q(x) <- R(x, x)").unwrap();
        let ctx = CtxView::new();
        let stored = shared(Relation::from_pairs([(1, 1), (1, 2), (3, 3)]));
        let nr = NodeRel::from_atom(&q.atoms()[0], &stored, &ctx).unwrap();
        assert_eq!(nr.vars.len(), 1);
        assert_eq!(nr.rel.len(), 2);
        let kept: Vec<Vec<Value>> = (0..2).map(|r| decoded_row(&nr, &ctx, r)).collect();
        assert!(kept.contains(&vec![Value::Int(1)]));
        assert!(kept.contains(&vec![Value::Int(3)]));
    }

    #[test]
    fn arity_mismatch_is_error() {
        let q = parse_cq("Q(x) <- R(x, y)").unwrap();
        let ctx = CtxView::new();
        assert!(NodeRel::from_atom(&q.atoms()[0], &shared(Relation::new(3)), &ctx).is_err());
    }

    #[test]
    fn duplicate_rows_dropped() {
        let q = parse_cq("Q(x, y) <- R(x, y)").unwrap();
        let ctx = CtxView::new();
        let stored = shared(Relation::from_pairs([(1, 2), (1, 2)]));
        let nr = NodeRel::from_atom(&q.atoms()[0], &stored, &ctx).unwrap();
        assert_eq!(nr.rel.len(), 1);
    }

    #[test]
    fn same_shape_atoms_share_the_cached_relation() {
        let q = parse_cq("Q(x, y, z) <- R(x, y), R(y, z)").unwrap();
        let ctx = CtxView::new();
        let stored = shared(Relation::from_pairs([(1, 2), (2, 3)]));
        let (_, a) = NodeRel::derived(&q.atoms()[0], &stored, &ctx).unwrap();
        let (_, b) = NodeRel::derived(&q.atoms()[1], &stored, &ctx).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one normalization, shared");
        assert_eq!(ctx.stats().derived_builds, 1);
        assert_eq!(ctx.stats().derived_hits, 1);
    }

    #[test]
    fn semijoin_filters() {
        let q = parse_cq("Q(x, y, z) <- R(x, y), S(y, z)").unwrap();
        let ctx = CtxView::new();
        let mut left = NodeRel::from_atom(
            &q.atoms()[0],
            &shared(Relation::from_pairs([(1, 2), (3, 4)])),
            &ctx,
        )
        .unwrap();
        let right =
            NodeRel::from_atom(&q.atoms()[1], &shared(Relation::from_pairs([(2, 9)])), &ctx)
                .unwrap();
        left.semijoin_in_place(&right, VSet::singleton(1)); // y = var 1
        assert_eq!(left.rel.len(), 1);
        assert_eq!(
            decoded_row(&left, &ctx, 0),
            vec![Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn semijoin_empty_separator_checks_nonemptiness() {
        let q = parse_cq("Q(x, z) <- R(x), S(z)").unwrap();
        let ctx = CtxView::new();
        let one_row = {
            let mut r = Relation::new(1);
            r.push_row(&[Value::Int(1)]);
            shared(r)
        };
        let mut left = NodeRel::from_atom(&q.atoms()[0], &one_row, &ctx).unwrap();
        let right_empty =
            NodeRel::from_atom(&q.atoms()[1], &shared(Relation::new(1)), &ctx).unwrap();
        left.semijoin_in_place(&right_empty, VSet::EMPTY);
        assert!(left.rel.is_empty());
    }

    #[test]
    fn projection() {
        let q = parse_cq("Q(x, y) <- R(x, y)").unwrap();
        let ctx = CtxView::new();
        let nr = NodeRel::from_atom(
            &q.atoms()[0],
            &shared(Relation::from_pairs([(1, 2), (1, 3)])),
            &ctx,
        )
        .unwrap();
        let p = nr.project(VSet::singleton(0));
        assert_eq!(p.vars, vec![0]);
        assert_eq!(p.rel.len(), 1);
    }

    #[test]
    fn empty_node_for_missing_relation() {
        let q = parse_cq("Q(x, y) <- R(x, y, x)").unwrap();
        let nr = NodeRel::empty(&q.atoms()[0]);
        assert_eq!(nr.vars.len(), 2);
        assert!(nr.rel.is_empty());
    }
}
