//! Node relations: relations whose columns are aligned with a sorted list of
//! query variables.
//!
//! Join-tree nodes carry their data in this normalized form: one column per
//! *distinct* variable, columns sorted by variable id. Atoms with repeated
//! variables (`R(x,x)`) are normalized by filtering rows whose repeated
//! positions disagree and then dropping the duplicate columns.

use ucq_hypergraph::VSet;
use ucq_query::{Atom, VarId};
use ucq_storage::{Relation, RowSet, Value};

/// A relation with named (variable-id) columns in sorted order.
#[derive(Clone, Debug)]
pub struct NodeRel {
    /// Distinct variables, sorted ascending; `rel` has one column per entry.
    pub vars: Vec<VarId>,
    /// The data, column `i` holding values of `vars[i]`.
    pub rel: Relation,
}

impl NodeRel {
    /// The variable set.
    pub fn var_set(&self) -> VSet {
        self.vars.iter().copied().collect()
    }

    /// Column position of variable `v`, if present.
    pub fn col_of(&self, v: VarId) -> Option<usize> {
        self.vars.binary_search(&v).ok()
    }

    /// Column positions of each variable in `vs` (which must all be
    /// present), in `vs` iteration order (ascending).
    pub fn cols_of(&self, vs: VSet) -> Vec<usize> {
        vs.iter()
            .map(|v| self.col_of(v).expect("variable not in node"))
            .collect()
    }

    /// Normalizes an atom's stored relation:
    /// * checks the arity matches;
    /// * keeps only rows whose repeated-variable positions agree;
    /// * reorders/dedups columns to sorted distinct variables;
    /// * deduplicates rows (set semantics).
    pub fn from_atom(atom: &Atom, stored: &Relation) -> Result<NodeRel, String> {
        if stored.arity() != atom.args.len() {
            return Err(format!(
                "relation {} has arity {}, atom expects {}",
                atom.rel,
                stored.arity(),
                atom.args.len()
            ));
        }
        let mut vars: Vec<VarId> = atom.args.clone();
        vars.sort_unstable();
        vars.dedup();
        // First source position of each distinct variable.
        let src_pos: Vec<usize> = vars
            .iter()
            .map(|v| atom.args.iter().position(|a| a == v).expect("present"))
            .collect();
        // Positions that must agree (repeated variables).
        let mut eq_checks: Vec<(usize, usize)> = Vec::new();
        for (i, v) in atom.args.iter().enumerate() {
            let first = atom.args.iter().position(|a| a == v).expect("present");
            if first != i {
                eq_checks.push((first, i));
            }
        }
        let mut out = Relation::with_capacity(vars.len(), stored.len());
        let mut seen: std::collections::HashSet<Box<[Value]>> =
            std::collections::HashSet::with_capacity(stored.len());
        let mut buf: Vec<Value> = Vec::with_capacity(vars.len());
        for row in stored.iter_rows() {
            if eq_checks.iter().any(|&(a, b)| row[a] != row[b]) {
                continue;
            }
            buf.clear();
            buf.extend(src_pos.iter().map(|&p| row[p]));
            if seen.insert(buf.as_slice().into()) {
                out.push_row(&buf);
            }
        }
        Ok(NodeRel { vars, rel: out })
    }

    /// Projects onto a subset of this node's variables (deduplicating).
    pub fn project(&self, vs: VSet) -> NodeRel {
        let cols = self.cols_of(vs);
        NodeRel {
            vars: vs.iter().collect(),
            rel: self.rel.project_dedup(&cols),
        }
    }

    /// Removes rows whose projection onto `sep` has no match in `other`'s
    /// projection onto `sep` (the semijoin `self ⋉ other`, in place).
    pub fn semijoin_in_place(&mut self, other: &NodeRel, sep: VSet) {
        if sep.is_empty() {
            // Degenerate semijoin: keep everything iff `other` is non-empty.
            if other.rel.is_empty() {
                self.rel = Relation::new(self.rel.arity());
            }
            return;
        }
        let right = RowSet::build_projected(&other.rel, &other.cols_of(sep));
        let left_cols = self.cols_of(sep);
        let mut buf: Vec<Value> = Vec::with_capacity(left_cols.len());
        self.rel.retain_rows(|row| {
            buf.clear();
            buf.extend(left_cols.iter().map(|&c| row[c]));
            right.contains(&buf)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_query::parse_cq;

    fn iv(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn normalization_sorts_columns() {
        // Atom R(y, x) with x=1? Build via query text: vars interned in
        // head-then-body order.
        let q = parse_cq("Q(x, y) <- R(y, x)").unwrap();
        // x=0, y=1; atom args = [1, 0]; sorted vars = [0, 1]; so columns must
        // be swapped relative to storage.
        let stored = Relation::from_pairs([(10, 20)]); // (y, x) = (10, 20)
        let nr = NodeRel::from_atom(&q.atoms()[0], &stored).unwrap();
        assert_eq!(nr.vars, vec![0, 1]);
        assert_eq!(nr.rel.row(0), iv(&[20, 10]).as_slice());
    }

    #[test]
    fn repeated_variable_filters_rows() {
        let q = parse_cq("Q(x) <- R(x, x)").unwrap();
        let stored = Relation::from_pairs([(1, 1), (1, 2), (3, 3)]);
        let nr = NodeRel::from_atom(&q.atoms()[0], &stored).unwrap();
        assert_eq!(nr.vars.len(), 1);
        assert_eq!(nr.rel.len(), 2);
        assert!(nr.rel.contains_row(&iv(&[1])));
        assert!(nr.rel.contains_row(&iv(&[3])));
    }

    #[test]
    fn arity_mismatch_is_error() {
        let q = parse_cq("Q(x) <- R(x, y)").unwrap();
        let stored = Relation::new(3);
        assert!(NodeRel::from_atom(&q.atoms()[0], &stored).is_err());
    }

    #[test]
    fn duplicate_rows_dropped() {
        let q = parse_cq("Q(x, y) <- R(x, y)").unwrap();
        let stored = Relation::from_pairs([(1, 2), (1, 2)]);
        let nr = NodeRel::from_atom(&q.atoms()[0], &stored).unwrap();
        assert_eq!(nr.rel.len(), 1);
    }

    #[test]
    fn semijoin_filters() {
        let q = parse_cq("Q(x, y, z) <- R(x, y), S(y, z)").unwrap();
        let mut left = NodeRel::from_atom(&q.atoms()[0], &Relation::from_pairs([(1, 2), (3, 4)]))
            .unwrap();
        let right =
            NodeRel::from_atom(&q.atoms()[1], &Relation::from_pairs([(2, 9)])).unwrap();
        left.semijoin_in_place(&right, VSet::singleton(1)); // y = var 1
        assert_eq!(left.rel.len(), 1);
        assert_eq!(left.rel.row(0), iv(&[1, 2]).as_slice());
    }

    #[test]
    fn semijoin_empty_separator_checks_nonemptiness() {
        let q = parse_cq("Q(x, z) <- R(x), S(z)").unwrap();
        let mut left =
            NodeRel::from_atom(&q.atoms()[0], &Relation::from_rows(1, [iv(&[1])].iter().map(|r| r.as_slice()))).unwrap();
        let right_empty = NodeRel::from_atom(&q.atoms()[1], &Relation::new(1)).unwrap();
        left.semijoin_in_place(&right_empty, VSet::EMPTY);
        assert!(left.rel.is_empty());
    }

    #[test]
    fn projection() {
        let q = parse_cq("Q(x, y) <- R(x, y)").unwrap();
        let nr = NodeRel::from_atom(&q.atoms()[0], &Relation::from_pairs([(1, 2), (1, 3)]))
            .unwrap();
        let p = nr.project(VSet::singleton(0));
        assert_eq!(p.vars, vec![0]);
        assert_eq!(p.rel.len(), 1);
    }
}
