//! Naive CQ evaluation — the baseline the paper's upper bounds are measured
//! against.
//!
//! Evaluates a CQ by a left-deep sequence of hash joins over its atoms
//! (smallest relation first), materializing all intermediate bindings, then
//! projecting the head and deduplicating. Works for *every* CQ, cyclic or
//! not, at the cost of potentially super-linear intermediates.
//!
//! The accumulator is a flat row-major id table ([`IdTable`]): each join
//! step gathers the key run of a block of bindings and probes the cached
//! [`HashIndex`](ucq_storage::HashIndex) in bulk
//! ([`probe_batch`](ucq_storage::HashIndex::probe_batch)), then copies
//! matching bindings into the next flat table — no per-binding vector
//! allocation, and the index stays hot in cache for a whole block.
//!
//! All data flows through the shared context view: atom relations come
//! from the normalized-relation cache and the per-join hash indexes from the
//! [`IndexCache`](ucq_storage::IndexCache) — so evaluating the members of a
//! union (or re-evaluating in a session) reuses one set of indexes instead
//! of rebuilding per CQ.

use crate::cdy::EvalError;
use crate::noderel::NodeRel;
use std::collections::HashSet;
use std::sync::Arc;
use ucq_query::{Cq, VarId};
use ucq_storage::{
    fast_set_with_capacity, CtxView, FastSet, IdRel, InlineKey, Instance, Tuple, ValueId,
};

/// Bindings gathered/probed per block in the join inner loop.
const JOIN_BLOCK: usize = 2048;

/// A flat, row-major table of interned rows: `width` ids per row,
/// `data.len() == width * n_rows` (row count is tracked separately so
/// nullary tables can hold the single empty row).
#[derive(Clone, Debug, Default)]
pub struct IdTable {
    /// Ids per row.
    pub width: usize,
    /// Number of rows (authoritative; `data` is empty when `width == 0`).
    pub n_rows: usize,
    /// Row-major ids.
    pub data: Vec<ValueId>,
}

impl IdTable {
    /// Iterates over the rows as id slices (empty slices for width 0).
    pub fn rows(&self) -> impl Iterator<Item = &[ValueId]> {
        let width = self.width;
        (0..self.n_rows).map(move |r| &self.data[r * width..(r + 1) * width])
    }
}

/// Evaluates `Q(I)` naively with a private context, returning the
/// deduplicated answers in unspecified order.
pub fn evaluate_cq_naive(cq: &Cq, instance: &Instance) -> Result<Vec<Tuple>, EvalError> {
    evaluate_cq_naive_in(cq, instance, &CtxView::new())
}

/// As [`evaluate_cq_naive`], sharing the caches of `ctx`.
pub fn evaluate_cq_naive_in(
    cq: &Cq,
    instance: &Instance,
    ctx: &CtxView,
) -> Result<Vec<Tuple>, EvalError> {
    let ids = evaluate_cq_naive_ids_in(cq, instance, ctx)?;
    if ids.width == 0 {
        return Ok(vec![Tuple::empty(); ids.n_rows]);
    }
    Ok(ctx.decode_rows(ids.width, &ids.data))
}

/// Evaluates `Q(I)` naively on the id layer, returning the deduplicated
/// head projections as a flat [`IdTable`] under `ctx`'s dictionary — the
/// union evaluator dedups members on these ids and decodes once at the
/// boundary.
pub fn evaluate_cq_naive_ids_in(
    cq: &Cq,
    instance: &Instance,
    ctx: &CtxView,
) -> Result<IdTable, EvalError> {
    // Normalize atoms through the context cache (validating every atom's
    // arity, like the CDY path does).
    let mut nodes: Vec<(Vec<VarId>, Arc<IdRel>)> = Vec::with_capacity(cq.atoms().len());
    for atom in cq.atoms() {
        let node = match instance.get_shared(&atom.rel) {
            Some(rel) => NodeRel::derived(atom, &rel, ctx).map_err(EvalError::Schema)?,
            None => {
                let empty = NodeRel::empty(atom);
                (empty.vars, Arc::new(empty.rel))
            }
        };
        nodes.push(node);
    }
    let head_width = cq.head().len();
    // Any empty relation forces an empty join. Bail out before touching
    // the index cache — this also keeps the per-call `Arc`s built for
    // missing relations (fresh address each call) from being pinned into
    // the session's caches forever.
    if !nodes.is_empty() && nodes.iter().any(|(_, rel)| rel.is_empty()) {
        return Ok(IdTable {
            width: head_width,
            ..IdTable::default()
        });
    }
    // Join order: prefer joining atoms connected to what we have; among
    // candidates pick the smallest relation.
    let mut remaining: Vec<usize> = (0..nodes.len()).collect();
    remaining.sort_by_key(|&i| nodes[i].1.len());

    // Accumulated bindings over `acc_vars` (sorted var list), flat.
    let mut acc_vars: Vec<VarId> = Vec::new();
    let mut acc = IdTable {
        width: 0,
        n_rows: 1, // one empty binding
        data: Vec::new(),
    };

    while !remaining.is_empty() {
        // Pick a connected atom if possible; default to the smallest
        // relation among the connected (the first, since `remaining` is
        // size-sorted). With several connected candidates, estimate each
        // one's per-binding fanout (rows over the distinct counts of its
        // already-bound columns, from the context's cached RelStats) and
        // deviate from the default only for a decisive win — at least
        // twice as selective — so estimate noise on near-uniform inputs
        // can't flip an order the size sort already got right.
        let acc_set: HashSet<VarId> = acc_vars.iter().copied().collect();
        let pick_pos = {
            let connected: Vec<usize> = remaining
                .iter()
                .enumerate()
                .filter(|(_, &i)| nodes[i].0.iter().any(|v| acc_set.contains(v)))
                .map(|(pos, _)| pos)
                .collect();
            match connected.as_slice() {
                [] => 0,
                [only] => *only,
                // Statistics harvesting costs a pass over each candidate;
                // below this many rows the size-sorted default can't lose
                // enough to pay for it.
                candidates
                    if candidates
                        .iter()
                        .all(|&pos| nodes[remaining[pos]].1.len() < 4096) =>
                {
                    candidates[0]
                }
                candidates => {
                    let est = |pos: usize| {
                        let (vars, rel) = &nodes[remaining[pos]];
                        let stats = ctx.rel_stats(rel);
                        let mut fanout = stats.rows as f64;
                        for (c, v) in vars.iter().enumerate() {
                            if acc_set.contains(v) {
                                fanout /= stats.distinct.get(c).copied().unwrap_or(1).max(1) as f64;
                            }
                        }
                        fanout
                    };
                    let default = candidates[0];
                    let threshold = est(default) / 2.0;
                    let mut pick = (default, threshold);
                    for &pos in &candidates[1..] {
                        let f = est(pos);
                        if f < pick.1 {
                            pick = (pos, f);
                        }
                    }
                    pick.0
                }
            }
        };
        let i = remaining.remove(pick_pos);
        let (node_vars, node_rel) = &nodes[i];

        // Shared variables and their positions on both sides.
        let shared: Vec<VarId> = node_vars
            .iter()
            .copied()
            .filter(|v| acc_set.contains(v))
            .collect();
        let node_key: Vec<usize> = shared
            .iter()
            .map(|&v| node_vars.binary_search(&v).expect("shared var in node"))
            .collect();
        let acc_key: Vec<usize> = shared
            .iter()
            .map(|&v| acc_vars.iter().position(|&a| a == v).expect("shared"))
            .collect();
        let new_vars: Vec<VarId> = node_vars
            .iter()
            .copied()
            .filter(|v| !acc_set.contains(v))
            .collect();
        let new_cols: Vec<usize> = new_vars
            .iter()
            .map(|&v| node_vars.binary_search(&v).expect("own var"))
            .collect();

        // One cached index per (relation, key columns) — shared across the
        // members of a union and across repeated evaluations.
        let idx = ctx.index(node_rel, &node_key);
        let w = acc.width;
        let new_w = w + new_cols.len();
        let node_cols: Vec<&[ValueId]> = new_cols.iter().map(|&c| node_rel.col(c)).collect();
        let mut out = Vec::new();
        let mut out_rows = 0usize;

        if node_key.is_empty() {
            // No shared variables (first atom, cartesian step, or a
            // nullary atom): every binding pairs with the single group.
            let rows = idx.get(&[]);
            out.reserve(acc.n_rows * rows.len() * new_w);
            for r in 0..acc.n_rows {
                let binding = &acc.data[r * w..(r + 1) * w];
                for &rid in rows {
                    out.extend_from_slice(binding);
                    out.extend(node_cols.iter().map(|c| c[rid as usize]));
                }
            }
            out_rows = acc.n_rows * rows.len();
        } else {
            // Batched probe: gather the key run of a block of bindings,
            // resolve all groups in bulk, then copy the extensions.
            let k = node_key.len();
            let mut keys: Vec<ValueId> = Vec::with_capacity(JOIN_BLOCK * k);
            let mut hits: Vec<(u32, &[u32])> = Vec::with_capacity(JOIN_BLOCK);
            for start in (0..acc.n_rows).step_by(JOIN_BLOCK) {
                let end = (start + JOIN_BLOCK).min(acc.n_rows);
                keys.clear();
                for r in start..end {
                    keys.extend(acc_key.iter().map(|&p| acc.data[r * w + p]));
                }
                hits.clear();
                let mut total = 0usize;
                for (p, rows) in idx.probe_batch(&keys, k) {
                    if !rows.is_empty() {
                        total += rows.len();
                        hits.push((p as u32, rows));
                    }
                }
                out.reserve(total * new_w);
                for &(p, rows) in &hits {
                    let base = (start + p as usize) * w;
                    let binding = &acc.data[base..base + w];
                    for &rid in rows {
                        out.extend_from_slice(binding);
                        out.extend(node_cols.iter().map(|c| c[rid as usize]));
                    }
                }
                out_rows += total;
            }
        }
        acc = IdTable {
            width: new_w,
            n_rows: out_rows,
            data: out,
        };
        acc_vars.extend_from_slice(&new_vars);
        if acc.n_rows == 0 {
            return Ok(IdTable {
                width: head_width,
                ..IdTable::default()
            });
        }
    }

    // Project the head and deduplicate on ids, decoding at the boundary.
    let head_pos: Vec<usize> = cq
        .head()
        .iter()
        .map(|&v| acc_vars.iter().position(|&a| a == v).expect("safe head"))
        .collect();
    let mut seen: FastSet<InlineKey> = fast_set_with_capacity(acc.n_rows);
    let mut projected = IdTable {
        width: head_width,
        ..IdTable::default()
    };
    let mut key_buf: Vec<ValueId> = Vec::with_capacity(head_pos.len());
    let w = acc.width;
    for r in 0..acc.n_rows {
        key_buf.clear();
        key_buf.extend(head_pos.iter().map(|&p| acc.data[r * w + p]));
        if seen.insert(InlineKey::from_slice(&key_buf)) {
            projected.data.extend_from_slice(&key_buf);
            projected.n_rows += 1;
        }
    }
    Ok(projected)
}

/// Evaluates `Q(I)` naively into a hash set.
pub fn evaluate_cq_naive_set(cq: &Cq, instance: &Instance) -> Result<HashSet<Tuple>, EvalError> {
    Ok(evaluate_cq_naive(cq, instance)?.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_query::parse_cq;
    use ucq_storage::Relation;

    fn inst(rels: &[(&str, Vec<(i64, i64)>)]) -> Instance {
        rels.iter()
            .map(|(n, pairs)| (n.to_string(), Relation::from_pairs(pairs.iter().copied())))
            .collect()
    }

    #[test]
    fn path_join_with_projection() {
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let i = inst(&[("R", vec![(1, 2), (1, 5)]), ("S", vec![(2, 3), (5, 3)])]);
        let mut got = evaluate_cq_naive(&q, &i).unwrap();
        got.sort();
        // (1,3) must appear once despite two witnesses.
        assert_eq!(got, vec![Tuple::from(&[1i64, 3][..])]);
    }

    #[test]
    fn cyclic_triangle_query() {
        let q = parse_cq("T(x, y, z) <- R(x, y), S(y, z), U(z, x)").unwrap();
        let i = inst(&[
            ("R", vec![(1, 2), (1, 9)]),
            ("S", vec![(2, 3)]),
            ("U", vec![(3, 1)]),
        ]);
        let got = evaluate_cq_naive(&q, &i).unwrap();
        assert_eq!(got, vec![Tuple::from(&[1i64, 2, 3][..])]);
    }

    #[test]
    fn cartesian_product_when_disconnected() {
        let q = parse_cq("Q(x, a) <- R(x, y), S(a, b)").unwrap();
        let i = inst(&[("R", vec![(1, 0), (2, 0)]), ("S", vec![(7, 0), (8, 0)])]);
        let got = evaluate_cq_naive(&q, &i).unwrap();
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn empty_when_relation_missing() {
        let q = parse_cq("Q(x) <- R(x, y), Z(y)").unwrap();
        let i = inst(&[("R", vec![(1, 2)])]);
        assert!(evaluate_cq_naive(&q, &i).unwrap().is_empty());
    }

    #[test]
    fn boolean_query() {
        let q = parse_cq("B() <- R(x, y)").unwrap();
        let yes = inst(&[("R", vec![(1, 2)])]);
        assert_eq!(evaluate_cq_naive(&q, &yes).unwrap(), vec![Tuple::empty()]);
        let no = inst(&[("R", vec![])]);
        assert!(evaluate_cq_naive(&q, &no).unwrap().is_empty());
    }

    #[test]
    fn blocked_join_crosses_block_boundaries() {
        // More bindings than one probe block, with key runs that repeat:
        // every x joins the shared z spine, so the block gather + bulk
        // probe must agree with the one-at-a-time reference count.
        let n = 3 * JOIN_BLOCK as i64 + 17;
        let r: Vec<(i64, i64)> = (0..n).map(|i| (i, i % 5)).collect();
        let s: Vec<(i64, i64)> = (0..5).flat_map(|z| [(z, 100 + z), (z, 200 + z)]).collect();
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let i = inst(&[("R", r), ("S", s)]);
        let got = evaluate_cq_naive(&q, &i).unwrap();
        assert_eq!(got.len(), 2 * n as usize);
    }

    #[test]
    fn agrees_with_cdy_on_free_connex() {
        let q = parse_cq("Q(x, z, y) <- R(x, z), S(z, y)").unwrap();
        let i = inst(&[
            ("R", vec![(1, 2), (5, 6), (7, 2)]),
            ("S", vec![(2, 3), (2, 4), (6, 0)]),
        ]);
        let mut naive = evaluate_cq_naive(&q, &i).unwrap();
        naive.sort();
        let eng = crate::cdy::CdyEngine::for_query(&q, &i).unwrap();
        let mut cdy = eng.iter().collect_all();
        cdy.sort();
        assert_eq!(naive, cdy);
    }

    #[test]
    fn shared_context_caches_join_indexes() {
        let ctx = CtxView::new();
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let i = inst(&[("R", vec![(1, 2)]), ("S", vec![(2, 3)])]);
        let a = evaluate_cq_naive_in(&q, &i, &ctx).unwrap();
        let builds = ctx.stats().index_builds;
        let b = evaluate_cq_naive_in(&q, &i, &ctx).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            ctx.stats().index_builds,
            builds,
            "second run reuses every cached index"
        );
        assert!(ctx.stats().index_hits > 0);
    }
}
