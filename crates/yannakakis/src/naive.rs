//! Naive CQ evaluation — the baseline the paper's upper bounds are measured
//! against.
//!
//! Evaluates a CQ by a left-deep sequence of hash joins over its atoms
//! (smallest relation first), materializing all intermediate bindings, then
//! projecting the head and deduplicating. Works for *every* CQ, cyclic or
//! not, at the cost of potentially super-linear intermediates.
//!
//! All data flows through the shared [`EvalContext`]: atom relations come
//! from the normalized-relation cache and the per-join hash indexes from the
//! [`IndexCache`](ucq_storage::IndexCache) — so evaluating the members of a
//! union (or re-evaluating in a session) reuses one set of indexes instead
//! of rebuilding per CQ.

use crate::cdy::EvalError;
use crate::noderel::NodeRel;
use std::collections::HashSet;
use std::sync::Arc;
use ucq_query::{Cq, VarId};
use ucq_storage::{EvalContext, IdRel, InlineKey, Instance, Tuple, ValueId};

/// Evaluates `Q(I)` naively with a private context, returning the
/// deduplicated answers in unspecified order.
pub fn evaluate_cq_naive(cq: &Cq, instance: &Instance) -> Result<Vec<Tuple>, EvalError> {
    evaluate_cq_naive_in(cq, instance, &EvalContext::new())
}

/// As [`evaluate_cq_naive`], sharing the caches of `ctx`.
pub fn evaluate_cq_naive_in(
    cq: &Cq,
    instance: &Instance,
    ctx: &EvalContext,
) -> Result<Vec<Tuple>, EvalError> {
    // Normalize atoms through the context cache (validating every atom's
    // arity, like the CDY path does).
    let mut nodes: Vec<(Vec<VarId>, Arc<IdRel>)> = Vec::with_capacity(cq.atoms().len());
    for atom in cq.atoms() {
        let node = match instance.get_shared(&atom.rel) {
            Some(rel) => NodeRel::derived(atom, &rel, ctx).map_err(EvalError::Schema)?,
            None => {
                let empty = NodeRel::empty(atom);
                (empty.vars, Arc::new(empty.rel))
            }
        };
        nodes.push(node);
    }
    // Any empty relation forces an empty join. Bail out before touching
    // the index cache — this also keeps the per-call `Arc`s built for
    // missing relations (fresh address each call) from being pinned into
    // the session's caches forever.
    if !nodes.is_empty() && nodes.iter().any(|(_, rel)| rel.is_empty()) {
        return Ok(Vec::new());
    }
    // Join order: prefer joining atoms connected to what we have; among
    // candidates pick the smallest relation.
    let mut remaining: Vec<usize> = (0..nodes.len()).collect();
    remaining.sort_by_key(|&i| nodes[i].1.len());

    // Accumulated bindings over `acc_vars` (sorted var list).
    let mut acc_vars: Vec<VarId> = Vec::new();
    let mut acc: Vec<Vec<ValueId>> = vec![Vec::new()]; // one empty binding

    while !remaining.is_empty() {
        // Pick a connected atom if possible, else the smallest.
        let acc_set: HashSet<VarId> = acc_vars.iter().copied().collect();
        let pick_pos = remaining
            .iter()
            .position(|&i| nodes[i].0.iter().any(|v| acc_set.contains(v)))
            .unwrap_or(0);
        let i = remaining.remove(pick_pos);
        let (node_vars, node_rel) = &nodes[i];

        // Shared variables and their positions on both sides.
        let shared: Vec<VarId> = node_vars
            .iter()
            .copied()
            .filter(|v| acc_set.contains(v))
            .collect();
        let node_key: Vec<usize> = shared
            .iter()
            .map(|&v| node_vars.binary_search(&v).expect("shared var in node"))
            .collect();
        let acc_key: Vec<usize> = shared
            .iter()
            .map(|&v| acc_vars.iter().position(|&a| a == v).expect("shared"))
            .collect();
        let new_vars: Vec<VarId> = node_vars
            .iter()
            .copied()
            .filter(|v| !acc_set.contains(v))
            .collect();
        let new_cols: Vec<usize> = new_vars
            .iter()
            .map(|&v| node_vars.binary_search(&v).expect("own var"))
            .collect();

        // One cached index per (relation, key columns) — shared across the
        // members of a union and across repeated evaluations.
        let idx = ctx.index(node_rel, &node_key);
        let mut next: Vec<Vec<ValueId>> = Vec::new();
        let mut key_buf: Vec<ValueId> = Vec::with_capacity(acc_key.len());
        for binding in &acc {
            key_buf.clear();
            key_buf.extend(acc_key.iter().map(|&p| binding[p]));
            for &row_id in idx.get(&key_buf) {
                let mut extended = binding.clone();
                extended.extend(new_cols.iter().map(|&c| node_rel.col(c)[row_id as usize]));
                next.push(extended);
            }
        }
        acc = next;
        acc_vars.extend_from_slice(&new_vars);
        if acc.is_empty() {
            return Ok(Vec::new());
        }
    }

    // Project the head and deduplicate on ids, decoding at the boundary.
    let head_pos: Vec<usize> = cq
        .head()
        .iter()
        .map(|&v| acc_vars.iter().position(|&a| a == v).expect("safe head"))
        .collect();
    let mut seen: HashSet<InlineKey> = HashSet::with_capacity(acc.len());
    let mut out = Vec::new();
    let mut key_buf: Vec<ValueId> = Vec::with_capacity(head_pos.len());
    for binding in &acc {
        key_buf.clear();
        key_buf.extend(head_pos.iter().map(|&p| binding[p]));
        if seen.insert(InlineKey::from_slice(&key_buf)) {
            out.push(ctx.decode_tuple(key_buf.iter().copied()));
        }
    }
    Ok(out)
}

/// Evaluates `Q(I)` naively into a hash set.
pub fn evaluate_cq_naive_set(cq: &Cq, instance: &Instance) -> Result<HashSet<Tuple>, EvalError> {
    Ok(evaluate_cq_naive(cq, instance)?.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_query::parse_cq;
    use ucq_storage::Relation;

    fn inst(rels: &[(&str, Vec<(i64, i64)>)]) -> Instance {
        rels.iter()
            .map(|(n, pairs)| (n.to_string(), Relation::from_pairs(pairs.iter().copied())))
            .collect()
    }

    #[test]
    fn path_join_with_projection() {
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let i = inst(&[("R", vec![(1, 2), (1, 5)]), ("S", vec![(2, 3), (5, 3)])]);
        let mut got = evaluate_cq_naive(&q, &i).unwrap();
        got.sort();
        // (1,3) must appear once despite two witnesses.
        assert_eq!(got, vec![Tuple::from(&[1i64, 3][..])]);
    }

    #[test]
    fn cyclic_triangle_query() {
        let q = parse_cq("T(x, y, z) <- R(x, y), S(y, z), U(z, x)").unwrap();
        let i = inst(&[
            ("R", vec![(1, 2), (1, 9)]),
            ("S", vec![(2, 3)]),
            ("U", vec![(3, 1)]),
        ]);
        let got = evaluate_cq_naive(&q, &i).unwrap();
        assert_eq!(got, vec![Tuple::from(&[1i64, 2, 3][..])]);
    }

    #[test]
    fn cartesian_product_when_disconnected() {
        let q = parse_cq("Q(x, a) <- R(x, y), S(a, b)").unwrap();
        let i = inst(&[("R", vec![(1, 0), (2, 0)]), ("S", vec![(7, 0), (8, 0)])]);
        let got = evaluate_cq_naive(&q, &i).unwrap();
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn empty_when_relation_missing() {
        let q = parse_cq("Q(x) <- R(x, y), Z(y)").unwrap();
        let i = inst(&[("R", vec![(1, 2)])]);
        assert!(evaluate_cq_naive(&q, &i).unwrap().is_empty());
    }

    #[test]
    fn boolean_query() {
        let q = parse_cq("B() <- R(x, y)").unwrap();
        let yes = inst(&[("R", vec![(1, 2)])]);
        assert_eq!(evaluate_cq_naive(&q, &yes).unwrap(), vec![Tuple::empty()]);
        let no = inst(&[("R", vec![])]);
        assert!(evaluate_cq_naive(&q, &no).unwrap().is_empty());
    }

    #[test]
    fn agrees_with_cdy_on_free_connex() {
        let q = parse_cq("Q(x, z, y) <- R(x, z), S(z, y)").unwrap();
        let i = inst(&[
            ("R", vec![(1, 2), (5, 6), (7, 2)]),
            ("S", vec![(2, 3), (2, 4), (6, 0)]),
        ]);
        let mut naive = evaluate_cq_naive(&q, &i).unwrap();
        naive.sort();
        let eng = crate::cdy::CdyEngine::for_query(&q, &i).unwrap();
        let mut cdy = eng.iter().collect_all();
        cdy.sort();
        assert_eq!(naive, cdy);
    }

    #[test]
    fn shared_context_caches_join_indexes() {
        let ctx = EvalContext::new();
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let i = inst(&[("R", vec![(1, 2)]), ("S", vec![(2, 3)])]);
        let a = evaluate_cq_naive_in(&q, &i, &ctx).unwrap();
        let builds = ctx.stats().index_builds;
        let b = evaluate_cq_naive_in(&q, &i, &ctx).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            ctx.stats().index_builds,
            builds,
            "second run reuses every cached index"
        );
        assert!(ctx.stats().index_hits > 0);
    }
}
