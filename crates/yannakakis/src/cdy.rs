//! The Constant-Delay Yannakakis (CDY) algorithm [11, 20].
//!
//! Given an `S`-connex acyclic CQ, [`CdyEngine::build_in`] runs the linear
//! preprocessing phase: it constructs an ext-S-connex tree, loads the atom
//! relations through the shared context view (interned, normalized and
//! cached per `(relation, atom shape)`), projects the extension nodes, and
//! applies the full reducer. Afterwards:
//!
//! * [`CdyEngine::iter`] enumerates the projection of the query onto `S`
//!   with constant delay and no duplicates (the paper's Theorem 3(1) upper
//!   bound; with `S = free(Q)` this enumerates `Q(I)`);
//! * [`CdyEngine::contains`] answers membership in constant time (used by
//!   Algorithm 1);
//! * [`CdyIter::next_with_full_binding`] additionally extends every answer
//!   to a full homomorphism — the "extend once" step in the proof of
//!   Lemma 8.
//!
//! The enumeration phase runs entirely on interned [`ValueId`]s: separator
//! probes project the current binding into a reused key buffer and look up
//! the per-node [`HashIndex`] with a **borrowed** `&[ValueId]` key — no
//! heap allocation per answer; values are only decoded when an answer tuple
//! crosses the API boundary.

use crate::noderel::NodeRel;
use crate::reducer::full_reduce;
use std::fmt;
use std::sync::Arc;
use ucq_hypergraph::{ext_s_connex_tree, ConnexTree, VSet};
use ucq_query::{Cq, VarId};
use ucq_storage::sync::OnceLock;
use ucq_storage::{CtxView, HashIndex, IdSet, Instance, Tuple, Value, ValueId};

/// Evaluation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The query is not `S`-connex, so CDY does not apply.
    NotSConnex {
        /// Query name.
        query: String,
        /// The `S` that failed.
        s: VSet,
    },
    /// Schema problem (arity mismatch between atom and stored relation).
    Schema(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NotSConnex { query, s } => {
                write!(f, "query {query} is not {s}-connex; CDY does not apply")
            }
            EvalError::Schema(m) => write!(f, "schema error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A preprocessed CDY evaluation of one CQ.
#[derive(Debug)]
pub struct CdyEngine {
    ct: ConnexTree,
    /// Connex-first traversal order; the first `n_connex` entries are `T'`.
    order: Vec<usize>,
    n_connex: usize,
    /// Reduced node relations (interned, columnar).
    rels: Vec<NodeRel>,
    /// Per-node lookup index keyed on the separator with the parent
    /// (`None` only for the root).
    indexes: Vec<Option<HashIndex>>,
    /// Separators with the parent, as sorted variable-id lists (binding
    /// positions) — precomputed so probes and block extension gather keys
    /// without re-iterating bitsets or allocating.
    sep_vars: Vec<Vec<u32>>,
    /// Membership sets for connex nodes, built lazily on the first
    /// [`CdyEngine::contains`] call — enumeration-only engines never pay
    /// for them.
    row_sets: Vec<OnceLock<IdSet>>,
    /// Row ids of the root (iterated in full).
    root_rows: Vec<u32>,
    /// Output spec: one variable per output position.
    output: Vec<VarId>,
    n_vars: u32,
    nonempty: bool,
    /// The session this engine's ids belong to (build or frozen phase).
    ctx: CtxView,
}

impl CdyEngine {
    /// Builds the engine for `Q(I)` itself with a private context:
    /// `S = free(Q)`, output = head. Fails with [`EvalError::NotSConnex`]
    /// unless `Q` is free-connex. Prefer [`CdyEngine::for_query_in`] when
    /// evaluating several queries (or repeatedly) over one instance.
    pub fn for_query(cq: &Cq, instance: &Instance) -> Result<CdyEngine, EvalError> {
        CdyEngine::for_query_in(cq, instance, &CtxView::new())
    }

    /// As [`CdyEngine::for_query`], sharing the caches of `ctx`.
    pub fn for_query_in(
        cq: &Cq,
        instance: &Instance,
        ctx: &CtxView,
    ) -> Result<CdyEngine, EvalError> {
        CdyEngine::build_in(cq, cq.free(), cq.head().to_vec(), instance, ctx)
    }

    /// Builds the engine enumerating `π_S(Q)` with output columns the sorted
    /// variables of `s`, with a private context. Fails unless `Q` is
    /// `S`-connex.
    pub fn for_projection(cq: &Cq, s: VSet, instance: &Instance) -> Result<CdyEngine, EvalError> {
        CdyEngine::for_projection_in(cq, s, instance, &CtxView::new())
    }

    /// As [`CdyEngine::for_projection`], sharing the caches of `ctx`.
    pub fn for_projection_in(
        cq: &Cq,
        s: VSet,
        instance: &Instance,
        ctx: &CtxView,
    ) -> Result<CdyEngine, EvalError> {
        CdyEngine::build_in(cq, s, s.iter().collect(), instance, ctx)
    }

    /// The general constructor: enumerates bindings of the connex subtree
    /// covering `s`, outputting the variables in `output` (each must lie in
    /// `s`). All relation loading goes through `ctx`, so engines built over
    /// the same instance share interned data and normalizations.
    pub fn build_in(
        cq: &Cq,
        s: VSet,
        output: Vec<VarId>,
        instance: &Instance,
        ctx: &CtxView,
    ) -> Result<CdyEngine, EvalError> {
        for &v in &output {
            assert!(
                s.contains(v),
                "output variable {} not in the connex target {s}",
                cq.var_name(v)
            );
        }
        let h = cq.hypergraph();
        let ct = ext_s_connex_tree(&h, s).ok_or_else(|| EvalError::NotSConnex {
            query: cq.name().to_string(),
            s,
        })?;

        // Load atom relations through the shared context.
        let n_nodes = ct.tree.len();
        let mut rels: Vec<Option<NodeRel>> = vec![None; n_nodes];
        for (i, node) in ct.tree.nodes().iter().enumerate() {
            if let Some(ai) = node.atom {
                let atom = &cq.atoms()[ai];
                let nr = match instance.get_shared(&atom.rel) {
                    Some(stored) => {
                        NodeRel::from_atom(atom, &stored, ctx).map_err(EvalError::Schema)?
                    }
                    // Missing relations are empty (as in the paper's
                    // reductions, which "leave relations empty").
                    None => NodeRel::empty(atom),
                };
                rels[i] = Some(nr);
            }
        }
        // Extension nodes: project any atom node that covers them.
        for i in 0..n_nodes {
            if rels[i].is_some() {
                continue;
            }
            let vars = ct.tree.nodes()[i].vars;
            let carrier = (0..n_nodes)
                .find(|&j| rels[j].is_some() && vars.is_subset(ct.tree.nodes()[j].vars))
                .expect("inclusive extension: every node is inside some atom");
            let projected = rels[carrier]
                .as_ref()
                .expect("carrier loaded")
                .project(vars);
            rels[i] = Some(projected);
        }
        let mut rels: Vec<NodeRel> = rels.into_iter().map(|r| r.expect("all set")).collect();

        // Linear preprocessing: the full reducer.
        let nonempty = full_reduce(&ct.tree, &mut rels);

        // Lookup structures over the reduced relations.
        //
        // The traversal order must keep every `T'` (connex) node before the
        // rest and every parent before its children, but sibling order is
        // free. Default to the canonical traversal and pull a ready node
        // forward only when its reduced relation is decisively smaller —
        // under half the rows of the canonical next pick — so the skewed
        // cases enumerate cheap nodes at shallow depths while near-uniform
        // trees keep the canonical order exactly.
        let base_order = ct.order_connex_first();
        let n_connex = ct.connex_nodes().len();
        let mut is_connex = vec![false; n_nodes];
        for n in ct.connex_nodes() {
            is_connex[n] = true;
        }
        let mut order: Vec<usize> = Vec::with_capacity(base_order.len());
        let mut placed = vec![false; n_nodes];
        for phase in 0..2 {
            loop {
                let mut default: Option<usize> = None;
                let mut smallest: Option<usize> = None;
                for &n in &base_order {
                    if placed[n] || is_connex[n] != (phase == 0) {
                        continue;
                    }
                    if let Some(p) = ct.tree.parent(n) {
                        if !placed[p] {
                            continue;
                        }
                    }
                    if default.is_none() {
                        default = Some(n);
                    }
                    if smallest.is_none_or(|b| rels[n].rel.len() < rels[b].rel.len()) {
                        smallest = Some(n);
                    }
                }
                let Some(d) = default else { break };
                let n = match smallest {
                    Some(s) if rels[s].rel.len() * 2 < rels[d].rel.len() => s,
                    _ => d,
                };
                placed[n] = true;
                order.push(n);
            }
        }
        debug_assert_eq!(order.len(), base_order.len(), "reorder is a permutation");
        let mut sep_vars: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
        let mut indexes: Vec<Option<HashIndex>> = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            match ct.tree.parent(i) {
                Some(_) => {
                    let sep = ct.tree.separator(i);
                    sep_vars[i] = sep.iter().collect();
                    let cols = rels[i].cols_of(sep);
                    indexes.push(Some(HashIndex::build(&rels[i].rel, &cols)));
                }
                None => indexes.push(None),
            }
        }
        let row_sets: Vec<OnceLock<IdSet>> = vec![OnceLock::new(); n_nodes];
        let root = ct.tree.root();
        let root_rows: Vec<u32> = (0..rels[root].rel.len() as u32).collect();

        Ok(CdyEngine {
            ct,
            order,
            n_connex,
            rels,
            indexes,
            sep_vars,
            row_sets,
            root_rows,
            output,
            n_vars: cq.n_vars(),
            nonempty,
            ctx: ctx.clone(),
        })
    }

    /// Whether the query has at least one answer (`Decide⟨Q⟩`).
    pub fn decide(&self) -> bool {
        self.nonempty
    }

    /// The output arity.
    pub fn output_arity(&self) -> usize {
        self.output.len()
    }

    /// The output variable per position.
    pub fn output_vars(&self) -> &[VarId] {
        &self.output
    }

    /// The evaluation context this engine shares.
    pub fn context(&self) -> &CtxView {
        &self.ctx
    }

    /// Retargets this engine onto another view of the *same* session —
    /// used by `EvalSession::freeze` to swap prepared engines from the
    /// build-phase context to its frozen snapshot without rebuilding. The
    /// ids baked into the node relations must be valid under `view`.
    pub fn set_view(&mut self, view: CtxView) {
        self.ctx = view;
    }

    /// Starts a constant-delay enumeration of the (deduplicated) output.
    pub fn iter(&self) -> CdyIter<'_> {
        CdyIter {
            eng: self,
            core: IterCore::new(self),
        }
    }

    /// Consumes the engine into an owning enumerator.
    pub fn into_iter_owned(self) -> OwnedCdyIter {
        OwnedCdyIter::new(Arc::new(self))
    }

    /// Constant-time membership test for an output tuple. Only valid when
    /// the output variables cover the connex target `S` (true for
    /// [`CdyEngine::for_query`] and [`CdyEngine::for_projection`]).
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.contains_with(tuple, &mut ContainsScratch::default())
    }

    /// As [`CdyEngine::contains`], but reusing caller-provided scratch
    /// buffers so repeated probes (Algorithm 1's inner loop) never allocate.
    pub fn contains_with(&self, tuple: &Tuple, scratch: &mut ContainsScratch) -> bool {
        assert_eq!(tuple.arity(), self.output.len(), "arity mismatch");
        let covered: VSet = self.output.iter().copied().collect();
        assert_eq!(
            covered, self.ct.s,
            "membership requires the output to cover S exactly"
        );
        if !self.nonempty {
            return false;
        }
        // A value the session has never interned cannot be in any relation.
        if !self.ctx.lookup_row(tuple.values(), &mut scratch.ids) {
            return false;
        }
        // Bind output positions, rejecting inconsistent repeats.
        scratch.binding.clear();
        scratch.binding.resize(self.n_vars as usize, None);
        for (pos, &v) in self.output.iter().enumerate() {
            let id = scratch.ids[pos];
            match scratch.binding[v as usize] {
                Some(existing) if existing != id => return false,
                _ => scratch.binding[v as usize] = Some(id),
            }
        }
        for &n in &self.order[..self.n_connex] {
            let nr = &self.rels[n];
            scratch.buf.clear();
            for &v in &nr.vars {
                match scratch.binding[v as usize] {
                    Some(id) => scratch.buf.push(id),
                    None => unreachable!("T' variables are all in S"),
                }
            }
            let rows = self.row_sets[n].get_or_init(|| IdSet::build(&self.rels[n].rel));
            if !rows.contains(&scratch.buf) {
                return false;
            }
        }
        true
    }

    /// Number of query variables (bindings are indexed by variable id).
    pub fn n_vars(&self) -> u32 {
        self.n_vars
    }

    /// Extends a block of connex bindings — `n_vars` ids per binding,
    /// stored contiguously in `block` — to full homomorphisms in bulk: for
    /// each non-connex node (in descend order), the whole block's separator
    /// keys are gathered into one run and resolved through the node index
    /// via [`HashIndex::probe_batch`], taking the first witness row per
    /// binding. This is the batched form of the per-answer "extend once"
    /// step (Lemma 8): per node, the index and its CSR arena stay hot for
    /// the whole block, and consecutive bindings sharing a separator skip
    /// the hash entirely.
    pub fn extend_full_block(&self, block: &mut [ValueId]) {
        let w = self.n_vars as usize;
        if w == 0 || block.is_empty() {
            return;
        }
        debug_assert_eq!(block.len() % w, 0, "partial binding in block");
        let n = block.len() / w;
        let mut keys: Vec<ValueId> = Vec::new();
        let mut witnesses: Vec<u32> = Vec::new();
        for d in self.n_connex..self.order.len() {
            let node = self.order[d];
            match &self.indexes[node] {
                None => {
                    // Root without a parent separator: one arbitrary witness.
                    let row = self.root_rows[0];
                    for b in 0..n {
                        self.bind_row(node, row, &mut block[b * w..(b + 1) * w]);
                    }
                }
                Some(idx) => {
                    let sep_vars = &self.sep_vars[node];
                    if sep_vars.is_empty() {
                        // Disconnected witness node: same first row for all.
                        let row = idx.get(&[])[0];
                        for b in 0..n {
                            self.bind_row(node, row, &mut block[b * w..(b + 1) * w]);
                        }
                        continue;
                    }
                    keys.clear();
                    keys.reserve(n * sep_vars.len());
                    for b in 0..n {
                        let binding = &block[b * w..(b + 1) * w];
                        keys.extend(sep_vars.iter().map(|&v| binding[v as usize]));
                    }
                    // Witness rows per binding, resolved in bulk. Collected
                    // first: the probe borrows `keys` while `block` must be
                    // rebound afterwards.
                    witnesses.clear();
                    witnesses.extend(idx.probe_batch(&keys, sep_vars.len()).map(|(_, rows)| {
                        debug_assert!(!rows.is_empty(), "reducer guarantees witnesses");
                        rows[0]
                    }));
                    for (b, &row) in witnesses.iter().enumerate() {
                        self.bind_row(node, row, &mut block[b * w..(b + 1) * w]);
                    }
                }
            }
        }
    }

    /// Resolves the match slot (a stable cursor handle) for `node` under the
    /// current binding, projecting the separator into `key_buf` (reused —
    /// probes allocate nothing).
    fn slot(&self, node: usize, binding: &[ValueId], key_buf: &mut Vec<ValueId>) -> Option<Slot> {
        match &self.indexes[node] {
            None => Some(Slot::Root),
            Some(idx) => {
                // Project the binding onto the separator (sorted var order
                // matches the index key columns).
                key_buf.clear();
                key_buf.extend(self.sep_vars[node].iter().map(|&v| binding[v as usize]));
                idx.gid_of(key_buf).map(Slot::Group)
            }
        }
    }

    fn rows(&self, node: usize, slot: Slot) -> &[u32] {
        match slot {
            Slot::Root => &self.root_rows,
            Slot::Group(g) => self.indexes[node]
                .as_ref()
                .expect("grouped slots only exist for indexed nodes")
                .group(g),
        }
    }

    fn bind_row(&self, node: usize, row_id: u32, binding: &mut [ValueId]) {
        let nr = &self.rels[node];
        for (col, &v) in nr.vars.iter().enumerate() {
            binding[v as usize] = nr.rel.at(row_id as usize, col);
        }
    }

    fn project_output(&self, binding: &[ValueId]) -> Tuple {
        self.ctx
            .decode_tuple(self.output.iter().map(|&v| binding[v as usize]))
    }

    /// Decodes a full binding (indexed by variable id) at the API boundary.
    fn decode_binding(&self, binding: &[ValueId]) -> Vec<Value> {
        binding.iter().map(|&id| self.ctx.decode(id)).collect()
    }
}

/// Reusable buffers for [`CdyEngine::contains_with`].
#[derive(Debug, Default)]
pub struct ContainsScratch {
    ids: Vec<ValueId>,
    binding: Vec<Option<ValueId>>,
    buf: Vec<ValueId>,
}

/// A stable cursor handle into a node's match list: either the whole root
/// relation or one group of a separator index.
#[derive(Clone, Copy, Debug)]
enum Slot {
    Root,
    Group(u32),
}

#[derive(Clone, Copy, Debug)]
struct Frame {
    slot: Slot,
    pos: usize,
}

#[derive(Clone, Copy)]
enum IterPhase {
    Start,
    Running,
    Done,
}

/// Owned enumeration state — no borrows, so enumerators can own their
/// engine (see [`OwnedCdyIter`]). Holds every buffer the per-answer step
/// needs; `next()` allocates nothing beyond the answer tuple itself.
struct IterCore {
    frames: Vec<Frame>,
    binding: Vec<ValueId>,
    key_buf: Vec<ValueId>,
    phase: IterPhase,
}

impl IterCore {
    fn new(eng: &CdyEngine) -> IterCore {
        IterCore {
            frames: Vec::with_capacity(eng.n_connex),
            binding: vec![ValueId::BOTTOM; eng.n_vars as usize],
            key_buf: Vec::with_capacity(8),
            phase: IterPhase::Start,
        }
    }

    /// Core backtracking step: leaves `self.binding` holding the next full
    /// assignment of the connex subtree; returns `false` when exhausted.
    fn advance(&mut self, eng: &CdyEngine) -> bool {
        match self.phase {
            IterPhase::Done => return false,
            IterPhase::Start => {
                self.phase = IterPhase::Running;
                if !eng.nonempty || eng.n_connex == 0 {
                    self.phase = IterPhase::Done;
                    return false;
                }
                // Descend all the way down; every lookup is non-empty after
                // reduction.
                for d in 0..eng.n_connex {
                    let node = eng.order[d];
                    let slot = self.descend(eng, node);
                    debug_assert!(slot.is_some(), "reducer guarantees matches");
                    if slot.is_none() {
                        self.phase = IterPhase::Done;
                        return false;
                    }
                }
                return true;
            }
            IterPhase::Running => {}
        }
        // Find the deepest frame that can advance.
        let mut d = eng.n_connex;
        loop {
            if d == 0 {
                self.phase = IterPhase::Done;
                return false;
            }
            d -= 1;
            let node = eng.order[d];
            let frame = self.frames[d];
            let rows = eng.rows(node, frame.slot);
            if frame.pos + 1 < rows.len() {
                self.frames[d].pos += 1;
                let row = rows[frame.pos + 1];
                eng.bind_row(node, row, &mut self.binding);
                break;
            }
            self.frames.pop();
        }
        // Re-descend below `d`.
        for depth in d + 1..eng.n_connex {
            let node = eng.order[depth];
            let slot = self.descend(eng, node);
            debug_assert!(slot.is_some(), "reducer guarantees matches");
            if slot.is_none() {
                self.phase = IterPhase::Done;
                return false;
            }
        }
        true
    }

    /// Pushes a fresh frame for `node` positioned at its first match and
    /// applies the binding. Returns `None` if there are no matches (which
    /// the full reducer rules out on reachable paths).
    fn descend(&mut self, eng: &CdyEngine, node: usize) -> Option<()> {
        let slot = eng.slot(node, &self.binding, &mut self.key_buf)?;
        let rows = eng.rows(node, slot);
        if rows.is_empty() {
            return None;
        }
        eng.bind_row(node, rows[0], &mut self.binding);
        self.frames.push(Frame { slot, pos: 0 });
        Some(())
    }

    /// Extends the current connex binding to a full homomorphism by taking
    /// an arbitrary witness at every non-connex node (the Lemma 8 step).
    fn extend_full(&mut self, eng: &CdyEngine) {
        for d in eng.n_connex..eng.order.len() {
            let node = eng.order[d];
            let slot = eng
                .slot(node, &self.binding, &mut self.key_buf)
                .expect("full reducer guarantees witnesses");
            let rows = eng.rows(node, slot);
            debug_assert!(!rows.is_empty());
            eng.bind_row(node, rows[0], &mut self.binding);
        }
    }
}

/// A constant-delay enumerator borrowing a [`CdyEngine`].
pub struct CdyIter<'a> {
    eng: &'a CdyEngine,
    core: IterCore,
}

impl<'a> CdyIter<'a> {
    /// Advances to the next answer; `None` when exhausted.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Tuple> {
        self.core
            .advance(self.eng)
            .then(|| self.eng.project_output(&self.core.binding))
    }

    /// Advances to the next answer and extends it to a *full* variable
    /// binding (Lemma 8's "extend once" step). Returns the output tuple and
    /// the decoded binding indexed by variable id.
    pub fn next_with_full_binding(&mut self) -> Option<(Tuple, Vec<Value>)> {
        if !self.core.advance(self.eng) {
            return None;
        }
        self.core.extend_full(self.eng);
        Some((
            self.eng.project_output(&self.core.binding),
            self.eng.decode_binding(&self.core.binding),
        ))
    }

    /// Advances to the next answer and appends the raw *connex* binding
    /// (`n_vars` ids, indexed by variable id; non-connex variables hold
    /// stale ids) to `out`; returns `false` when exhausted. Blocks of
    /// bindings gathered this way feed
    /// [`CdyEngine::extend_full_block`] — the id-level bulk form of
    /// [`CdyIter::next_with_full_binding`].
    pub fn next_binding_into(&mut self, out: &mut Vec<ValueId>) -> bool {
        if !self.core.advance(self.eng) {
            return false;
        }
        out.extend_from_slice(&self.core.binding);
        true
    }

    /// Drains the remaining answers into a vector.
    pub fn collect_all(mut self) -> Vec<Tuple> {
        let mut out = Vec::new();
        while let Some(t) = self.next() {
            out.push(t);
        }
        out
    }
}

impl ucq_enumerate::Enumerator for CdyIter<'_> {
    fn next(&mut self) -> Option<Tuple> {
        CdyIter::next(self)
    }
}

/// A constant-delay enumerator sharing its engine (`Arc`), suitable for
/// pipelines that outlive the building scope and for sessions that start
/// many enumerations off one preprocessed engine.
pub struct OwnedCdyIter {
    eng: Arc<CdyEngine>,
    core: IterCore,
}

impl OwnedCdyIter {
    /// Builds an enumerator over a shared preprocessed engine.
    pub fn new(eng: Arc<CdyEngine>) -> OwnedCdyIter {
        let core = IterCore::new(&eng);
        OwnedCdyIter { eng, core }
    }

    /// Access to the underlying engine (e.g. for membership tests).
    pub fn engine(&self) -> &CdyEngine {
        &self.eng
    }

    /// Advances to the next answer; `None` when exhausted.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Tuple> {
        self.core
            .advance(&self.eng)
            .then(|| self.eng.project_output(&self.core.binding))
    }

    /// See [`CdyIter::next_with_full_binding`].
    pub fn next_with_full_binding(&mut self) -> Option<(Tuple, Vec<Value>)> {
        if !self.core.advance(&self.eng) {
            return None;
        }
        self.core.extend_full(&self.eng);
        Some((
            self.eng.project_output(&self.core.binding),
            self.eng.decode_binding(&self.core.binding),
        ))
    }
}

impl ucq_enumerate::Enumerator for OwnedCdyIter {
    fn next(&mut self) -> Option<Tuple> {
        OwnedCdyIter::next(self)
    }
}

/// The id-level spine adapter: answers are appended to the caller's block
/// as raw output-projected id rows — no decode, no per-answer allocation.
/// This is what the Theorem 12 pipeline chains under its Cheater compiler.
impl ucq_enumerate::IdEnumerator for OwnedCdyIter {
    fn arity(&self) -> usize {
        self.eng.output_arity()
    }

    fn next_block(&mut self, block: &mut ucq_storage::IdBlock) -> usize {
        debug_assert_eq!(block.arity(), self.eng.output_arity());
        let mut n = 0;
        while !block.is_full() && self.core.advance(&self.eng) {
            block.push_row_from(
                self.eng
                    .output
                    .iter()
                    .map(|&v| self.core.binding[v as usize]),
            );
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_query::parse_cq;
    use ucq_storage::Relation;

    fn inst(rels: &[(&str, Vec<(i64, i64)>)]) -> Instance {
        rels.iter()
            .map(|(n, pairs)| (n.to_string(), Relation::from_pairs(pairs.iter().copied())))
            .collect()
    }

    #[test]
    fn full_projection_path_join() {
        let q = parse_cq("Q(x, z, y) <- R(x, z), S(z, y)").unwrap();
        let i = inst(&[("R", vec![(1, 2), (5, 6)]), ("S", vec![(2, 3), (2, 4)])]);
        let eng = CdyEngine::for_query(&q, &i).unwrap();
        assert!(eng.decide());
        let mut got = eng.iter().collect_all();
        got.sort();
        let expect: Vec<Tuple> = vec![
            Tuple::from(&[1i64, 2, 3][..]),
            Tuple::from(&[1i64, 2, 4][..]),
        ];
        assert_eq!(got, expect);
    }

    #[test]
    fn projection_mode_enumerates_s() {
        // π_{x,z} of R(x,z) ⋈ S(z,y): only z values with S-partners remain.
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let s: VSet = [0u32, 2].into_iter().collect(); // {x, z}
        let i = inst(&[("R", vec![(1, 2), (5, 9)]), ("S", vec![(2, 3)])]);
        let eng = CdyEngine::for_projection(&q, s, &i).unwrap();
        let got = eng.iter().collect_all();
        assert_eq!(got, vec![Tuple::from(&[1i64, 2][..])]);
    }

    #[test]
    fn non_free_connex_rejected() {
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let err = CdyEngine::for_query(&q, &Instance::new()).unwrap_err();
        assert!(matches!(err, EvalError::NotSConnex { .. }));
    }

    #[test]
    fn boolean_query_decides() {
        let q = parse_cq("B() <- R(x, y), S(y, z)").unwrap();
        let yes = inst(&[("R", vec![(1, 2)]), ("S", vec![(2, 3)])]);
        let eng = CdyEngine::for_query(&q, &yes).unwrap();
        assert!(eng.decide());
        assert_eq!(eng.iter().collect_all(), vec![Tuple::empty()]);

        let no = inst(&[("R", vec![(1, 2)]), ("S", vec![(9, 3)])]);
        let eng = CdyEngine::for_query(&q, &no).unwrap();
        assert!(!eng.decide());
        assert!(eng.iter().collect_all().is_empty());
    }

    #[test]
    fn missing_relation_is_empty() {
        let q = parse_cq("Q(x, y) <- R(x, y), S(y, x)").unwrap();
        let i = inst(&[("R", vec![(1, 2)])]);
        let eng = CdyEngine::for_query(&q, &i).unwrap();
        assert!(!eng.decide());
    }

    #[test]
    fn membership_testing() {
        let q = parse_cq("Q(x, z, y) <- R(x, z), S(z, y)").unwrap();
        let i = inst(&[("R", vec![(1, 2)]), ("S", vec![(2, 3)])]);
        let eng = CdyEngine::for_query(&q, &i).unwrap();
        assert!(eng.contains(&Tuple::from(&[1i64, 2, 3][..])));
        assert!(!eng.contains(&Tuple::from(&[1i64, 2, 9][..])));
        assert!(!eng.contains(&Tuple::from(&[9i64, 2, 3][..])));
    }

    #[test]
    fn membership_scratch_reuse() {
        let q = parse_cq("Q(x, z, y) <- R(x, z), S(z, y)").unwrap();
        let i = inst(&[("R", vec![(1, 2)]), ("S", vec![(2, 3)])]);
        let eng = CdyEngine::for_query(&q, &i).unwrap();
        let mut scratch = ContainsScratch::default();
        assert!(eng.contains_with(&Tuple::from(&[1i64, 2, 3][..]), &mut scratch));
        assert!(!eng.contains_with(&Tuple::from(&[1i64, 2, 9][..]), &mut scratch));
        assert!(eng.contains_with(&Tuple::from(&[1i64, 2, 3][..]), &mut scratch));
    }

    #[test]
    fn repeated_head_variable() {
        let q = parse_cq("Q(x, x, y) <- R(x, y)").unwrap();
        let i = inst(&[("R", vec![(1, 2)])]);
        let eng = CdyEngine::for_query(&q, &i).unwrap();
        let got = eng.iter().collect_all();
        assert_eq!(got, vec![Tuple::from(&[1i64, 1, 2][..])]);
        assert!(eng.contains(&Tuple::from(&[1i64, 1, 2][..])));
        // Inconsistent repeats are rejected by membership.
        assert!(!eng.contains(&Tuple::from(&[1i64, 7, 2][..])));
    }

    #[test]
    fn full_binding_extension() {
        // Enumerate π_{x} of R(x,z) ⋈ S(z,y) and extend each answer with a
        // witness for z and y.
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let s = VSet::singleton(0); // {x}
        let i = inst(&[("R", vec![(1, 2)]), ("S", vec![(2, 3), (2, 4)])]);
        let eng = CdyEngine::build_in(&q, s, vec![0], &i, &CtxView::new()).unwrap();
        let mut it = eng.iter();
        let (t, binding) = it.next_with_full_binding().unwrap();
        assert_eq!(t, Tuple::from(&[1i64][..]));
        // Witness: z = 2, y ∈ {3, 4}.
        assert_eq!(binding[2], Value::Int(2));
        assert!(binding[1] == Value::Int(3) || binding[1] == Value::Int(4));
        assert!(it.next_with_full_binding().is_none());
    }

    #[test]
    fn no_duplicates_from_witness_branches() {
        // π_{x}: many (z,y) witnesses per x must yield one answer.
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let s = VSet::singleton(0);
        let i = inst(&[
            ("R", vec![(1, 2), (1, 5)]),
            ("S", vec![(2, 3), (2, 4), (5, 6)]),
        ]);
        let eng = CdyEngine::build_in(&q, s, vec![0], &i, &CtxView::new()).unwrap();
        assert_eq!(eng.iter().collect_all(), vec![Tuple::from(&[1i64][..])]);
    }

    #[test]
    fn star_join_free_connex() {
        // Q(x,y,z) <- E(x,y), F(x,z): free-connex; output is the join.
        let q = parse_cq("Q(x, y, z) <- E(x, y), F(x, z)").unwrap();
        let i = inst(&[("E", vec![(1, 10), (1, 11)]), ("F", vec![(1, 20), (2, 9)])]);
        let eng = CdyEngine::for_query(&q, &i).unwrap();
        let mut got = eng.iter().collect_all();
        got.sort();
        assert_eq!(
            got,
            vec![
                Tuple::from(&[1i64, 10, 20][..]),
                Tuple::from(&[1i64, 11, 20][..]),
            ]
        );
    }

    #[test]
    fn shared_context_reuses_normalizations() {
        let ctx = CtxView::new();
        let i = inst(&[("R", vec![(1, 2), (2, 3)]), ("S", vec![(2, 4), (3, 5)])]);
        let q1 = parse_cq("Q(x, y, z) <- R(x, y), S(y, z)").unwrap();
        let q2 = parse_cq("P(a, b, c) <- R(a, b), S(b, c)").unwrap();
        let e1 = CdyEngine::for_query_in(&q1, &i, &ctx).unwrap();
        let e2 = CdyEngine::for_query_in(&q2, &i, &ctx).unwrap();
        assert!(
            ctx.stats().derived_hits >= 2,
            "q2 reused q1's normalizations"
        );
        let mut a1 = e1.iter().collect_all();
        let mut a2 = e2.iter().collect_all();
        a1.sort();
        a2.sort();
        assert_eq!(a1, a2, "same bodies, same answers");
    }
}
