//! The Constant-Delay Yannakakis (CDY) algorithm [11, 20].
//!
//! Given an `S`-connex acyclic CQ, [`CdyEngine::build`] runs the linear
//! preprocessing phase: it constructs an ext-S-connex tree, loads and
//! normalizes the atom relations, projects the extension nodes, and applies
//! the full reducer. Afterwards:
//!
//! * [`CdyEngine::iter`] enumerates the projection of the query onto `S`
//!   with constant delay and no duplicates (the paper's Theorem 3(1) upper
//!   bound; with `S = free(Q)` this enumerates `Q(I)`);
//! * [`CdyEngine::contains`] answers membership in constant time (used by
//!   Algorithm 1);
//! * [`CdyIter::next_with_full_binding`] additionally extends every answer
//!   to a full homomorphism — the "extend once" step in the proof of
//!   Lemma 8.

use crate::noderel::NodeRel;
use crate::reducer::full_reduce;
use std::fmt;
use ucq_hypergraph::{ext_s_connex_tree, ConnexTree, VSet};
use ucq_query::{Cq, VarId};
use ucq_storage::{HashIndex, Instance, Relation, RowSet, Tuple, Value};

/// Evaluation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The query is not `S`-connex, so CDY does not apply.
    NotSConnex {
        /// Query name.
        query: String,
        /// The `S` that failed.
        s: VSet,
    },
    /// Schema problem (arity mismatch between atom and stored relation).
    Schema(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NotSConnex { query, s } => {
                write!(f, "query {query} is not {s}-connex; CDY does not apply")
            }
            EvalError::Schema(m) => write!(f, "schema error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A preprocessed CDY evaluation of one CQ.
#[derive(Debug)]
pub struct CdyEngine {
    ct: ConnexTree,
    /// Connex-first traversal order; the first `n_connex` entries are `T'`.
    order: Vec<usize>,
    n_connex: usize,
    /// Reduced node relations.
    rels: Vec<NodeRel>,
    /// Per-node lookup index keyed on the separator with the parent
    /// (`None` only for the root).
    indexes: Vec<Option<HashIndex>>,
    /// Separator variable sets per node.
    seps: Vec<VSet>,
    /// Membership sets for connex nodes.
    row_sets: Vec<Option<RowSet>>,
    /// Row ids of the root (iterated in full).
    root_rows: Vec<u32>,
    /// Output spec: one variable per output position.
    output: Vec<VarId>,
    n_vars: u32,
    nonempty: bool,
}

impl CdyEngine {
    /// Builds the engine for `Q(I)` itself: `S = free(Q)`, output = head.
    /// Fails with [`EvalError::NotSConnex`] unless `Q` is free-connex.
    pub fn for_query(cq: &Cq, instance: &Instance) -> Result<CdyEngine, EvalError> {
        CdyEngine::build(cq, cq.free(), cq.head().to_vec(), instance)
    }

    /// Builds the engine enumerating `π_S(Q)` with output columns the sorted
    /// variables of `s`. Fails unless `Q` is `S`-connex.
    pub fn for_projection(
        cq: &Cq,
        s: VSet,
        instance: &Instance,
    ) -> Result<CdyEngine, EvalError> {
        CdyEngine::build(cq, s, s.iter().collect(), instance)
    }

    /// The general constructor: enumerates bindings of the connex subtree
    /// covering `s`, outputting the variables in `output` (each must lie in
    /// `s`).
    pub fn build(
        cq: &Cq,
        s: VSet,
        output: Vec<VarId>,
        instance: &Instance,
    ) -> Result<CdyEngine, EvalError> {
        for &v in &output {
            assert!(
                s.contains(v),
                "output variable {} not in the connex target {s}",
                cq.var_name(v)
            );
        }
        let h = cq.hypergraph();
        let ct = ext_s_connex_tree(&h, s).ok_or_else(|| EvalError::NotSConnex {
            query: cq.name().to_string(),
            s,
        })?;

        // Load atom relations.
        let n_nodes = ct.tree.len();
        let mut rels: Vec<Option<NodeRel>> = vec![None; n_nodes];
        for (i, node) in ct.tree.nodes().iter().enumerate() {
            if let Some(ai) = node.atom {
                let atom = &cq.atoms()[ai];
                let nr = match instance.get(&atom.rel) {
                    Some(stored) => {
                        NodeRel::from_atom(atom, stored).map_err(EvalError::Schema)?
                    }
                    // Missing relations are empty (as in the paper's
                    // reductions, which "leave relations empty").
                    None => NodeRel::from_atom(atom, &Relation::new(atom.args.len()))
                        .map_err(EvalError::Schema)?,
                };
                rels[i] = Some(nr);
            }
        }
        // Extension nodes: project any atom node that covers them.
        for i in 0..n_nodes {
            if rels[i].is_some() {
                continue;
            }
            let vars = ct.tree.nodes()[i].vars;
            let carrier = (0..n_nodes)
                .find(|&j| {
                    rels[j].is_some() && vars.is_subset(ct.tree.nodes()[j].vars)
                })
                .expect("inclusive extension: every node is inside some atom");
            let projected = rels[carrier]
                .as_ref()
                .expect("carrier loaded")
                .project(vars);
            rels[i] = Some(projected);
        }
        let mut rels: Vec<NodeRel> = rels.into_iter().map(|r| r.expect("all set")).collect();

        // Linear preprocessing: the full reducer.
        let nonempty = full_reduce(&ct.tree, &mut rels);

        // Lookup structures.
        let order = ct.order_connex_first();
        let n_connex = ct.connex_nodes().len();
        let mut seps = vec![VSet::EMPTY; n_nodes];
        let mut indexes: Vec<Option<HashIndex>> = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            match ct.tree.parent(i) {
                Some(_) => {
                    let sep = ct.tree.separator(i);
                    seps[i] = sep;
                    let cols = rels[i].cols_of(sep);
                    indexes.push(Some(HashIndex::build(&rels[i].rel, &cols)));
                }
                None => indexes.push(None),
            }
        }
        let mut row_sets: Vec<Option<RowSet>> = vec![None; n_nodes];
        for &i in order[..n_connex].iter() {
            row_sets[i] = Some(RowSet::build(&rels[i].rel));
        }
        let root = ct.tree.root();
        let root_rows: Vec<u32> = (0..rels[root].rel.len() as u32).collect();

        Ok(CdyEngine {
            ct,
            order,
            n_connex,
            rels,
            indexes,
            seps,
            row_sets,
            root_rows,
            output,
            n_vars: cq.n_vars(),
        nonempty,
        })
    }

    /// Whether the query has at least one answer (`Decide⟨Q⟩`).
    pub fn decide(&self) -> bool {
        self.nonempty
    }

    /// The output arity.
    pub fn output_arity(&self) -> usize {
        self.output.len()
    }

    /// The output variable per position.
    pub fn output_vars(&self) -> &[VarId] {
        &self.output
    }

    /// Starts a constant-delay enumeration of the (deduplicated) output.
    pub fn iter(&self) -> CdyIter<'_> {
        CdyIter {
            eng: self,
            core: IterCore::new(self),
        }
    }

    /// Consumes the engine into an owning enumerator.
    pub fn into_iter_owned(self) -> OwnedCdyIter {
        OwnedCdyIter::new(self)
    }

    /// Constant-time membership test for an output tuple. Only valid when
    /// the output variables cover the connex target `S` (true for
    /// [`CdyEngine::for_query`] and [`CdyEngine::for_projection`]).
    pub fn contains(&self, tuple: &Tuple) -> bool {
        assert_eq!(tuple.arity(), self.output.len(), "arity mismatch");
        let covered: VSet = self.output.iter().copied().collect();
        assert_eq!(
            covered, self.ct.s,
            "membership requires the output to cover S exactly"
        );
        if !self.nonempty {
            return false;
        }
        // Bind output positions, rejecting inconsistent repeats.
        let mut binding: Vec<Option<Value>> = vec![None; self.n_vars as usize];
        for (pos, &v) in self.output.iter().enumerate() {
            match binding[v as usize] {
                Some(existing) if existing != tuple[pos] => return false,
                _ => binding[v as usize] = Some(tuple[pos]),
            }
        }
        let mut buf: Vec<Value> = Vec::new();
        for &n in &self.order[..self.n_connex] {
            let nr = &self.rels[n];
            buf.clear();
            for &v in &nr.vars {
                match binding[v as usize] {
                    Some(val) => buf.push(val),
                    None => unreachable!("T' variables are all in S"),
                }
            }
            if !self
                .row_sets[n]
                .as_ref()
                .expect("connex nodes have row sets")
                .contains(&buf)
            {
                return false;
            }
        }
        true
    }

    /// Resolves the match slot (a stable cursor handle) for `node` under the
    /// current binding.
    fn slot(&self, node: usize, binding: &[Value]) -> Option<Slot> {
        match &self.indexes[node] {
            None => Some(Slot::Root),
            Some(idx) => {
                // Project the binding onto the separator (sorted var order
                // matches the index key columns).
                let key: Vec<Value> = self.seps[node]
                    .iter()
                    .map(|v| binding[v as usize])
                    .collect();
                idx.gid_of(&key).map(Slot::Group)
            }
        }
    }

    fn rows(&self, node: usize, slot: Slot) -> &[u32] {
        match slot {
            Slot::Root => &self.root_rows,
            Slot::Group(g) => self.indexes[node]
                .as_ref()
                .expect("grouped slots only exist for indexed nodes")
                .group(g),
        }
    }

    fn bind_row(&self, node: usize, row_id: u32, binding: &mut [Value]) {
        let nr = &self.rels[node];
        let row = nr.rel.row(row_id as usize);
        for (col, &v) in nr.vars.iter().enumerate() {
            binding[v as usize] = row[col];
        }
    }

    fn project_output(&self, binding: &[Value]) -> Tuple {
        Tuple(
            self.output
                .iter()
                .map(|&v| binding[v as usize])
                .collect(),
        )
    }
}

/// A stable cursor handle into a node's match list: either the whole root
/// relation or one group of a separator index.
#[derive(Clone, Copy, Debug)]
enum Slot {
    Root,
    Group(u32),
}

#[derive(Clone, Copy, Debug)]
struct Frame {
    slot: Slot,
    pos: usize,
}

#[derive(Clone, Copy)]
enum IterPhase {
    Start,
    Running,
    Done,
}

/// Owned enumeration state — no borrows, so enumerators can own their
/// engine (see [`OwnedCdyIter`]).
struct IterCore {
    frames: Vec<Frame>,
    binding: Vec<Value>,
    phase: IterPhase,
}

impl IterCore {
    fn new(eng: &CdyEngine) -> IterCore {
        IterCore {
            frames: Vec::with_capacity(eng.n_connex),
            binding: vec![Value::Bottom; eng.n_vars as usize],
            phase: IterPhase::Start,
        }
    }

    /// Core backtracking step: leaves `self.binding` holding the next full
    /// assignment of the connex subtree; returns `false` when exhausted.
    fn advance(&mut self, eng: &CdyEngine) -> bool {
        match self.phase {
            IterPhase::Done => return false,
            IterPhase::Start => {
                self.phase = IterPhase::Running;
                if !eng.nonempty || eng.n_connex == 0 {
                    self.phase = IterPhase::Done;
                    return false;
                }
                // Descend all the way down; every lookup is non-empty after
                // reduction.
                for d in 0..eng.n_connex {
                    let node = eng.order[d];
                    let slot = self.descend(eng, node);
                    debug_assert!(slot.is_some(), "reducer guarantees matches");
                    if slot.is_none() {
                        self.phase = IterPhase::Done;
                        return false;
                    }
                }
                return true;
            }
            IterPhase::Running => {}
        }
        // Find the deepest frame that can advance.
        let mut d = eng.n_connex;
        loop {
            if d == 0 {
                self.phase = IterPhase::Done;
                return false;
            }
            d -= 1;
            let node = eng.order[d];
            let frame = self.frames[d];
            let rows = eng.rows(node, frame.slot);
            if frame.pos + 1 < rows.len() {
                self.frames[d].pos += 1;
                let row = rows[frame.pos + 1];
                eng.bind_row(node, row, &mut self.binding);
                break;
            }
            self.frames.pop();
        }
        // Re-descend below `d`.
        for depth in d + 1..eng.n_connex {
            let node = eng.order[depth];
            let slot = self.descend(eng, node);
            debug_assert!(slot.is_some(), "reducer guarantees matches");
            if slot.is_none() {
                self.phase = IterPhase::Done;
                return false;
            }
        }
        true
    }

    /// Pushes a fresh frame for `node` positioned at its first match and
    /// applies the binding. Returns `None` if there are no matches (which
    /// the full reducer rules out on reachable paths).
    fn descend(&mut self, eng: &CdyEngine, node: usize) -> Option<()> {
        let slot = eng.slot(node, &self.binding)?;
        let rows = eng.rows(node, slot);
        if rows.is_empty() {
            return None;
        }
        eng.bind_row(node, rows[0], &mut self.binding);
        self.frames.push(Frame { slot, pos: 0 });
        Some(())
    }

    /// Extends the current connex binding to a full homomorphism by taking
    /// an arbitrary witness at every non-connex node (the Lemma 8 step).
    fn extend_full(&mut self, eng: &CdyEngine) {
        for d in eng.n_connex..eng.order.len() {
            let node = eng.order[d];
            let slot = eng
                .slot(node, &self.binding)
                .expect("full reducer guarantees witnesses");
            let rows = eng.rows(node, slot);
            debug_assert!(!rows.is_empty());
            eng.bind_row(node, rows[0], &mut self.binding);
        }
    }
}

/// A constant-delay enumerator borrowing a [`CdyEngine`].
pub struct CdyIter<'a> {
    eng: &'a CdyEngine,
    core: IterCore,
}

impl<'a> CdyIter<'a> {
    /// Advances to the next answer; `None` when exhausted.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Tuple> {
        self.core
            .advance(self.eng)
            .then(|| self.eng.project_output(&self.core.binding))
    }

    /// Advances to the next answer and extends it to a *full* variable
    /// binding (Lemma 8's "extend once" step). Returns the output tuple and
    /// the binding indexed by variable id.
    pub fn next_with_full_binding(&mut self) -> Option<(Tuple, Vec<Value>)> {
        if !self.core.advance(self.eng) {
            return None;
        }
        self.core.extend_full(self.eng);
        Some((
            self.eng.project_output(&self.core.binding),
            self.core.binding.clone(),
        ))
    }

    /// Drains the remaining answers into a vector.
    pub fn collect_all(mut self) -> Vec<Tuple> {
        let mut out = Vec::new();
        while let Some(t) = self.next() {
            out.push(t);
        }
        out
    }
}

impl ucq_enumerate::Enumerator for CdyIter<'_> {
    fn next(&mut self) -> Option<Tuple> {
        CdyIter::next(self)
    }
}

/// A constant-delay enumerator that owns its engine, suitable for pipelines
/// that outlive the building scope.
pub struct OwnedCdyIter {
    eng: Box<CdyEngine>,
    core: IterCore,
}

impl OwnedCdyIter {
    /// Builds an owning enumerator from a preprocessed engine.
    pub fn new(eng: CdyEngine) -> OwnedCdyIter {
        let core = IterCore::new(&eng);
        OwnedCdyIter {
            eng: Box::new(eng),
            core,
        }
    }

    /// Access to the underlying engine (e.g. for membership tests).
    pub fn engine(&self) -> &CdyEngine {
        &self.eng
    }

    /// Advances to the next answer; `None` when exhausted.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Tuple> {
        self.core
            .advance(&self.eng)
            .then(|| self.eng.project_output(&self.core.binding))
    }

    /// See [`CdyIter::next_with_full_binding`].
    pub fn next_with_full_binding(&mut self) -> Option<(Tuple, Vec<Value>)> {
        if !self.core.advance(&self.eng) {
            return None;
        }
        self.core.extend_full(&self.eng);
        Some((
            self.eng.project_output(&self.core.binding),
            self.core.binding.clone(),
        ))
    }
}

impl ucq_enumerate::Enumerator for OwnedCdyIter {
    fn next(&mut self) -> Option<Tuple> {
        OwnedCdyIter::next(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_query::parse_cq;

    fn inst(rels: &[(&str, Vec<(i64, i64)>)]) -> Instance {
        rels.iter()
            .map(|(n, pairs)| (n.to_string(), Relation::from_pairs(pairs.iter().copied())))
            .collect()
    }

    #[test]
    fn full_projection_path_join() {
        let q = parse_cq("Q(x, z, y) <- R(x, z), S(z, y)").unwrap();
        let i = inst(&[
            ("R", vec![(1, 2), (5, 6)]),
            ("S", vec![(2, 3), (2, 4)]),
        ]);
        let eng = CdyEngine::for_query(&q, &i).unwrap();
        assert!(eng.decide());
        let mut got = eng.iter().collect_all();
        got.sort();
        let expect: Vec<Tuple> = vec![
            Tuple::from(&[1i64, 2, 3][..]),
            Tuple::from(&[1i64, 2, 4][..]),
        ];
        assert_eq!(got, expect);
    }

    #[test]
    fn projection_mode_enumerates_s() {
        // π_{x,z} of R(x,z) ⋈ S(z,y): only z values with S-partners remain.
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let s: VSet = [0u32, 2].into_iter().collect(); // {x, z}
        let i = inst(&[("R", vec![(1, 2), (5, 9)]), ("S", vec![(2, 3)])]);
        let eng = CdyEngine::for_projection(&q, s, &i).unwrap();
        let got = eng.iter().collect_all();
        assert_eq!(got, vec![Tuple::from(&[1i64, 2][..])]);
    }

    #[test]
    fn non_free_connex_rejected() {
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let err = CdyEngine::for_query(&q, &Instance::new()).unwrap_err();
        assert!(matches!(err, EvalError::NotSConnex { .. }));
    }

    #[test]
    fn boolean_query_decides() {
        let q = parse_cq("B() <- R(x, y), S(y, z)").unwrap();
        let yes = inst(&[("R", vec![(1, 2)]), ("S", vec![(2, 3)])]);
        let eng = CdyEngine::for_query(&q, &yes).unwrap();
        assert!(eng.decide());
        assert_eq!(eng.iter().collect_all(), vec![Tuple::empty()]);

        let no = inst(&[("R", vec![(1, 2)]), ("S", vec![(9, 3)])]);
        let eng = CdyEngine::for_query(&q, &no).unwrap();
        assert!(!eng.decide());
        assert!(eng.iter().collect_all().is_empty());
    }

    #[test]
    fn missing_relation_is_empty() {
        let q = parse_cq("Q(x, y) <- R(x, y), S(y, x)").unwrap();
        let i = inst(&[("R", vec![(1, 2)])]);
        let eng = CdyEngine::for_query(&q, &i).unwrap();
        assert!(!eng.decide());
    }

    #[test]
    fn membership_testing() {
        let q = parse_cq("Q(x, z, y) <- R(x, z), S(z, y)").unwrap();
        let i = inst(&[("R", vec![(1, 2)]), ("S", vec![(2, 3)])]);
        let eng = CdyEngine::for_query(&q, &i).unwrap();
        assert!(eng.contains(&Tuple::from(&[1i64, 2, 3][..])));
        assert!(!eng.contains(&Tuple::from(&[1i64, 2, 9][..])));
        assert!(!eng.contains(&Tuple::from(&[9i64, 2, 3][..])));
    }

    #[test]
    fn repeated_head_variable() {
        let q = parse_cq("Q(x, x, y) <- R(x, y)").unwrap();
        let i = inst(&[("R", vec![(1, 2)])]);
        let eng = CdyEngine::for_query(&q, &i).unwrap();
        let got = eng.iter().collect_all();
        assert_eq!(got, vec![Tuple::from(&[1i64, 1, 2][..])]);
        assert!(eng.contains(&Tuple::from(&[1i64, 1, 2][..])));
        // Inconsistent repeats are rejected by membership.
        assert!(!eng.contains(&Tuple::from(&[1i64, 7, 2][..])));
    }

    #[test]
    fn full_binding_extension() {
        // Enumerate π_{x} of R(x,z) ⋈ S(z,y) and extend each answer with a
        // witness for z and y.
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let s = VSet::singleton(0); // {x}
        let i = inst(&[("R", vec![(1, 2)]), ("S", vec![(2, 3), (2, 4)])]);
        let eng = CdyEngine::build(&q, s, vec![0], &i).unwrap();
        let mut it = eng.iter();
        let (t, binding) = it.next_with_full_binding().unwrap();
        assert_eq!(t, Tuple::from(&[1i64][..]));
        // Witness: z = 2, y ∈ {3, 4}.
        assert_eq!(binding[2], Value::Int(2));
        assert!(binding[1] == Value::Int(3) || binding[1] == Value::Int(4));
        assert!(it.next_with_full_binding().is_none());
    }

    #[test]
    fn no_duplicates_from_witness_branches() {
        // π_{x}: many (z,y) witnesses per x must yield one answer.
        let q = parse_cq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let s = VSet::singleton(0);
        let i = inst(&[
            ("R", vec![(1, 2), (1, 5)]),
            ("S", vec![(2, 3), (2, 4), (5, 6)]),
        ]);
        let eng = CdyEngine::build(&q, s, vec![0], &i).unwrap();
        assert_eq!(eng.iter().collect_all(), vec![Tuple::from(&[1i64][..])]);
    }

    #[test]
    fn star_join_free_connex() {
        // Q(x,y,z) <- E(x,y), F(x,z): free-connex; output is the join.
        let q = parse_cq("Q(x, y, z) <- E(x, y), F(x, z)").unwrap();
        let i = inst(&[("E", vec![(1, 10), (1, 11)]), ("F", vec![(1, 20), (2, 9)])]);
        let eng = CdyEngine::for_query(&q, &i).unwrap();
        let mut got = eng.iter().collect_all();
        got.sort();
        assert_eq!(
            got,
            vec![
                Tuple::from(&[1i64, 10, 20][..]),
                Tuple::from(&[1i64, 11, 20][..]),
            ]
        );
    }
}
