//! Exhaustive validation of the GYO acyclicity test on *every* hypergraph
//! with ≤ 4 vertices and ≤ 4 edges, against the definition: a hypergraph is
//! acyclic iff some labeled tree over its edges satisfies the running
//! intersection property. Everything else in the workspace rests on this
//! primitive, so it gets the strongest test we can afford.

use ucq_hypergraph::{is_acyclic, Hypergraph, VSet};

/// All labeled trees on `m` nodes, as edge lists, via Prüfer sequences.
fn all_trees(m: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(m >= 1);
    if m == 1 {
        return vec![vec![]];
    }
    if m == 2 {
        return vec![vec![(0, 1)]];
    }
    // Enumerate all Prüfer sequences of length m-2 over {0..m}.
    let mut seqs = vec![vec![]];
    for _ in 0..m - 2 {
        let mut next = Vec::new();
        for s in &seqs {
            for v in 0..m {
                let mut t = s.clone();
                t.push(v);
                next.push(t);
            }
        }
        seqs = next;
    }
    seqs.into_iter()
        .map(|seq| prufer_to_tree(&seq, m))
        .collect()
}

fn prufer_to_tree(seq: &[usize], m: usize) -> Vec<(usize, usize)> {
    let mut degree = vec![1usize; m];
    for &v in seq {
        degree[v] += 1;
    }
    let mut edges = Vec::with_capacity(m - 1);
    let mut used = vec![false; m];
    let mut seq = seq.to_vec();
    while !seq.is_empty() {
        let v = seq[0];
        let leaf = (0..m)
            .find(|&u| degree[u] == 1 && !used[u])
            .expect("a leaf always exists");
        edges.push((leaf, v));
        used[leaf] = true;
        degree[v] -= 1;
        degree[leaf] -= 1;
        seq.remove(0);
        if degree[v] == 1 {
            // v may become a leaf; nothing else to do, the scan finds it.
        }
    }
    let remaining: Vec<usize> = (0..m).filter(|&u| !used[u] && degree[u] >= 1).collect();
    assert_eq!(remaining.len(), 2);
    edges.push((remaining[0], remaining[1]));
    edges
}

/// Ground truth: does any labeled tree over the edge multiset satisfy
/// running intersection?
fn acyclic_by_definition(edges: &[VSet]) -> bool {
    let m = edges.len();
    if m <= 1 {
        return true;
    }
    'tree: for tree in all_trees(m) {
        // Adjacency of the candidate join tree.
        let mut adj = vec![Vec::new(); m];
        for &(a, b) in &tree {
            adj[a].push(b);
            adj[b].push(a);
        }
        // Running intersection: for every vertex, the nodes containing it
        // form a connected subgraph of the tree.
        for v in 0..4u32 {
            let holders: Vec<usize> = (0..m).filter(|&i| edges[i].contains(v)).collect();
            if holders.len() <= 1 {
                continue;
            }
            // BFS within holders.
            let inset: std::collections::HashSet<usize> = holders.iter().copied().collect();
            let mut seen = std::collections::HashSet::from([holders[0]]);
            let mut stack = vec![holders[0]];
            while let Some(n) = stack.pop() {
                for &nb in &adj[n] {
                    if inset.contains(&nb) && seen.insert(nb) {
                        stack.push(nb);
                    }
                }
            }
            if seen.len() != holders.len() {
                continue 'tree;
            }
        }
        return true;
    }
    false
}

/// Multisets of `k` edges out of the 15 nonempty subsets of 4 vertices.
fn edge_multisets(k: usize) -> Vec<Vec<VSet>> {
    let all: Vec<VSet> = (1u64..16).map(VSet).collect();
    let mut out = Vec::new();
    fn rec(all: &[VSet], from: usize, k: usize, cur: &mut Vec<VSet>, out: &mut Vec<Vec<VSet>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in from..all.len() {
            cur.push(all[i]);
            rec(all, i, k, cur, out); // with repetition
            cur.pop();
        }
    }
    rec(&all, 0, k, &mut Vec::new(), &mut out);
    out
}

#[test]
fn gyo_matches_definition_on_all_small_hypergraphs() {
    let mut checked = 0usize;
    let mut acyclic_count = 0usize;
    for k in 1..=4 {
        for edges in edge_multisets(k) {
            let h = Hypergraph::new(4, edges.clone());
            let gyo = is_acyclic(&h);
            let truth = acyclic_by_definition(&edges);
            assert_eq!(
                gyo, truth,
                "GYO disagrees with the definition on edges {edges:?}"
            );
            checked += 1;
            if gyo {
                acyclic_count += 1;
            }
        }
    }
    // 15 + C(16,2) + C(17,3) + C(18,4) = 15 + 120 + 680 + 3060.
    assert_eq!(checked, 3875, "exhaustive coverage");
    assert!(acyclic_count > 0 && acyclic_count < checked);
}

#[test]
fn prufer_enumeration_counts() {
    // Cayley's formula: m^(m-2) labeled trees.
    assert_eq!(all_trees(1).len(), 1);
    assert_eq!(all_trees(2).len(), 1);
    assert_eq!(all_trees(3).len(), 3);
    assert_eq!(all_trees(4).len(), 16);
    for t in all_trees(4) {
        assert_eq!(t.len(), 3, "a tree on 4 nodes has 3 edges");
    }
}
