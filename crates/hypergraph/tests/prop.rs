//! Property tests for the hypergraph substrate.
//!
//! These exercise the structural theorems the library relies on:
//! * GYO-built join trees always satisfy running intersection;
//! * the constructive ext-S-connex algorithm agrees with the
//!   `(V, E ∪ {S})`-acyclicity characterization (asserted inside
//!   `ext_s_connex_tree` on every call) and its output always validates;
//! * for acyclic hypergraphs, a free-path exists iff the hypergraph is not
//!   free-connex (Bagan et al., restated as Theorem 3 in the paper).

use proptest::prelude::*;
use ucq_hypergraph::{
    ext_s_connex_tree, free_paths, is_acyclic, is_s_connex, join_tree, Hypergraph, VSet,
};

/// Strategy: a random hypergraph with up to `nv` vertices and `ne` edges of
/// size 1..=4.
fn arb_hypergraph(nv: u32, ne: usize) -> impl Strategy<Value = Hypergraph> {
    let edge = proptest::collection::btree_set(0..nv, 1..=4usize);
    proptest::collection::vec(edge, 1..=ne).prop_map(move |edges| {
        Hypergraph::new(
            nv,
            edges
                .into_iter()
                .map(|e| e.into_iter().collect::<VSet>())
                .collect(),
        )
    })
}

fn arb_subset(nv: u32) -> impl Strategy<Value = VSet> {
    proptest::collection::vec(proptest::bool::ANY, nv as usize).prop_map(|bits| {
        bits.iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u32))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn join_trees_validate((h,) in (arb_hypergraph(7, 6),)) {
        if let Some(t) = join_tree(&h) {
            prop_assert!(t.has_running_intersection());
            prop_assert!(t.is_inclusive_extension_of(&h));
            prop_assert!(is_acyclic(&h));
        } else {
            prop_assert!(!is_acyclic(&h) || h.n_edges() == 0);
        }
    }

    #[test]
    fn ext_connex_trees_validate(h in arb_hypergraph(7, 6), s in arb_subset(7)) {
        let s = s.inter(h.covered_vertices());
        // The call itself asserts the two S-connex characterizations agree.
        match ext_s_connex_tree(&h, s) {
            Some(ct) => {
                prop_assert_eq!(ct.validate(&h), Ok(()));
                prop_assert!(is_s_connex(&h, s));
            }
            None => prop_assert!(!is_s_connex(&h, s)),
        }
    }

    #[test]
    fn free_path_iff_not_free_connex(h in arb_hypergraph(7, 6), s in arb_subset(7)) {
        // Theorem (Bagan et al.): an acyclic hypergraph with free set S has
        // a free-path iff it is not S-connex.
        prop_assume!(is_acyclic(&h));
        let free = s.inter(h.covered_vertices());
        let has_fp = !free_paths(&h, free).is_empty();
        prop_assert_eq!(has_fp, !is_s_connex(&h, free),
            "free-path presence must match non-S-connexity");
    }

    #[test]
    fn connex_cover_is_exactly_s(h in arb_hypergraph(6, 5), s in arb_subset(6)) {
        let s = s.inter(h.covered_vertices());
        if let Some(ct) = ext_s_connex_tree(&h, s) {
            let cover = ct
                .connex_nodes()
                .iter()
                .fold(VSet::EMPTY, |a, &i| a.union(ct.tree.nodes()[i].vars));
            prop_assert_eq!(cover, s);
            // The connex-first order visits T' as a prefix.
            let order = ct.order_connex_first();
            let k = ct.connex_nodes().len();
            for (pos, &n) in order.iter().enumerate() {
                prop_assert_eq!(pos < k, ct.connex[n]);
            }
        }
    }

    #[test]
    fn free_paths_are_chordless_and_well_typed(h in arb_hypergraph(7, 6), s in arb_subset(7)) {
        let free = s.inter(h.covered_vertices());
        for fp in free_paths(&h, free) {
            let verts = &fp.0;
            prop_assert!(verts.len() >= 3);
            let (x, y) = fp.endpoints();
            prop_assert!(free.contains(x) && free.contains(y));
            for &z in fp.internal() {
                prop_assert!(!free.contains(z));
            }
            for i in 0..verts.len() {
                for j in i + 1..verts.len() {
                    let adjacent = h.are_neighbors(verts[i], verts[j]);
                    prop_assert_eq!(adjacent, j == i + 1,
                        "chordless violated at positions {} and {}", i, j);
                }
            }
        }
    }
}
