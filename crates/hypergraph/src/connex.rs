//! S-connexity tests and the ext-S-connex tree construction.
//!
//! A CQ is `S`-connex when its hypergraph has an ext-S-connex tree: a join
//! tree of an inclusive extension with a connected subtree covering exactly
//! `S` (paper §2, Figure 1). Equivalently — Bagan et al. [2],
//! Brault-Baron [5] — `H` and `(V, E ∪ {S})` are both acyclic. With
//! `S = free(Q)` this is free-connexity.
//!
//! The constructive algorithm here runs GYO *restricted to eliminating only
//! vertices outside `S`* (phase 1). On success every surviving (shrunken)
//! edge is contained in `S`, their union is exactly `S ∩ covered(H)`, and an
//! ordinary GYO pass over the survivors (phase 2) arranges them into the
//! connex subtree `T'`. Each original atom hangs below the node it was
//! absorbed into. Both characterizations are computed and asserted equal on
//! every call — a live consistency check of the theorem this crate encodes.

use crate::gyo::{gyo, gyo_restricted, is_acyclic};
use crate::hypergraph::Hypergraph;
use crate::join_tree::{ConnexTree, JoinTree, JtNode};
use crate::vset::VSet;

/// Builds a plain join tree of `h` (no extension nodes), or `None` if `h` is
/// cyclic or has no edges.
pub fn join_tree(h: &Hypergraph) -> Option<JoinTree> {
    if h.n_edges() == 0 {
        return None;
    }
    let run = gyo(h);
    if run.alive.len() != 1 {
        return None;
    }
    let nodes: Vec<JtNode> = h
        .edges()
        .iter()
        .enumerate()
        .map(|(i, &e)| JtNode {
            vars: e,
            atom: Some(i),
        })
        .collect();
    Some(JoinTree::new(nodes, run.absorbed_into))
}

/// Whether `h` is `S`-connex: both `h` and `h + {S}` are acyclic.
///
/// Note that `S` vertices not covered by any edge make the query malformed
/// (every query variable occurs in an atom); we require `S ⊆ covered(h)`.
pub fn is_s_connex(h: &Hypergraph, s: VSet) -> bool {
    s.is_subset(h.covered_vertices()) && is_acyclic(h) && is_acyclic(&h.with_edges(&[s]))
}

/// Constructs an ext-S-connex tree for `h`, or `None` if `h` is not
/// `S`-connex. The returned tree is rooted inside the connex subtree.
pub fn ext_s_connex_tree(h: &Hypergraph, s: VSet) -> Option<ConnexTree> {
    if h.n_edges() == 0 || !s.is_subset(h.covered_vertices()) {
        return None;
    }

    // Phase 1: restricted GYO.
    let p1 = gyo_restricted(h, s);
    let residual_ok = p1.residual_vertices().is_subset(s);

    // Phase 2: arrange the survivors into a tree.
    let residual_edges: Vec<VSet> = p1.alive.iter().map(|&i| p1.current[i]).collect();
    let p2 = if residual_ok {
        Some(gyo(&Hypergraph::new(h.n_vertices(), residual_edges)))
    } else {
        None
    };
    let constructive_ok = residual_ok && p2.as_ref().map(|r| r.alive.len() == 1).unwrap_or(false);

    // Live check of the classical equivalence (Bagan et al. / Brault-Baron).
    let direct_ok = is_s_connex(h, s);
    assert_eq!(
        constructive_ok, direct_ok,
        "S-connex characterizations disagree for S={s} on {h:?}"
    );
    if !constructive_ok {
        return None;
    }
    let p2 = p2.expect("checked above");

    // Assemble nodes. Every original edge gets a node with its full variable
    // set; every phase-1 survivor additionally gets a connex node with its
    // shrunken variable set (merged with the atom node when nothing shrank).
    let n_edges = h.n_edges();
    let mut nodes: Vec<JtNode> = Vec::with_capacity(n_edges + p1.alive.len());
    let mut atom_node: Vec<usize> = Vec::with_capacity(n_edges);
    for (i, &e) in h.edges().iter().enumerate() {
        atom_node.push(i);
        nodes.push(JtNode {
            vars: e,
            atom: Some(i),
        });
    }
    let mut connex_node: Vec<Option<usize>> = vec![None; n_edges];
    let mut connex_flag: Vec<bool> = vec![false; n_edges];
    for &i in &p1.alive {
        if p1.current[i] == h.edges()[i] {
            // Nothing shrank: the atom node itself joins T'.
            connex_node[i] = Some(atom_node[i]);
            connex_flag[atom_node[i]] = true;
        } else {
            connex_node[i] = Some(nodes.len());
            connex_flag.push(true);
            nodes.push(JtNode {
                vars: p1.current[i],
                atom: None,
            });
        }
    }

    // Parent links.
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    for i in 0..n_edges {
        if let Some(j) = p1.absorbed_into[i] {
            parent[atom_node[i]] = Some(atom_node[j]);
        } else if connex_node[i] != Some(atom_node[i]) {
            // Survivor with a separate connex node: hang the atom below it.
            parent[atom_node[i]] = connex_node[i];
        }
    }
    for (k, &i) in p1.alive.iter().enumerate() {
        if let Some(k2) = p2.absorbed_into[k] {
            let j = p1.alive[k2];
            parent[connex_node[i].unwrap()] = connex_node[j];
        }
    }

    let tree = JoinTree::new(nodes, parent);
    let ct = ConnexTree {
        tree,
        connex: connex_flag,
        s: s.inter(h.covered_vertices()),
    };
    debug_assert_eq!(ct.validate(h), Ok(()));
    Some(ct)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hg(n: u32, edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::new(
            n,
            edges.iter().map(|e| e.iter().copied().collect()).collect(),
        )
    }

    fn vs(vs: &[u32]) -> VSet {
        vs.iter().copied().collect()
    }

    #[test]
    fn join_tree_of_path() {
        let h = hg(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let t = join_tree(&h).unwrap();
        assert!(t.has_running_intersection());
        assert!(t.is_inclusive_extension_of(&h));
    }

    #[test]
    fn join_tree_rejects_cycle() {
        assert!(join_tree(&hg(3, &[&[0, 1], &[1, 2], &[2, 0]])).is_none());
    }

    #[test]
    fn figure1_construction() {
        // H = {{x,y},{w,y,z},{v,w}} with x=0,y=1,z=2,w=3,v=4; S={x,y,z}.
        let h = hg(5, &[&[0, 1], &[3, 1, 2], &[4, 3]]);
        let s = vs(&[0, 1, 2]);
        let ct = ext_s_connex_tree(&h, s).expect("Figure 1 is S-connex");
        ct.validate(&h).unwrap();
        // T' must cover exactly S.
        let cover = ct
            .connex_nodes()
            .iter()
            .fold(VSet::EMPTY, |a, &i| a.union(ct.tree.nodes()[i].vars));
        assert_eq!(cover, s);
    }

    #[test]
    fn path_query_free_connex_cases() {
        // Body R(x,z), S(z,y): the matmul query Π(x,y) is NOT {x,y}-connex,
        // but IS {x,z}-connex and {x,z,y}-connex.
        let h = hg(3, &[&[0, 2], &[2, 1]]);
        assert!(!is_s_connex(&h, vs(&[0, 1])));
        assert!(is_s_connex(&h, vs(&[0, 2])));
        assert!(is_s_connex(&h, vs(&[0, 1, 2])));
        assert!(ext_s_connex_tree(&h, vs(&[0, 1])).is_none());
        let ct = ext_s_connex_tree(&h, vs(&[0, 2])).unwrap();
        ct.validate(&h).unwrap();
    }

    #[test]
    fn empty_s_gives_boolean_tree() {
        let h = hg(3, &[&[0, 1], &[1, 2]]);
        let ct = ext_s_connex_tree(&h, VSet::EMPTY).unwrap();
        ct.validate(&h).unwrap();
        // The connex subtree is a single empty node.
        let cn = ct.connex_nodes();
        assert_eq!(cn.len(), 1);
        assert!(ct.tree.nodes()[cn[0]].vars.is_empty());
    }

    #[test]
    fn full_s_merges_all_nodes() {
        let h = hg(3, &[&[0, 1], &[1, 2]]);
        let ct = ext_s_connex_tree(&h, vs(&[0, 1, 2])).unwrap();
        ct.validate(&h).unwrap();
        // Every atom node is itself connex; no extension nodes needed.
        assert_eq!(ct.tree.len(), 2);
        assert!(ct.connex.iter().all(|&c| c));
    }

    #[test]
    fn cyclic_is_never_connex() {
        let tri = hg(3, &[&[0, 1], &[1, 2], &[2, 0]]);
        assert!(!is_s_connex(&tri, vs(&[0, 1, 2])));
        assert!(ext_s_connex_tree(&tri, vs(&[0, 1, 2])).is_none());
        assert!(ext_s_connex_tree(&tri, VSet::EMPTY).is_none());
    }

    #[test]
    fn example2_q1_not_free_connex_but_extension_helps() {
        // Q1(x,y,w) <- R1(x,z),R2(z,y),R3(y,w); x=0,y=1,w=2,z=3.
        let h = hg(4, &[&[0, 3], &[3, 1], &[1, 2]]);
        let free = vs(&[0, 1, 2]);
        assert!(!is_s_connex(&h, free));
        // Adding the provided atom R'(x,z,y) makes it free-connex (Fig. 2).
        let h2 = h.with_edges(&[vs(&[0, 3, 1])]);
        assert!(is_s_connex(&h2, free));
        let ct = ext_s_connex_tree(&h2, free).unwrap();
        ct.validate(&h2).unwrap();
    }

    #[test]
    fn disconnected_hypergraph_connex() {
        // Two disjoint edges; S spans both components.
        let h = hg(4, &[&[0, 1], &[2, 3]]);
        let s = vs(&[0, 2]);
        let ct = ext_s_connex_tree(&h, s).unwrap();
        ct.validate(&h).unwrap();
    }

    #[test]
    fn s_with_uncovered_vertex_rejected() {
        let h = hg(4, &[&[0, 1]]);
        assert!(!is_s_connex(&h, vs(&[0, 3])));
        assert!(ext_s_connex_tree(&h, vs(&[0, 3])).is_none());
    }
}
