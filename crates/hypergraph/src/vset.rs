//! Compact vertex sets.
//!
//! Queries in the data-complexity setting are fixed and small, so vertex sets
//! are represented as 64-bit bitmasks. This caps a single conjunctive query at
//! 64 variables (validated at construction); every query in the paper has at
//! most eight.

use std::fmt;

/// The maximum number of vertices a [`VSet`] can hold.
pub const MAX_VERTICES: usize = 64;

/// A set of hypergraph vertices (query variables) backed by a `u64` bitmask.
///
/// Vertices are identified by indices `0..64`. All operations are O(1) except
/// iteration, which is O(|set|).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VSet(pub u64);

impl VSet {
    /// The empty set.
    pub const EMPTY: VSet = VSet(0);

    /// Creates a set containing the single vertex `v`.
    #[inline]
    pub fn singleton(v: u32) -> VSet {
        debug_assert!((v as usize) < MAX_VERTICES);
        VSet(1u64 << v)
    }

    /// Creates the set `{0, 1, .., n-1}`.
    #[inline]
    pub fn full(n: u32) -> VSet {
        debug_assert!(n as usize <= MAX_VERTICES);
        if n == 64 {
            VSet(u64::MAX)
        } else {
            VSet((1u64 << n) - 1)
        }
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of vertices in the set.
    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether `v` is a member.
    #[inline]
    pub fn contains(self, v: u32) -> bool {
        debug_assert!((v as usize) < MAX_VERTICES);
        self.0 & (1u64 << v) != 0
    }

    /// Adds `v`, returning the new set.
    #[inline]
    #[must_use]
    pub fn insert(self, v: u32) -> VSet {
        debug_assert!((v as usize) < MAX_VERTICES);
        VSet(self.0 | (1u64 << v))
    }

    /// Removes `v`, returning the new set.
    #[inline]
    #[must_use]
    pub fn remove(self, v: u32) -> VSet {
        debug_assert!((v as usize) < MAX_VERTICES);
        VSet(self.0 & !(1u64 << v))
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(self, other: VSet) -> VSet {
        VSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn inter(self, other: VSet) -> VSet {
        VSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    #[must_use]
    pub fn diff(self, other: VSet) -> VSet {
        VSet(self.0 & !other.0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: VSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether `self` and `other` share at least one vertex.
    #[inline]
    pub fn intersects(self, other: VSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterates the members in increasing order.
    #[inline]
    pub fn iter(self) -> VSetIter {
        VSetIter(self.0)
    }

    /// The smallest member, if the set is non-empty.
    #[inline]
    pub fn first(self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros())
        }
    }
}

impl FromIterator<u32> for VSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut s = VSet::EMPTY;
        for v in iter {
            s = s.insert(v);
        }
        s
    }
}

impl IntoIterator for VSet {
    type Item = u32;
    type IntoIter = VSetIter;
    fn into_iter(self) -> VSetIter {
        self.iter()
    }
}

/// Iterator over the members of a [`VSet`].
#[derive(Clone)]
pub struct VSetIter(u64);

impl Iterator for VSetIter {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            return None;
        }
        let v = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for VSetIter {}

impl fmt::Debug for VSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for VSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Enumerates all subsets of `mask`, including the empty set and `mask`
/// itself. The number of subsets is `2^|mask|`; callers must keep `mask`
/// small.
pub fn subsets_of(mask: VSet) -> impl Iterator<Item = VSet> {
    // Standard sub-mask enumeration: iterate `sub = (sub - 1) & mask`.
    let m = mask.0;
    let mut sub = m;
    let mut done = false;
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        let cur = sub;
        if sub == 0 {
            done = true;
        } else {
            sub = (sub - 1) & m;
        }
        Some(VSet(cur))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_basics() {
        let e = VSet::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.iter().count(), 0);
        assert_eq!(e.first(), None);
    }

    #[test]
    fn singleton_and_membership() {
        let s = VSet::singleton(5);
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 1);
        assert_eq!(s.first(), Some(5));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let s = VSet::EMPTY.insert(3).insert(7).insert(3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(3), VSet::singleton(7));
        assert_eq!(s.remove(9), s);
    }

    #[test]
    fn union_inter_diff() {
        let a: VSet = [0u32, 1, 2].into_iter().collect();
        let b: VSet = [2u32, 3].into_iter().collect();
        assert_eq!(a.union(b), [0u32, 1, 2, 3].into_iter().collect());
        assert_eq!(a.inter(b), VSet::singleton(2));
        assert_eq!(a.diff(b), [0u32, 1].into_iter().collect());
    }

    #[test]
    fn subset_relation() {
        let a: VSet = [1u32, 2].into_iter().collect();
        let b: VSet = [0u32, 1, 2].into_iter().collect();
        assert!(a.is_subset(b));
        assert!(!b.is_subset(a));
        assert!(VSet::EMPTY.is_subset(a));
        assert!(a.is_subset(a));
    }

    #[test]
    fn intersects_is_symmetric() {
        let a: VSet = [1u32, 2].into_iter().collect();
        let b: VSet = [2u32, 3].into_iter().collect();
        let c: VSet = [4u32].into_iter().collect();
        assert!(a.intersects(b) && b.intersects(a));
        assert!(!a.intersects(c) && !c.intersects(a));
    }

    #[test]
    fn iteration_is_sorted() {
        let s: VSet = [9u32, 1, 40, 63].into_iter().collect();
        let got: Vec<u32> = s.iter().collect();
        assert_eq!(got, vec![1, 9, 40, 63]);
    }

    #[test]
    fn full_works_at_boundaries() {
        assert_eq!(VSet::full(0), VSet::EMPTY);
        assert_eq!(VSet::full(64).len(), 64);
        assert_eq!(VSet::full(3), [0u32, 1, 2].into_iter().collect());
    }

    #[test]
    fn subsets_enumeration_counts() {
        let m: VSet = [1u32, 4, 6].into_iter().collect();
        let subs: Vec<VSet> = subsets_of(m).collect();
        assert_eq!(subs.len(), 8);
        assert!(subs.contains(&VSet::EMPTY));
        assert!(subs.contains(&m));
        for s in subs {
            assert!(s.is_subset(m));
        }
    }

    #[test]
    fn subsets_of_empty() {
        let subs: Vec<VSet> = subsets_of(VSet::EMPTY).collect();
        assert_eq!(subs, vec![VSet::EMPTY]);
    }
}
