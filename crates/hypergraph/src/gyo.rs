//! The GYO (Graham / Yu–Özsoyoğlu) reduction.
//!
//! GYO repeatedly (1) deletes a vertex that occurs in at most one edge and
//! (2) deletes an edge contained in another edge. A hypergraph is
//! (α-)acyclic iff this process reduces it to at most one (empty) edge. The
//! absorption steps of rule (2) directly yield a join tree.
//!
//! [`gyo_restricted`] additionally takes a set `keep` of vertices that rule
//! (1) may never delete. Running it with `keep = S` is the constructive side
//! of the `S`-connex test used by [`crate::connex`]: the reduction succeeds
//! (every surviving vertex lies in `S`) iff `(V, E ∪ {S})` is acyclic,
//! provided the hypergraph itself is acyclic.

use crate::hypergraph::Hypergraph;
use crate::vset::VSet;

/// The outcome of a (possibly restricted) GYO run.
#[derive(Clone, Debug)]
pub struct GyoRun {
    /// Final, possibly shrunken, vertex set of each input edge.
    pub current: Vec<VSet>,
    /// `absorbed_into[i] = Some(j)` iff edge `i` was deleted because its
    /// current set was contained in edge `j`'s current set at that moment.
    /// These links form a forest whose roots are the surviving edges.
    pub absorbed_into: Vec<Option<usize>>,
    /// Indexes of edges still alive at the fixpoint.
    pub alive: Vec<usize>,
}

impl GyoRun {
    /// The union of the current vertex sets of all surviving edges.
    pub fn residual_vertices(&self) -> VSet {
        self.alive
            .iter()
            .fold(VSet::EMPTY, |acc, &i| acc.union(self.current[i]))
    }
}

/// Runs GYO to the fixpoint, never deleting vertices in `keep`.
///
/// With `keep = ∅` this is the classical acyclicity test: the input is
/// acyclic iff at most one edge survives.
pub fn gyo_restricted(h: &Hypergraph, keep: VSet) -> GyoRun {
    let mut current: Vec<VSet> = h.edges().to_vec();
    let mut absorbed_into: Vec<Option<usize>> = vec![None; current.len()];
    let mut alive_mask: Vec<bool> = vec![true; current.len()];

    loop {
        let mut changed = false;

        // Rule 1: delete vertices (outside `keep`) occurring in <= 1 edge.
        for v in 0..h.n_vertices() {
            if keep.contains(v) {
                continue;
            }
            let mut count = 0usize;
            let mut only = usize::MAX;
            for (i, &cur) in current.iter().enumerate() {
                if alive_mask[i] && cur.contains(v) {
                    count += 1;
                    only = i;
                    if count > 1 {
                        break;
                    }
                }
            }
            if count == 1 {
                current[only] = current[only].remove(v);
                changed = true;
            }
        }

        // Rule 2: absorb edges contained in other edges. Deterministic order:
        // the lowest-index absorbable edge goes first; ties on equal sets are
        // broken by absorbing the higher index into the lower one.
        'absorb: for i in 0..current.len() {
            if !alive_mask[i] {
                continue;
            }
            for j in 0..current.len() {
                if i == j || !alive_mask[j] {
                    continue;
                }
                let contained = current[i].is_subset(current[j]);
                let equal = current[i] == current[j];
                if contained && (!equal || i > j) {
                    alive_mask[i] = false;
                    absorbed_into[i] = Some(j);
                    changed = true;
                    continue 'absorb;
                }
            }
        }

        if !changed {
            break;
        }
    }

    let alive = alive_mask
        .iter()
        .enumerate()
        .filter_map(|(i, &a)| a.then_some(i))
        .collect();
    GyoRun {
        current,
        absorbed_into,
        alive,
    }
}

/// Runs the classical (unrestricted) GYO reduction.
pub fn gyo(h: &Hypergraph) -> GyoRun {
    gyo_restricted(h, VSet::EMPTY)
}

/// Whether the hypergraph is α-acyclic.
pub fn is_acyclic(h: &Hypergraph) -> bool {
    gyo(h).alive.len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hg(n: u32, edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::new(
            n,
            edges.iter().map(|e| e.iter().copied().collect()).collect(),
        )
    }

    #[test]
    fn empty_hypergraph_is_acyclic() {
        assert!(is_acyclic(&Hypergraph::new(0, vec![])));
        assert!(is_acyclic(&Hypergraph::new(3, vec![])));
    }

    #[test]
    fn single_edge_is_acyclic() {
        assert!(is_acyclic(&hg(3, &[&[0, 1, 2]])));
    }

    #[test]
    fn paths_are_acyclic() {
        assert!(is_acyclic(&hg(4, &[&[0, 1], &[1, 2], &[2, 3]])));
    }

    #[test]
    fn triangle_is_cyclic() {
        assert!(!is_acyclic(&hg(3, &[&[0, 1], &[1, 2], &[2, 0]])));
    }

    #[test]
    fn covered_triangle_is_acyclic() {
        // Adding the covering edge {0,1,2} makes the triangle acyclic.
        assert!(is_acyclic(&hg(3, &[&[0, 1], &[1, 2], &[2, 0], &[0, 1, 2]])));
    }

    #[test]
    fn four_cycle_is_cyclic() {
        assert!(!is_acyclic(&hg(4, &[&[0, 1], &[1, 2], &[2, 3], &[3, 0]])));
    }

    #[test]
    fn star_is_acyclic() {
        assert!(is_acyclic(&hg(4, &[&[0, 3], &[1, 3], &[2, 3]])));
    }

    #[test]
    fn example13_style_pyramid_is_cyclic() {
        // {x,y,w},{y,z,w},{x,z,w}: pairwise intersections block GYO.
        assert!(!is_acyclic(&hg(4, &[&[0, 1, 3], &[1, 2, 3], &[0, 2, 3]])));
    }

    #[test]
    fn absorption_forest_links_edges() {
        // Vertex 2 is isolated and gets deleted first, so the two edges
        // become equal and one absorbs the other; either direction yields a
        // valid join tree.
        let h = hg(3, &[&[0, 1], &[0, 1, 2]]);
        let run = gyo(&h);
        assert_eq!(run.alive.len(), 1);
        let root = run.alive[0];
        let other = 1 - root;
        assert_eq!(run.absorbed_into[other], Some(root));
        assert_eq!(run.absorbed_into[root], None);
    }

    #[test]
    fn restricted_run_keeps_vertices() {
        // Path 0-1-2 with keep = {1}: vertex 1 can never be deleted, but the
        // reduction still absorbs everything into one edge.
        let h = hg(3, &[&[0, 1], &[1, 2]]);
        let run = gyo_restricted(&h, VSet::singleton(1));
        assert_eq!(run.alive.len(), 1);
        assert_eq!(run.residual_vertices(), VSet::singleton(1));
    }

    #[test]
    fn restricted_run_blocks_on_shared_kept_path() {
        // Path 0-1-2-3 with keep = {0,3}: vertices 1 and 2 are shared by two
        // edges until their partners shrink; the reduction still succeeds
        // because ends collapse inward. Residual must be within {0,3}?
        // 0-1 edge: 0 kept, 1 shared. 2-3 edge: 3 kept, 2 shared. The middle
        // edge {1,2} blocks: 1 and 2 are each in two edges, and neither end
        // edge can shrink below {0,1} / {2,3}. So residual has non-kept
        // vertices -> the hypergraph is not {0,3}-connex, matching the
        // free-path (0,1,2,3).
        let h = hg(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let run = gyo_restricted(&h, [0u32, 3].into_iter().collect());
        let resid = run.residual_vertices();
        assert!(!resid.diff([0u32, 3].into_iter().collect()).is_empty());
    }

    #[test]
    fn duplicate_edges_absorb() {
        let h = hg(2, &[&[0, 1], &[0, 1]]);
        let run = gyo(&h);
        assert_eq!(run.alive.len(), 1);
    }
}
