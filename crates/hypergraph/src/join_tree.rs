//! Join trees and their validation.
//!
//! A join tree of a hypergraph has the hyperedges as nodes and satisfies the
//! *running intersection property*: for every vertex, the nodes containing it
//! form a connected subtree. We represent trees with parent pointers (one
//! root), which matches how the Yannakakis passes traverse them.

use crate::hypergraph::Hypergraph;
use crate::vset::VSet;

/// A node of a [`JoinTree`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JtNode {
    /// Variables covered by this node.
    pub vars: VSet,
    /// Index of the original atom/edge this node carries, if any. Nodes with
    /// `atom == None` are *extension* nodes (subsets of an original edge)
    /// introduced by the ext-S-connex construction.
    pub atom: Option<usize>,
}

/// A rooted join tree.
#[derive(Clone, Debug)]
pub struct JoinTree {
    nodes: Vec<JtNode>,
    /// `parent[i] = Some(p)` for all non-root nodes; exactly one root.
    parent: Vec<Option<usize>>,
    root: usize,
}

impl JoinTree {
    /// Builds a tree from nodes and parent links. Panics if the links do not
    /// form a single tree rooted at the unique parentless node.
    pub fn new(nodes: Vec<JtNode>, parent: Vec<Option<usize>>) -> JoinTree {
        assert_eq!(nodes.len(), parent.len());
        assert!(!nodes.is_empty(), "a join tree needs at least one node");
        let roots: Vec<usize> = parent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.is_none().then_some(i))
            .collect();
        assert_eq!(roots.len(), 1, "expected exactly one root, got {roots:?}");
        let root = roots[0];
        let tree = JoinTree {
            nodes,
            parent,
            root,
        };
        // Reject cycles / unreachable nodes.
        assert_eq!(
            tree.bfs_order().len(),
            tree.nodes.len(),
            "parent links must form a single connected tree"
        );
        tree
    }

    /// The nodes in index order.
    pub fn nodes(&self) -> &[JtNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: a join tree has at least one node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The parent of `i`, if `i` is not the root.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// The variables shared between `i` and its parent (the semijoin key).
    /// Empty for the root.
    pub fn separator(&self, i: usize) -> VSet {
        match self.parent[i] {
            Some(p) => self.nodes[i].vars.inter(self.nodes[p].vars),
            None => VSet::EMPTY,
        }
    }

    /// Children lists for every node.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.nodes.len()];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[*p].push(i);
            }
        }
        ch
    }

    /// Nodes in BFS order from the root (parents before children).
    pub fn bfs_order(&self) -> Vec<usize> {
        let ch = self.children();
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(n) = queue.pop_front() {
            order.push(n);
            queue.extend(ch[n].iter().copied());
        }
        order
    }

    /// The union of all node variable sets.
    pub fn all_vars(&self) -> VSet {
        self.nodes
            .iter()
            .fold(VSet::EMPTY, |acc, n| acc.union(n.vars))
    }

    /// Checks the running intersection property: for every vertex `v`, the
    /// nodes containing `v` induce a connected subtree.
    pub fn has_running_intersection(&self) -> bool {
        for v in self.all_vars().iter() {
            let holders: Vec<usize> = (0..self.nodes.len())
                .filter(|&i| self.nodes[i].vars.contains(v))
                .collect();
            if holders.len() <= 1 {
                continue;
            }
            // Walk up from each holder; the node where the walk first meets
            // an already-visited holder region must itself contain v for the
            // region to be connected. Simpler: check that the subgraph
            // induced by holders is connected via parent links.
            let holder_set: std::collections::HashSet<usize> = holders.iter().copied().collect();
            let mut seen = std::collections::HashSet::new();
            let mut stack = vec![holders[0]];
            seen.insert(holders[0]);
            let ch = self.children();
            while let Some(n) = stack.pop() {
                let mut nbrs: Vec<usize> = ch[n].clone();
                if let Some(p) = self.parent[n] {
                    nbrs.push(p);
                }
                for m in nbrs {
                    if holder_set.contains(&m) && seen.insert(m) {
                        stack.push(m);
                    }
                }
            }
            if seen.len() != holders.len() {
                return false;
            }
        }
        true
    }

    /// Checks that this tree is a join tree of an *inclusive extension* of
    /// `h`: every edge of `h` appears as the vars of a node carrying its atom
    /// index, and every node is a subset of some edge of `h`.
    pub fn is_inclusive_extension_of(&self, h: &Hypergraph) -> bool {
        for (i, &e) in h.edges().iter().enumerate() {
            let ok = self.nodes.iter().any(|n| n.atom == Some(i) && n.vars == e);
            if !ok {
                return false;
            }
        }
        self.nodes
            .iter()
            .all(|n| h.edges().iter().any(|&e| n.vars.is_subset(e)))
    }
}

/// An ext-S-connex tree: a join tree of an inclusive extension of `H`
/// together with a connected subtree `T'` whose variables are exactly `S`
/// (Bagan et al., see Figure 1 of the paper).
#[derive(Clone, Debug)]
pub struct ConnexTree {
    /// The underlying join tree, rooted at a node of `T'`.
    pub tree: JoinTree,
    /// Membership flags for `T'`.
    pub connex: Vec<bool>,
    /// The target variable set `S`.
    pub s: VSet,
}

impl ConnexTree {
    /// Node indexes of `T'`.
    pub fn connex_nodes(&self) -> Vec<usize> {
        (0..self.tree.len()).filter(|&i| self.connex[i]).collect()
    }

    /// A traversal order that lists all of `T'` (starting at the root)
    /// before any non-connex node, with parents always before children.
    pub fn order_connex_first(&self) -> Vec<usize> {
        let ch = self.tree.children();
        let mut order = Vec::with_capacity(self.tree.len());
        let mut later = Vec::new();
        let mut stack = vec![self.tree.root()];
        while let Some(n) = stack.pop() {
            order.push(n);
            for &c in &ch[n] {
                if self.connex[c] {
                    stack.push(c);
                } else {
                    later.push(c);
                }
            }
        }
        // Non-connex subtrees, in BFS order from their anchors.
        let mut queue: std::collections::VecDeque<usize> = later.into();
        while let Some(n) = queue.pop_front() {
            order.push(n);
            queue.extend(ch[n].iter().copied());
        }
        order
    }

    /// Validates every structural promise of an ext-S-connex tree.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), String> {
        if !self.tree.has_running_intersection() {
            return Err("running intersection violated".into());
        }
        if !self.tree.is_inclusive_extension_of(h) {
            return Err("not a join tree of an inclusive extension".into());
        }
        let cover = self
            .connex_nodes()
            .iter()
            .fold(VSet::EMPTY, |acc, &i| acc.union(self.tree.nodes()[i].vars));
        if cover != self.s {
            return Err(format!(
                "connex subtree covers {cover}, expected {}",
                self.s
            ));
        }
        if !self.connex[self.tree.root()] {
            return Err("root must belong to the connex subtree".into());
        }
        // T' connected: every connex node's parent is connex (root aside).
        for i in self.connex_nodes() {
            if let Some(p) = self.tree.parent(i) {
                if !self.connex[p] {
                    return Err(format!("connex node {i} has non-connex parent {p}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(vars: &[u32], atom: Option<usize>) -> JtNode {
        JtNode {
            vars: vars.iter().copied().collect(),
            atom,
        }
    }

    #[test]
    fn path_tree_has_running_intersection() {
        // {0,1} - {1,2} - {2,3}
        let t = JoinTree::new(
            vec![
                node(&[0, 1], Some(0)),
                node(&[1, 2], Some(1)),
                node(&[2, 3], Some(2)),
            ],
            vec![None, Some(0), Some(1)],
        );
        assert!(t.has_running_intersection());
        assert_eq!(t.separator(1), VSet::singleton(1));
        assert_eq!(t.separator(0), VSet::EMPTY);
    }

    #[test]
    fn broken_running_intersection_detected() {
        // {0,1} - {2,3} - {1,2}: vertex 1 occurs in nodes 0 and 2 but not in
        // the middle node.
        let t = JoinTree::new(
            vec![
                node(&[0, 1], Some(0)),
                node(&[2, 3], Some(1)),
                node(&[1, 2], Some(2)),
            ],
            vec![None, Some(0), Some(1)],
        );
        assert!(!t.has_running_intersection());
    }

    #[test]
    fn bfs_order_starts_at_root() {
        let t = JoinTree::new(
            vec![
                node(&[0], Some(0)),
                node(&[0, 1], Some(1)),
                node(&[0, 2], Some(2)),
            ],
            vec![Some(1), None, Some(1)],
        );
        let order = t.bfs_order();
        assert_eq!(order[0], 1);
        assert_eq!(order.len(), 3);
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn rejects_forest() {
        JoinTree::new(
            vec![node(&[0], Some(0)), node(&[1], Some(1))],
            vec![None, None],
        );
    }

    #[test]
    fn inclusive_extension_check() {
        let h = Hypergraph::new(
            3,
            vec![
                [0u32, 1].into_iter().collect(),
                [1u32, 2].into_iter().collect(),
            ],
        );
        let good = JoinTree::new(
            vec![
                node(&[0, 1], Some(0)),
                node(&[1], None),
                node(&[1, 2], Some(1)),
            ],
            vec![None, Some(0), Some(1)],
        );
        assert!(good.is_inclusive_extension_of(&h));
        let bad = JoinTree::new(
            vec![node(&[0, 1], Some(0)), node(&[0, 1, 2], Some(1))],
            vec![None, Some(0)],
        );
        assert!(!bad.is_inclusive_extension_of(&h));
    }

    #[test]
    fn figure1_connex_tree_validates() {
        // Figure 1 of the paper: H with edges {x,y}, {w,y,z}, {v,w};
        // vars: x=0, y=1, z=2, w=3, v=4; S = {x,y,z}.
        let h = Hypergraph::new(
            5,
            vec![
                [0u32, 1].into_iter().collect(),
                [3u32, 1, 2].into_iter().collect(),
                [4u32, 3].into_iter().collect(),
            ],
        );
        // T: {x,y} - {y,z} - {w,y,z} - {v,w}, T' = {{x,y},{y,z}}.
        let tree = JoinTree::new(
            vec![
                node(&[0, 1], Some(0)),
                node(&[1, 2], None),
                node(&[3, 1, 2], Some(1)),
                node(&[4, 3], Some(2)),
            ],
            vec![None, Some(0), Some(1), Some(2)],
        );
        let ct = ConnexTree {
            tree,
            connex: vec![true, true, false, false],
            s: [0u32, 1, 2].into_iter().collect(),
        };
        ct.validate(&h).unwrap();
        let order = ct.order_connex_first();
        assert!(ct.connex[order[0]] && ct.connex[order[1]]);
        assert!(!ct.connex[order[2]] && !ct.connex[order[3]]);
    }
}
