//! Cliques and hypercliques.
//!
//! The hyperclique hypothesis (paper §2) concerns finding `l`-hypercliques
//! in `k`-uniform hypergraphs: a set of `l > k` vertices all of whose
//! `k`-subsets are edges. These helpers back the hardness-witness machinery
//! (Theorem 3(3)) and the diagnostics in `ucq-core` (e.g. the hyperclique
//! that Example 39's extension introduces).

use crate::hypergraph::Hypergraph;
use crate::vset::VSet;

/// Whether the vertex set forms a clique in the Gaifman graph (every two
/// members co-occur in some edge).
pub fn is_gaifman_clique(h: &Hypergraph, set: VSet) -> bool {
    let vs: Vec<u32> = set.iter().collect();
    for i in 0..vs.len() {
        for j in i + 1..vs.len() {
            if !h.are_neighbors(vs[i], vs[j]) {
                return false;
            }
        }
    }
    true
}

/// Whether `set` is an `l`-hyperclique in a `k`-uniform hypergraph: it has
/// `l` vertices and each of its `k`-subsets is an edge.
pub fn is_hyperclique(h: &Hypergraph, set: VSet, k: u32) -> bool {
    if set.len() <= k {
        return false;
    }
    let edges: std::collections::HashSet<VSet> = h.edges().iter().copied().collect();
    k_subsets(set, k).into_iter().all(|s| edges.contains(&s))
}

/// Finds some `l`-hyperclique in a `k`-uniform hypergraph, if one exists.
pub fn find_hyperclique(h: &Hypergraph, l: u32, k: u32) -> Option<VSet> {
    if !h.is_uniform(k) || l <= k {
        return None;
    }
    let verts: Vec<u32> = h.covered_vertices().iter().collect();
    let mut chosen = VSet::EMPTY;
    search(h, &verts, 0, l, k, &mut chosen)
}

fn search(
    h: &Hypergraph,
    verts: &[u32],
    from: usize,
    l: u32,
    k: u32,
    chosen: &mut VSet,
) -> Option<VSet> {
    if chosen.len() == l {
        return is_hyperclique(h, *chosen, k).then_some(*chosen);
    }
    for (idx, &v) in verts.iter().enumerate().skip(from) {
        let cand = chosen.insert(v);
        // Prune: every complete k-subset of the candidate must be an edge.
        if complete_subsets_ok(h, cand, k) {
            *chosen = cand;
            if let Some(found) = search(h, verts, idx + 1, l, k, chosen) {
                return Some(found);
            }
            *chosen = chosen.remove(v);
        }
    }
    None
}

fn complete_subsets_ok(h: &Hypergraph, set: VSet, k: u32) -> bool {
    if set.len() < k {
        return true;
    }
    let edges: std::collections::HashSet<VSet> = h.edges().iter().copied().collect();
    k_subsets(set, k).into_iter().all(|s| edges.contains(&s))
}

/// All `k`-element subsets of `set`.
pub fn k_subsets(set: VSet, k: u32) -> Vec<VSet> {
    let vs: Vec<u32> = set.iter().collect();
    let mut out = Vec::new();
    let mut cur = VSet::EMPTY;
    fn rec(vs: &[u32], from: usize, k: u32, cur: &mut VSet, out: &mut Vec<VSet>) {
        if cur.len() == k {
            out.push(*cur);
            return;
        }
        let need = (k - cur.len()) as usize;
        for idx in from..vs.len() {
            if vs.len() - idx < need {
                break;
            }
            *cur = cur.insert(vs[idx]);
            rec(vs, idx + 1, k, cur, out);
            *cur = cur.remove(vs[idx]);
        }
    }
    rec(&vs, 0, k, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hg(n: u32, edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::new(
            n,
            edges.iter().map(|e| e.iter().copied().collect()).collect(),
        )
    }

    fn vs(v: &[u32]) -> VSet {
        v.iter().copied().collect()
    }

    #[test]
    fn k_subsets_counts() {
        assert_eq!(k_subsets(vs(&[0, 1, 2, 3]), 2).len(), 6);
        assert_eq!(k_subsets(vs(&[0, 1, 2, 3]), 3).len(), 4);
        assert_eq!(k_subsets(vs(&[0, 1]), 3).len(), 0);
    }

    #[test]
    fn triangle_is_tetra3_free_but_k4_has_one() {
        // Tetra<3>: 4-hyperclique in a 2-uniform graph = a K4.
        let tri = hg(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        assert_eq!(find_hyperclique(&tri, 4, 2), None);
        let k4 = hg(4, &[&[0, 1], &[0, 2], &[0, 3], &[1, 2], &[1, 3], &[2, 3]]);
        assert_eq!(find_hyperclique(&k4, 4, 2), Some(vs(&[0, 1, 2, 3])));
    }

    #[test]
    fn example39_extension_hyperclique() {
        // Example 39: adding R(x1,x2,x3) to {R1(x2,x3,x4),R2(x1,x3,x4),
        // R3(x1,x2,x4)} creates the hyperclique {x1,x2,x3,x4} in a 3-uniform
        // hypergraph. x1=0..x4=3.
        let h = hg(4, &[&[1, 2, 3], &[0, 2, 3], &[0, 1, 3], &[0, 1, 2]]);
        assert!(h.is_uniform(3));
        assert_eq!(find_hyperclique(&h, 4, 3), Some(vs(&[0, 1, 2, 3])));
        // Without the added edge there is no hyperclique.
        let h0 = hg(4, &[&[1, 2, 3], &[0, 2, 3], &[0, 1, 3]]);
        assert_eq!(find_hyperclique(&h0, 4, 3), None);
    }

    #[test]
    fn gaifman_clique() {
        let h = hg(4, &[&[0, 1, 2], &[2, 3]]);
        assert!(is_gaifman_clique(&h, vs(&[0, 1, 2])));
        assert!(!is_gaifman_clique(&h, vs(&[0, 3])));
        assert!(is_gaifman_clique(&h, vs(&[3])));
        assert!(is_gaifman_clique(&h, VSet::EMPTY));
    }

    #[test]
    fn non_uniform_rejected() {
        let h = hg(3, &[&[0, 1], &[0, 1, 2]]);
        assert_eq!(find_hyperclique(&h, 3, 2), None);
    }
}
