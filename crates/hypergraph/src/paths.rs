//! Chordless paths and free-paths.
//!
//! A *free-path* in a CQ `Q` (paper §2) is a sequence `(x, z1, …, zk, y)`
//! with `k ≥ 1` such that `x, y` are free, all `zi` are existential, and the
//! sequence is a chordless path in the Gaifman graph of `H(Q)`: consecutive
//! variables are neighbours and no other pair is. An acyclic CQ has a
//! free-path iff it is not free-connex (Bagan et al.).

use crate::hypergraph::Hypergraph;
use crate::vset::VSet;

/// A free-path, stored as its vertex sequence `x, z1, …, zk, y`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FreePath(pub Vec<u32>);

impl FreePath {
    /// All variables on the path.
    pub fn vars(&self) -> VSet {
        self.0.iter().copied().collect()
    }

    /// The two free endpoints.
    pub fn endpoints(&self) -> (u32, u32) {
        (self.0[0], *self.0.last().expect("paths are non-empty"))
    }

    /// The existential middle `z1, …, zk`.
    pub fn internal(&self) -> &[u32] {
        &self.0[1..self.0.len() - 1]
    }
}

/// Enumerates every free-path of the hypergraph `h` with free variables
/// `free`. Paths are normalized so the first endpoint is smaller than the
/// last, i.e. each path is reported once, not once per direction.
pub fn free_paths(h: &Hypergraph, free: VSet) -> Vec<FreePath> {
    let adj = h.gaifman();
    let covered = h.covered_vertices();
    let existential = covered.diff(free);
    let mut out = Vec::new();
    let mut path: Vec<u32> = Vec::new();

    fn extend(
        adj: &[VSet],
        free: VSet,
        existential: VSet,
        path: &mut Vec<u32>,
        path_set: VSet,
        out: &mut Vec<FreePath>,
    ) {
        let last = *path.last().expect("non-empty");
        for next in adj[last as usize].iter() {
            if path_set.contains(next) {
                continue;
            }
            // Chordless: `next` may only touch the last path vertex.
            if adj[next as usize].inter(path_set) != VSet::singleton(last) {
                continue;
            }
            if free.contains(next) {
                // Close the path if it has at least one internal vertex and
                // is normalized (start < end avoids mirror duplicates).
                if path.len() >= 2 && path[0] < next {
                    let mut p = path.clone();
                    p.push(next);
                    out.push(FreePath(p));
                }
            } else if existential.contains(next) {
                path.push(next);
                extend(adj, free, existential, path, path_set.insert(next), out);
                path.pop();
            }
        }
    }

    for x in free.inter(covered).iter() {
        path.clear();
        path.push(x);
        extend(
            &adj,
            free,
            existential,
            &mut path,
            VSet::singleton(x),
            &mut out,
        );
    }
    out
}

/// Whether the hypergraph has any free-path for the given free set.
pub fn has_free_path(h: &Hypergraph, free: VSet) -> bool {
    // Cheap early exit via the full enumeration; query hypergraphs are tiny.
    !free_paths(h, free).is_empty()
}

/// Enumerates chordless paths between `from` and `to` whose internal
/// vertices all lie in `via` (endpoints excluded from `via` checks). Used by
/// the Lemma 28 machinery to reconnect provided variable sets.
pub fn chordless_paths_between(h: &Hypergraph, from: u32, to: u32, via: VSet) -> Vec<Vec<u32>> {
    let adj = h.gaifman();
    let mut out = Vec::new();
    let mut path = vec![from];

    fn extend(
        adj: &[VSet],
        to: u32,
        via: VSet,
        path: &mut Vec<u32>,
        path_set: VSet,
        out: &mut Vec<Vec<u32>>,
    ) {
        let last = *path.last().expect("non-empty");
        for next in adj[last as usize].iter() {
            if path_set.contains(next) {
                continue;
            }
            if adj[next as usize].inter(path_set) != VSet::singleton(last) {
                continue;
            }
            if next == to {
                let mut p = path.clone();
                p.push(next);
                out.push(p);
            } else if via.contains(next) {
                path.push(next);
                extend(adj, to, via, path, path_set.insert(next), out);
                path.pop();
            }
        }
    }

    if from == to {
        return vec![vec![from]];
    }
    if h.are_neighbors(from, to) {
        out.push(vec![from, to]);
        // A direct edge is the only chordless connection; any longer path
        // would have the chord (from, to).
        return out;
    }
    extend(&adj, to, via, &mut path, VSet::singleton(from), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hg(n: u32, edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::new(
            n,
            edges.iter().map(|e| e.iter().copied().collect()).collect(),
        )
    }

    fn vs(v: &[u32]) -> VSet {
        v.iter().copied().collect()
    }

    #[test]
    fn matmul_query_has_single_free_path() {
        // Π(x,y) <- A(x,z), B(z,y): x=0, y=1, z=2.
        let h = hg(3, &[&[0, 2], &[2, 1]]);
        let fps = free_paths(&h, vs(&[0, 1]));
        assert_eq!(fps, vec![FreePath(vec![0, 2, 1])]);
        assert_eq!(fps[0].endpoints(), (0, 1));
        assert_eq!(fps[0].internal(), &[2]);
    }

    #[test]
    fn free_connex_path_query_has_none() {
        // Q(x,z,y) <- A(x,z), B(z,y): everything free.
        let h = hg(3, &[&[0, 2], &[2, 1]]);
        assert!(free_paths(&h, vs(&[0, 1, 2])).is_empty());
    }

    #[test]
    fn example2_q1_free_path() {
        // Q1(x,y,w) <- R1(x,z),R2(z,y),R3(y,w); x=0,y=1,w=2,z=3.
        // Free-path (x,z,y).
        let h = hg(4, &[&[0, 3], &[3, 1], &[1, 2]]);
        let fps = free_paths(&h, vs(&[0, 1, 2]));
        assert_eq!(fps, vec![FreePath(vec![0, 3, 1])]);
    }

    #[test]
    fn example13_q1_long_free_path() {
        // Q1(x,y,v,u) <- R1(x,z1),R2(z1,z2),R3(z2,z3),R4(z3,y),R5(y,v,u)
        // x=0,y=1,v=2,u=3,z1=4,z2=5,z3=6. Free-path (x,z1,z2,z3,y).
        let h = hg(7, &[&[0, 4], &[4, 5], &[5, 6], &[6, 1], &[1, 2, 3]]);
        let fps = free_paths(&h, vs(&[0, 1, 2, 3]));
        assert_eq!(fps, vec![FreePath(vec![0, 4, 5, 6, 1])]);
    }

    #[test]
    fn chord_kills_path() {
        // x-z-y path but also an edge {x,y}: (x,z,y) is not chordless.
        let h = hg(3, &[&[0, 2], &[2, 1], &[0, 1]]);
        assert!(free_paths(&h, vs(&[0, 1])).is_empty());
    }

    #[test]
    fn multiple_free_paths_of_star() {
        // Example 31 (k=4) body: R1(x1,z),R2(x2,z),R3(x3,z);
        // z=0, x1=1, x2=2, x3=3; free = {x1,x2,x3} (head Q1).
        let h = hg(4, &[&[1, 0], &[2, 0], &[3, 0]]);
        let fps = free_paths(&h, vs(&[1, 2, 3]));
        // (x1,z,x2), (x1,z,x3), (x2,z,x3).
        assert_eq!(fps.len(), 3);
        for fp in &fps {
            assert_eq!(fp.internal(), &[0]);
        }
    }

    #[test]
    fn free_path_through_multiple_existentials_only() {
        // 0 - 4 - 1 with 4 existential; plus 0 - 5, 5 free: no path from 5.
        let h = hg(6, &[&[0, 4], &[4, 1], &[0, 5]]);
        let fps = free_paths(&h, vs(&[0, 1, 5]));
        assert_eq!(fps, vec![FreePath(vec![0, 4, 1])]);
    }

    #[test]
    fn chordless_between_adjacent_is_direct_edge() {
        let h = hg(3, &[&[0, 1], &[1, 2]]);
        assert_eq!(
            chordless_paths_between(&h, 0, 1, VSet::EMPTY),
            vec![vec![0, 1]]
        );
    }

    #[test]
    fn chordless_between_via_internal() {
        let h = hg(3, &[&[0, 1], &[1, 2]]);
        assert_eq!(
            chordless_paths_between(&h, 0, 2, VSet::singleton(1)),
            vec![vec![0, 1, 2]]
        );
        assert!(chordless_paths_between(&h, 0, 2, VSet::EMPTY).is_empty());
    }
}
