//! Hypergraph substrate for the `ucq-enum` workspace.
//!
//! This crate implements the structural machinery of Carmeli & Kröll,
//! *On the Enumeration Complexity of Unions of Conjunctive Queries*
//! (PODS 2019), §2:
//!
//! * [`VSet`] — 64-bit vertex bitsets;
//! * [`Hypergraph`] — query hypergraphs with Gaifman adjacency;
//! * [`gyo`] — the GYO reduction and α-acyclicity;
//! * [`join_tree`] — join trees, running-intersection validation, and
//!   [`ConnexTree`], the ext-S-connex trees of Figure 1;
//! * [`connex`] — S-connexity tests and the constructive ext-S-connex tree
//!   algorithm;
//! * [`paths`] — chordless paths and free-paths;
//! * [`cliques`] — hypercliques (the Tetra⟨k⟩ objects behind Theorem 3(3)).

#![forbid(unsafe_code)]

pub mod cliques;
pub mod connex;
pub mod gyo;
pub mod hypergraph;
pub mod join_tree;
pub mod paths;
pub mod vset;

pub use connex::{ext_s_connex_tree, is_s_connex, join_tree};
pub use gyo::{gyo, gyo_restricted, is_acyclic, GyoRun};
pub use hypergraph::Hypergraph;
pub use join_tree::{ConnexTree, JoinTree, JtNode};
pub use paths::{free_paths, has_free_path, FreePath};
pub use vset::{subsets_of, VSet, MAX_VERTICES};
