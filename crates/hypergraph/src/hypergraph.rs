//! Hypergraphs associated with conjunctive queries.

use crate::vset::VSet;

/// A hypergraph `H = (V, E)` with `V = {0, .., n_vertices-1}` and hyperedges
/// stored as bitsets.
///
/// For a CQ `Q`, the hypergraph `H(Q)` has the variables of `Q` as vertices
/// and one edge per atom (the set of variables occurring in it). Duplicate
/// edges are allowed (two atoms may use the same variable set).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Hypergraph {
    n_vertices: u32,
    edges: Vec<VSet>,
}

impl Hypergraph {
    /// Creates a hypergraph. Panics if any edge mentions a vertex `>= n`.
    pub fn new(n_vertices: u32, edges: Vec<VSet>) -> Hypergraph {
        let all = VSet::full(n_vertices);
        for e in &edges {
            assert!(
                e.is_subset(all),
                "edge {e} mentions a vertex outside 0..{n_vertices}"
            );
        }
        Hypergraph { n_vertices, edges }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> u32 {
        self.n_vertices
    }

    /// The edges, in insertion order.
    pub fn edges(&self) -> &[VSet] {
        &self.edges
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The union of all edges (the vertices that actually occur).
    pub fn covered_vertices(&self) -> VSet {
        self.edges.iter().fold(VSet::EMPTY, |acc, &e| acc.union(e))
    }

    /// Returns a new hypergraph with `extra` appended to the edge list.
    #[must_use]
    pub fn with_edges(&self, extra: &[VSet]) -> Hypergraph {
        let mut edges = self.edges.clone();
        edges.extend_from_slice(extra);
        Hypergraph::new(self.n_vertices, edges)
    }

    /// The neighbours of `v`: all vertices sharing an edge with `v`,
    /// excluding `v` itself. This is adjacency in the Gaifman graph.
    pub fn neighbors(&self, v: u32) -> VSet {
        let mut s = VSet::EMPTY;
        for &e in &self.edges {
            if e.contains(v) {
                s = s.union(e);
            }
        }
        s.remove(v)
    }

    /// Adjacency of the Gaifman graph for every vertex.
    pub fn gaifman(&self) -> Vec<VSet> {
        (0..self.n_vertices).map(|v| self.neighbors(v)).collect()
    }

    /// Whether two vertices co-occur in some edge.
    pub fn are_neighbors(&self, u: u32, v: u32) -> bool {
        u != v && self.edges.iter().any(|e| e.contains(u) && e.contains(v))
    }

    /// Whether the hypergraph is `k`-uniform (every edge has exactly `k`
    /// vertices). Returns `false` for an empty edge set.
    pub fn is_uniform(&self, k: u32) -> bool {
        !self.edges.is_empty() && self.edges.iter().all(|e| e.len() == k)
    }

    /// Partitions the *covered* vertices into connected components of the
    /// Gaifman graph. Vertices not on any edge are ignored.
    pub fn connected_components(&self) -> Vec<VSet> {
        let covered = self.covered_vertices();
        let mut seen = VSet::EMPTY;
        let mut comps = Vec::new();
        for v in covered.iter() {
            if seen.contains(v) {
                continue;
            }
            // BFS over edges: grow the component until a fixpoint.
            let mut comp = VSet::singleton(v);
            loop {
                let mut next = comp;
                for &e in &self.edges {
                    if e.intersects(comp) {
                        next = next.union(e);
                    }
                }
                if next == comp {
                    break;
                }
                comp = next;
            }
            seen = seen.union(comp);
            comps.push(comp);
        }
        comps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hg(n: u32, edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::new(
            n,
            edges.iter().map(|e| e.iter().copied().collect()).collect(),
        )
    }

    #[test]
    fn neighbors_of_path() {
        // Path hypergraph x-y-z via edges {x,y},{y,z}.
        let h = hg(3, &[&[0, 1], &[1, 2]]);
        assert_eq!(h.neighbors(0), VSet::singleton(1));
        assert_eq!(h.neighbors(1), [0u32, 2].into_iter().collect());
        assert!(h.are_neighbors(0, 1));
        assert!(!h.are_neighbors(0, 2));
        assert!(!h.are_neighbors(1, 1));
    }

    #[test]
    fn covered_vertices_ignores_isolated() {
        let h = hg(5, &[&[0, 1], &[3]]);
        assert_eq!(h.covered_vertices(), [0u32, 1, 3].into_iter().collect());
    }

    #[test]
    fn with_edges_appends() {
        let h = hg(3, &[&[0, 1]]);
        let h2 = h.with_edges(&[[1u32, 2].into_iter().collect()]);
        assert_eq!(h2.n_edges(), 2);
        assert_eq!(h.n_edges(), 1);
    }

    #[test]
    fn uniformity() {
        assert!(hg(4, &[&[0, 1], &[2, 3]]).is_uniform(2));
        assert!(!hg(4, &[&[0, 1], &[1, 2, 3]]).is_uniform(2));
        assert!(!Hypergraph::new(2, vec![]).is_uniform(2));
    }

    #[test]
    fn components_of_disconnected() {
        let h = hg(6, &[&[0, 1], &[1, 2], &[4, 5]]);
        let comps = h.connected_components();
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&[0u32, 1, 2].into_iter().collect()));
        assert!(comps.contains(&[4u32, 5].into_iter().collect()));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_edge() {
        hg(2, &[&[0, 5]]);
    }
}
