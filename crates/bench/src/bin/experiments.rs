//! The experiment runner: regenerates every table in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p ucq-bench --bin experiments            # full
//! cargo run --release -p ucq-bench --bin experiments -- --quick # smaller sizes
//! ```
//!
//! Output is Markdown; see DESIGN.md §3 for the experiment index.

use std::collections::HashSet;
use std::time::Instant;
use ucq_bench::{engine_for, fmt_dur, fmt_ns, instance_for, run_naive, run_pipeline};
use ucq_core::{classify, Verdict};
use ucq_enumerate::{Cheater, Enumerator, IdDecoder, IdVecEnumerator};
use ucq_query::parse_cq;
use ucq_reductions::{
    bmm_via_cq, bmm_via_example20, has_4clique_via_example22, has_4clique_via_example31,
    has_4clique_via_example39, has_triangle_via_example18, BoolMat, Graph,
};
use ucq_storage::{CtxView, Tuple, Value, ValueId};
use ucq_workloads::{catalog, random_instance, InstanceSpec};
use ucq_yannakakis::{evaluate_cq_naive, CdyEngine};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 1 } else { 4 };

    println!(
        "# Experiment run ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    e1_e2_e3(scale);
    e10_guarding(scale);
    e4_matmul(scale);
    e5_triangle(scale);
    e6_fourclique(quick);
    e7_cheater(scale);
    e8_classifier();
    e9_cdy_vs_naive(scale);
    e11_alg1_vs_pipeline(scale);
    e12_concurrent_serving(scale);
    e13_fd_extension(scale);
    e15_resilient_serving(scale);
}

/// E1/E2/E3: the DelayClin pipelines vs the naive union, growing |I|.
fn e1_e2_e3(scale: usize) {
    for (exp, id, base_rows) in [
        (
            "E1 (Theorem 4 / Algorithm 1)",
            "two_free_connex",
            8_000usize,
        ),
        ("E2 (Theorem 12 / Example 2)", "example2", 8_000),
        ("E3 (Example 13, only hard members)", "example13", 1_000),
    ] {
        println!("## {exp} — `{id}`\n");
        println!("| |I| | answers | prep | median delay | p99 delay | max delay | naive total | speedup |");
        println!("|---:|---:|---:|---:|---:|---:|---:|---:|");
        let engine = engine_for(id);
        for step in 0..4 {
            let rows = base_rows * scale * (1 << step) / 8;
            let inst = instance_for(id, rows, 7 + step as u64);
            let (answers, prof) = run_pipeline(&engine, &inst);
            let (naive, naive_t) = run_naive(&engine, &inst);
            assert_eq!(answers.len(), naive.len(), "{id} strategy disagreement");
            let pipe_total = prof.preprocessing + prof.total;
            let speedup = naive_t.as_secs_f64() / pipe_total.as_secs_f64();
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | {:.2}x |",
                inst.total_tuples(),
                answers.len(),
                fmt_dur(prof.preprocessing),
                fmt_ns(prof.median_ns()),
                fmt_ns(prof.p99_ns()),
                fmt_ns(prof.max_ns()),
                fmt_dur(naive_t),
                speedup,
            );
        }
        println!();
    }
}

/// E10: the guarding contrast — same body, heads flip tractability
/// (Example 20 vs Example 21).
fn e10_guarding(scale: usize) {
    println!("## E10 (guarding flips tractability: Example 20 vs Example 21)\n");
    println!("| |I| | Ex21 answers | Ex21 prep | Ex21 median delay | Ex21 total | Ex20 answers | Ex20 naive total |");
    println!("|---:|---:|---:|---:|---:|---:|---:|");
    let eng21 = engine_for("example21");
    let eng20 = engine_for("example20");
    for step in 0..3 {
        let rows = 1_000 * scale * (1 << step);
        let inst21 = instance_for("example21", rows, 11);
        let (a21, prof) = run_pipeline(&eng21, &inst21);
        let inst20 = instance_for("example20", rows, 11);
        let (a20, t20) = run_naive(&eng20, &inst20);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            inst21.total_tuples(),
            a21.len(),
            fmt_dur(prof.preprocessing),
            fmt_ns(prof.median_ns()),
            fmt_dur(prof.preprocessing + prof.total),
            a20.len(),
            fmt_dur(t20),
        );
    }
    println!();
}

/// E4: Boolean matrix multiplication through queries (Lemma 25 forward).
fn e4_matmul(scale: usize) {
    println!("## E4 (mat-mul through queries: Theorem 3(2) and Example 20)\n");
    println!("| n | ones(AB) | direct bitset | via Π CQ | via Example 20 UCQ | all equal |");
    println!("|---:|---:|---:|---:|---:|---:|");
    for step in 0..3 {
        let n = 32 * scale.min(2) * (1 << step);
        let a = BoolMat::random(n, 0.08, n as u64);
        let b = BoolMat::random(n, 0.08, n as u64 + 1);
        let t0 = Instant::now();
        let direct = a.multiply(&b);
        let t_direct = t0.elapsed();
        let t0 = Instant::now();
        let via_pi = bmm_via_cq(&a, &b);
        let t_pi = t0.elapsed();
        let t0 = Instant::now();
        let via20 = bmm_via_example20(&a, &b);
        let t_20 = t0.elapsed();
        let equal = direct == via_pi && direct == via20;
        assert!(equal);
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            n,
            direct.count_ones(),
            fmt_dur(t_direct),
            fmt_dur(t_pi),
            fmt_dur(t_20),
            equal,
        );
    }
    println!();
}

/// E5: triangle detection through Example 18.
fn e5_triangle(scale: usize) {
    println!("## E5 (triangle detection through Example 18)\n");
    println!("| n | edges | direct | via UCQ | agree | t_direct | t_ucq |");
    println!("|---:|---:|---:|---:|---:|---:|---:|");
    for step in 0..3 {
        let n = 48 * scale.min(2) * (1 << step);
        // Around the triangle threshold: small sizes stay triangle-free,
        // larger ones cross it, so both outcomes appear in the table.
        let p = 4.0 / n as f64;
        let g = Graph::gnp(n, p, 13 + step as u64);
        let t0 = Instant::now();
        let direct = g.has_triangle();
        let td = t0.elapsed();
        let t0 = Instant::now();
        let via = has_triangle_via_example18(&g);
        let tu = t0.elapsed();
        assert_eq!(direct, via);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            n,
            g.n_edges(),
            direct,
            via,
            direct == via,
            fmt_dur(td),
            fmt_dur(tu),
        );
    }
    println!();
}

/// E6: 4-clique detection through Examples 22, 31 (k=4) and 39.
fn e6_fourclique(quick: bool) {
    println!("## E6 (4-clique detection through Examples 22 / 31 / 39)\n");
    println!("| n | p | direct | ex22 | ex31 | ex39 | t_direct | t_ex22 | t_ex31 | t_ex39 |");
    println!("|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    let sizes: &[usize] = if quick { &[16, 24] } else { &[16, 24, 32, 40] };
    for (i, &n) in sizes.iter().enumerate() {
        let p = 0.3;
        let g = Graph::gnp(n, p, 17 + i as u64);
        let t0 = Instant::now();
        let direct = g.has_4clique();
        let td = t0.elapsed();
        let t0 = Instant::now();
        let r22 = has_4clique_via_example22(&g);
        let t22 = t0.elapsed();
        let t0 = Instant::now();
        let r31 = has_4clique_via_example31(&g);
        let t31 = t0.elapsed();
        let t0 = Instant::now();
        let r39 = has_4clique_via_example39(&g);
        let t39 = t0.elapsed();
        assert!(direct == r22 && direct == r31 && direct == r39);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            n,
            p,
            direct,
            r22,
            r31,
            r39,
            fmt_dur(td),
            fmt_dur(t22),
            fmt_dur(t31),
            fmt_dur(t39),
        );
    }
    println!();
}

/// E7: the Cheater compiler's overhead on duplicated id streams. Both
/// sides run the block-pumping id spine and decode every emitted answer
/// to a value tuple, so the delta is exactly the dedup + pacing machinery.
fn e7_cheater(scale: usize) {
    println!("## E7 (Cheater's Lemma overhead, Lemma 5)\n");
    println!("| stream len | dup factor | unique | raw drain | cheater drain | overhead |");
    println!("|---:|---:|---:|---:|---:|---:|");
    for dup in [1usize, 2, 4] {
        let unique = 250_000 * scale / 4;
        let ctx = CtxView::new();
        let ids: Vec<ValueId> = (0..unique)
            .flat_map(|i| {
                let row = [
                    ctx.intern(Value::Int(i as i64)),
                    ctx.intern(Value::Int((i * 7) as i64)),
                ];
                std::iter::repeat_n(row, dup)
            })
            .flatten()
            .collect();
        let t0 = Instant::now();
        let mut raw = IdDecoder::new(IdVecEnumerator::from_flat(2, ids.clone()), ctx.clone());
        let raw_n = raw.collect_all().len();
        let t_raw = t0.elapsed();
        let t0 = Instant::now();
        let mut ch = Cheater::new(
            IdVecEnumerator::from_flat(2, ids.clone()),
            dup.max(1),
            ctx.clone(),
        );
        let ch_out = ch.collect_all();
        let t_ch = t0.elapsed();
        assert_eq!(ch_out.len(), unique);
        assert_eq!(raw_n, unique * dup);
        let s = ch.stats();
        assert_eq!(s.decoded, s.emitted, "decode only at emission");
        println!(
            "| {} | {} | {} | {} | {} | {:.2}x |",
            unique * dup,
            dup,
            unique,
            fmt_dur(t_raw),
            fmt_dur(t_ch),
            t_ch.as_secs_f64() / t_raw.as_secs_f64(),
        );
    }
    println!();
}

/// E8: classifier cost and verdicts over the catalog.
fn e8_classifier() {
    println!("## E8 (classifier over the paper catalog)\n");
    println!("| entry | verdict | time |");
    println!("|---|---|---:|");
    for entry in catalog() {
        let t0 = Instant::now();
        let c = classify(&entry.ucq);
        let t = t0.elapsed();
        let v = match c.verdict {
            Verdict::FreeConnex { .. } => "FreeConnex",
            Verdict::Intractable { .. } => "Intractable",
            Verdict::Unknown { .. } => "Unknown",
        };
        println!("| {} | {} | {} |", entry.id, v, fmt_dur(t));
    }
    println!();
}

/// E9: CDY vs naive on a single free-connex CQ (Theorem 3(1)).
fn e9_cdy_vs_naive(scale: usize) {
    println!("## E9 (CDY vs naive join on a free-connex CQ)\n");
    println!("| |I| | answers | CDY prep | CDY median delay | CDY total | naive total | speedup |");
    println!("|---:|---:|---:|---:|---:|---:|---:|");
    let q = parse_cq("Q(x, a, b, y) <- R(x, a), S(a, b), T(b, y)").expect("path CQ");
    let u = ucq_query::Ucq::single(q.clone());
    for step in 0..4 {
        let rows = 4_000 * scale * (1 << step) / 4;
        let inst = random_instance(&u, &InstanceSpec::scaled(rows, 23));
        let t0 = Instant::now();
        let eng = CdyEngine::for_query(&q, &inst).expect("free-connex");
        let prep = t0.elapsed();
        let t0 = Instant::now();
        let mut it = eng.iter();
        let mut delays: Vec<u64> = Vec::new();
        let mut last = Instant::now();
        let mut count = 0usize;
        while let Some(_t) = it.next() {
            let now = Instant::now();
            delays.push(now.duration_since(last).as_nanos() as u64);
            last = now;
            count += 1;
        }
        let cdy_total = prep + t0.elapsed();
        let t0 = Instant::now();
        let naive = evaluate_cq_naive(&q, &inst).expect("naive");
        let naive_t = t0.elapsed();
        assert_eq!(count, naive.len());
        delays.sort_unstable();
        let median = delays.get(delays.len() / 2).copied().unwrap_or(0);
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.2}x |",
            inst.total_tuples(),
            count,
            fmt_dur(prep),
            fmt_ns(median),
            fmt_dur(cdy_total),
            fmt_dur(naive_t),
            naive_t.as_secs_f64() / cdy_total.as_secs_f64(),
        );
    }
    println!();

    // Verify the deduplicated comparison: answer sets identical.
    let inst = random_instance(&u, &InstanceSpec::scaled(2_000, 5));
    let eng = CdyEngine::for_query(&q, &inst).expect("free-connex");
    let a: HashSet<Tuple> = eng.iter().collect_all().into_iter().collect();
    let b: HashSet<Tuple> = evaluate_cq_naive(&q, &inst)
        .expect("naive")
        .into_iter()
        .collect();
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------
// The two extension experiments appended after the first release of the
// harness: strategy ablation and the Remark 2 FD pipeline.
// ---------------------------------------------------------------------

/// E11: Algorithm 1 vs the Cheater-based pipeline on the same all-free-
/// connex union (both are valid DelayClin strategies; Algorithm 1 needs no
/// dedup table).
fn e11_alg1_vs_pipeline(scale: usize) {
    use ucq_core::{plan_free_connex, Algorithm1, SearchConfig, UcqPipeline};
    use ucq_enumerate::measure;
    use ucq_workloads::by_id;

    println!("## E11 (ablation: Algorithm 1 vs Cheater pipeline, same union)\n");
    println!("| |I| | answers | alg1 prep | alg1 median | alg1 total | pipe prep | pipe median | pipe total |");
    println!("|---:|---:|---:|---:|---:|---:|---:|---:|");
    let entry = by_id("two_free_connex").expect("entry");
    let plan = plan_free_connex(&entry.ucq, &SearchConfig::default()).expect("plan");
    for step in 0..3 {
        let rows = 8_000 * scale * (1 << step) / 4;
        let inst = instance_for("two_free_connex", rows, 7);
        let (a1, p1) = measure(|| Algorithm1::build(&entry.ucq, &inst).expect("alg1"));
        let (a2, p2) = measure(|| UcqPipeline::build(&entry.ucq, &plan, &inst).expect("pipeline"));
        assert_eq!(
            a1.iter().collect::<HashSet<_>>(),
            a2.iter().collect::<HashSet<_>>()
        );
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            inst.total_tuples(),
            a1.len(),
            fmt_dur(p1.preprocessing),
            fmt_ns(p1.median_ns()),
            fmt_dur(p1.preprocessing + p1.total),
            fmt_dur(p2.preprocessing),
            fmt_ns(p2.median_ns()),
            fmt_dur(p2.preprocessing + p2.total),
        );
    }
    println!();
}

/// E12: freeze-and-share serving — one frozen session drained by N OS
/// threads with the total work held fixed; reports aggregate answers/sec
/// and the p99 first-answer delay per thread count.
fn e12_concurrent_serving(scale: usize) {
    use ucq_workloads::drive_frozen_fixed_work;

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("## E12 (freeze-and-share: N threads over one frozen session)\n");
    println!(
        "Host parallelism: {hw} core(s). Fixed total work per row; speedup \
         is capped by the core count.\n"
    );
    println!("| query | threads | drains | answers | total | answers/sec | p99 first-answer |");
    println!("|---|---:|---:|---:|---:|---:|---:|");
    for (id, base_rows) in [("two_free_connex", 8_000usize), ("example2", 2_000)] {
        let rows = base_rows * scale / 4;
        let engine = engine_for(id);
        let inst = instance_for(id, rows.max(500), 11);
        let frozen = engine
            .session(&inst)
            .freeze()
            .expect("DelayClin strategy freezes");
        let single = frozen.enumerate().expect("strategy").collect_all().len();
        for threads in [1usize, 2, 4, 8] {
            let total_drains = 16;
            let report = drive_frozen_fixed_work(&frozen, threads, total_drains);
            assert_eq!(report.total_answers, single * total_drains);
            println!(
                "| {id} | {threads} | {} | {} | {} | {:.0} | {} |",
                report.drains,
                report.total_answers,
                fmt_dur(report.elapsed),
                report.answers_per_sec(),
                fmt_ns(report.p99_first_answer_ns()),
            );
        }
    }
    println!();
}

/// E13: Remark 2 — the mat-mul query under a key FD becomes tractable;
/// measure the FD pipeline against naive evaluation.
fn e13_fd_extension(scale: usize) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use ucq_core::{evaluate_ucq_naive, Fd, FdSet, FdUcqEngine};
    use ucq_enumerate::measure;
    use ucq_query::parse_ucq;
    use ucq_storage::{Instance, Relation};

    println!("## E13 (Remark 2: FD-extension makes mat-mul-hard query tractable)\n");
    println!("| |I| | answers | verdict | prep | median delay | p99 delay | naive total |");
    println!("|---:|---:|---|---:|---:|---:|---:|");
    let u = parse_ucq("Pi(x, y) <- A(x, z), B(z, y)").expect("query");
    let fds = FdSet::new(vec![Fd::new("A", vec![0], 1)]);
    let engine = FdUcqEngine::new(u.clone(), fds).expect("extends");
    assert!(engine.classification().is_tractable());
    for step in 0..3 {
        let rows = 8_000 * scale * (1 << step) / 4;
        // Key-respecting A: x is unique; B is a plain random relation.
        let mut rng = StdRng::seed_from_u64(31 + step as u64);
        let domain = (rows as i64 / 4).max(4);
        let a_rel = Relation::from_pairs((0..rows as i64).map(|x| (x, rng.gen_range(0..domain))));
        let b_rel = Relation::from_pairs(
            (0..rows).map(|_| (rng.gen_range(0..domain), rng.gen_range(0..domain))),
        );
        let inst: Instance = [("A", a_rel), ("B", b_rel)].into_iter().collect();
        let (answers, prof) = measure(|| engine.enumerate(&inst).expect("FDs hold"));
        let t0 = Instant::now();
        let naive = evaluate_ucq_naive(&u, &inst).expect("naive");
        let naive_t = t0.elapsed();
        assert_eq!(
            answers.iter().collect::<HashSet<_>>(),
            naive.iter().collect::<HashSet<_>>()
        );
        println!(
            "| {} | {} | FreeConnex | {} | {} | {} | {} |",
            inst.total_tuples(),
            answers.len(),
            fmt_dur(prof.preprocessing),
            fmt_ns(prof.median_ns()),
            fmt_ns(prof.p99_ns()),
            fmt_dur(naive_t),
        );
    }
    println!();
}

/// E15: resilient serving — the bounded `ucq-serve` worker pool over one
/// frozen session, across request mixes: all-clean, answer-capped,
/// pre-cancelled, and the canned chaos mix (deadlines + cancels; the
/// fault seam is a no-op in this build). Reports the full outcome ledger
/// next to throughput — the point is that it balances under every mix.
fn e15_resilient_serving(scale: usize) {
    use std::sync::Arc;
    use std::time::Duration;
    use ucq_workloads::{drive_resilient, ResilientSpec};

    println!("## E15 (resilient serving: bounded pool, budgets, typed failure ledger)\n");
    println!(
        "| query | mix | workers | submitted | served | partial | timed out | shed | \
         answers/sec | p99 latency |"
    );
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    for (id, base_rows) in [("two_free_connex", 8_000usize), ("example2", 2_000)] {
        let rows = (base_rows * scale / 4).max(500);
        let engine = engine_for(id);
        let inst = instance_for(id, rows, 11);
        let frozen = Arc::new(
            engine
                .session(&inst)
                .freeze()
                .expect("DelayClin strategy freezes"),
        );
        let requests = 16 * scale;
        let mixes: [(&str, ResilientSpec); 4] = [
            ("steady", ResilientSpec::steady(4, requests, requests)),
            (
                "capped(64)",
                ResilientSpec::steady(4, requests, requests).with_answer_cap(64),
            ),
            (
                "cancel/3",
                ResilientSpec::steady(4, requests, requests).with_cancel_every(3),
            ),
            (
                "chaos",
                ResilientSpec::chaos(4, requests)
                    .with_deadline_every(5, Duration::from_micros(200)),
            ),
        ];
        for (mix, spec) in mixes {
            let report = drive_resilient(&frozen, &spec);
            assert_eq!(
                report.drains + report.shed + report.panicked + report.drained,
                report.submitted,
                "E15 ledger does not balance for mix {mix}: {report:?}"
            );
            println!(
                "| {id} | {mix} | {} | {} | {} | {} | {} | {} | {:.0} | {} |",
                spec.workers,
                report.submitted,
                report.drains,
                report.partial,
                report.timed_out,
                report.shed,
                report.answers_per_sec(),
                fmt_ns(report.p99_first_answer_ns()),
            );
        }
    }
    println!();
}
