//! Shared helpers for the Criterion benches and the `experiments` binary.

#![forbid(unsafe_code)]

use ucq_core::UcqEngine;
use ucq_enumerate::{measure, DelayProfile};
use ucq_storage::{Instance, Tuple};
use ucq_workloads::{by_id, random_instance, InstanceSpec};

/// Fetches a catalog entry's query and builds its engine.
pub fn engine_for(id: &str) -> UcqEngine {
    UcqEngine::new(
        by_id(id)
            .unwrap_or_else(|| panic!("catalog entry {id}"))
            .ucq,
    )
}

/// A deterministic random instance for a catalog entry.
pub fn instance_for(id: &str, rows: usize, seed: u64) -> Instance {
    let e = by_id(id).unwrap_or_else(|| panic!("catalog entry {id}"));
    random_instance(&e.ucq, &InstanceSpec::scaled(rows, seed))
}

/// Runs the engine's chosen DelayClin strategy, instrumented.
pub fn run_pipeline(engine: &UcqEngine, inst: &Instance) -> (Vec<Tuple>, DelayProfile) {
    measure(|| engine.enumerate(inst).expect("DelayClin strategy"))
}

/// Runs the naive baseline, returning (answers, wall time).
pub fn run_naive(engine: &UcqEngine, inst: &Instance) -> (Vec<Tuple>, std::time::Duration) {
    let t0 = std::time::Instant::now();
    let out = engine.enumerate_naive(inst).expect("naive");
    (out, t0.elapsed())
}

/// Formats a nanosecond count compactly.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Formats a duration compactly.
pub fn fmt_dur(d: std::time::Duration) -> String {
    fmt_ns(d.as_nanos() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }

    #[test]
    fn helpers_wire_up() {
        let eng = engine_for("example2");
        let inst = instance_for("example2", 200, 1);
        let (pipe, _) = run_pipeline(&eng, &inst);
        let (naive, _) = run_naive(&eng, &inst);
        assert_eq!(pipe.len(), naive.len());
    }
}
