//! E1 — Theorem 4 / Algorithm 1: a union of free-connex CQs enumerates with
//! linear preprocessing and constant delay; compared against the naive
//! materializing union at growing instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_bench::{engine_for, instance_for};
use ucq_enumerate::Enumerator;

fn bench(c: &mut Criterion) {
    let engine = engine_for("two_free_connex");
    let mut group = c.benchmark_group("e1_algorithm1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for rows in [4_000usize, 16_000, 64_000] {
        let inst = instance_for("two_free_connex", rows, 7);
        group.bench_with_input(BenchmarkId::new("algorithm1", rows), &inst, |b, inst| {
            b.iter(|| {
                let mut ans = engine.enumerate(inst).expect("algorithm 1");
                ans.collect_all().len()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", rows), &inst, |b, inst| {
            b.iter(|| engine.enumerate_naive(inst).expect("naive").len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
