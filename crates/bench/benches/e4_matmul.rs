//! E4 — Boolean matrix multiplication through queries (Theorem 3(2) and
//! Lemma 25/Example 20) vs direct bitset multiplication.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_reductions::{bmm_via_cq, bmm_via_example20, BoolMat};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_matmul");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [32usize, 64, 128] {
        let a = BoolMat::random(n, 0.08, n as u64);
        let b = BoolMat::random(n, 0.08, n as u64 + 1);
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |bench, _| {
            bench.iter(|| a.multiply(&b).count_ones())
        });
        group.bench_with_input(BenchmarkId::new("via_pi_cq", n), &n, |bench, _| {
            bench.iter(|| bmm_via_cq(&a, &b).count_ones())
        });
        group.bench_with_input(BenchmarkId::new("via_example20", n), &n, |bench, _| {
            bench.iter(|| bmm_via_example20(&a, &b).count_ones())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
