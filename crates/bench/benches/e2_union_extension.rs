//! E2 — Theorem 12 on Example 2: union-extension pipeline vs naive union
//! (see DESIGN.md §3 for the experiment definition).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_bench::{engine_for, instance_for};
use ucq_enumerate::Enumerator;

fn bench(c: &mut Criterion) {
    let engine = engine_for("example2");
    let mut group = c.benchmark_group("e2_union_extension");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for rows in [2000, 8000, 32000] {
        let inst = instance_for("example2", rows, 7);
        group.bench_with_input(BenchmarkId::new("pipeline", rows), &inst, |b, inst| {
            b.iter(|| {
                let mut ans = engine.enumerate(inst).expect("pipeline");
                ans.collect_all().len()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", rows), &inst, |b, inst| {
            b.iter(|| engine.enumerate_naive(inst).expect("naive").len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
