//! E5 — triangle detection through the Example 18 union vs direct bitset
//! detection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_reductions::{has_triangle_via_example18, Graph};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_triangle");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [64usize, 128, 256] {
        let g = Graph::gnp(n, 4.0 / n as f64, 13);
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| g.has_triangle())
        });
        group.bench_with_input(BenchmarkId::new("via_example18", n), &n, |b, _| {
            b.iter(|| has_triangle_via_example18(&g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
