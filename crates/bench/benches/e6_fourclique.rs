//! E6 — 4-clique detection through the three UCQ routes (Examples 22, 31,
//! 39) vs the direct combinatorial check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_reductions::{
    has_4clique_via_example22, has_4clique_via_example31, has_4clique_via_example39, Graph,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_fourclique");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [16usize, 24, 32] {
        let g = Graph::gnp(n, 0.3, 17);
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| g.has_4clique())
        });
        group.bench_with_input(BenchmarkId::new("via_example22", n), &n, |b, _| {
            b.iter(|| has_4clique_via_example22(&g))
        });
        group.bench_with_input(BenchmarkId::new("via_example31", n), &n, |b, _| {
            b.iter(|| has_4clique_via_example31(&g))
        });
        group.bench_with_input(BenchmarkId::new("via_example39", n), &n, |b, _| {
            b.iter(|| has_4clique_via_example39(&g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
