//! E9 — Theorem 3(1) at the single-CQ level: CDY (full reducer +
//! constant-delay enumeration) vs the naive hash join on a free-connex
//! path query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_query::{parse_cq, Ucq};
use ucq_workloads::{random_instance, InstanceSpec};
use ucq_yannakakis::{evaluate_cq_naive, CdyEngine};

fn bench(c: &mut Criterion) {
    let q = parse_cq("Q(x, a, b, y) <- R(x, a), S(a, b), T(b, y)").expect("path CQ");
    let u = Ucq::single(q.clone());
    let mut group = c.benchmark_group("e9_cdy_vs_naive");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for rows in [4_000usize, 16_000, 64_000] {
        let inst = random_instance(&u, &InstanceSpec::scaled(rows, 23));
        group.bench_with_input(BenchmarkId::new("cdy", rows), &inst, |b, inst| {
            b.iter(|| {
                let eng = CdyEngine::for_query(&q, inst).expect("free-connex");
                eng.iter().collect_all().len()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("cdy_preprocess_only", rows),
            &inst,
            |b, inst| {
                b.iter(|| {
                    CdyEngine::for_query(&q, inst)
                        .expect("free-connex")
                        .decide()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("naive", rows), &inst, |b, inst| {
            b.iter(|| evaluate_cq_naive(&q, inst).expect("naive").len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
