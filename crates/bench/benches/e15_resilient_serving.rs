//! E15 — resilient serving: the `ucq-serve` worker pool (bounded
//! admission, per-request budgets, panic isolation) against the same
//! frozen sessions E12 drains with raw scoped threads.
//!
//! The `steady_*` cells measure the runtime's overhead on an all-clean
//! request mix across worker counts: queue + reply-slot handoff per
//! request on top of the enumeration itself. The `capped` cell bounds
//! every request at a fixed answer budget (the block-boundary budget
//! check is on the measured path), and the `chaos_mix` cell runs the
//! canned deadline/cancel mix — in a normal bench build the fault seam
//! compiles to no-ops, so the cell isolates the *scheduling* cost of
//! misbehaving requests, not injected faults.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use ucq_bench::{engine_for, instance_for};
use ucq_enumerate::Enumerator;
use ucq_workloads::{drive_resilient, ResilientSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_resilient_serving");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    const REQUESTS: usize = 16;
    for (id, rows) in [("two_free_connex", 8_000usize), ("example2", 2_000)] {
        let engine = engine_for(id);
        let inst = instance_for(id, rows, 11);
        let frozen = Arc::new(
            engine
                .session(&inst)
                .freeze()
                .expect("DelayClin strategy freezes"),
        );
        let single = frozen.enumerate().expect("strategy").collect_all().len();

        for workers in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("steady_{id}"), workers),
                &workers,
                |b, &w| {
                    let spec = ResilientSpec::steady(w, REQUESTS, REQUESTS);
                    b.iter(|| {
                        let report = drive_resilient(&frozen, &spec);
                        assert_eq!(report.drains, REQUESTS, "steady mix must not shed");
                        assert_eq!(report.total_answers, single * REQUESTS);
                        report.total_answers
                    })
                },
            );
        }

        group.bench_with_input(BenchmarkId::new("capped", id), &frozen, |b, frozen| {
            let spec = ResilientSpec::steady(2, REQUESTS, REQUESTS).with_answer_cap(256);
            b.iter(|| {
                let report = drive_resilient(frozen, &spec);
                assert_eq!(report.drains, REQUESTS, "capped mix must not shed");
                assert!(report.total_answers <= 256 * REQUESTS);
                report.total_answers
            })
        });

        group.bench_with_input(BenchmarkId::new("chaos_mix", id), &frozen, |b, frozen| {
            let spec = ResilientSpec::chaos(2, REQUESTS);
            b.iter(|| {
                let report = drive_resilient(frozen, &spec);
                assert_eq!(
                    report.drains + report.shed + report.panicked + report.drained,
                    report.submitted,
                    "ledger must balance"
                );
                report.total_answers
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
