//! E8 — classifier cost: the full classification (minimization, fixpoint,
//! guard checks) over the paper catalog and over the Example 31 family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_core::classify;
use ucq_workloads::{by_id, catalog, example31};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_classifier");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("whole_catalog", |b| {
        let entries = catalog();
        b.iter(|| {
            entries
                .iter()
                .filter(|e| classify(&e.ucq).is_tractable())
                .count()
        })
    });
    for id in ["example2", "example13", "example21", "example31_k4"] {
        let ucq = by_id(id).expect("entry").ucq;
        group.bench_with_input(BenchmarkId::new("single", id), &ucq, |b, u| {
            b.iter(|| classify(u).is_tractable())
        });
    }
    for k in [3usize, 5] {
        let u = example31(k);
        group.bench_with_input(BenchmarkId::new("example31_family", k), &u, |b, u| {
            b.iter(|| classify(u).is_tractable())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
