//! E10 — guarding flips tractability: the Example 21 union (guarded, runs
//! through the DelayClin pipeline) vs the Example 20 union (same body,
//! smaller heads, unguarded — naive fallback only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_bench::{engine_for, instance_for};
use ucq_enumerate::Enumerator;

fn bench(c: &mut Criterion) {
    let eng21 = engine_for("example21");
    let eng20 = engine_for("example20");
    let mut group = c.benchmark_group("e10_guarding");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for rows in [2_000usize, 8_000] {
        let inst21 = instance_for("example21", rows, 11);
        group.bench_with_input(
            BenchmarkId::new("example21_pipeline", rows),
            &inst21,
            |b, inst| {
                b.iter(|| {
                    let mut ans = eng21.enumerate(inst).expect("pipeline");
                    ans.collect_all().len()
                })
            },
        );
        let inst20 = instance_for("example20", rows, 11);
        group.bench_with_input(
            BenchmarkId::new("example20_naive", rows),
            &inst20,
            |b, inst| b.iter(|| eng20.enumerate_naive(inst).expect("naive").len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
