//! E7 — the Cheater's Lemma compiler (Lemma 5): dedup + pacing overhead on
//! duplicated id streams vs a raw block-pumping drain.
//!
//! Both sides run the id spine end to end and decode every *emitted*
//! answer through the shared dictionary, so the measured delta is exactly
//! the Cheater machinery: per-result `InlineKey` dedup, flat-queue
//! parking, and Lemma 5 pacing. The stats assertion pins the spine's
//! decode discipline: answers are decoded exactly once, at emission
//! (`decoded == emitted`), never per inner result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_enumerate::{Cheater, Enumerator, IdDecoder, IdVecEnumerator};
use ucq_storage::{CtxView, Value, ValueId};

/// A width-2 id stream of `unique` distinct rows, each repeated `dup`
/// times consecutively.
fn stream(ctx: &CtxView, unique: usize, dup: usize) -> Vec<ValueId> {
    (0..unique)
        .flat_map(|i| {
            let row = [
                ctx.intern(Value::Int(i as i64)),
                ctx.intern(Value::Int((i * 7) as i64)),
            ];
            std::iter::repeat_n(row, dup)
        })
        .flatten()
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_cheater");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let unique = 100_000usize;
    for dup in [1usize, 2, 4] {
        let ctx = CtxView::new();
        let ids = stream(&ctx, unique, dup);
        group.bench_with_input(BenchmarkId::new("raw_drain", dup), &dup, |b, _| {
            b.iter(|| {
                let inner = IdVecEnumerator::from_flat(2, ids.clone());
                IdDecoder::new(inner, ctx.clone()).collect_all().len()
            })
        });
        group.bench_with_input(BenchmarkId::new("cheater", dup), &dup, |b, _| {
            b.iter(|| {
                let inner = IdVecEnumerator::from_flat(2, ids.clone());
                // Cardinality-hinted, as a serving caller would construct
                // it (the pipeline passes its early-answer count).
                let mut ch = Cheater::with_capacity_hint(inner, dup, ctx.clone(), unique);
                let n = ch.collect_all().len();
                let s = ch.stats();
                assert_eq!(n, unique);
                assert_eq!(s.emitted, unique);
                assert_eq!(
                    s.decoded, s.emitted,
                    "decode once per emission, not per inner result"
                );
                assert_eq!(s.inner_results, unique * dup);
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
