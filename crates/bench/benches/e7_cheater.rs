//! E7 — the Cheater's Lemma compiler (Lemma 5): dedup + pacing overhead on
//! duplicated streams vs a raw drain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_enumerate::{Cheater, Enumerator, VecEnumerator};
use ucq_storage::Tuple;

fn stream(unique: usize, dup: usize) -> Vec<Tuple> {
    (0..unique)
        .flat_map(|i| {
            std::iter::repeat_with(move || Tuple::from(&[i as i64, (i * 7) as i64][..])).take(dup)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_cheater");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let unique = 100_000usize;
    for dup in [1usize, 2, 4] {
        let tuples = stream(unique, dup);
        group.bench_with_input(BenchmarkId::new("raw_drain", dup), &dup, |b, _| {
            b.iter(|| VecEnumerator::new(tuples.clone()).collect_all().len())
        });
        group.bench_with_input(BenchmarkId::new("cheater", dup), &dup, |b, _| {
            b.iter(|| {
                Cheater::new(VecEnumerator::new(tuples.clone()), dup)
                    .collect_all()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
