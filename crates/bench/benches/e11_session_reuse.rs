//! E11 — the session API: repeated evaluation of one (query, instance)
//! pair through `UcqEngine::session` (preprocessing shared across calls)
//! vs fresh `enumerate` calls (preprocessing redone per call).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_bench::{engine_for, instance_for};
use ucq_enumerate::Enumerator;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_session_reuse");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (id, rows) in [("two_free_connex", 8_000usize), ("example2", 2_000)] {
        let engine = engine_for(id);
        let inst = instance_for(id, rows, 11);
        group.bench_with_input(BenchmarkId::new("oneshot", id), &inst, |b, inst| {
            b.iter(|| {
                engine
                    .enumerate(inst)
                    .expect("DelayClin strategy")
                    .collect_all()
                    .len()
            })
        });
        let session = engine.session(&inst);
        // Warm the session so the measured loop is the steady "serve
        // traffic" state.
        session.enumerate().expect("strategy").collect_all();
        group.bench_with_input(BenchmarkId::new("session", id), &inst, |b, _| {
            b.iter(|| session.enumerate().expect("strategy").collect_all().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
