//! E16 — incremental ingestion + epoch re-freezing: the cost of taking a
//! live frozen session to the next epoch after a Δ = 1% churn, against
//! rebuilding the whole snapshot from scratch over the updated instance.
//!
//! The `full_rebuild` cell is the pre-ingestion story: a fresh private
//! context per iteration re-interns every relation, rebuilds every index
//! and re-prepares every member. The `delta_refreeze` cell drives the
//! delta API instead: `insert_rows` on the warm session's build context
//! (O(Δ) interning + CSR segment merge), then `refreeze` reuses every
//! untouched member's engines by `Arc` identity. The chain is re-seeded
//! from a fresh session every `RESET_EVERY` iterations so physical
//! segment growth stays bounded; the amortized reset cost is *included*
//! in the measurement and biases it against the delta path.
//!
//! The `live_rotation` cell is the zero-downtime demonstration: a bounded
//! worker pool keeps draining requests while three deltas rotate through
//! `insert_rows` → `refreeze` → `EpochCell` install; the driver asserts
//! nothing was shed and every drained request matched an admissible
//! epoch's fresh-build oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_bench::{engine_for, instance_for};
use ucq_storage::Relation;
use ucq_workloads::{drive_rotation, RotationSpec};

/// Re-seed the delta chain after this many churn/refreeze rounds: at
/// Δ = 1% per round the physical relation stays within ~2.3x of its base
/// size, and the amortized full build adds at most 1/128th of the
/// `full_rebuild` cost to every measured iteration.
const RESET_EVERY: usize = 128;

/// A Δ = 1% batch of fresh pairs, disjoint from the generated instance's
/// value domain so the first round interns them and later rounds hit.
fn delta_rows(n: usize, salt: i64) -> Relation {
    let d = (n / 100).max(1) as i64;
    Relation::from_pairs((0..d).map(|i| (1_000_000 + salt + i, salt + i % 16)))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_incremental_ingest");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    let id = "two_free_connex";
    let engine = engine_for(id);
    for n in [20_000usize, 80_000] {
        let base = instance_for(id, n, 11);
        let delta = delta_rows(n, 0);

        // The updated instance the rebuild cell must ingest from scratch:
        // base plus one Δ batch appended at the value level.
        let updated = {
            let r = base.get_shared("R").expect("catalog relation R");
            let mut next = (*r).clone();
            for row in delta.iter_rows() {
                next.push_row(row);
            }
            base.with_relation_shared("R", std::sync::Arc::new(next))
        };

        group.bench_with_input(BenchmarkId::new("full_rebuild", n), &updated, |b, inst| {
            b.iter(|| {
                let frozen = engine.session(inst).freeze().expect("freezes");
                frozen.context().dict_len()
            })
        });

        group.bench_with_input(BenchmarkId::new("delta_refreeze", n), &base, |b, base| {
            let mut current = base.clone();
            let mut frozen = engine.session(base).freeze().expect("freezes");
            let mut rounds = 0usize;
            b.iter(|| {
                if rounds == RESET_EVERY {
                    current = base.clone();
                    frozen = engine.session(base).freeze().expect("freezes");
                    rounds = 0;
                }
                rounds += 1;
                let r = current.get_shared("R").expect("catalog relation R");
                let next = frozen.build_context().insert_rows(&r, &delta);
                current = current.with_relation_shared("R", next);
                frozen = frozen.refreeze(&current).expect("refreezes");
                frozen.context().dict_len()
            })
        });

        group.bench_with_input(BenchmarkId::new("live_rotation", n), &base, |b, base| {
            let deltas: Vec<Relation> = (1..=3).map(|d| delta_rows(n, d * 100_000)).collect();
            let spec = RotationSpec::steady(2, 64, 8);
            b.iter(|| {
                let report =
                    drive_rotation(&engine, base, "R", &deltas, &spec).expect("rotation drive");
                assert_eq!(report.rotations_installed, deltas.len());
                assert_eq!(report.serving.shed, 0, "live rotation must not shed");
                assert!(
                    report.oracle_identical(),
                    "drained answers must match an oracle"
                );
                report.final_epoch
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
