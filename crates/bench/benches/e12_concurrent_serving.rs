//! E12 — freeze-and-share serving: one frozen session drained by N OS
//! threads, plus the decode micro-benchmark on the emission path through
//! a build-phase vs a frozen context view.
//!
//! The `serve` cells hold the total work fixed (16 full drains) and split
//! it across 1/2/4/8 threads, so the cell time shrinking with the thread
//! count is genuine scaling. On a single-core host all thread counts
//! time-share one CPU and the cells stay flat — the bench reports the
//! hardware's actual ceiling, not a model of it.
//!
//! The `decode` cells replay E7's emission path (a duplicate-free id
//! stream drained through the `Cheater`, which decodes once per emitted
//! answer) against the same dictionary before and after `freeze()`: the
//! frozen side decodes each emission through the lock-free snapshot
//! (`decode_fast`), the build side takes the session mutex per emission.
//! (`IdDecoder` itself decodes block-at-a-time — one lock per block —
//! so the per-emission path is where the freeze shows up.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_bench::{engine_for, instance_for};
use ucq_enumerate::{Cheater, Enumerator, IdVecEnumerator};
use ucq_storage::{CtxView, Value, ValueId};
use ucq_workloads::drive_frozen_fixed_work;

/// A width-2 id stream of `unique` distinct rows (E7's shape, dup=1).
fn stream(ctx: &CtxView, unique: usize) -> Vec<ValueId> {
    (0..unique)
        .flat_map(|i| {
            [
                ctx.intern(Value::Int(i as i64)),
                ctx.intern(Value::Int((i * 7) as i64)),
            ]
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_concurrent_serving");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    // Thread-scaling cells: fixed total work, more workers.
    const TOTAL_DRAINS: usize = 16;
    for (id, rows) in [("two_free_connex", 8_000usize), ("example2", 2_000)] {
        let engine = engine_for(id);
        let inst = instance_for(id, rows, 11);
        let frozen = engine
            .session(&inst)
            .freeze()
            .expect("DelayClin strategy freezes");
        let single = frozen.enumerate().expect("strategy").collect_all().len();
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("serve_{id}"), threads),
                &threads,
                |b, &t| {
                    b.iter(|| {
                        let report = drive_frozen_fixed_work(&frozen, t, TOTAL_DRAINS);
                        assert_eq!(report.total_answers, single * TOTAL_DRAINS);
                        report.total_answers
                    })
                },
            );
        }
    }

    // Decode micro-bench: E7's emission path through each context phase.
    let unique = 100_000usize;
    let build = CtxView::new();
    let ids = stream(&build, unique);
    let frozen_view = build.freeze();
    for (label, view) in [("build", &build), ("frozen", &frozen_view)] {
        group.bench_with_input(BenchmarkId::new("decode", label), view, |b, view| {
            b.iter(|| {
                let inner = IdVecEnumerator::from_flat(2, ids.clone());
                let mut ch = Cheater::with_capacity_hint(inner, 1, view.clone(), unique);
                let n = ch.collect_all().len();
                assert_eq!(n, unique);
                assert_eq!(ch.stats().decoded, n, "decode once per emission");
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
