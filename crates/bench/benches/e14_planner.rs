//! E14 — the cost-based planner. Two workloads:
//!
//! * `minimized` vs `unminimized`: a union whose second and third members
//!   are homomorphically subsumed by the first. The hot path evaluates
//!   the minimized union (one member, one stage); the baseline evaluates
//!   all three, paying two redundant Yannakakis passes plus cross-member
//!   dedup for answers the first member already produced.
//! * `costed` vs `first_found`: a union where the same virtual atom has
//!   two providers — a near-cartesian member and a selective join. The
//!   first-found plan materializes the provider the availability fixpoint
//!   saw first (the big one); the costed plan prices both against the
//!   instance statistics and picks the small one. Measured as
//!   preprocessing plus the first 100 answers, the `DelayClin` serving
//!   shape where materialization size dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use ucq_core::{classify, plan_free_connex, plan_free_connex_costed, SearchConfig, UcqPipeline};
use ucq_enumerate::Enumerator;
use ucq_query::{parse_ucq, Ucq};
use ucq_storage::{CtxView, Instance, Relation, Value};

fn pairs(rows: impl Iterator<Item = (i64, i64)>) -> Relation {
    let mut r = Relation::new(2);
    for (a, b) in rows {
        r.push_row(&[Value::Int(a), Value::Int(b)]);
    }
    r
}

/// Q2 and Q3 are subsumed by Q1 (`Q3 ⊆ Q2 ⊆ Q1`); minimized union = Q1.
const REDUNDANT: &str = "Q1(x, y) <- R(x, y)\n\
                         Q2(x, y) <- R(x, y), S(y, z)\n\
                         Q3(x, y) <- R(x, y), S(y, z), T(z, w)";

fn redundant_instance(n: i64) -> Instance {
    let mut inst = Instance::new();
    inst.insert("R", pairs((0..n).map(|i| (i, i + 1))));
    inst.insert("S", pairs((0..n).map(|i| (i + 1, i + 2))));
    inst.insert("T", pairs((0..n).map(|i| (i + 2, i + 3))));
    inst
}

fn drain_count(ucq: &Ucq, plan: &ucq_core::ExtensionPlan, inst: &Instance) -> usize {
    let mut p = UcqPipeline::build(ucq, plan, inst).expect("pipeline");
    let mut n = 0usize;
    while p.next().is_some() {
        n += 1;
    }
    n
}

fn bench_redundant(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_planner");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let full = parse_ucq(REDUNDANT).unwrap();
    let minimized = classify(&full).minimized;
    assert_eq!(minimized.len(), 1, "subsumed members must drop out");
    let cfg = SearchConfig::default();
    let full_plan = plan_free_connex(&full, &cfg).expect("all members free-connex");
    let min_plan = plan_free_connex(&minimized, &cfg).expect("free-connex");
    for n in [4_000i64, 16_000] {
        let inst = redundant_instance(n);
        assert_eq!(
            drain_count(&full, &full_plan, &inst),
            drain_count(&minimized, &min_plan, &inst),
            "minimization must not change the answer set"
        );
        group.bench_with_input(BenchmarkId::new("unminimized", n), &inst, |b, inst| {
            b.iter(|| drain_count(&full, &full_plan, inst))
        });
        group.bench_with_input(BenchmarkId::new("minimized", n), &inst, |b, inst| {
            b.iter(|| drain_count(&minimized, &min_plan, inst))
        });
    }
    group.finish();
}

/// Member 0 needs a virtual atom on {x, z, y}; members 1 and 2 both
/// provide it. Member 1's materialization is a near-cartesian product
/// (`R1 × π(R3)`, n² rows); member 2's is the selective join `R1 ⋈ R2`
/// (n/8 rows).
const SKEWED: &str = "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
                      Q2(x, y, w) <- R1(x, y), R3(w, v)\n\
                      Q3(x, y, w) <- R1(x, y), R2(y, w)";

fn skewed_instance(n: i64) -> Instance {
    let m = n / 8;
    let mut inst = Instance::new();
    inst.insert("R1", pairs((0..n).map(|i| (i, n + i))));
    inst.insert("R2", pairs((0..m).map(|i| (n + i, 2 * n + i))));
    inst.insert("R3", pairs((0..n).map(|i| (2 * n + i, 3 * n + i))));
    inst
}

fn prepare_and_take(ucq: &Ucq, plan: &ucq_core::ExtensionPlan, inst: &Instance) -> usize {
    let mut p = UcqPipeline::build(ucq, plan, inst).expect("pipeline");
    let mut n = 0usize;
    while n < 100 && p.next().is_some() {
        n += 1;
    }
    n
}

fn bench_skewed(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_planner");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let u = parse_ucq(SKEWED).unwrap();
    let cfg = SearchConfig::default();
    let first = plan_free_connex(&u, &cfg).expect("free-connex via union extension");
    for n in [256i64, 512] {
        let inst = skewed_instance(n);
        let costed = plan_free_connex_costed(&u, &cfg, &inst, &CtxView::new())
            .expect("free-connex via union extension");
        // The whole point: the two planners pick different providers here.
        assert_eq!(first.atoms.len(), 1);
        assert_eq!(costed.plan.atoms.len(), 1);
        assert_ne!(
            first.atoms[0].provenance.provider, costed.plan.atoms[0].provenance.provider,
            "statistics skew must flip the provider choice"
        );
        group.bench_with_input(BenchmarkId::new("first_found", n), &inst, |b, inst| {
            b.iter(|| prepare_and_take(&u, &first, inst))
        });
        group.bench_with_input(BenchmarkId::new("costed", n), &inst, |b, inst| {
            b.iter(|| prepare_and_take(&u, &costed.plan, inst))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_redundant, bench_skewed);
criterion_main!(benches);
