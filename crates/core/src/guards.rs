//! Guardedness conditions for body-isomorphic unions: Definition 23
//! (free-path guarded, bypass guarded), Definition 32 (union guards) and
//! Definition 34 (isolated free-paths).

use ucq_hypergraph::{free_paths, is_s_connex, FreePath, Hypergraph, VSet};
use ucq_query::Cq;

/// Whether member `a` (with free set `free_a`) is *free-path guarded* by
/// `free_b`: every free-path of `(H, free_a)` uses only variables free in
/// the other member.
pub fn is_free_path_guarded(h: &Hypergraph, free_a: VSet, free_b: VSet) -> bool {
    free_paths(h, free_a)
        .iter()
        .all(|p| p.vars().is_subset(free_b))
}

/// Whether member `a` is *bypass guarded* by `free_b`: for every free-path
/// `P` of `(H(Q), free_a)` and every variable `u` occurring in two
/// subsequent `P`-atoms, `u ∈ free_b`.
pub fn is_bypass_guarded(body: &Cq, free_a: VSet, free_b: VSet) -> bool {
    let h = body.hypergraph();
    for p in free_paths(&h, free_a) {
        for u in subsequent_atom_vars(body, &p) {
            if !free_b.contains(u) {
                return false;
            }
        }
    }
    true
}

/// Variables occurring in two subsequent `P`-atoms (Definition 23): atoms
/// `A ∋ {z_{i-1}, z_i}` and `B ∋ {z_i, z_{i+1}}` for an interior position
/// `i`; `A ≠ B` is automatic because `P` is chordless.
pub fn subsequent_atom_vars(body: &Cq, p: &FreePath) -> VSet {
    let verts = &p.0;
    let mut out = VSet::EMPTY;
    for c in 1..verts.len() - 1 {
        let left: VSet = [verts[c - 1], verts[c]].into_iter().collect();
        let right: VSet = [verts[c], verts[c + 1]].into_iter().collect();
        for a in body.atoms() {
            let va = a.var_set();
            if !left.is_subset(va) {
                continue;
            }
            for b in body.atoms() {
                let vb = b.var_set();
                if !right.is_subset(vb) || va == vb {
                    continue;
                }
                out = out.union(va.inter(vb));
            }
        }
    }
    out
}

/// Whether the free-path `p` has a union guard (Definition 32) with respect
/// to the members' free sets.
pub fn is_union_guarded(p: &FreePath, frees: &[VSet]) -> bool {
    let z = &p.0;
    let n = z.len();
    // Base requirement: {z_0, z_{k+1}} itself must be covered.
    if !pair_covered(z[0], z[n - 1], frees) {
        return false;
    }
    // guardable(a, c): the interval can be recursively split by covered
    // triples.
    let mut memo = vec![vec![None; n]; n];
    guardable(z, 0, n - 1, frees, &mut memo)
}

fn pair_covered(a: u32, b: u32, frees: &[VSet]) -> bool {
    let pair: VSet = [a, b].into_iter().collect();
    frees.iter().any(|f| pair.is_subset(*f))
}

fn triple_covered(a: u32, b: u32, c: u32, frees: &[VSet]) -> bool {
    let triple: VSet = [a, b, c].into_iter().collect();
    frees.iter().any(|f| triple.is_subset(*f))
}

fn guardable(
    z: &[u32],
    a: usize,
    c: usize,
    frees: &[VSet],
    memo: &mut Vec<Vec<Option<bool>>>,
) -> bool {
    if c <= a + 1 {
        return true;
    }
    if let Some(v) = memo[a][c] {
        return v;
    }
    let mut ok = false;
    for b in a + 1..c {
        if triple_covered(z[a], z[b], z[c], frees)
            && guardable(z, a, b, frees, memo)
            && guardable(z, b, c, frees, memo)
        {
            ok = true;
            break;
        }
    }
    memo[a][c] = Some(ok);
    ok
}

/// Whether the free-path `p` of one member is *isolated* (Definition 34):
/// the body is `var(P)`-connex, and no other free-path of the same member
/// shares a variable with it.
pub fn is_isolated(h: &Hypergraph, member_paths: &[FreePath], p: &FreePath) -> bool {
    if !is_s_connex(h, p.vars()) {
        return false;
    }
    member_paths
        .iter()
        .filter(|q| *q != p)
        .all(|q| q.vars().inter(p.vars()).is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body_iso::align_body_isomorphic;
    use ucq_query::parse_ucq;

    /// The Example 20 pair (not free-path guarded).
    fn ex20() -> crate::body_iso::AlignedUnion {
        align_body_isomorphic(
            &parse_ucq(
                "Q1(x, y, v) <- R1(x, z), R2(z, y), R3(y, v), R4(v, w)\n\
                 Q2(x, y, v) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)",
            )
            .unwrap(),
        )
        .unwrap()
    }

    /// The Example 21 pair (guarded both ways).
    fn ex21() -> crate::body_iso::AlignedUnion {
        align_body_isomorphic(
            &parse_ucq(
                "Q1(w, y, x, z) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)\n\
                 Q2(x, y, w, v) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)",
            )
            .unwrap(),
        )
        .unwrap()
    }

    /// The Example 22 pair (free-path guarded, not bypass guarded).
    fn ex22() -> crate::body_iso::AlignedUnion {
        align_body_isomorphic(
            &parse_ucq(
                "Q1(x, y, t) <- R1(x, w, t), R2(y, w, t)\n\
                 Q2(x, y, w) <- R1(x, w, t), R2(y, w, t)",
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn example20_not_free_path_guarded() {
        let a = ex20();
        let h = a.body.hypergraph();
        // Q1's free-paths are not inside free(Q2) (Example 24 discussion).
        assert!(!is_free_path_guarded(&h, a.frees[0], a.frees[1]));
    }

    #[test]
    fn example21_guarded_both_ways() {
        let a = ex21();
        let h = a.body.hypergraph();
        for (x, y) in [(0, 1), (1, 0)] {
            assert!(is_free_path_guarded(&h, a.frees[x], a.frees[y]));
            assert!(is_bypass_guarded(&a.body, a.frees[x], a.frees[y]));
        }
    }

    #[test]
    fn example22_bypass_violation() {
        let a = ex22();
        let h = a.body.hypergraph();
        // Both directions are free-path guarded…
        assert!(is_free_path_guarded(&h, a.frees[0], a.frees[1]));
        assert!(is_free_path_guarded(&h, a.frees[1], a.frees[0]));
        // …but Q1's free-path (x, w, y) has t in both subsequent atoms and
        // t ∉ free(Q2).
        assert!(!is_bypass_guarded(&a.body, a.frees[0], a.frees[1]));
    }

    #[test]
    fn subsequent_vars_of_example22() {
        let a = ex22();
        let h = a.body.hypergraph();
        let paths = free_paths(&h, a.frees[0]);
        assert_eq!(paths.len(), 1);
        let vars = subsequent_atom_vars(&a.body, &paths[0]);
        // Q1 space: x=0, y=1, t=2, w=3; both atoms share {w, t}.
        assert_eq!(vars, [3u32, 2].into_iter().collect::<VSet>());
    }

    #[test]
    fn union_guard_of_example31() {
        // Star with four heads: every free-path (xi, z, xj) is union
        // guarded because some head contains {xi, z, xj}.
        let u = parse_ucq(
            "Q1(x1, x2, x3) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q2(x1, x2, z) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q3(x1, x3, z) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q4(x2, x3, z) <- R1(x1, z), R2(x2, z), R3(x3, z)",
        )
        .unwrap();
        let a = align_body_isomorphic(&u).unwrap();
        let h = a.body.hypergraph();
        for f in &a.frees {
            for p in free_paths(&h, *f) {
                assert!(is_union_guarded(&p, &a.frees));
            }
        }
    }

    #[test]
    fn union_guard_fails_without_triples() {
        // Two heads only: the free-path (x1, z, x2) of Q1 has {x1, x2}
        // covered by Q1 itself but no head covers {x1, z, x2}.
        let u = parse_ucq(
            "Q1(x1, x2, x3) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q2(x1, x2, x3) <- R1(x1, z), R2(x2, z), R3(x3, z)",
        )
        .unwrap();
        let a = align_body_isomorphic(&u).unwrap();
        let h = a.body.hypergraph();
        let paths = free_paths(&h, a.frees[0]);
        assert!(!paths.is_empty());
        assert!(paths.iter().all(|p| !is_union_guarded(p, &a.frees)));
    }

    #[test]
    fn isolation_in_example31() {
        // The three free-paths of Q1 share z: none is isolated.
        let u = parse_ucq(
            "Q1(x1, x2, x3) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q2(x1, x2, z) <- R1(x1, z), R2(x2, z), R3(x3, z)",
        )
        .unwrap();
        let a = align_body_isomorphic(&u).unwrap();
        let h = a.body.hypergraph();
        let paths = free_paths(&h, a.frees[0]);
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert!(!is_isolated(&h, &paths, p));
        }
    }

    #[test]
    fn single_free_path_is_isolated_when_connex() {
        // Path body: the only free-path (x, z, y) is var(P)-connex.
        let u = parse_ucq("Q(x, y) <- A(x, z), B(z, y)").unwrap();
        let h = u.cqs()[0].hypergraph();
        let paths = free_paths(&h, u.cqs()[0].free());
        assert_eq!(paths.len(), 1);
        assert!(is_isolated(&h, &paths, &paths[0]));
    }
}
