//! Search for virtual-atom sets that establish `S`-connexity.
//!
//! Both sides of the union-extension machinery need the same primitive:
//! *given a hypergraph `H`, a target set `S`, and a pool of candidate
//! virtual atoms, find a subset `A` of the pool such that `H + A` is
//! `S`-connex.* Providers use it with `S ⊆ free(Q_j)` (Definition 7,
//! condition 3); the final free-connex test uses it with `S = free(Q_i)`
//! (Definition 11).
//!
//! The search is exact for `|A| ≤ max_exact_subset` and falls back to a
//! Lemma-28-style greedy pass that repeatedly adds the candidate that most
//! reduces the number of remaining free-paths (preferring acyclicity).
//! Queries are constant-sized, so this is query-complexity work; the caps
//! exist because no complete decision procedure for Definition 11 is known
//! (the full dichotomy is open — paper §5), and they are reported in any
//! `Unknown` verdict.

use std::collections::HashMap;
use ucq_hypergraph::{free_paths, is_acyclic, is_s_connex, Hypergraph, VSet};
use ucq_storage::fx_hash_of;

/// Tunables for the union-extension search.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Exact subset search up to this many virtual atoms (default 2).
    pub max_exact_subset: usize,
    /// Greedy free-path-elimination steps after exact search (default 8).
    pub max_greedy_steps: usize,
    /// Cap on enumerated body-homomorphisms per query pair (default 128).
    pub hom_cap: usize,
    /// Cap on fixpoint rounds of the availability computation (default 6).
    pub max_rounds: usize,
    /// Cap on the candidate-atom pool per query (default 160).
    pub pool_cap: usize,
    /// Cap on candidate extension sets enumerated per member by the
    /// cost-based planner (default 4; `find_extension` uses 1).
    pub max_plan_candidates: usize,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            max_exact_subset: 2,
            max_greedy_steps: 8,
            hom_cap: 128,
            max_rounds: 6,
            pool_cap: 160,
            max_plan_candidates: 4,
        }
    }
}

/// Memoized `S`-connexity oracle over extended hypergraphs.
///
/// The memo key is a 64-bit multiset hash of the extended edge list (each
/// edge hashed independently, combined by commutative wrapping addition)
/// rather than an owned, sorted `Vec<VSet>`: a query neither clones nor
/// re-sorts the edge list, and the map stores 16 bytes per entry instead
/// of a heap vector.
#[derive(Default)]
pub struct ConnexOracle {
    memo: HashMap<(u64, VSet), bool>,
}

/// SplitMix64's finalizer: a bijective non-linear mixer. Each edge must be
/// mixed *before* the commutative addition — a linear per-edge hash (like
/// fx on a single word) would make the sum collide for any two edge
/// multisets with equal bitmask totals, e.g. `{3,12,6}` vs `{5,10,6}`.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The order-independent edge-multiset hash of `base + extra` (vertex count
/// folded in so hypergraphs differing only in isolated vertices don't
/// collide).
fn edges_key(base: &Hypergraph, extra: &[VSet]) -> u64 {
    let mut acc = mix64(fx_hash_of(&base.n_vertices()));
    for e in base.edges().iter().chain(extra) {
        acc = acc.wrapping_add(mix64(e.0));
    }
    acc
}

impl ConnexOracle {
    /// Whether `base + extra` is `s`-connex (memoized).
    pub fn is_s_connex(&mut self, base: &Hypergraph, extra: &[VSet], s: VSet) -> bool {
        let key = (edges_key(base, extra), s);
        if let Some(&v) = self.memo.get(&key) {
            return v;
        }
        let h = base.with_edges(extra);
        let v = is_s_connex(&h, s);
        self.memo.insert(key, v);
        v
    }

    /// Finds `A ⊆ pool` with `base + A` `s`-connex, or `None` within the
    /// configured search bounds. An empty `A` is returned when `base` is
    /// already `s`-connex.
    pub fn find_extension(
        &mut self,
        base: &Hypergraph,
        s: VSet,
        pool: &[VSet],
        cfg: &SearchConfig,
    ) -> Option<Vec<VSet>> {
        self.find_extensions(base, s, pool, cfg, 1).pop()
    }

    /// Finds up to `k` distinct sets `A ⊆ pool` with `base + A` `s`-connex,
    /// in the search order of [`ConnexOracle::find_extension`] (empty set,
    /// then exact size-1 fixes, then exact size-2, then the greedy result).
    /// The first entry is always what `find_extension` would have returned,
    /// so costing the candidates and picking any of them preserves the
    /// planner's completeness. An empty result means no extension was found
    /// within the bounds.
    pub fn find_extensions(
        &mut self,
        base: &Hypergraph,
        s: VSet,
        pool: &[VSet],
        cfg: &SearchConfig,
        k: usize,
    ) -> Vec<Vec<VSet>> {
        if k == 0 {
            return Vec::new();
        }
        if self.is_s_connex(base, &[], s) {
            // Nothing beats materializing nothing; alternatives are noise.
            return vec![Vec::new()];
        }
        let mut found: Vec<Vec<VSet>> = Vec::new();
        let pool = prune_pool(base, pool, cfg.pool_cap);
        // Exact search, size 1.
        if cfg.max_exact_subset >= 1 {
            for &c in &pool {
                if self.is_s_connex(base, &[c], s) {
                    found.push(vec![c]);
                    if found.len() == k {
                        return found;
                    }
                }
            }
        }
        // Exact search, size 2.
        if cfg.max_exact_subset >= 2 {
            for i in 0..pool.len() {
                for j in i + 1..pool.len() {
                    if self.is_s_connex(base, &[pool[i], pool[j]], s) {
                        found.push(vec![pool[i], pool[j]]);
                        if found.len() == k {
                            return found;
                        }
                    }
                }
            }
        }
        if !found.is_empty() {
            // An exact solution exists; the greedy pass could only produce
            // a superset of some size ≤ 2 fix.
            return found;
        }
        // Greedy fallback (Lemma 28 style): add the candidate with the best
        // (acyclicity, remaining free-paths) score, require strict progress.
        let mut chosen: Vec<VSet> = Vec::new();
        let mut score = score_of(base, &chosen, s);
        for _ in 0..cfg.max_greedy_steps {
            let mut best: Option<(VSet, (bool, usize))> = None;
            for &c in &pool {
                if chosen.contains(&c) {
                    continue;
                }
                chosen.push(c);
                let sc = score_of(base, &chosen, s);
                chosen.pop();
                if better(sc, score) && best.is_none_or(|(_, b)| better(sc, b)) {
                    best = Some((c, sc));
                }
            }
            let Some((c, sc)) = best else {
                return found;
            };
            chosen.push(c);
            score = sc;
            if self.is_s_connex(base, &chosen, s) {
                found.push(chosen);
                return found;
            }
        }
        found
    }
}

/// Score: `(acyclic, number of S-free-paths)`. Lower is better; cyclic is
/// worst.
fn score_of(base: &Hypergraph, extra: &[VSet], s: VSet) -> (bool, usize) {
    let h = base.with_edges(extra);
    if !is_acyclic(&h) {
        return (false, usize::MAX);
    }
    (true, free_paths(&h, s.inter(h.covered_vertices())).len())
}

fn better(a: (bool, usize), b: (bool, usize)) -> bool {
    match (a.0, b.0) {
        (true, false) => true,
        (false, true) => false,
        _ => a.1 < b.1,
    }
}

/// Cleans a candidate pool: drops singletons (absorbed immediately by GYO),
/// atoms contained in a base edge (no structural effect), and duplicates;
/// sorts large-to-small for deterministic search; truncates to `cap`.
pub fn prune_pool(base: &Hypergraph, pool: &[VSet], cap: usize) -> Vec<VSet> {
    let mut out: Vec<VSet> = pool
        .iter()
        .copied()
        .filter(|c| c.len() >= 2 && !base.edges().iter().any(|e| c.is_subset(*e)))
        .collect();
    out.sort_unstable_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
    out.dedup();
    out.truncate(cap);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hg(n: u32, edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::new(
            n,
            edges.iter().map(|e| e.iter().copied().collect()).collect(),
        )
    }

    fn vs(v: &[u32]) -> VSet {
        v.iter().copied().collect()
    }

    #[test]
    fn already_connex_needs_nothing() {
        let h = hg(3, &[&[0, 2], &[2, 1]]);
        let mut o = ConnexOracle::default();
        let a = o
            .find_extension(&h, vs(&[0, 1, 2]), &[], &SearchConfig::default())
            .unwrap();
        assert!(a.is_empty());
    }

    #[test]
    fn example2_single_atom_fix() {
        // Q1(x,y,w) <- R1(x,z),R2(z,y),R3(y,w): x=0,y=1,w=2,z=3.
        // Adding {x,z,y} = {0,3,1} makes it free-connex.
        let h = hg(4, &[&[0, 3], &[3, 1], &[1, 2]]);
        let free = vs(&[0, 1, 2]);
        let pool = [vs(&[0, 3, 1])];
        let mut o = ConnexOracle::default();
        let a = o
            .find_extension(&h, free, &pool, &SearchConfig::default())
            .unwrap();
        assert_eq!(a, vec![vs(&[0, 3, 1])]);
    }

    #[test]
    fn useless_pool_fails() {
        let h = hg(4, &[&[0, 3], &[3, 1], &[1, 2]]);
        let free = vs(&[0, 1, 2]);
        // Only an atom inside an existing edge: pruned away.
        let pool = [vs(&[0, 3])];
        let mut o = ConnexOracle::default();
        assert!(o
            .find_extension(&h, free, &pool, &SearchConfig::default())
            .is_none());
    }

    #[test]
    fn example13_needs_two_atoms() {
        // Q1(x,y,v,u) <- R1(x,z1),R2(z1,z2),R3(z2,z3),R4(z3,y),R5(y,v,u)
        // x=0,y=1,v=2,u=3,z1=4,z2=5,z3=6; free={x,y,v,u}.
        // Pool: {x,z1,z2,y} and {x,z2,z3,y} (as provided in the paper).
        let h = hg(7, &[&[0, 4], &[4, 5], &[5, 6], &[6, 1], &[1, 2, 3]]);
        let free = vs(&[0, 1, 2, 3]);
        let pool = [vs(&[0, 4, 5, 1]), vs(&[0, 5, 6, 1])];
        let mut o = ConnexOracle::default();
        let a = o
            .find_extension(&h, free, &pool, &SearchConfig::default())
            .expect("Example 13's Q1 has a free-connex union extension");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn example36_cyclic_fixed_by_one_atom() {
        // Q1(x,y,z,w) <- R1(y,z,w,x),R2(t,y,w),R3(t,z,w),R4(t,y,z)
        // x=0,y=1,z=2,w=3,t=4; adding {t,y,z,w} = {4,1,2,3} resolves it.
        let h = hg(5, &[&[1, 2, 3, 0], &[4, 1, 3], &[4, 2, 3], &[4, 1, 2]]);
        let free = vs(&[0, 1, 2, 3]);
        assert!(!is_acyclic(&h));
        let pool = [vs(&[4, 1, 2, 3])];
        let mut o = ConnexOracle::default();
        let a = o
            .find_extension(&h, free, &pool, &SearchConfig::default())
            .expect("Example 36 becomes free-connex");
        assert_eq!(a, vec![vs(&[4, 1, 2, 3])]);
    }

    #[test]
    fn example39_full_set_creates_hyperclique() {
        // Q1(x2,x3,x4) <- R1(x2,x3,x4),R2(x1,x3,x4),R3(x1,x2,x4):
        // x1=0,x2=1,x3=2,x4=3; adding {x1,x2,x3} introduces the hyperclique
        // and does NOT make the query free-connex.
        let h = hg(4, &[&[1, 2, 3], &[0, 2, 3], &[0, 1, 3]]);
        let free = vs(&[1, 2, 3]);
        let pool = [vs(&[0, 1, 2])];
        let mut o = ConnexOracle::default();
        assert!(o
            .find_extension(&h, free, &pool, &SearchConfig::default())
            .is_none());
    }

    #[test]
    fn find_extensions_orders_first_found_first() {
        // Example 13 shape again, with a pool holding two alternative
        // two-atom fixes: k-candidate search must lead with exactly what
        // find_extension returns and respect the cap.
        let h = hg(7, &[&[0, 4], &[4, 5], &[5, 6], &[6, 1], &[1, 2, 3]]);
        let free = vs(&[0, 1, 2, 3]);
        let pool = [vs(&[0, 4, 5, 1]), vs(&[0, 5, 6, 1])];
        let mut o = ConnexOracle::default();
        let first = o
            .find_extension(&h, free, &pool, &SearchConfig::default())
            .unwrap();
        let many = o.find_extensions(&h, free, &pool, &SearchConfig::default(), 4);
        assert!(!many.is_empty());
        assert_eq!(many[0], first, "candidate 0 is the first-found set");
        assert!(o
            .find_extensions(&h, free, &pool, &SearchConfig::default(), 0)
            .is_empty());
    }

    #[test]
    fn find_extensions_on_connex_base_is_just_empty_set() {
        let h = hg(3, &[&[0, 2], &[2, 1]]);
        let mut o = ConnexOracle::default();
        let many = o.find_extensions(
            &h,
            vs(&[0, 1, 2]),
            &[vs(&[0, 1])],
            &SearchConfig::default(),
            4,
        );
        assert_eq!(many, vec![Vec::<VSet>::new()]);
    }

    #[test]
    fn memo_key_distinguishes_isolated_vertices() {
        // Same edges, different vertex counts: must not share memo entries.
        let h3 = hg(3, &[&[0, 1]]);
        let h4 = hg(4, &[&[0, 1]]);
        assert_ne!(edges_key(&h3, &[]), edges_key(&h4, &[]));
        // Order independence: extra edges hash the same in any order.
        let a = edges_key(&h4, &[vs(&[1, 2]), vs(&[2, 3])]);
        let b = edges_key(&h4, &[vs(&[2, 3]), vs(&[1, 2])]);
        assert_eq!(a, b);
    }

    #[test]
    fn memo_key_distinguishes_equal_bitmask_sums() {
        // Edge bitmasks {3, 12, 6} and {5, 10, 6} both sum to 21; a linear
        // per-edge hash would collide here (and once did, conflating one
        // query's {a,f}-connexity with another's {a,d}).
        let h1 = hg(4, &[&[0, 1], &[2, 3], &[1, 2]]);
        let h2 = hg(4, &[&[0, 2], &[1, 3], &[1, 2]]);
        assert_ne!(edges_key(&h1, &[]), edges_key(&h2, &[]));
    }

    #[test]
    fn pool_pruning() {
        let h = hg(4, &[&[0, 1], &[1, 2]]);
        let pool = [
            vs(&[0]),       // singleton: dropped
            vs(&[0, 1]),    // inside an edge: dropped
            vs(&[0, 1, 2]), // kept
            vs(&[0, 1, 2]), // duplicate: dropped
            vs(&[2, 3]),    // kept
        ];
        let pruned = prune_pool(&h, &pool, 10);
        assert_eq!(pruned, vec![vs(&[0, 1, 2]), vs(&[2, 3])]);
    }
}
