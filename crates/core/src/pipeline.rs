//! The Theorem 12 pipeline: enumerating a free-connex UCQ in `DelayClin`.
//!
//! Execution follows the paper's proof: materialize every virtual relation
//! in provenance order (Lemma 8, emitting provider answers along the way),
//! instantiate each member's free-connex extension over the enlarged
//! instance, enumerate them back to back with CDY, and push everything
//! through the Cheater's Lemma compiler (Lemma 5) — the constant number of
//! linear-delay moments (one per member plus one per virtual atom) and the
//! constant duplication factor are exactly what the lemma absorbs.
//!
//! The whole spine is id-level and block-at-a-time: early answers are
//! replayed as flat id rows ([`IdVecEnumerator`]), each member engine
//! feeds output-projected id rows straight into the chain
//! ([`OwnedCdyIter`]'s [`IdEnumerator`] adapter), and the Cheater dedups,
//! parks and paces interned rows. Answers are decoded to value
//! [`Tuple`]s exactly once — at emission through the value facade — and
//! not at all for duplicates or for id-aware callers
//! ([`UcqPipeline::next_ids`]).
//!
//! The preprocessing phase is reified as [`UcqPipelinePrep`]: all member
//! engines share one context view (so the base relations are interned
//! and normalized once for the whole union), and a prep can
//! [`start`](UcqPipelinePrep::start) any number of enumerations — this is
//! what [`EvalSession`](crate::engine::EvalSession) caches to serve
//! repeated queries without redoing linear preprocessing.

use crate::lemma8::materialize_atom_in;
use crate::plan::ExtensionPlan;
use std::sync::Arc;
use ucq_enumerate::{
    Cheater, CheaterStats, Enumerator, IdChainEnumerator, IdEnumerator, IdVecEnumerator,
};
use ucq_query::Ucq;
use ucq_storage::{CtxView, IdBlock, Instance, Tuple, ValueId};
use ucq_yannakakis::{CdyEngine, EvalError, OwnedCdyIter};

/// The preprocessed (linear-phase) state of the Theorem 12 pipeline:
/// materialized virtual relations folded into per-member CDY engines, ready
/// to start enumerations.
///
/// Cloning is cheap (the member engines are shared `Arc`s; the early-answer
/// ids are one flat memcpy) — `FrozenSession::refreeze` clones the prep
/// wholesale when no relation it reads was touched by a delta.
#[derive(Clone)]
pub struct UcqPipelinePrep {
    /// Provider answers emitted during materialization (Lemma 8's output
    /// charging), as flat id rows; replayed at the head of every
    /// enumeration without decoding.
    early_ids: Vec<ValueId>,
    /// Number of early answers (authoritative for Boolean unions).
    n_early: usize,
    /// Ids per answer (the union's head arity).
    arity: usize,
    /// One preprocessed engine per member's free-connex extension.
    engines: Vec<Arc<CdyEngine>>,
    /// Lemma 5 duplication budget.
    budget: usize,
    /// Tuples materialization contributed to the instance, per planned atom
    /// (diagnostics for tests/benches).
    pub materialized_sizes: Vec<usize>,
    ctx: CtxView,
}

impl UcqPipelinePrep {
    /// Runs the preprocessing phase (materializations + per-member CDY
    /// builds) through the shared `ctx`.
    pub fn prepare(
        ucq: &Ucq,
        plan: &ExtensionPlan,
        instance: &Instance,
        ctx: &CtxView,
    ) -> Result<UcqPipelinePrep, EvalError> {
        let mut ext_instance = instance.clone();
        let arity = ucq.cqs()[0].head().len();
        let mut early_ids: Vec<ValueId> = Vec::new();
        let mut n_early = 0usize;
        let mut materialized_sizes = Vec::with_capacity(plan.atoms.len());

        let name_of =
            |t: usize, v: ucq_hypergraph::VSet| -> String { plan.atom_for(t, v).rel_name.clone() };
        for atom in &plan.atoms {
            let m = materialize_atom_in(ucq, atom, &name_of, &ext_instance, ctx)?;
            materialized_sizes.push(m.relation.len());
            ext_instance.insert_shared(atom.rel_name.clone(), m.relation);
            debug_assert_eq!(m.provider_width, arity, "providers share the union arity");
            early_ids.extend_from_slice(&m.provider_ids);
            n_early += m.n_provider_answers;
        }

        let mut engines = Vec::with_capacity(ucq.len());
        for i in 0..ucq.len() {
            let extended = plan.extended_query(ucq, i);
            engines.push(Arc::new(CdyEngine::for_query_in(
                &extended,
                &ext_instance,
                ctx,
            )?));
        }

        // Duplication bound: each answer can surface once per member and
        // once per materialization (Lemma 5's m).
        let budget = ucq.len() + plan.atoms.len() + 1;
        Ok(UcqPipelinePrep {
            early_ids,
            n_early,
            arity,
            engines,
            budget,
            materialized_sizes,
            ctx: ctx.clone(),
        })
    }

    /// Retargets this prep (and its member engines) onto another view of
    /// the same session — the freeze step of `EvalSession::freeze`. An
    /// engine still pinned by a live enumerator (`Arc` shared) keeps its
    /// build-phase view; that is still correct (the frozen snapshot shares
    /// the same ids), it just keeps paying the build-phase lock.
    pub(crate) fn retarget(&mut self, view: &CtxView) {
        self.ctx = view.clone();
        for eng in &mut self.engines {
            if let Some(e) = Arc::get_mut(eng) {
                e.set_view(view.clone());
            }
        }
    }

    /// Starts one enumeration over the preprocessed state. Starting is
    /// O(answers already emitted during materialization) — one flat memcpy
    /// of the early id rows; no linear pass is repeated.
    pub fn start(&self) -> UcqPipeline {
        let mut stages: Vec<Box<dyn IdEnumerator + Send>> =
            Vec::with_capacity(self.engines.len() + 1);
        stages.push(Box::new(IdVecEnumerator::new(
            self.arity,
            self.early_ids.clone(),
            self.n_early,
        )));
        for eng in &self.engines {
            stages.push(Box::new(OwnedCdyIter::new(Arc::clone(eng))));
        }
        UcqPipeline {
            // The early answers are genuine distinct outputs, so their
            // count is a free lower bound for the dedup table.
            inner: Cheater::with_capacity_hint(
                IdChainEnumerator::new(self.arity, stages),
                self.budget,
                self.ctx.clone(),
                self.n_early,
            ),
            materialized_sizes: self.materialized_sizes.clone(),
        }
    }
}

/// A `DelayClin` enumerator for a free-connex UCQ: the id-level Cheater
/// spine with a thin `Tuple`-yielding facade ([`Enumerator`]).
pub struct UcqPipeline {
    inner: Cheater<IdChainEnumerator>,
    /// See [`UcqPipelinePrep::materialized_sizes`].
    pub materialized_sizes: Vec<usize>,
}

impl UcqPipeline {
    /// Preprocesses and starts a single enumeration with a private context.
    /// Prefer [`UcqPipelinePrep`] (or the engine's session API) when
    /// enumerating repeatedly.
    pub fn build(
        ucq: &Ucq,
        plan: &ExtensionPlan,
        instance: &Instance,
    ) -> Result<UcqPipeline, EvalError> {
        UcqPipeline::build_in(ucq, plan, instance, &CtxView::new())
    }

    /// As [`UcqPipeline::build`], sharing the caches of `ctx`.
    pub fn build_in(
        ucq: &Ucq,
        plan: &ExtensionPlan,
        instance: &Instance,
        ctx: &CtxView,
    ) -> Result<UcqPipeline, EvalError> {
        Ok(UcqPipelinePrep::prepare(ucq, plan, instance, ctx)?.start())
    }

    /// Dedup/pacing statistics of the underlying Cheater compiler.
    pub fn stats(&self) -> CheaterStats {
        self.inner.stats()
    }

    /// The next answer as a borrowed interned id row — the escape hatch
    /// for id-aware callers (no decode; see [`Cheater::next_ids`]).
    pub fn next_ids(&mut self) -> Option<&[ValueId]> {
        self.inner.next_ids()
    }
}

impl Enumerator for UcqPipeline {
    fn next(&mut self) -> Option<Tuple> {
        self.inner.next()
    }
}

/// The pipeline is itself an id enumerator, so id-aware callers can drain
/// it block-at-a-time (delay measurement, chained unions, benches).
impl IdEnumerator for UcqPipeline {
    fn arity(&self) -> usize {
        IdEnumerator::arity(&self.inner)
    }

    fn next_block(&mut self, block: &mut IdBlock) -> usize {
        self.inner.next_block(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_ucq::evaluate_ucq_naive;
    use crate::plan::plan_free_connex;
    use crate::search::SearchConfig;
    use std::collections::HashSet;
    use ucq_query::parse_ucq;
    use ucq_storage::Relation;

    fn inst(rels: &[(&str, Vec<(i64, i64)>)]) -> Instance {
        rels.iter()
            .map(|(n, pairs)| (n.to_string(), Relation::from_pairs(pairs.iter().copied())))
            .collect()
    }

    fn run_pipeline(text: &str, i: &Instance) -> (Vec<Tuple>, Vec<Tuple>) {
        let u = parse_ucq(text).unwrap();
        let plan = plan_free_connex(&u, &SearchConfig::default()).expect("free-connex");
        let mut p = UcqPipeline::build(&u, &plan, i).unwrap();
        let got = p.collect_all();
        let s = p.stats();
        assert_eq!(s.decoded, s.emitted, "decode exactly once per emission");
        let want = evaluate_ucq_naive(&u, i).unwrap();
        (got, want)
    }

    #[test]
    fn example2_matches_naive_and_dedups() {
        let i = inst(&[
            ("R1", vec![(1, 2), (1, 5), (9, 7)]),
            ("R2", vec![(2, 3), (5, 3), (7, 0)]),
            ("R3", vec![(3, 4), (3, 6), (0, 2)]),
        ]);
        let (got, want) = run_pipeline(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
            &i,
        );
        let got_set: HashSet<Tuple> = got.iter().cloned().collect();
        assert_eq!(got.len(), got_set.len(), "no duplicates");
        let want_set: HashSet<Tuple> = want.into_iter().collect();
        assert_eq!(got_set, want_set);
    }

    fn rel3(rows: &[(i64, i64, i64)]) -> Relation {
        let mut r = Relation::new(3);
        for &(a, b, c) in rows {
            r.push_row(&[
                ucq_storage::Value::Int(a),
                ucq_storage::Value::Int(b),
                ucq_storage::Value::Int(c),
            ]);
        }
        r
    }

    #[test]
    fn example13_union_of_three_hard_members() {
        let mut i = inst(&[
            ("R1", vec![(1, 2), (4, 5), (1, 5)]),
            ("R2", vec![(2, 3), (5, 6), (2, 6)]),
            ("R3", vec![(3, 4), (6, 7), (3, 7)]),
            ("R4", vec![(4, 5), (7, 8), (4, 8)]),
        ]);
        i.insert("R5", rel3(&[(5, 6, 7), (8, 0, 1), (5, 1, 1)]));
        let (got, want) = run_pipeline(
            "Q1(x, y, v, u) <- R1(x, z1), R2(z1, z2), R3(z2, z3), R4(z3, y), R5(y, v, u)\n\
             Q2(x, y, v, u) <- R1(x, y), R2(y, v), R3(v, z1), R4(z1, u), R5(u, t1, t2)\n\
             Q3(x, y, v, u) <- R1(x, z1), R2(z1, y), R3(y, v), R4(v, u), R5(u, t1, t2)",
            &i,
        );
        let got_set: HashSet<Tuple> = got.iter().cloned().collect();
        assert_eq!(got.len(), got_set.len(), "no duplicates");
        let want_set: HashSet<Tuple> = want.into_iter().collect();
        assert_eq!(got_set, want_set);
    }

    #[test]
    fn example21_body_isomorphic_pair() {
        let i = inst(&[
            ("R1", vec![(1, 2), (3, 2), (0, 9)]),
            ("R2", vec![(2, 4), (9, 4)]),
            ("R3", vec![(4, 5), (4, 6)]),
            ("R4", vec![(5, 1), (6, 3)]),
        ]);
        let (got, want) = run_pipeline(
            "Q1(w, y, x, z) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)\n\
             Q2(x, y, w, v) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)",
            &i,
        );
        let got_set: HashSet<Tuple> = got.iter().cloned().collect();
        assert_eq!(got.len(), got_set.len());
        let want_set: HashSet<Tuple> = want.into_iter().collect();
        assert_eq!(got_set, want_set);
    }

    #[test]
    fn all_free_connex_union_via_pipeline() {
        let i = inst(&[("R", vec![(1, 2), (3, 4)]), ("S", vec![(3, 4), (5, 6)])]);
        let (got, want) = run_pipeline(
            "Q1(x, y) <- R(x, y)\n\
             Q2(a, b) <- S(a, b)",
            &i,
        );
        let got_set: HashSet<Tuple> = got.iter().cloned().collect();
        assert_eq!(got.len(), got_set.len(), "overlap (3,4) emitted once");
        assert_eq!(got_set.len(), 3);
        let want_set: HashSet<Tuple> = want.into_iter().collect();
        assert_eq!(got_set, want_set);
    }

    #[test]
    fn empty_instance_yields_nothing() {
        let i = Instance::new();
        let (got, want) = run_pipeline(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
            &i,
        );
        assert!(got.is_empty());
        assert!(want.is_empty());
    }

    #[test]
    fn prepared_pipeline_restarts() {
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        let plan = plan_free_connex(&u, &SearchConfig::default()).unwrap();
        let i = inst(&[
            ("R1", vec![(1, 2), (1, 5)]),
            ("R2", vec![(2, 3), (5, 3)]),
            ("R3", vec![(3, 4)]),
        ]);
        let ctx = CtxView::new();
        let prep = UcqPipelinePrep::prepare(&u, &plan, &i, &ctx).unwrap();
        let a: HashSet<Tuple> = prep.start().collect_all().into_iter().collect();
        let b: HashSet<Tuple> = prep.start().collect_all().into_iter().collect();
        assert_eq!(a, b, "restarted enumerations agree");
        let want: HashSet<Tuple> = evaluate_ucq_naive(&u, &i).unwrap().into_iter().collect();
        assert_eq!(a, want);
    }

    #[test]
    fn id_level_drain_matches_value_facade() {
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        let plan = plan_free_connex(&u, &SearchConfig::default()).unwrap();
        let i = inst(&[
            ("R1", vec![(1, 2), (1, 5), (9, 7)]),
            ("R2", vec![(2, 3), (5, 3), (7, 0)]),
            ("R3", vec![(3, 4), (3, 6), (0, 2)]),
        ]);
        let ctx = CtxView::new();
        let prep = UcqPipelinePrep::prepare(&u, &plan, &i, &ctx).unwrap();

        let via_values = prep.start().collect_all();

        let mut p = prep.start();
        let mut via_ids: Vec<Tuple> = Vec::new();
        while let Some(row) = p.next_ids() {
            let t = ctx.decode_tuple(row.iter().copied());
            via_ids.push(t);
        }
        assert_eq!(via_ids, via_values, "same answers in the same order");
        let s = p.stats();
        assert_eq!(s.decoded, 0, "next_ids never decodes");
        assert_eq!(s.emitted, via_values.len());
    }

    #[test]
    fn materialized_sizes_match_lemma8_output() {
        // Satellite check: the prep's diagnostics must pin exactly the
        // per-atom relation sizes an independent Lemma 8 run produces over
        // the same progressively-extended instance.
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        let plan = plan_free_connex(&u, &SearchConfig::default()).unwrap();
        let i = inst(&[
            ("R1", vec![(1, 2), (1, 5), (9, 9)]),
            ("R2", vec![(2, 3), (5, 3), (9, 8)]),
            ("R3", vec![(3, 4), (8, 0)]),
        ]);
        let ctx = CtxView::new();
        let prep = UcqPipelinePrep::prepare(&u, &plan, &i, &ctx).unwrap();

        let name_of = |t: usize, v: ucq_hypergraph::VSet| plan.atom_for(t, v).rel_name.clone();
        let mut ext = i.clone();
        let mut want_sizes = Vec::new();
        let ctx2 = CtxView::new();
        for atom in &plan.atoms {
            let m = materialize_atom_in(&u, atom, &name_of, &ext, &ctx2).unwrap();
            want_sizes.push(m.relation.len());
            ext.insert_shared(atom.rel_name.clone(), m.relation);
        }
        assert!(!want_sizes.is_empty(), "example 2 materializes atoms");
        assert_eq!(prep.materialized_sizes, want_sizes);
        assert_eq!(prep.start().materialized_sizes, want_sizes);
    }
}
