//! Typed request-level outcomes for the resilient serving runtime.
//!
//! [`EvalError`](ucq_yannakakis::EvalError) describes why an *engine*
//! cannot evaluate a query (not `S`-connex, schema mismatch); a serving
//! runtime has failure modes above that layer — overload shedding, panic
//! isolation, shutdown — and success modes below "the full answer set"
//! (budget-truncated partials). [`RequestError`] and [`Served`] are the
//! request-level vocabulary: every admitted request resolves to exactly
//! one `Result<Served, RequestError>`, which is what the chaos suite's
//! accounting invariants are stated over. They live in `ucq-core` so any
//! runtime over [`FrozenSession`](crate::FrozenSession) — `crates/serve`
//! today, an async layer later — shares one error vocabulary.

use ucq_enumerate::Truncation;
use ucq_storage::Tuple;
use ucq_yannakakis::EvalError;

/// Why a request produced no answers at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// Admission control shed the request: the bounded queue was full.
    /// `depth` is the queue depth observed at rejection.
    Overloaded {
        /// Queue depth at rejection time.
        depth: usize,
        /// The queue's capacity.
        capacity: usize,
    },
    /// The runtime was shutting down: rejected at admission, or drained
    /// from the queue by an abort before a worker picked it up.
    ShutDown,
    /// The request's worker panicked mid-enumeration; the panic was
    /// isolated (`catch_unwind`) and the worker kept serving.
    Internal {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// The engine rejected the enumeration itself.
    Eval(EvalError),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Overloaded { depth, capacity } => write!(
                f,
                "request shed: queue at depth {depth} of capacity {capacity}"
            ),
            RequestError::ShutDown => f.write_str("request rejected: runtime shutting down"),
            RequestError::Internal { detail } => {
                write!(f, "request failed on an isolated worker panic: {detail}")
            }
            RequestError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for RequestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RequestError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for RequestError {
    fn from(e: EvalError) -> RequestError {
        RequestError::Eval(e)
    }
}

/// A request's successful outcome: the full answer set, or the prefix a
/// budget allowed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Served {
    /// The enumeration ran to natural exhaustion.
    Complete {
        /// Every answer.
        answers: Vec<Tuple>,
    },
    /// A budget limit fired; `answers` is the prefix emitted before it.
    Partial {
        /// The answers emitted before truncation.
        answers: Vec<Tuple>,
        /// Which limit fired.
        truncated_by: Truncation,
    },
}

impl Served {
    /// The emitted answers, complete or not.
    pub fn answers(&self) -> &[Tuple] {
        match self {
            Served::Complete { answers } | Served::Partial { answers, .. } => answers,
        }
    }

    /// Consumes into the emitted answers.
    pub fn into_answers(self) -> Vec<Tuple> {
        match self {
            Served::Complete { answers } | Served::Partial { answers, .. } => answers,
        }
    }

    /// The truncation cause, if any.
    pub fn truncation(&self) -> Option<Truncation> {
        match self {
            Served::Complete { .. } => None,
            Served::Partial { truncated_by, .. } => Some(*truncated_by),
        }
    }

    /// Whether a budget cut the stream short.
    pub fn is_partial(&self) -> bool {
        matches!(self, Served::Partial { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_accessors() {
        let t = Tuple::from(&[1i64][..]);
        let complete = Served::Complete {
            answers: vec![t.clone()],
        };
        assert!(!complete.is_partial());
        assert_eq!(complete.truncation(), None);
        assert_eq!(complete.answers().len(), 1);

        let partial = Served::Partial {
            answers: vec![t.clone(), t],
            truncated_by: Truncation::Deadline,
        };
        assert!(partial.is_partial());
        assert_eq!(partial.truncation(), Some(Truncation::Deadline));
        assert_eq!(partial.into_answers().len(), 2);
    }

    #[test]
    fn request_error_display_and_source() {
        let shed = RequestError::Overloaded {
            depth: 8,
            capacity: 8,
        };
        assert!(shed.to_string().contains("capacity 8"));
        assert!(RequestError::ShutDown.to_string().contains("shutting down"));

        let eval: RequestError = EvalError::Schema("arity mismatch".into()).into();
        assert!(eval.to_string().contains("arity mismatch"));
        assert!(std::error::Error::source(&eval).is_some());
        assert!(std::error::Error::source(&RequestError::ShutDown).is_none());
    }
}
