//! The UCQ classifier: assembling the paper's upper and lower bounds into a
//! three-way verdict.
//!
//! * [`Verdict::FreeConnex`] — the union is free-connex (Definition 11);
//!   the attached [`ExtensionPlan`] is an executable `DelayClin`
//!   certificate (Theorems 4 and 12).
//! * [`Verdict::Intractable`] — one of the paper's conditional lower bounds
//!   applies; the [`HardnessWitness`] names the reduction and the
//!   hypothesis it rests on (Lemmas 14/15/25/26, Theorems 3/17/33).
//! * [`Verdict::Unknown`] — outside every proven class (the paper's §5
//!   frontier, e.g. Examples 30, 31 (k ≥ 5), 38), or beyond the search
//!   bounds; the notes say which.
//!
//! Lower bounds never depend on the (bounded) extension search: for every
//! class with a dichotomy the guard conditions decide exactly, so a search
//! miss can only produce a pessimistic `Unknown`, never a wrong verdict.

use crate::body_iso::{align_body_isomorphic, AlignedUnion};
use crate::guards::{is_bypass_guarded, is_free_path_guarded, is_isolated, is_union_guarded};
use crate::plan::{plan_free_connex, ExtensionPlan};
use crate::search::SearchConfig;
use ucq_hypergraph::free_paths;
use ucq_query::{exists_body_hom, lemma16_representative, minimize_union, Cq, Ucq, VarId};

/// The Theorem 3 trichotomy for a single self-join-free CQ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CqStatus {
    /// Free-connex: in `DelayClin`.
    FreeConnex,
    /// Acyclic but not free-connex: not in `DelayClin` assuming mat-mul.
    AcyclicHard,
    /// Cyclic: even `Decide⟨Q⟩` is super-linear assuming hyperclique.
    Cyclic,
}

/// Classifies one CQ per Theorem 3.
pub fn cq_status(cq: &Cq) -> CqStatus {
    if cq.is_free_connex() {
        CqStatus::FreeConnex
    } else if cq.is_acyclic() {
        CqStatus::AcyclicHard
    } else {
        CqStatus::Cyclic
    }
}

/// The fine-grained hypotheses of §2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hypothesis {
    /// Boolean n×n matrix multiplication needs ω(n²) time.
    MatMul,
    /// A k-hyperclique in a (k−1)-uniform hypergraph needs ω(n^{k−1}) time.
    HyperClique,
    /// A 4-clique needs ω(n³) time.
    FourClique,
}

impl std::fmt::Display for Hypothesis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Hypothesis::MatMul => write!(f, "mat-mul"),
            Hypothesis::HyperClique => write!(f, "hyperclique"),
            Hypothesis::FourClique => write!(f, "4-clique"),
        }
    }
}

/// A named lower-bound argument.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HardnessWitness {
    /// Lemma 14/15: member `member` is hard and no other member maps into
    /// it by a body-homomorphism (or only body-isomorphically, for the
    /// decision variant); the member's own Theorem 3 hardness transfers.
    IsolatedHardCq {
        /// The hard member (index into the minimized union).
        member: usize,
        /// Its Theorem 3 status.
        status: CqStatus,
    },
    /// Theorem 17: all members intractable, no two body-isomorphic acyclic
    /// members; hardness transfers through the Lemma 16 representative.
    UnionOfIntractable {
        /// The representative chosen per Lemma 16.
        representative: usize,
        /// Its Theorem 3 status.
        status: CqStatus,
    },
    /// Lemma 25 / Theorem 33: a free-path of `member` is not (union)
    /// guarded — Boolean matrix multiplication embeds.
    UnguardedFreePath {
        /// Whose free-path.
        member: usize,
        /// The path, as variable ids of the aligned body.
        path: Vec<VarId>,
    },
    /// Lemma 26: free-path guarded both ways but not bypass guarded —
    /// 4-clique embeds.
    NotBypassGuarded {
        /// Whose free-path.
        member: usize,
        /// The path, as variable ids of the aligned body.
        path: Vec<VarId>,
    },
}

impl HardnessWitness {
    /// The hypothesis the bound rests on.
    pub fn hypothesis(&self) -> Hypothesis {
        match self {
            HardnessWitness::IsolatedHardCq { status, .. }
            | HardnessWitness::UnionOfIntractable { status, .. } => match status {
                CqStatus::AcyclicHard => Hypothesis::MatMul,
                CqStatus::Cyclic => Hypothesis::HyperClique,
                CqStatus::FreeConnex => unreachable!("free-connex members are not witnesses"),
            },
            HardnessWitness::UnguardedFreePath { .. } => Hypothesis::MatMul,
            HardnessWitness::NotBypassGuarded { .. } => Hypothesis::FourClique,
        }
    }

    /// The paper result backing the witness.
    pub fn reference(&self) -> &'static str {
        match self {
            HardnessWitness::IsolatedHardCq { status, .. } => match status {
                CqStatus::Cyclic => "Lemma 15 + Theorem 3(3)",
                _ => "Lemma 14 + Theorem 3(2)",
            },
            HardnessWitness::UnionOfIntractable { .. } => "Theorem 17",
            HardnessWitness::UnguardedFreePath { .. } => "Lemma 25 / Theorem 33",
            HardnessWitness::NotBypassGuarded { .. } => "Lemma 26",
        }
    }
}

/// The classifier's decision.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// In `DelayClin`, with an executable certificate.
    FreeConnex {
        /// The union-extension plan (empty plan = Theorem 4 case).
        plan: ExtensionPlan,
    },
    /// Not in `DelayClin` under the stated hypothesis.
    Intractable {
        /// Which reduction applies.
        witness: HardnessWitness,
    },
    /// Outside the proven classes (or the bounded search).
    Unknown {
        /// Diagnostics: which checks failed and why nothing applies.
        notes: Vec<String>,
    },
}

/// The full classification result.
#[derive(Clone, Debug)]
pub struct Classification {
    /// Indices of the members kept after redundancy elimination
    /// (Example 1), into the original union.
    pub kept: Vec<usize>,
    /// The minimized union all verdict fields refer to.
    pub minimized: Ucq,
    /// Theorem 3 status per kept member.
    pub statuses: Vec<CqStatus>,
    /// The verdict.
    pub verdict: Verdict,
}

impl Classification {
    /// Whether the verdict is `FreeConnex`.
    pub fn is_tractable(&self) -> bool {
        matches!(self.verdict, Verdict::FreeConnex { .. })
    }

    /// Whether the verdict is `Intractable`.
    pub fn is_intractable(&self) -> bool {
        matches!(self.verdict, Verdict::Intractable { .. })
    }
}

/// Classifies with default search bounds.
pub fn classify(ucq: &Ucq) -> Classification {
    classify_with(ucq, &SearchConfig::default())
}

/// Classifies with explicit search bounds.
pub fn classify_with(ucq: &Ucq, cfg: &SearchConfig) -> Classification {
    let (minimized, kept) = minimize_union(ucq);
    let statuses: Vec<CqStatus> = minimized.cqs().iter().map(cq_status).collect();

    // Upper bound: free-connex union extension (Theorems 4 and 12).
    if let Some(plan) = plan_free_connex(&minimized, cfg) {
        return Classification {
            kept,
            minimized,
            statuses,
            verdict: Verdict::FreeConnex { plan },
        };
    }

    let verdict = lower_bounds(&minimized, &statuses, cfg);
    Classification {
        kept,
        minimized,
        statuses,
        verdict,
    }
}

fn lower_bounds(ucq: &Ucq, statuses: &[CqStatus], cfg: &SearchConfig) -> Verdict {
    let mut notes: Vec<String> = Vec::new();
    let n = ucq.len();

    if !ucq.is_self_join_free() {
        return Verdict::Unknown {
            notes: vec!["the paper's lower bounds require self-join-free members".to_string()],
        };
    }

    // Single member: Theorem 3 directly.
    if n == 1 {
        return Verdict::Intractable {
            witness: HardnessWitness::IsolatedHardCq {
                member: 0,
                status: statuses[0],
            },
        };
    }

    // Lemma 14/15: a hard member no other member maps into.
    for (i, qi) in ucq.cqs().iter().enumerate() {
        if statuses[i] == CqStatus::FreeConnex {
            continue;
        }
        let unreachable_member = ucq
            .cqs()
            .iter()
            .enumerate()
            .all(|(j, qj)| j == i || !exists_body_hom(qj, qi));
        if unreachable_member {
            return Verdict::Intractable {
                witness: HardnessWitness::IsolatedHardCq {
                    member: i,
                    status: statuses[i],
                },
            };
        }
    }
    notes.push("every hard member is reachable by a body-homomorphism".to_string());

    // Body-isomorphic unions (§4.2, §5.1).
    if let Some(aligned) = align_body_isomorphic(ucq) {
        if let Some(v) = body_iso_bounds(&aligned, statuses, n, &mut notes) {
            return v;
        }
    } else {
        notes.push("members are not all body-isomorphic".to_string());
    }

    // Theorem 17: all members intractable, no two body-isomorphic acyclic
    // members.
    if statuses.iter().all(|s| *s != CqStatus::FreeConnex) {
        let mut iso_acyclic_pair = false;
        for i in 0..n {
            for j in i + 1..n {
                if statuses[i] != CqStatus::Cyclic
                    && statuses[j] != CqStatus::Cyclic
                    && ucq_query::body_isomorphism(&ucq.cqs()[i], &ucq.cqs()[j]).is_some()
                {
                    iso_acyclic_pair = true;
                }
            }
        }
        if !iso_acyclic_pair {
            let m = lemma16_representative(ucq);
            return Verdict::Intractable {
                witness: HardnessWitness::UnionOfIntractable {
                    representative: m,
                    status: statuses[m],
                },
            };
        }
        notes.push(
            "all members intractable but two acyclic members are body-isomorphic".to_string(),
        );
    }

    notes.push(format!(
        "no proven lower bound applies; extension search bounds: exact ≤ {}, greedy ≤ {}",
        cfg.max_exact_subset, cfg.max_greedy_steps
    ));
    Verdict::Unknown { notes }
}

/// Lower bounds for body-isomorphic unions; `None` = nothing applies.
fn body_iso_bounds(
    aligned: &AlignedUnion,
    statuses: &[CqStatus],
    n: usize,
    notes: &mut Vec<String>,
) -> Option<Verdict> {
    let h = aligned.body.hypergraph();

    // Cyclic bodies fall to Theorem 17 (handled by the caller: a cyclic
    // member is never free-connex, and body-isomorphic acyclic pairs don't
    // exist when the body is cyclic).
    if statuses.contains(&CqStatus::Cyclic) {
        notes.push("body-isomorphic union with cyclic body".to_string());
        return None;
    }

    if n == 2 {
        // Theorem 29 dichotomy.
        for (a, b) in [(0usize, 1usize), (1, 0)] {
            if !is_free_path_guarded(&h, aligned.frees[a], aligned.frees[b]) {
                let path = free_paths(&h, aligned.frees[a])
                    .into_iter()
                    .find(|p| !p.vars().is_subset(aligned.frees[b]))
                    .expect("guard violation implies such a path");
                return Some(Verdict::Intractable {
                    witness: HardnessWitness::UnguardedFreePath {
                        member: a,
                        path: path.0,
                    },
                });
            }
        }
        for (a, b) in [(0usize, 1usize), (1, 0)] {
            if !is_bypass_guarded(&aligned.body, aligned.frees[a], aligned.frees[b]) {
                let path = free_paths(&h, aligned.frees[a])
                    .into_iter()
                    .find(|p| {
                        !crate::guards::subsequent_atom_vars(&aligned.body, p)
                            .is_subset(aligned.frees[b])
                    })
                    .expect("bypass violation implies such a path");
                return Some(Verdict::Intractable {
                    witness: HardnessWitness::NotBypassGuarded {
                        member: a,
                        path: path.0,
                    },
                });
            }
        }
        // Both guards hold: Lemma 28 says the union is free-connex, so the
        // planner should have certified it. Reaching here means the bounded
        // search missed a certificate that provably exists.
        notes.push(
            "body-isomorphic pair fully guarded: free-connex by Lemma 28, \
             but the bounded extension search found no certificate"
                .to_string(),
        );
        return None;
    }

    // n ≥ 3: Theorem 33 (a non-union-guarded free-path is hard).
    for (m, free_m) in aligned.frees.iter().enumerate() {
        for p in free_paths(&h, *free_m) {
            if !is_union_guarded(&p, &aligned.frees) {
                return Some(Verdict::Intractable {
                    witness: HardnessWitness::UnguardedFreePath {
                        member: m,
                        path: p.0,
                    },
                });
            }
        }
    }
    // Theorem 35 would certify tractability when every free-path is also
    // isolated — the planner should already have found it then.
    let all_isolated = aligned.frees.iter().all(|free_m| {
        let paths = free_paths(&h, *free_m);
        paths.iter().all(|p| is_isolated(&h, &paths, p))
    });
    if all_isolated {
        notes.push(
            "all free-paths union guarded and isolated: free-connex by Theorem 35, \
             but the bounded extension search found no certificate"
                .to_string(),
        );
    } else {
        notes.push(
            "body-isomorphic union with union-guarded but non-isolated free-paths \
             (the Example 31 frontier: open in the paper)"
                .to_string(),
        );
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_query::parse_ucq;

    fn verdict(text: &str) -> Classification {
        classify(&parse_ucq(text).unwrap())
    }

    #[test]
    fn example1_minimization_keeps_q2() {
        let c = verdict(
            "Q1(x, y) <- R1(x, y), R2(y, z), R3(z, x)\n\
             Q2(x, y) <- R1(x, y), R2(y, z)",
        );
        assert_eq!(c.kept, vec![1]);
        assert!(c.is_tractable(), "the surviving Q2 is free-connex");
    }

    #[test]
    fn example2_tractable() {
        let c = verdict(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        );
        assert!(c.is_tractable());
        assert_eq!(
            c.statuses,
            vec![CqStatus::AcyclicHard, CqStatus::FreeConnex]
        );
    }

    #[test]
    fn example9_intractable_via_lemma14() {
        let c = verdict(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w), R4(y)",
        );
        match &c.verdict {
            Verdict::Intractable { witness } => {
                assert_eq!(
                    *witness,
                    HardnessWitness::IsolatedHardCq {
                        member: 0,
                        status: CqStatus::AcyclicHard
                    }
                );
                assert_eq!(witness.hypothesis(), Hypothesis::MatMul);
            }
            v => panic!("expected intractable, got {v:?}"),
        }
    }

    #[test]
    fn example13_tractable_union_of_hard_members() {
        let c = verdict(
            "Q1(x, y, v, u) <- R1(x, z1), R2(z1, z2), R3(z2, z3), R4(z3, y), R5(y, v, u)\n\
             Q2(x, y, v, u) <- R1(x, y), R2(y, v), R3(v, z1), R4(z1, u), R5(u, t1, t2)\n\
             Q3(x, y, v, u) <- R1(x, z1), R2(z1, y), R3(y, v), R4(v, u), R5(u, t1, t2)",
        );
        assert!(c.is_tractable());
        assert!(c.statuses.iter().all(|s| *s == CqStatus::AcyclicHard));
    }

    #[test]
    fn example18_intractable_triple() {
        let c = verdict(
            "Q1(x, y) <- R1(x, y), R2(y, u), R3(x, u)\n\
             Q2(x, y) <- R1(y, v), R2(v, x), R3(y, x)\n\
             Q3(x, y) <- R1(x, z), R2(y, z)",
        );
        match &c.verdict {
            Verdict::Intractable { witness } => {
                assert!(matches!(
                    witness,
                    HardnessWitness::UnionOfIntractable { .. }
                        | HardnessWitness::IsolatedHardCq { .. }
                ));
            }
            v => panic!("expected intractable, got {v:?}"),
        }
    }

    #[test]
    fn example20_intractable_unguarded() {
        let c = verdict(
            "Q1(x, y, v) <- R1(x, z), R2(z, y), R3(y, v), R4(v, w)\n\
             Q2(x, y, v) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)",
        );
        match &c.verdict {
            Verdict::Intractable { witness } => {
                assert!(matches!(witness, HardnessWitness::UnguardedFreePath { .. }));
                assert_eq!(witness.hypothesis(), Hypothesis::MatMul);
            }
            v => panic!("expected intractable, got {v:?}"),
        }
    }

    #[test]
    fn example21_tractable_guarded() {
        let c = verdict(
            "Q1(w, y, x, z) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)\n\
             Q2(x, y, w, v) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)",
        );
        assert!(c.is_tractable());
    }

    #[test]
    fn example22_intractable_bypass() {
        let c = verdict(
            "Q1(x, y, t) <- R1(x, w, t), R2(y, w, t)\n\
             Q2(x, y, w) <- R1(x, w, t), R2(y, w, t)",
        );
        match &c.verdict {
            Verdict::Intractable { witness } => {
                assert!(matches!(witness, HardnessWitness::NotBypassGuarded { .. }));
                assert_eq!(witness.hypothesis(), Hypothesis::FourClique);
            }
            v => panic!("expected intractable, got {v:?}"),
        }
    }

    #[test]
    fn example30_unknown() {
        let c = verdict(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, t1), R2(t2, y), R3(w, t3)",
        );
        assert!(matches!(c.verdict, Verdict::Unknown { .. }));
    }

    #[test]
    fn example31_k4_unknown_by_general_rules() {
        // The paper proves k=4 hard ad hoc (4-clique); the general theorems
        // leave it open, so the classifier reports Unknown with the
        // Example-31-frontier note.
        let c = verdict(
            "Q1(x1, x2, x3) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q2(x1, x2, z) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q3(x1, x3, z) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q4(x2, x3, z) <- R1(x1, z), R2(x2, z), R3(x3, z)",
        );
        match &c.verdict {
            Verdict::Unknown { notes } => {
                assert!(notes.iter().any(|n| n.contains("Example 31")));
            }
            v => panic!("expected unknown, got {v:?}"),
        }
    }

    #[test]
    fn example36_tractable_cyclic_member() {
        let c = verdict(
            "Q1(x, y, z, w) <- R1(y, z, w, x), R2(t, y, w), R3(t, z, w), R4(t, y, z)\n\
             Q2(x, y, z, w) <- R1(x, z, w, v), R2(y, x, w)",
        );
        assert!(
            c.is_tractable(),
            "Example 36 is free-connex, got {:?}",
            c.verdict
        );
        assert_eq!(c.statuses[0], CqStatus::Cyclic);
    }

    #[test]
    fn example37_intractable_unguarded_path_with_cycle() {
        let c = verdict(
            "Q1(x, y, v) <- R1(v, z, x), R2(y, v), R3(z, y)\n\
             Q2(x, y, v) <- R1(y, v, z), R2(x, y)",
        );
        // The union is intractable (unguarded free-path (x,z,y) in Q1); the
        // general classifier can at least not call it tractable.
        assert!(!c.is_tractable());
    }

    #[test]
    fn example38_unknown() {
        let c = verdict(
            "Q1(x, z, y, v) <- R1(x, z, v), R2(z, y, v), R3(y, x, v)\n\
             Q2(x, z, y, v) <- R1(x, z, v), R2(y, t1, v), R3(t2, x, v)",
        );
        assert!(
            matches!(c.verdict, Verdict::Unknown { .. }),
            "Example 38's complexity is open, got {:?}",
            c.verdict
        );
    }

    #[test]
    fn theorem3_single_members() {
        let fc = verdict("Q(x, z, y) <- A(x, z), B(z, y)");
        assert!(fc.is_tractable());
        let hard = verdict("Q(x, y) <- A(x, z), B(z, y)");
        match &hard.verdict {
            Verdict::Intractable { witness } => {
                assert_eq!(witness.hypothesis(), Hypothesis::MatMul)
            }
            v => panic!("{v:?}"),
        }
        let cyc = verdict("Q(x, y, z) <- A(x, y), B(y, z), C(z, x)");
        match &cyc.verdict {
            Verdict::Intractable { witness } => {
                assert_eq!(witness.hypothesis(), Hypothesis::HyperClique)
            }
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn self_join_blocks_lower_bounds() {
        let c = verdict("Q(x, y) <- R(x, z), R(z, y)");
        assert!(matches!(c.verdict, Verdict::Unknown { .. }));
    }
}
