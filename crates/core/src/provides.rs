//! Provided variable sets (Definition 7) and their fixpoint closure.
//!
//! `Q2` *provides* `V1 ⊆ var(Q1)` to `Q1` when (1) a body-homomorphism
//! `h : Q2 → Q1` exists, (2) some `V2 ⊆ free(Q2)` has `h(V2) = V1`, and
//! (3) `Q2` is `S`-connex for some `V2 ⊆ S ⊆ free(Q2)`. Folding (2) into
//! (3): **the sets `Q2` can provide along `h` are exactly the subsets of
//! `h(S)` over the `S ⊆ free(Q2)` for which `Q2` is `S`-connex** — so we
//! track maximal provided sets and take subsets for free.
//!
//! Union extensions make this recursive (Definition 10): a provider may
//! itself be extended by already-available virtual atoms, which can unlock
//! new `S`-connexities (Example 13). Two structural facts keep the
//! recursion sound (DESIGN.md, adaptation 3):
//!
//! * the body-homomorphism of condition (1) is only required on the
//!   provider's *original* atoms — a virtual atom `P(ū)` of the provider is
//!   satisfied automatically because its materialized content contains
//!   `π_ū(hom(body))` by induction;
//! * provenance stages are strictly increasing (the fixpoint snapshots the
//!   availability at each round), so materialization order is well-founded.

use crate::search::{prune_pool, ConnexOracle, SearchConfig};
use ucq_hypergraph::{subsets_of, VSet};
use ucq_query::{body_homomorphisms, Ucq, VarMap};

/// Why a variable set is available: who provides it and how.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// Index of the providing CQ in the union.
    pub provider: usize,
    /// Body-homomorphism from the provider's variables to the target's.
    pub hom: VarMap,
    /// The `S ⊆ free(provider)` whose connex subtree is enumerated.
    pub s: VSet,
    /// Virtual atoms (in provider space) the provider needs for
    /// `S`-connexity — empty when the original provider is `S`-connex.
    pub uses: Vec<VSet>,
    /// Fixpoint round at which this entry was derived; `uses` entries are
    /// always resolvable at strictly smaller stages.
    pub stage: usize,
}

/// The availability table: per target CQ, provided variable sets with a
/// provenance each (the maximal ones plus earlier-stage entries they cover,
/// kept for well-founded resolution). Subsets of an entry are provided by
/// the same provenance.
#[derive(Clone, Debug, Default)]
pub struct Availability {
    /// `max_sets[i]` = provided sets for CQ `i`, no entry covering another
    /// at a later stage.
    pub max_sets: Vec<Vec<(VSet, Provenance)>>,
}

impl Availability {
    /// The candidate virtual-atom pool for CQ `i`: all subsets (size ≥ 2)
    /// of its maximal provided sets, pruned against the query's own edges.
    pub fn pool_for(&self, i: usize, base: &ucq_hypergraph::Hypergraph, cap: usize) -> Vec<VSet> {
        let mut pool: Vec<VSet> = Vec::new();
        for (max, _) in &self.max_sets[i] {
            pool.extend(subsets_of(*max).filter(|s| s.len() >= 2));
        }
        prune_pool(base, &pool, cap)
    }

    /// Finds the provenance justifying atom `vars` for CQ `i`: the
    /// earliest-stage maximal entry containing it.
    pub fn resolve(&self, i: usize, vars: VSet) -> Option<&Provenance> {
        self.max_sets[i]
            .iter()
            .filter(|(max, _)| vars.is_subset(*max))
            .min_by_key(|(_, p)| p.stage)
            .map(|(_, p)| p)
    }

    /// All provenances that can justify atom `vars` for CQ `i`, earliest
    /// stage first (ties keep derivation order). The cost-based planner
    /// scores these alternatives and picks the cheapest; entry 0 after the
    /// stage sort is what [`Availability::resolve`] returns.
    pub fn resolve_all(&self, i: usize, vars: VSet) -> Vec<&Provenance> {
        let mut all: Vec<&Provenance> = self.max_sets[i]
            .iter()
            .filter(|(max, _)| vars.is_subset(*max))
            .map(|(_, p)| p)
            .collect();
        all.sort_by_key(|p| p.stage);
        all
    }
}

/// Computes the availability fixpoint for a union, keeping only maximal
/// provided sets — the right shape for classification and first-found
/// planning, where any one provenance per set suffices.
pub fn compute_availability(
    ucq: &Ucq,
    oracle: &mut ConnexOracle,
    cfg: &SearchConfig,
) -> Availability {
    compute_availability_with(ucq, oracle, cfg, false)
}

/// As [`compute_availability`], but alternative providers of the same set
/// survive as separate entries so [`Availability::resolve_all`] has
/// something to price. Strictly more entries per round means a costlier
/// fixpoint — only the cost-based planner ([`crate::CostedSearch`]) pays
/// for it, and only once per engine.
pub fn compute_availability_all(
    ucq: &Ucq,
    oracle: &mut ConnexOracle,
    cfg: &SearchConfig,
) -> Availability {
    compute_availability_with(ucq, oracle, cfg, true)
}

fn compute_availability_with(
    ucq: &Ucq,
    oracle: &mut ConnexOracle,
    cfg: &SearchConfig,
    keep_alternatives: bool,
) -> Availability {
    let n = ucq.len();
    let hypergraphs: Vec<_> = ucq.cqs().iter().map(|q| q.hypergraph()).collect();
    // Body-homomorphisms are between original queries only; compute once.
    let homs: Vec<Vec<Vec<VarMap>>> = (0..n)
        .map(|j| {
            (0..n)
                .map(|i| body_homomorphisms(&ucq.cqs()[j], &ucq.cqs()[i], cfg.hom_cap))
                .collect()
        })
        .collect();

    let mut avail = Availability {
        max_sets: vec![Vec::new(); n],
    };
    for stage in 0..cfg.max_rounds {
        // Snapshot: all derivations this round use last round's availability,
        // keeping provenance stages strictly well-founded.
        let snapshot = avail.clone();
        let mut changed = false;
        for j in 0..n {
            let free_j = ucq.cqs()[j].free();
            let pool_j = snapshot.pool_for(j, &hypergraphs[j], cfg.pool_cap);
            for s in subsets_of(free_j) {
                if s.len() < 2 {
                    continue; // provided sets below two variables are useless
                }
                let Some(uses) = oracle.find_extension(&hypergraphs[j], s, &pool_j, cfg) else {
                    continue;
                };
                for (i, homs_ji) in homs[j].iter().enumerate() {
                    for hom in homs_ji {
                        let image: VSet = s.iter().map(|v| hom[v as usize]).collect();
                        if image.len() < 2 {
                            continue;
                        }
                        if add_provider(
                            &mut avail.max_sets[i],
                            image,
                            Provenance {
                                provider: j,
                                hom: hom.clone(),
                                s,
                                uses: uses.clone(),
                                stage,
                            },
                            keep_alternatives,
                        ) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    avail
}

/// Inserts `set` unless a covering entry already exists. Without
/// `keep_alternatives`, *any* covering entry suppresses the insert (the
/// classic maximal-only dedup). With it, only an entry from the **same
/// provider choice** (provider, connex target `S`) does — alternative
/// providers of the same set survive as separate entries so the
/// cost-based planner can choose among them
/// ([`Availability::resolve_all`]). Covered (subset) entries are *kept*
/// either way: they carry earlier-stage provenances that later
/// derivations' `uses` may depend on for well-founded materialization
/// order. Returns whether anything changed; the key space
/// `(set, provider, S)` is finite, so the fixpoint still terminates.
fn add_provider(
    entries: &mut Vec<(VSet, Provenance)>,
    set: VSet,
    prov: Provenance,
    keep_alternatives: bool,
) -> bool {
    if entries.iter().any(|(e, p)| {
        set.is_subset(*e) && (!keep_alternatives || (p.provider == prov.provider && p.s == prov.s))
    }) {
        return false;
    }
    entries.push((set, prov));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_query::parse_ucq;

    fn vs(v: &[u32]) -> VSet {
        v.iter().copied().collect()
    }

    #[test]
    fn example2_availability() {
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        let mut oracle = ConnexOracle::default();
        let avail = compute_availability(&u, &mut oracle, &SearchConfig::default());
        // Q2 provides {x, z, y} (q1 space: x=0, y=1, w=2, z=3) to Q1.
        let target = vs(&[0, 3, 1]);
        let entry = avail.resolve(0, target).expect("Q2 provides {x,z,y}");
        assert_eq!(entry.provider, 1);
        assert!(entry.uses.is_empty());
        assert_eq!(entry.s, vs(&[0, 1, 2])); // all of free(Q2)
    }

    #[test]
    fn example9_no_availability_for_q1() {
        // The R4 atom kills the body-homomorphism, so nothing useful is
        // provided to Q1.
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w), R4(y)",
        )
        .unwrap();
        let mut oracle = ConnexOracle::default();
        let avail = compute_availability(&u, &mut oracle, &SearchConfig::default());
        assert!(avail.resolve(0, vs(&[0, 3, 1])).is_none());
    }

    #[test]
    fn example13_recursive_availability() {
        // All three CQs are individually intractable, yet the fixpoint
        // derives free-connex-enabling atoms for Q1 via extended providers.
        let u = parse_ucq(
            "Q1(x, y, v, u) <- R1(x, z1), R2(z1, z2), R3(z2, z3), R4(z3, y), R5(y, v, u)\n\
             Q2(x, y, v, u) <- R1(x, y), R2(y, v), R3(v, z1), R4(z1, u), R5(u, t1, t2)\n\
             Q3(x, y, v, u) <- R1(x, z1), R2(z1, y), R3(y, v), R4(v, u), R5(u, t1, t2)",
        )
        .unwrap();
        let mut oracle = ConnexOracle::default();
        let avail = compute_availability(&u, &mut oracle, &SearchConfig::default());
        // Q1 space: x=0,y=1,v=2,u=3,z1=4,z2=5,z3=6.
        // The paper derives {x,z1,z2,y} and {x,z2,z3,y} for Q1.
        let a1 = avail.resolve(0, vs(&[0, 4, 5, 1]));
        let a2 = avail.resolve(0, vs(&[0, 5, 6, 1]));
        assert!(a1.is_some(), "Q2+ provides {{x,z1,z2,y}}");
        assert!(a2.is_some(), "Q3+ provides {{x,z2,z3,y}}");
        // At least one of them requires a recursive (extended) provider.
        let recursive = a1.unwrap().uses.len() + a2.unwrap().uses.len();
        assert!(recursive > 0, "Example 13 needs recursion");
        // Well-foundedness: a provenance with uses must sit at stage >= 1.
        for p in [a1.unwrap(), a2.unwrap()] {
            if !p.uses.is_empty() {
                assert!(p.stage >= 1);
                for &u_atom in &p.uses {
                    let up = avail.resolve(p.provider, u_atom).expect("use resolvable");
                    assert!(up.stage < p.stage, "uses must come from earlier stages");
                }
            }
        }
    }

    #[test]
    fn add_provider_dedups_per_provider_choice() {
        let prov = |provider: usize, s: VSet, st: usize| Provenance {
            provider,
            hom: vec![],
            s,
            uses: vec![],
            stage: st,
        };
        let s0 = vs(&[0, 1]);
        let mut entries = Vec::new();
        assert!(add_provider(
            &mut entries,
            vs(&[0, 1]),
            prov(0, s0, 0),
            true
        ));
        assert!(
            !add_provider(&mut entries, vs(&[0, 1]), prov(0, s0, 1), true),
            "same provider choice, same set: duplicate"
        );
        assert!(
            !add_provider(&mut entries, vs(&[0]), prov(0, s0, 1), true),
            "same provider choice, subset: covered"
        );
        assert!(
            add_provider(&mut entries, vs(&[0, 1]), prov(1, s0, 0), true),
            "alternative provider for the same set is kept"
        );
        assert!(
            !add_provider(&mut entries, vs(&[0, 1]), prov(2, s0, 0), false),
            "without keep_alternatives, any covering entry suppresses"
        );
        assert!(
            add_provider(&mut entries, vs(&[0, 1, 2]), prov(0, s0, 1), true),
            "superset"
        );
        // The covered earlier entry survives so its (earlier) stage remains
        // resolvable for dependent provenances.
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[2].0, vs(&[0, 1, 2]));
    }

    #[test]
    fn resolve_all_orders_by_stage_and_leads_with_resolve() {
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        let mut oracle = ConnexOracle::default();
        let avail = compute_availability_all(&u, &mut oracle, &SearchConfig::default());
        let target = vs(&[0, 3, 1]);
        let all = avail.resolve_all(0, target);
        assert!(!all.is_empty());
        let first = avail.resolve(0, target).unwrap();
        assert_eq!(all[0].provider, first.provider);
        assert_eq!(all[0].s, first.s);
        assert!(all.windows(2).all(|w| w[0].stage <= w[1].stage));
    }
}
