//! End-to-end Remark 2: classify and evaluate a UCQ *under functional
//! dependencies* by extending first, then running the ordinary machinery.
//!
//! [`FdUcqEngine::new`] FD-extends every member (renaming widened atoms per
//! member so different members' widenings of the same relation cannot
//! collide), classifies the extended union, and at evaluation time widens
//! the instance accordingly and projects answers back onto the original
//! head positions. The projection is injective — every appended head
//! variable is functionally determined by the original head values — so no
//! extra deduplication is needed.
//!
//! Limitation (documented; the paper leaves the FD-composition informal):
//! per-member renaming of *widened* atoms hides cross-member provisions
//! through those atoms, and members whose FD-extensions end up with
//! different head arities are rejected. The flagship Remark 2 scenario —
//! a query made free-connex by its keys, like `Π(x,y) ← A(x,z), B(z,y)`
//! with `A : x → z` — is fully supported.

use crate::engine::{Strategy, UcqAnswers, UcqEngine};
use crate::fd::{extend_instance, fd_extend_cq, FdExtension, FdSet};
use crate::search::SearchConfig;
use ucq_enumerate::Enumerator;
use ucq_query::{QueryError, Ucq};
use ucq_storage::{Instance, Tuple};
use ucq_yannakakis::EvalError;

/// A UCQ engine operating under a set of functional dependencies.
pub struct FdUcqEngine {
    original: Ucq,
    fds: FdSet,
    extensions: Vec<FdExtension>,
    engine: UcqEngine,
    original_arity: usize,
}

impl FdUcqEngine {
    /// FD-extends, renames widened atoms, and classifies.
    pub fn new(ucq: Ucq, fds: FdSet) -> Result<FdUcqEngine, QueryError> {
        FdUcqEngine::with_config(ucq, fds, &SearchConfig::default())
    }

    /// As [`FdUcqEngine::new`] with explicit search bounds.
    pub fn with_config(
        ucq: Ucq,
        fds: FdSet,
        cfg: &SearchConfig,
    ) -> Result<FdUcqEngine, QueryError> {
        let mut extensions = Vec::with_capacity(ucq.len());
        for (i, cq) in ucq.cqs().iter().enumerate() {
            let mut ext = fd_extend_cq(cq, &fds)?;
            rename_widened(&mut ext, i);
            extensions.push(ext);
        }
        let extended = Ucq::new(extensions.iter().map(|e| e.query.clone()).collect())?;
        let engine = UcqEngine::with_config(extended, cfg);
        Ok(FdUcqEngine {
            original_arity: ucq.head_arity(),
            original: ucq,
            fds,
            extensions,
            engine,
        })
    }

    /// The original union.
    pub fn original(&self) -> &Ucq {
        &self.original
    }

    /// The classification of the FD-extended union — the Remark 2 verdict.
    pub fn classification(&self) -> &crate::classify::Classification {
        self.engine.classification()
    }

    /// The strategy evaluation will use.
    pub fn strategy(&self) -> Strategy {
        self.engine.strategy()
    }

    /// Validates the FDs and widens `inst` once (the Remark 2 instance
    /// translation).
    fn widen(&self, inst: &Instance) -> Result<Instance, EvalError> {
        if !self.fds.holds_on(inst) {
            return Err(EvalError::Schema(
                "instance violates the declared functional dependencies".into(),
            ));
        }
        let mut widened = inst.clone();
        for (i, ext) in self.extensions.iter().enumerate() {
            widened = widen_for_member(&self.original, i, ext, &widened);
        }
        Ok(widened)
    }

    /// Evaluates over `inst`, which must satisfy the FDs.
    pub fn enumerate(&self, inst: &Instance) -> Result<FdAnswers, EvalError> {
        Ok(FdAnswers {
            inner: self.engine.enumerate(&self.widen(inst)?)?,
            prefix: self.original_arity,
        })
    }

    /// Opens a session over `inst`: the FD validation and instance widening
    /// run once, and the inner [`EvalSession`](crate::EvalSession) reuses
    /// its preprocessing across repeated enumerations. (The session clones
    /// the widened instance, which is cheap: relation payloads are
    /// `Arc`-shared.)
    pub fn session<'e>(&'e self, inst: &Instance) -> Result<FdSession<'e>, EvalError> {
        let widened = self.widen(inst)?;
        Ok(FdSession {
            session: self.engine.session(&widened),
            prefix: self.original_arity,
        })
    }
}

/// A pinned FD-engine session: widen once, enumerate many times, each
/// answer projected back onto the original head positions.
pub struct FdSession<'e> {
    session: crate::EvalSession<'e>,
    prefix: usize,
}

impl FdSession<'_> {
    /// Starts an enumeration; preprocessing is reused across calls.
    pub fn enumerate(&self) -> Result<FdAnswers, EvalError> {
        Ok(FdAnswers {
            inner: self.session.enumerate()?,
            prefix: self.prefix,
        })
    }

    /// Whether the (FD-constrained) union has any answer on the pinned
    /// instance.
    pub fn decide(&self) -> Result<bool, EvalError> {
        self.session.decide()
    }
}

fn rename_widened(ext: &mut FdExtension, member: usize) {
    let widened_targets: std::collections::HashSet<usize> =
        ext.widened.iter().map(|(t, _)| *t).collect();
    if widened_targets.is_empty() {
        return;
    }
    let mut atoms = ext.query.atoms().to_vec();
    for &t in &widened_targets {
        atoms[t].rel = format!("{}@fd{member}", atoms[t].rel);
    }
    ext.query = ucq_query::Cq::new(
        ext.query.name(),
        ext.query.head().to_vec(),
        atoms,
        ext.query.var_names().to_vec(),
    )
    .expect("renaming preserves validity");
}

fn widen_for_member(original: &Ucq, member: usize, ext: &FdExtension, inst: &Instance) -> Instance {
    extend_instance(&original.cqs()[member], ext, inst)
}

/// Answers of an FD-engine run: the extended union's answers projected back
/// onto the original head positions.
pub struct FdAnswers {
    inner: UcqAnswers,
    prefix: usize,
}

impl Enumerator for FdAnswers {
    fn next(&mut self) -> Option<Tuple> {
        self.inner
            .next()
            .map(|t| Tuple(t.values()[..self.prefix].into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;
    use crate::naive_ucq::evaluate_ucq_naive_set;
    use std::collections::HashSet;
    use ucq_query::parse_ucq;
    use ucq_storage::Relation;

    #[test]
    fn matmul_with_key_fd_is_tractable_and_correct() {
        // Π(x,y) <- A(x,z), B(z,y) with A : x → z. Hard without the FD;
        // free-connex with it (Remark 2 / ICDT'18).
        let u = parse_ucq("Pi(x, y) <- A(x, z), B(z, y)").unwrap();
        let fds = FdSet::new(vec![Fd::new("A", vec![0], 1)]);
        let eng = FdUcqEngine::new(u.clone(), fds).unwrap();
        assert!(eng.classification().is_tractable());
        assert_ne!(eng.strategy(), Strategy::Naive);

        let inst: Instance = [
            ("A", Relation::from_pairs([(1, 10), (2, 20), (3, 10)])),
            ("B", Relation::from_pairs([(10, 5), (10, 6), (20, 7)])),
        ]
        .into_iter()
        .collect();
        let mut ans = eng.enumerate(&inst).unwrap();
        let got: HashSet<Tuple> = ans.collect_all().into_iter().collect();
        let want = evaluate_ucq_naive_set(&u, &inst).unwrap();
        assert_eq!(got, want);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn fd_session_widens_once_and_restarts() {
        let u = parse_ucq("Pi(x, y) <- A(x, z), B(z, y)").unwrap();
        let fds = FdSet::new(vec![Fd::new("A", vec![0], 1)]);
        let eng = FdUcqEngine::new(u.clone(), fds).unwrap();
        let inst: Instance = [
            ("A", Relation::from_pairs([(1, 10), (2, 20), (3, 10)])),
            ("B", Relation::from_pairs([(10, 5), (10, 6), (20, 7)])),
        ]
        .into_iter()
        .collect();
        let session = eng.session(&inst).unwrap();
        let want = evaluate_ucq_naive_set(&u, &inst).unwrap();
        for _ in 0..3 {
            let got: HashSet<Tuple> = session
                .enumerate()
                .unwrap()
                .collect_all()
                .into_iter()
                .collect();
            assert_eq!(got, want);
        }
        assert!(session.decide().unwrap());
    }

    #[test]
    fn fd_violation_is_rejected_at_runtime() {
        let u = parse_ucq("Pi(x, y) <- A(x, z), B(z, y)").unwrap();
        let fds = FdSet::new(vec![Fd::new("A", vec![0], 1)]);
        let eng = FdUcqEngine::new(u, fds).unwrap();
        let bad: Instance = [
            ("A", Relation::from_pairs([(1, 10), (1, 11)])),
            ("B", Relation::from_pairs([(10, 5)])),
        ]
        .into_iter()
        .collect();
        assert!(eng.enumerate(&bad).is_err());
    }

    #[test]
    fn no_fds_behaves_like_plain_engine() {
        let u = parse_ucq("Q(x, y) <- R(x, y)").unwrap();
        let eng = FdUcqEngine::new(u.clone(), FdSet::default()).unwrap();
        assert!(eng.classification().is_tractable());
        let inst: Instance = [("R", Relation::from_pairs([(1, 2), (3, 4)]))]
            .into_iter()
            .collect();
        let mut ans = eng.enumerate(&inst).unwrap();
        assert_eq!(ans.collect_all().len(), 2);
    }

    #[test]
    fn widened_atoms_get_member_scoped_names() {
        // Two members widening the same relation must not collide.
        let u = parse_ucq(
            "Q1(x, w) <- R(x, y), S(x, w)\n\
             Q2(a, b) <- R(a, c), S(a, b)",
        )
        .unwrap();
        let fds = FdSet::new(vec![Fd::new("R", vec![0], 1)]);
        let eng = FdUcqEngine::new(u.clone(), fds).unwrap();
        let names: Vec<Vec<&str>> = eng
            .engine
            .ucq()
            .cqs()
            .iter()
            .map(|cq| cq.atoms().iter().map(|a| a.rel.as_str()).collect())
            .collect();
        assert!(names[0].contains(&"S@fd0"));
        assert!(names[1].contains(&"S@fd1"));

        let inst: Instance = [
            ("R", Relation::from_pairs([(1, 10), (2, 20)])),
            ("S", Relation::from_pairs([(1, 5), (2, 7)])),
        ]
        .into_iter()
        .collect();
        let mut ans = eng.enumerate(&inst).unwrap();
        let got: HashSet<Tuple> = ans.collect_all().into_iter().collect();
        let want = evaluate_ucq_naive_set(&u, &inst).unwrap();
        assert_eq!(got, want);
    }
}
