//! Naive UCQ evaluation: the union of per-member naive evaluations with
//! global deduplication. Works for any UCQ (the fallback for queries the
//! classifier marks intractable or unknown) and serves as ground truth in
//! tests and as the baseline in benchmarks.
//!
//! Members are evaluated on the id layer (the batched-probe join of
//! [`evaluate_cq_naive_ids_in`]) and the union dedups flat id rows —
//! answers are decoded to value [`Tuple`]s exactly once, at the boundary.

use std::collections::HashSet;
use ucq_query::Ucq;
use ucq_storage::{CtxView, FastSet, InlineKey, Instance, Tuple, ValueId};
use ucq_yannakakis::{evaluate_cq_naive_ids_in, EvalError, IdTable};

/// Evaluates `Q(I)` by materializing every member and deduplicating. All
/// members share one context view, so atoms with equal shapes over the
/// same relation — within a member or across members — share normalized
/// data and join indexes.
pub fn evaluate_ucq_naive(ucq: &Ucq, instance: &Instance) -> Result<Vec<Tuple>, EvalError> {
    evaluate_ucq_naive_in(ucq, instance, &CtxView::new())
}

/// Evaluates the union on the id layer: per-member batched-probe joins,
/// union dedup on flat id rows, *no decode* — the result stays interned
/// under `ctx`'s dictionary. This is the entry point for id-aware callers
/// (the engine's naive strategy wraps it in a lazily-decoding facade).
pub fn evaluate_ucq_naive_ids_in(
    ucq: &Ucq,
    instance: &Instance,
    ctx: &CtxView,
) -> Result<IdTable, EvalError> {
    let mut seen: FastSet<InlineKey> = FastSet::default();
    let mut width = 0usize;
    let mut union: Vec<ValueId> = Vec::new();
    let mut n_rows = 0usize;
    for cq in ucq.cqs() {
        let member = evaluate_cq_naive_ids_in(cq, instance, ctx)?;
        width = member.width;
        for row in member.rows() {
            if seen.insert(InlineKey::from_slice(row)) {
                union.extend_from_slice(row);
                n_rows += 1;
            }
        }
    }
    Ok(IdTable {
        width,
        n_rows,
        data: union,
    })
}

/// As [`evaluate_ucq_naive`], sharing the caches of `ctx`; answers are
/// decoded once, at this boundary.
pub fn evaluate_ucq_naive_in(
    ucq: &Ucq,
    instance: &Instance,
    ctx: &CtxView,
) -> Result<Vec<Tuple>, EvalError> {
    let table = evaluate_ucq_naive_ids_in(ucq, instance, ctx)?;
    if table.width == 0 {
        // Boolean union: at most the single empty answer survives dedup.
        return Ok(vec![Tuple::empty(); table.n_rows]);
    }
    Ok(ctx.decode_rows(table.width, &table.data))
}

/// Evaluates into a set.
pub fn evaluate_ucq_naive_set(ucq: &Ucq, instance: &Instance) -> Result<HashSet<Tuple>, EvalError> {
    Ok(evaluate_ucq_naive(ucq, instance)?.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_query::parse_ucq;
    use ucq_storage::Relation;

    #[test]
    fn union_dedups_across_members() {
        let u = parse_ucq("Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)").unwrap();
        let i: Instance = [
            ("R", Relation::from_pairs([(1, 2), (3, 4)])),
            ("S", Relation::from_pairs([(3, 4), (5, 6)])),
        ]
        .into_iter()
        .collect();
        let got = evaluate_ucq_naive(&u, &i).unwrap();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn example1_redundant_member_changes_nothing() {
        let full = parse_ucq(
            "Q1(x, y) <- R1(x, y), R2(y, z), R3(z, x)\n\
             Q2(x, y) <- R1(x, y), R2(y, z)",
        )
        .unwrap();
        let only_q2 = parse_ucq("Q2(x, y) <- R1(x, y), R2(y, z)").unwrap();
        let i: Instance = [
            ("R1", Relation::from_pairs([(1, 2), (2, 3)])),
            ("R2", Relation::from_pairs([(2, 1), (3, 1)])),
            ("R3", Relation::from_pairs([(1, 1)])),
        ]
        .into_iter()
        .collect();
        let a = evaluate_ucq_naive_set(&full, &i).unwrap();
        let b = evaluate_ucq_naive_set(&only_q2, &i).unwrap();
        assert_eq!(a, b, "Q1 ⊆ Q2 means the union equals Q2");
    }
}
