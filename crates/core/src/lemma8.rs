//! Materializing provided relations (Lemma 8).
//!
//! For a planned atom with provenance `(provider j, h, S, uses)`:
//!
//! 1. extend `Q_j` with its own (already materialized) virtual atoms `uses`;
//! 2. run CDY on the extension with connex target `S` — by construction it
//!    is `S`-connex, and the preprocessing is linear;
//! 3. for every `S`-binding, extend it once to a full homomorphism (the
//!    reducer guarantees a witness) and *emit* the corresponding provider
//!    answer — this is how the lemma charges the work against legitimate
//!    output;
//! 4. translate the binding through `h⁻¹` (skipping bindings that disagree
//!    on two preimages of the same target variable) into a row of the
//!    virtual relation.
//!
//! The result **contains** `π_{V1}(hom(body Q_target))` — possibly strictly
//! (see DESIGN.md, adaptation 2) — which is exactly what joining it into the
//! target preserves semantics.

use crate::plan::PlannedAtom;
use std::sync::Arc;
use ucq_query::{Atom, Ucq, VarId};
use ucq_storage::{CtxView, IdRel, IdSet, Relation, Tuple, ValueId};
use ucq_yannakakis::{CdyEngine, EvalError};

/// Connex bindings extended (and translated) per block; see
/// [`CdyEngine::extend_full_block`].
const EXTEND_BLOCK: usize = 1024;

/// The outcome of materializing one virtual atom.
///
/// Provider answers stay *interned*: they are flat id rows under the
/// materializing context's dictionary, ready to be replayed by the
/// pipeline's id-level early stage without ever being decoded. Callers
/// that need values (tests, diagnostics) decode through
/// [`Materialized::decode_provider_answers`].
#[derive(Debug)]
pub struct Materialized {
    /// The virtual relation (columns = the atom's variables, sorted),
    /// shared so it can be inserted into an instance without copying; its
    /// interned mirror is pre-registered with the materializing context
    /// (see `EvalContext::register_interned`), so downstream engine
    /// builds never re-intern it.
    pub relation: Arc<Relation>,
    /// Provider answers emitted along the way (a subset `M ⊆ Q_j(I)`), as
    /// a flat run of `provider_width` ids per answer (empty for Boolean
    /// providers, whose answers are counted by `n_provider_answers`).
    pub provider_ids: Vec<ValueId>,
    /// Ids per provider answer (the provider's head arity).
    pub provider_width: usize,
    /// Number of provider answers emitted (authoritative also for width 0).
    pub n_provider_answers: usize,
}

impl Materialized {
    /// Decodes the emitted provider answers to value tuples (test/bench
    /// boundary; the pipeline replays the ids directly).
    pub fn decode_provider_answers(&self, ctx: &CtxView) -> Vec<Tuple> {
        if self.provider_width == 0 {
            vec![Tuple::empty(); self.n_provider_answers]
        } else {
            ctx.decode_rows(self.provider_width, &self.provider_ids)
        }
    }
}

/// Materializes `atom` against `instance`, which must already contain the
/// relations named by the provenance's `uses` (guaranteed by plan order).
/// The provider's CDY build runs through the shared `ctx`, so successive
/// materializations over one instance reuse interned relations and
/// normalizations.
pub fn materialize_atom_in(
    ucq: &Ucq,
    atom: &PlannedAtom,
    rel_name_of: &dyn Fn(usize, ucq_hypergraph::VSet) -> String,
    instance: &ucq_storage::Instance,
    ctx: &CtxView,
) -> Result<Materialized, EvalError> {
    let prov = &atom.provenance;
    let provider = &ucq.cqs()[prov.provider];

    // Build the provider's extension Q_j⁺.
    let extra: Vec<Atom> = prov
        .uses
        .iter()
        .map(|&u| Atom {
            rel: rel_name_of(prov.provider, u),
            args: u.iter().collect(),
        })
        .collect();
    let qplus = if extra.is_empty() {
        provider.clone()
    } else {
        provider.with_extra_atoms(&extra)
    };

    // CDY with connex target S, outputting the S variables.
    let eng = CdyEngine::for_projection_in(&qplus, prov.s, instance, ctx)?;

    // Preimage positions: for each target variable of the atom (sorted),
    // the provider variables in S that h maps onto it.
    let preimages: Vec<Vec<VarId>> = atom
        .vars
        .iter()
        .map(|v1| {
            let pre: Vec<VarId> = (0..provider.n_vars())
                .filter(|&v2| prov.s.contains(v2) && prov.hom[v2 as usize] == v1)
                .collect();
            assert!(
                !pre.is_empty(),
                "provided variables always have a preimage inside S"
            );
            pre
        })
        .collect();

    // The materialization loop runs entirely on interned ids, block-wise:
    // pull a block of connex bindings, extend them all to full
    // homomorphisms in one bulk-probe sweep per tree node, then emit and
    // translate. The provider answers and the virtual relation are decoded
    // at the very end, once per distinct row.
    let w = eng.n_vars() as usize;
    let mut relation_ids = IdRel::new(atom.vars.len() as usize);
    let mut seen = IdSet::new();
    let mut provider_ids: Vec<ValueId> = Vec::new();
    let mut row: Vec<ValueId> = Vec::with_capacity(preimages.len());
    let head = provider.head().to_vec();

    let mut it = eng.iter();
    let mut block: Vec<ValueId> = Vec::with_capacity(EXTEND_BLOCK * w);
    let mut n_answers = 0usize;
    loop {
        block.clear();
        let mut pulled = 0usize;
        while pulled < EXTEND_BLOCK && it.next_binding_into(&mut block) {
            pulled += 1;
        }
        if pulled == 0 {
            break;
        }
        n_answers += pulled;
        eng.extend_full_block(&mut block);
        for b in 0..pulled {
            let binding = &block[b * w..(b + 1) * w];
            // Emit the provider answer μ|free(Q_j).
            provider_ids.extend(head.iter().map(|&v| binding[v as usize]));
            // Translate through h⁻¹.
            row.clear();
            let mut consistent = true;
            for pre in &preimages {
                let val = binding[pre[0] as usize];
                if pre[1..].iter().any(|&v2| binding[v2 as usize] != val) {
                    consistent = false;
                    break;
                }
                row.push(val);
            }
            if consistent && seen.insert(&row) {
                relation_ids.push_row(&row);
            }
        }
        if pulled < EXTEND_BLOCK {
            break;
        }
    }
    // The decoded value form feeds the extended instance; the id mirror is
    // registered with the context so member-engine builds over the
    // extended instance skip the re-intern of every materialized cell.
    let relation = Arc::new(ctx.decode_rel(&relation_ids));
    ctx.register_interned(&relation, Arc::new(relation_ids));
    Ok(Materialized {
        relation,
        provider_ids,
        provider_width: head.len(),
        n_provider_answers: n_answers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_free_connex;
    use crate::search::SearchConfig;
    use std::collections::HashSet;
    use ucq_query::parse_ucq;
    use ucq_storage::Instance;
    use ucq_yannakakis::evaluate_cq_naive;

    fn inst(rels: &[(&str, Vec<(i64, i64)>)]) -> Instance {
        rels.iter()
            .map(|(n, pairs)| (n.to_string(), Relation::from_pairs(pairs.iter().copied())))
            .collect()
    }

    #[test]
    fn example2_materialization_invariants() {
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        let plan = plan_free_connex(&u, &SearchConfig::default()).unwrap();
        let i = inst(&[
            ("R1", vec![(1, 2), (1, 5), (9, 9)]),
            ("R2", vec![(2, 3), (5, 3), (9, 8)]),
            ("R3", vec![(3, 4), (8, 0)]),
        ]);
        let atom = &plan.atoms[0];
        let name_of = |t: usize, v: ucq_hypergraph::VSet| plan.atom_for(t, v).rel_name.clone();
        let ctx = CtxView::new();
        let m = materialize_atom_in(&u, atom, &name_of, &i, &ctx).unwrap();
        let provider_answers = m.decode_provider_answers(&ctx);

        // Invariant 1: contents ⊇ π_vars(hom(body Q1)). Compute the
        // projection with the naive evaluator on a re-headed Q1.
        let target_vars: Vec<u32> = atom.vars.iter().collect();
        let reheaded = u.cqs()[atom.target].with_head(target_vars).unwrap();
        let projection = evaluate_cq_naive(&reheaded, &i).unwrap();
        let content: HashSet<Tuple> = m.relation.to_tuples().into_iter().collect();
        for t in &projection {
            assert!(
                content.contains(t),
                "materialized relation must contain projection tuple {t}"
            );
        }

        // Invariant 2: emitted provider answers are genuine Q2 answers.
        let q2_answers: HashSet<Tuple> = evaluate_cq_naive(&u.cqs()[atom.provenance.provider], &i)
            .unwrap()
            .into_iter()
            .collect();
        for t in &provider_answers {
            assert!(
                q2_answers.contains(t),
                "emitted {t} must be a provider answer"
            );
        }
        assert_eq!(provider_answers.len(), m.n_provider_answers);

        // Invariant 3: |relation| bounded by provider output count.
        assert!(m.relation.len() <= m.n_provider_answers.max(1));
    }

    #[test]
    fn empty_provider_gives_empty_relation() {
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        let plan = plan_free_connex(&u, &SearchConfig::default()).unwrap();
        let i = inst(&[("R1", vec![]), ("R2", vec![]), ("R3", vec![])]);
        let name_of = |t: usize, v: ucq_hypergraph::VSet| plan.atom_for(t, v).rel_name.clone();
        let ctx = CtxView::new();
        let m = materialize_atom_in(&u, &plan.atoms[0], &name_of, &i, &ctx).unwrap();
        assert!(m.relation.is_empty());
        assert_eq!(m.n_provider_answers, 0);
        assert!(m.provider_ids.is_empty());
    }
}
