//! # ucq-core — the paper's primary contribution
//!
//! Union extensions, free-connex UCQs, classification, and `DelayClin`
//! evaluation pipelines from Carmeli & Kröll, *On the Enumeration
//! Complexity of Unions of Conjunctive Queries* (PODS 2019).
//!
//! Quick tour:
//!
//! * [`classify`] — three-way verdict (free-connex / intractable-with-
//!   witness / unknown) for any UCQ, implementing Theorems 3, 4, 12, 17,
//!   19, 29, 33, 35 plus Lemmas 14/15/16/25/26;
//! * [`UcqEngine`] — classify once, evaluate many instances: Algorithm 1
//!   for unions of free-connex CQs, the Theorem 12 union-extension
//!   pipeline otherwise, naive fallback outside `DelayClin`;
//! * [`plan_free_connex`] / [`UcqPipeline`] — the executable free-connex
//!   certificates;
//! * [`provides`] / [`search`] — Definition 7's provided variable sets and
//!   the fixpoint over union extensions (Definition 10/11);
//! * [`guards`] — Definitions 23/32/34 (free-path/bypass guards, union
//!   guards, isolation).

#![forbid(unsafe_code)]

pub mod algorithm1;
pub mod body_iso;
pub mod classify;
pub mod cost;
pub mod engine;
pub mod fd;
pub mod fd_engine;
pub mod guards;
pub mod lemma8;
pub mod naive_ucq;
pub mod pipeline;
pub mod plan;
pub mod provides;
pub mod request;
pub mod search;
mod static_asserts;

pub use algorithm1::Algorithm1;
pub use body_iso::{align_body_isomorphic, AlignedUnion};
pub use classify::{
    classify, classify_with, cq_status, Classification, CqStatus, HardnessWitness, Hypothesis,
    Verdict,
};
pub use cost::{plan_free_connex_costed, CostModel, CostedPlan, CostedSearch};
pub use engine::{EvalSession, FrozenSession, PlannerStats, Strategy, UcqAnswers, UcqEngine};
pub use fd::{extend_instance, fd_extend_cq, fd_extend_ucq, Fd, FdExtension, FdSet};
pub use fd_engine::{FdAnswers, FdSession, FdUcqEngine};
pub use naive_ucq::{
    evaluate_ucq_naive, evaluate_ucq_naive_ids_in, evaluate_ucq_naive_in, evaluate_ucq_naive_set,
};
pub use pipeline::{UcqPipeline, UcqPipelinePrep};
pub use plan::{plan_free_connex, ExtensionPlan, PlannedAtom};
pub use provides::{compute_availability, compute_availability_all, Availability, Provenance};
pub use request::{RequestError, Served};
pub use search::{ConnexOracle, SearchConfig};
// The error type every engine/session entry point returns; re-exported so
// downstream crates (serve drivers, workloads) need not depend on the
// yannakakis crate for their signatures.
pub use ucq_yannakakis::EvalError;

/// `Decide` for a single free-connex CQ: linear preprocessing, constant
/// answer (Theorem 3(1) specialized to the Boolean question).
pub fn pipeline_decide(
    cq: &ucq_query::Cq,
    instance: &ucq_storage::Instance,
) -> Result<bool, ucq_yannakakis::EvalError> {
    Ok(ucq_yannakakis::CdyEngine::for_query(cq, instance)?.decide())
}
