//! Rewriting unions of body-isomorphic CQs into the paper's §4.2 form:
//! one body, several heads.
//!
//! When all members of a UCQ are pairwise body-isomorphic, each member can
//! be renamed into member 0's variable space; the union is then the single
//! body of member 0 with one free-variable set per member.

use ucq_hypergraph::VSet;
use ucq_query::{body_isomorphism, Cq, Ucq};

/// A UCQ of body-isomorphic CQs rewritten over a common body.
#[derive(Clone, Debug)]
pub struct AlignedUnion {
    /// Member 0's CQ — the common body (and name source).
    pub body: Cq,
    /// Per member: its free variables expressed in the common body's space.
    pub frees: Vec<VSet>,
}

impl AlignedUnion {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.frees.len()
    }

    /// Non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Attempts the rewriting; `None` unless all members are body-isomorphic.
pub fn align_body_isomorphic(ucq: &Ucq) -> Option<AlignedUnion> {
    let base = &ucq.cqs()[0];
    let mut frees = Vec::with_capacity(ucq.len());
    frees.push(base.free());
    for cq in &ucq.cqs()[1..] {
        // `body_isomorphism(base, cq)` returns h : var(cq) → var(base)
        // (requiring homomorphisms both ways).
        let h = body_isomorphism(base, cq)?;
        let image: VSet = cq.free().iter().map(|v| h[v as usize]).collect();
        // A body-isomorphism between self-join-free queries is a bijection,
        // so the image keeps the head's distinct-variable count.
        if image.len() != cq.free().len() {
            return None;
        }
        frees.push(image);
    }
    Some(AlignedUnion {
        body: base.clone(),
        frees,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_query::parse_ucq;

    fn vs(v: &[u32]) -> VSet {
        v.iter().copied().collect()
    }

    #[test]
    fn example20_alignment() {
        // Rewritten in the paper as
        // Q1(w,y,z), Q2(x,y,v) <- R1(w,v),R2(v,y),R3(y,z),R4(z,x).
        let u = parse_ucq(
            "Q1(x, y, v) <- R1(x, z), R2(z, y), R3(y, v), R4(v, w)\n\
             Q2(x, y, v) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)",
        )
        .unwrap();
        let a = align_body_isomorphic(&u).expect("body-isomorphic");
        // Q1 space: x=0, y=1, v=2, z=3, w=4.
        assert_eq!(a.frees[0], vs(&[0, 1, 2]));
        // h maps Q2's (x,y,v) into Q1's space: Q2 body R1(w,v) ~ R1(x,z)
        // gives h(w)=x, h(v)=z; R2(v,y) ~ R2(z,y): h(y)=y; R3(y,z) ~
        // R3(y,v): h(z)=v; R4(z,x) ~ R4(v,w): h(x)=w.
        // So free(Q2) = {x,y,v} maps to {w, y, z} = ids {4, 1, 3}.
        assert_eq!(a.frees[1], vs(&[4, 1, 3]));
    }

    #[test]
    fn non_isomorphic_rejected() {
        let u = parse_ucq(
            "Q1(x, y) <- R(x, y)\n\
             Q2(a, b) <- S(a, b)",
        )
        .unwrap();
        assert!(align_body_isomorphic(&u).is_none());
    }

    #[test]
    fn example31_alignment() {
        // Four heads over one star body.
        let u = parse_ucq(
            "Q1(x1, x2, x3) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q2(x1, x2, z) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q3(x1, x3, z) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q4(x2, x3, z) <- R1(x1, z), R2(x2, z), R3(x3, z)",
        )
        .unwrap();
        let a = align_body_isomorphic(&u).expect("same body");
        assert_eq!(a.len(), 4);
        // Q1 space: x1=0, x2=1, x3=2, z=3.
        assert_eq!(a.frees[0], vs(&[0, 1, 2]));
        assert_eq!(a.frees[1], vs(&[0, 1, 3]));
        assert_eq!(a.frees[2], vs(&[0, 2, 3]));
        assert_eq!(a.frees[3], vs(&[1, 2, 3]));
    }
}
