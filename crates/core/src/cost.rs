//! Cardinality estimation and cost-based plan selection.
//!
//! [`plan_free_connex`](crate::plan_free_connex) takes the *first* union
//! extension the search finds and the earliest-stage provider for every
//! virtual atom — correct, and the right certificate for instance-free
//! classification, but oblivious to how large each Lemma 8
//! materialization will be. [`plan_free_connex_costed`] keeps the same
//! search but scores the alternatives: up to
//! [`SearchConfig::max_plan_candidates`] extension sets per member, and
//! every resolvable provider per planned atom
//! ([`Availability::resolve_all`]), each priced by [`CostModel`] — a
//! textbook join-cardinality model over the per-relation statistics the
//! storage layer harvests from its CSR indexes ([`RelStats`]).
//!
//! The estimate for the materialized content of a planned atom (the
//! projection `π_S` of the provider's extended query, Lemma 8) is
//!
//! ```text
//! min( Π rows(atom)  /  Π_{v shared} maxdistinct(v)^(occ(v)-1),
//!      Π_{v ∈ S} mindistinct(v) )
//! ```
//!
//! with virtual atoms in the provider's own extension priced recursively
//! (memoized; provenance stages strictly decrease, so the recursion is
//! well-founded). On uniform statistics every alternative ties and the
//! costed plan degenerates to the first-found plan, so classification and
//! costed execution never disagree on *whether* a plan exists — only on
//! which one runs.

use crate::plan::{sanitize_overrides, schedule_plan, ExtensionPlan};
use crate::provides::{compute_availability_all, Availability, Provenance};
use crate::search::{ConnexOracle, SearchConfig};
use std::collections::HashMap;
use std::sync::Arc;
use ucq_hypergraph::VSet;
use ucq_query::{Cq, Ucq};
use ucq_storage::{CtxView, Instance, RelStats};

/// Join-cardinality estimator over one instance's statistics.
///
/// Borrow-shares the availability table with the planner; base-relation
/// stats are pulled through the context's [`RelStats`] cache (interning
/// the relation on first touch) and virtual-atom estimates are memoized
/// per `(target, vars)` key.
pub struct CostModel<'a> {
    ucq: &'a Ucq,
    avail: &'a Availability,
    instance: &'a Instance,
    ctx: &'a CtxView,
    base: HashMap<String, Option<Arc<RelStats>>>,
    virt: HashMap<(usize, VSet), f64>,
}

impl<'a> CostModel<'a> {
    /// A model over `instance`, reading stats through `ctx`'s caches.
    pub fn new(
        ucq: &'a Ucq,
        avail: &'a Availability,
        instance: &'a Instance,
        ctx: &'a CtxView,
    ) -> CostModel<'a> {
        CostModel {
            ucq,
            avail,
            instance,
            ctx,
            base: HashMap::new(),
            virt: HashMap::new(),
        }
    }

    /// Statistics for base relation `name`, or `None` when the instance
    /// has no such relation (its atoms match nothing).
    fn base_stats(&mut self, name: &str) -> Option<Arc<RelStats>> {
        if let Some(s) = self.base.get(name) {
            return s.clone();
        }
        let s = self.instance.get_shared(name).map(|rel| {
            let ids = self.ctx.interned_rel(&rel);
            self.ctx.rel_stats(&ids)
        });
        self.base.insert(name.to_string(), s.clone());
        s
    }

    /// Estimated row count of planned atom `(target, vars)` when filled by
    /// its default earliest-stage provenance ([`Availability::resolve`]) —
    /// the choice the scheduler makes for dependency atoms.
    pub fn est_atom(&mut self, target: usize, vars: VSet) -> f64 {
        if let Some(&e) = self.virt.get(&(target, vars)) {
            return e;
        }
        // Pessimistic placeholder so an unexpected resolution cycle costs
        // itself out instead of recursing forever.
        self.virt.insert((target, vars), f64::INFINITY);
        let avail = self.avail;
        let est = match avail.resolve(target, vars) {
            Some(p) => self.est_provenance(p),
            None => f64::INFINITY,
        };
        self.virt.insert((target, vars), est);
        est
    }

    /// Estimated materialized size of the relation `prov` would fill: the
    /// projection `π_S` over the provider's extended query (Lemma 8).
    pub fn est_provenance(&mut self, prov: &Provenance) -> f64 {
        self.est_projection(prov.provider, &prov.uses, prov.s)
    }

    /// Estimated size of `π_proj` over member `member` extended with the
    /// virtual atoms `extra` (variable sets in the member's own space).
    fn est_projection(&mut self, member: usize, extra: &[VSet], proj: VSet) -> f64 {
        let atoms = self.ucq.cqs()[member].atoms().to_vec();
        let mut facts: Vec<(f64, HashMap<u32, f64>)> = Vec::new();
        for atom in &atoms {
            let Some(stats) = self.base_stats(&atom.rel) else {
                return 0.0; // missing relation: the member yields nothing
            };
            let rows = stats.rows as f64;
            let mut d: HashMap<u32, f64> = HashMap::new();
            for (c, &v) in atom.args.iter().enumerate() {
                let dc = stats.distinct.get(c).copied().unwrap_or(0) as f64;
                // A variable repeated inside one atom keeps its tightest
                // column's distinct count.
                d.entry(v).and_modify(|e| *e = e.min(dc)).or_insert(dc);
            }
            facts.push((rows, d));
        }
        for &u in extra {
            let rows = self.est_atom(member, u);
            // A materialized atom's per-column distinct count is bounded by
            // its row count; nothing tighter is known without building it.
            let d: HashMap<u32, f64> = u.iter().map(|v| (v, rows)).collect();
            facts.push((rows, d));
        }
        join_projection_estimate(&facts, proj)
    }
}

/// The cardinality model proper: estimated size of a projection over a
/// join, from per-atom `(rows, var → distinct)` facts.
fn join_projection_estimate(facts: &[(f64, HashMap<u32, f64>)], proj: VSet) -> f64 {
    if facts.is_empty() || facts.iter().any(|(r, _)| *r == 0.0) {
        return 0.0;
    }
    let mut join: f64 = facts.iter().map(|(r, _)| *r).product();
    // Each extra occurrence of a shared variable filters by ~1/maxdistinct.
    let mut occ: HashMap<u32, (usize, f64)> = HashMap::new();
    for (_, d) in facts {
        for (&v, &dc) in d {
            let e = occ.entry(v).or_insert((0, 0.0));
            e.0 += 1;
            e.1 = e.1.max(dc.max(1.0));
        }
    }
    for (count, maxd) in occ.values() {
        if *count > 1 && maxd.is_finite() {
            join /= maxd.powi((*count - 1) as i32);
        }
    }
    // The projection can't exceed the cross product of its columns'
    // tightest distinct counts.
    let mut cap: f64 = 1.0;
    for v in proj.iter() {
        let mut best = f64::INFINITY;
        for (_, d) in facts {
            if let Some(&dc) = d.get(&v) {
                best = best.min(dc.max(1.0));
            }
        }
        if best.is_finite() {
            cap *= best;
        }
    }
    join.min(cap)
}

/// A cost-annotated free-connex certificate.
#[derive(Clone, Debug)]
pub struct CostedPlan {
    /// The executable plan (same shape `plan_free_connex` produces).
    pub plan: ExtensionPlan,
    /// Estimated materialized rows per `plan.atoms` entry, same order —
    /// surfaced for `EXPLAIN`-style plan dumps.
    pub estimates: Vec<f64>,
    /// Candidate extension sets scored across all members.
    pub candidates_costed: usize,
}

/// The cheapest provider for planned atom `(target, vars)`: estimate,
/// index into [`Availability::resolve_all`] order (0 = what `resolve`
/// picks), and the provenance itself. Strict `<` keeps the earliest entry
/// on ties, so uniform statistics reproduce the first-found plan.
fn cheapest_provider(
    model: &mut CostModel<'_>,
    avail: &Availability,
    target: usize,
    vars: VSet,
) -> Option<(f64, usize, Provenance)> {
    let mut best: Option<(f64, usize, Provenance)> = None;
    for (idx, p) in avail.resolve_all(target, vars).into_iter().enumerate() {
        let e = model.est_provenance(p);
        if best.as_ref().is_none_or(|(b, _, _)| e < *b) {
            best = Some((e, idx, p.clone()));
        }
    }
    best
}

/// The instance-independent half of the costed planner: the availability
/// fixpoint and the candidate extension sets per member. Both depend only
/// on the query, so an engine prepares this once and re-prices it per
/// instance — a plan-cache miss costs one round of costing, not a fresh
/// connexity search.
pub struct CostedSearch {
    ucq: Ucq,
    avail: Availability,
    /// Candidate extension sets per member (empty when every member is
    /// already free-connex — no extensions to choose between).
    candidates: Vec<Vec<Vec<VSet>>>,
}

impl CostedSearch {
    /// Runs the search space of [`plan_free_connex`](crate::plan_free_connex)
    /// once, keeping every candidate. Returns `None` exactly when the
    /// first-found planner does (same candidates enumerated).
    pub fn prepare(ucq: &Ucq, cfg: &SearchConfig) -> Option<CostedSearch> {
        if ucq.cqs().iter().all(Cq::is_free_connex) {
            return Some(CostedSearch {
                ucq: ucq.clone(),
                avail: Availability::default(),
                candidates: Vec::new(),
            });
        }
        let mut oracle = ConnexOracle::default();
        let avail = compute_availability_all(ucq, &mut oracle, cfg);
        let mut candidates = Vec::with_capacity(ucq.len());
        for (i, cq) in ucq.cqs().iter().enumerate() {
            let h = cq.hypergraph();
            let pool = avail.pool_for(i, &h, cfg.pool_cap);
            let cands = oracle.find_extensions(&h, cq.free(), &pool, cfg, cfg.max_plan_candidates);
            if cands.is_empty() {
                return None;
            }
            candidates.push(cands);
        }
        Some(CostedSearch {
            ucq: ucq.clone(),
            avail,
            candidates,
        })
    }

    /// Prices the prepared candidates against `instance`'s statistics and
    /// schedules the cheapest combination.
    pub fn plan(&self, instance: &Instance, ctx: &CtxView) -> CostedPlan {
        if self.candidates.is_empty() {
            return CostedPlan {
                plan: ExtensionPlan {
                    atoms: Vec::new(),
                    chosen: vec![Vec::new(); self.ucq.len()],
                },
                estimates: Vec::new(),
                candidates_costed: 0,
            };
        }
        let avail = &self.avail;
        let mut model = CostModel::new(&self.ucq, avail, instance, ctx);
        let mut chosen: Vec<Vec<VSet>> = Vec::with_capacity(self.ucq.len());
        let mut overrides: HashMap<(usize, VSet), Provenance> = HashMap::new();
        let mut candidates_costed = 0usize;
        for (i, cands) in self.candidates.iter().enumerate() {
            let mut best: Option<(f64, usize)> = None;
            for (ci, cand) in cands.iter().enumerate() {
                candidates_costed += 1;
                let total: f64 = cand
                    .iter()
                    .map(|&vars| {
                        cheapest_provider(&mut model, avail, i, vars)
                            .map_or(f64::INFINITY, |(e, _, _)| e)
                    })
                    .sum();
                if best.is_none_or(|(b, _)| total < b) {
                    best = Some((total, ci));
                }
            }
            let (_, ci) = best.expect("prepare() rejects members with no candidates");
            let cand = cands[ci].clone();
            for &vars in &cand {
                if let Some((_, idx, prov)) = cheapest_provider(&mut model, avail, i, vars) {
                    if idx != 0 {
                        // Cheaper than the scheduler's default pick: override.
                        overrides.insert((i, vars), prov);
                    }
                }
            }
            chosen.push(cand);
        }

        sanitize_overrides(avail, &mut overrides);
        let plan = schedule_plan(avail, chosen, &overrides);
        let estimates: Vec<f64> = plan
            .atoms
            .iter()
            .map(|a| {
                let prov = a.provenance.clone();
                model.est_provenance(&prov)
            })
            .collect();
        CostedPlan {
            plan,
            estimates,
            candidates_costed,
        }
    }
}

/// Cost-based variant of [`plan_free_connex`](crate::plan_free_connex):
/// same search space, but candidate extension sets and alternative
/// providers are priced against `instance`'s statistics and the cheapest
/// combination wins. Returns `None` exactly when the first-found planner
/// does (the searches enumerate the same candidates). One-shot facade
/// over [`CostedSearch`]; engines keep the `CostedSearch` around instead.
pub fn plan_free_connex_costed(
    ucq: &Ucq,
    cfg: &SearchConfig,
    instance: &Instance,
    ctx: &CtxView,
) -> Option<CostedPlan> {
    Some(CostedSearch::prepare(ucq, cfg)?.plan(instance, ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_free_connex;
    use ucq_query::parse_ucq;
    use ucq_storage::{Relation, Value};

    fn pairs(rows: &[(i64, i64)]) -> Relation {
        let mut r = Relation::new(2);
        for &(a, b) in rows {
            r.push_row(&[Value::Int(a), Value::Int(b)]);
        }
        r
    }

    fn est(facts: &[(f64, &[(u32, f64)])], proj: &[u32]) -> f64 {
        let facts: Vec<(f64, HashMap<u32, f64>)> = facts
            .iter()
            .map(|(r, d)| (*r, d.iter().copied().collect()))
            .collect();
        join_projection_estimate(&facts, proj.iter().copied().collect())
    }

    #[test]
    fn estimate_basics() {
        // Empty input or an empty atom → 0.
        assert_eq!(est(&[], &[0]), 0.0);
        assert_eq!(est(&[(0.0, &[(0, 0.0)])], &[0]), 0.0);
        // Single atom, full projection: its row count.
        assert_eq!(est(&[(10.0, &[(0, 5.0), (1, 10.0)])], &[0, 1]), 10.0);
        // Projection cap: π_{v0} can't exceed distinct(v0).
        assert_eq!(est(&[(10.0, &[(0, 5.0), (1, 10.0)])], &[0]), 5.0);
        // Join on a shared var: 10·10/10 = 10.
        let joined = est(
            &[
                (10.0, &[(0, 10.0), (1, 10.0)]),
                (10.0, &[(1, 10.0), (2, 10.0)]),
            ],
            &[0, 2],
        );
        assert_eq!(joined, 10.0);
        // Skew: a low-distinct shared column inflates the estimate.
        let skewed = est(
            &[
                (10.0, &[(0, 10.0), (1, 2.0)]),
                (10.0, &[(1, 2.0), (2, 10.0)]),
            ],
            &[0, 2],
        );
        assert!(skewed > joined, "fanout 5 joins bigger than fanout 1");
    }

    #[test]
    fn costed_matches_first_found_on_uniform_stats() {
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        let mut inst = Instance::new();
        inst.insert("R1", pairs(&[(1, 2), (3, 4)]));
        inst.insert("R2", pairs(&[(2, 5), (4, 6)]));
        inst.insert("R3", pairs(&[(5, 7), (6, 8)]));
        let ctx = CtxView::new();
        let cfg = SearchConfig::default();
        let first = plan_free_connex(&u, &cfg).unwrap();
        let costed = plan_free_connex_costed(&u, &cfg, &inst, &ctx).unwrap();
        assert_eq!(costed.plan.chosen, first.chosen);
        assert_eq!(costed.plan.atoms.len(), first.atoms.len());
        assert_eq!(costed.estimates.len(), costed.plan.atoms.len());
        assert!(costed.candidates_costed >= 1);
        assert!(costed.estimates.iter().all(|e| e.is_finite()));
    }

    #[test]
    fn costed_agrees_on_unplannability() {
        let u = parse_ucq(
            "Q1(x, y, v) <- R1(x, z), R2(z, y), R3(y, v), R4(v, w)\n\
             Q2(x, y, v) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)",
        )
        .unwrap();
        let inst = Instance::new();
        let ctx = CtxView::new();
        let cfg = SearchConfig::default();
        assert!(plan_free_connex(&u, &cfg).is_none());
        assert!(plan_free_connex_costed(&u, &cfg, &inst, &ctx).is_none());
    }

    #[test]
    fn missing_relations_cost_zero() {
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        let inst = Instance::new(); // no relations at all
        let ctx = CtxView::new();
        let costed = plan_free_connex_costed(&u, &SearchConfig::default(), &inst, &ctx).unwrap();
        assert!(costed.estimates.iter().all(|&e| e == 0.0));
    }
}
