//! Functional dependencies and FD-extensions (Remark 2).
//!
//! The paper notes that its machinery composes with the authors' earlier
//! dichotomy for CQs under functional dependencies (Carmeli & Kröll,
//! ICDT 2018 — reference [6]): *"Given a UCQ over a schema with functional
//! dependencies, we can first take the FD-extensions of all CQs in the
//! union, and then take the union extensions of those and evaluate the
//! union."*
//!
//! A functional dependency `R : X → y` (determinant positions `X`, a
//! determined position `y`) means every two `R`-tuples agreeing on `X`
//! agree on `y`. The **FD-extension** of a CQ repeatedly applies two rules
//! until fixpoint, neither of which changes the semantics over instances
//! satisfying the FDs:
//!
//! 1. **atom saturation** — if an atom `R(v̄)` covers the determinant
//!    variables of some FD on any relation of the query (through another
//!    atom `R'(w̄)` with `w̄[X] = v̄'s` variables at those positions… we use
//!    the per-atom form: the FD holds on the atom's own relation), the
//!    determined variable is appended to that atom;
//! 2. **head saturation** — if all determinant variables of an applied FD
//!    instance are free, the determined variable is added to the head.
//!
//! Concretely, following ICDT'18: for an FD `R : X → y` and an atom
//! `R(v̄)`, every *other* atom `S(ū)` whose variables contain `v̄[X]` gets
//! `v̄[y]` appended, and the head gets `v̄[y]` appended whenever
//! `v̄[X] ⊆ free(Q)`. Enumerating the extension is equivalent to
//! enumerating the original (the added coordinates are functions of
//! existing ones), so classification can be performed on the extension.
//!
//! Relations named by FDs are *extended* too at evaluation time:
//! [`extend_instance`] widens each saturated atom's relation with the
//! functionally determined columns so the extended query can run on real
//! data. (Each added column is computed by joining with the FD's source
//! atom — linear time with a hash index.)

use std::collections::HashMap;
use ucq_query::{Atom, Cq, QueryError, Ucq, VarId};
use ucq_storage::{HashIndex, Instance, Relation, Value};

/// A functional dependency `rel : lhs → rhs` over column positions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fd {
    /// Relation name.
    pub rel: String,
    /// Determinant column positions.
    pub lhs: Vec<usize>,
    /// Determined column position.
    pub rhs: usize,
}

impl Fd {
    /// Creates an FD; panics on an empty determinant or `rhs ∈ lhs`.
    pub fn new(rel: impl Into<String>, lhs: Vec<usize>, rhs: usize) -> Fd {
        assert!(!lhs.is_empty(), "FDs need at least one determinant column");
        assert!(!lhs.contains(&rhs), "trivial FD");
        Fd {
            rel: rel.into(),
            lhs,
            rhs,
        }
    }

    /// Whether a relation satisfies this FD.
    pub fn holds_on(&self, rel: &Relation) -> bool {
        let mut seen: HashMap<Vec<Value>, Value> = HashMap::with_capacity(rel.len());
        for row in rel.iter_rows() {
            if self.lhs.iter().any(|&c| c >= rel.arity()) || self.rhs >= rel.arity() {
                return false;
            }
            let key: Vec<Value> = self.lhs.iter().map(|&c| row[c]).collect();
            match seen.insert(key, row[self.rhs]) {
                Some(prev) if prev != row[self.rhs] => return false,
                _ => {}
            }
        }
        true
    }
}

/// A set of FDs over a schema.
#[derive(Clone, Debug, Default)]
pub struct FdSet {
    fds: Vec<Fd>,
}

impl FdSet {
    /// Creates an FD set.
    pub fn new(fds: Vec<Fd>) -> FdSet {
        FdSet { fds }
    }

    /// The member FDs.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// Whether all FDs hold on `inst` (absent relations count as holding).
    pub fn holds_on(&self, inst: &Instance) -> bool {
        self.fds
            .iter()
            .all(|fd| inst.get(&fd.rel).map(|r| fd.holds_on(r)).unwrap_or(true))
    }
}

/// One applied FD instance recorded while extending a query: the source
/// atom index, the FD, and the determined variable chosen for it.
#[derive(Clone, Debug)]
pub struct AppliedFd {
    /// Index of the source atom (in the *original* query's atom order).
    pub atom: usize,
    /// The FD that fired.
    pub fd: Fd,
    /// The determinant variables `v̄[X]`.
    pub lhs_vars: Vec<VarId>,
    /// The determined variable `v̄[y]`.
    pub rhs_var: VarId,
}

/// The FD-extension of one CQ: the extended query plus the trace of
/// applied FDs (used to extend instances consistently).
#[derive(Clone, Debug)]
pub struct FdExtension {
    /// The extended query.
    pub query: Cq,
    /// Which FD applications widened which atoms: `(target_atom_index,
    /// application)` pairs, in application order. Atom indices refer to the
    /// extended query's atom order (identical to the original order).
    pub widened: Vec<(usize, AppliedFd)>,
}

/// Computes the FD-extension of `cq` under `fds` (ICDT'18 construction,
/// used here as the Remark 2 preprocessing step).
pub fn fd_extend_cq(cq: &Cq, fds: &FdSet) -> Result<FdExtension, QueryError> {
    // Working state: atom variable lists + head, all over cq's namespace.
    let mut atoms: Vec<Atom> = cq.atoms().to_vec();
    let mut head: Vec<VarId> = cq.head().to_vec();
    let mut widened: Vec<(usize, AppliedFd)> = Vec::new();

    // Fixpoint: apply every FD instance to every atom until nothing grows.
    // Termination: every rule only adds a variable (bounded by n_vars per
    // atom / head).
    let mut changed = true;
    while changed {
        changed = false;
        for src in 0..cq.atoms().len() {
            let src_atom = atoms[src].clone();
            for fd in fds.fds() {
                if fd.rel != src_atom.rel
                    || fd.lhs.iter().any(|&c| c >= src_atom.args.len())
                    || fd.rhs >= src_atom.args.len()
                {
                    continue;
                }
                let lhs_vars: Vec<VarId> = fd.lhs.iter().map(|&c| src_atom.args[c]).collect();
                let rhs_var = src_atom.args[fd.rhs];
                let app = AppliedFd {
                    atom: src,
                    fd: fd.clone(),
                    lhs_vars: lhs_vars.clone(),
                    rhs_var,
                };
                // Head saturation.
                if lhs_vars.iter().all(|v| head.contains(v)) && !head.contains(&rhs_var) {
                    head.push(rhs_var);
                    changed = true;
                }
                // Atom saturation: any other atom containing all the
                // determinant variables absorbs the determined one.
                for (t, atom) in atoms.iter_mut().enumerate() {
                    if t == src {
                        continue;
                    }
                    let has_lhs = lhs_vars.iter().all(|v| atom.args.contains(v));
                    if has_lhs && !atom.args.contains(&rhs_var) {
                        atom.args.push(rhs_var);
                        widened.push((t, app.clone()));
                        changed = true;
                    }
                }
            }
        }
    }

    let query = Cq::new(
        format!("{}_fd", cq.name()),
        head,
        atoms,
        cq.var_names().to_vec(),
    )?;
    Ok(FdExtension { query, widened })
}

/// Computes the FD-extension of every member of a union. Fails when the
/// extended heads disagree in arity (heads can grow differently when the
/// members' free variables determine different closures; the paper's
/// setting requires the union's members to share their free variables, so
/// the closure is shared too — on the positional encoding this surfaces as
/// an arity mismatch and is reported as an error).
pub fn fd_extend_ucq(ucq: &Ucq, fds: &FdSet) -> Result<(Ucq, Vec<FdExtension>), QueryError> {
    let exts: Vec<FdExtension> = ucq
        .cqs()
        .iter()
        .map(|cq| fd_extend_cq(cq, fds))
        .collect::<Result<_, _>>()?;
    let extended = Ucq::new(exts.iter().map(|e| e.query.clone()).collect())?;
    Ok((extended, exts))
}

/// Widens an instance to match an FD-extended query: every widened atom's
/// relation gains the functionally determined columns, computed by joining
/// against the FD's source relation. Panics if the instance violates an
/// applied FD (callers should check [`FdSet::holds_on`] first).
pub fn extend_instance(original: &Cq, ext: &FdExtension, inst: &Instance) -> Instance {
    let mut out = inst.clone();
    // Process in application order: later applications may depend on
    // columns added by earlier ones. We rebuild each target relation as a
    // growing row table.
    let mut current: HashMap<usize, Relation> = HashMap::new();
    let get_rel = |name: &str, arity: usize, inst: &Instance| -> Relation {
        inst.get(name)
            .cloned()
            .unwrap_or_else(|| Relation::new(arity))
    };
    // One interned index per (source atom, lhs) — an FD whose source
    // widens several targets must not re-intern the source per target.
    // (Local interning: widening is a preprocessing step that runs before
    // any EvalContext exists.)
    type SrcEntry = (Relation, ucq_storage::Dictionary, HashIndex);
    let mut src_cache: HashMap<(usize, Vec<usize>), SrcEntry> = HashMap::new();
    for (t, app) in &ext.widened {
        let target_atom = &original.atoms()[*t];
        let target_now = current
            .remove(t)
            .unwrap_or_else(|| get_rel(&target_atom.rel, target_atom.args.len(), inst));
        // The source relation provides lhs -> rhs lookups.
        let (src_rel, dict, idx) = src_cache
            .entry((app.atom, app.fd.lhs.clone()))
            .or_insert_with(|| {
                let src_atom = &original.atoms()[app.atom];
                let src_rel = get_rel(&src_atom.rel, src_atom.args.len(), inst);
                let mut dict = ucq_storage::Dictionary::new();
                let src_ids = src_rel.columnar(&mut dict);
                let idx = HashIndex::build(&src_ids, &app.fd.lhs);
                (src_rel, dict, idx)
            });

        // Positions of the lhs variables inside the *current* target
        // columns (original args + already-appended columns). We track the
        // target's column variables explicitly.
        let target_cols = target_columns(original, ext, *t, &target_now);
        let lhs_pos: Vec<usize> = app
            .lhs_vars
            .iter()
            .map(|v| {
                target_cols
                    .iter()
                    .position(|c| c == v)
                    .expect("saturation rule guarantees the lhs columns exist")
            })
            .collect();

        let mut widened_rel = Relation::with_capacity(target_now.arity() + 1, target_now.len());
        let mut buf: Vec<Value> = Vec::with_capacity(target_now.arity() + 1);
        let mut key: Vec<ucq_storage::ValueId> = Vec::with_capacity(lhs_pos.len());
        for row in target_now.iter_rows() {
            key.clear();
            let known = lhs_pos.iter().all(|&p| match dict.lookup(row[p]) {
                Some(id) => {
                    key.push(id);
                    true
                }
                None => false,
            });
            let matches = if known { idx.get(&key) } else { &[] };
            if matches.is_empty() {
                // No source tuple determines the value: the row is dangling
                // w.r.t. the join and can be dropped without changing the
                // query's answers (the source atom must match anyway).
                continue;
            }
            let val = src_rel.row(matches[0] as usize)[app.fd.rhs];
            debug_assert!(
                matches
                    .iter()
                    .all(|&m| src_rel.row(m as usize)[app.fd.rhs] == val),
                "instance violates FD {:?}",
                app.fd
            );
            buf.clear();
            buf.extend_from_slice(row);
            buf.push(val);
            widened_rel.push_row(&buf);
        }
        current.insert(*t, widened_rel);
    }
    for (t, rel) in current {
        out.insert(ext.query.atoms()[t].rel.clone(), rel);
    }
    out
}

/// The variable of each column of atom `t`'s relation after the widenings
/// applied so far (deduced from the current arity).
fn target_columns(original: &Cq, ext: &FdExtension, t: usize, target_now: &Relation) -> Vec<VarId> {
    let mut cols: Vec<VarId> = original.atoms()[t].args.clone();
    for (tt, app) in &ext.widened {
        if *tt == t && cols.len() < target_now.arity() {
            cols.push(app.rhs_var);
        }
        if cols.len() == target_now.arity() {
            break;
        }
    }
    assert_eq!(cols.len(), target_now.arity(), "column bookkeeping");
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;
    use std::collections::HashSet;
    use ucq_query::{parse_cq, parse_ucq};
    use ucq_storage::Tuple;
    use ucq_yannakakis::evaluate_cq_naive;

    #[test]
    fn fd_holds_detection() {
        let fd = Fd::new("R", vec![0], 1);
        let good = Relation::from_pairs([(1, 10), (2, 20), (1, 10)]);
        let bad = Relation::from_pairs([(1, 10), (1, 11)]);
        assert!(fd.holds_on(&good));
        assert!(!fd.holds_on(&bad));
    }

    #[test]
    #[should_panic(expected = "trivial")]
    fn trivial_fd_rejected() {
        Fd::new("R", vec![1], 1);
    }

    #[test]
    fn matmul_becomes_free_connex_under_key_fd() {
        // Π(x,y) <- A(x,z), B(z,y) with the FD A: x→z (first column is a
        // key). The FD-extension widens the head with z — and the extended
        // query is free-connex (the ICDT'18 phenomenon).
        let q = parse_cq("Pi(x, y) <- A(x, z), B(z, y)").unwrap();
        assert!(!q.is_free_connex());
        let fds = FdSet::new(vec![Fd::new("A", vec![0], 1)]);
        let ext = fd_extend_cq(&q, &fds).unwrap();
        // Head gained z.
        assert_eq!(ext.query.head().len(), 3);
        assert!(ext.query.is_free_connex());
    }

    #[test]
    fn atom_saturation_widens_other_atoms() {
        // Q(x,w) <- R(x,y), S(x,w) with R: x→y: S absorbs y.
        let q = parse_cq("Q(x, w) <- R(x, y), S(x, w)").unwrap();
        let fds = FdSet::new(vec![Fd::new("R", vec![0], 1)]);
        let ext = fd_extend_cq(&q, &fds).unwrap();
        let s_atom = &ext.query.atoms()[1];
        assert_eq!(s_atom.args.len(), 3, "S(x,w) became S(x,w,y)");
        // Head also gains y (x is free and determines it).
        assert!(ext.query.head().contains(&q.var_id("y").unwrap()));
    }

    #[test]
    fn extension_preserves_semantics_on_fd_instances() {
        let q = parse_cq("Q(x, w) <- R(x, y), S(x, w)").unwrap();
        let fds = FdSet::new(vec![Fd::new("R", vec![0], 1)]);
        let ext = fd_extend_cq(&q, &fds).unwrap();

        let inst: Instance = [
            ("R", Relation::from_pairs([(1, 10), (2, 20)])),
            ("S", Relation::from_pairs([(1, 5), (1, 6), (2, 7), (3, 9)])),
        ]
        .into_iter()
        .collect();
        assert!(fds.holds_on(&inst));

        let widened = extend_instance(&q, &ext, &inst);
        // The extended query over the widened instance projects onto the
        // original head exactly like the original query over the original
        // instance.
        let orig: HashSet<Tuple> = evaluate_cq_naive(&q, &inst).unwrap().into_iter().collect();
        let ext_answers = evaluate_cq_naive(&ext.query, &widened).unwrap();
        let orig_head_len = q.head().len();
        let projected: HashSet<Tuple> = ext_answers
            .iter()
            .map(|t| Tuple(t.values()[..orig_head_len].into()))
            .collect();
        assert_eq!(orig, projected);
    }

    #[test]
    fn fd_violating_instance_detected() {
        let fds = FdSet::new(vec![Fd::new("R", vec![0], 1)]);
        let inst: Instance = [("R", Relation::from_pairs([(1, 10), (1, 11)]))]
            .into_iter()
            .collect();
        assert!(!fds.holds_on(&inst));
    }

    #[test]
    fn remark2_pipeline_fd_then_union_extension() {
        // A union that is NOT free-connex without FDs: the matmul member
        // alone. With the key FD it becomes classifiable as tractable.
        let u = parse_ucq("Pi(x, y) <- A(x, z), B(z, y)").unwrap();
        assert!(classify(&u).is_intractable());
        let fds = FdSet::new(vec![Fd::new("A", vec![0], 1)]);
        let (ext, _) = fd_extend_ucq(&u, &fds).unwrap();
        assert!(
            classify(&ext).is_tractable(),
            "Remark 2: classify the FD-extension instead"
        );
    }

    #[test]
    fn multi_column_determinant() {
        // T(a,b,c) with T: {a,b} → c, used from another atom U(a,b,d).
        let q = parse_cq("Q(a, b, d) <- T(a, b, c), U(a, b, d)").unwrap();
        let fds = FdSet::new(vec![Fd::new("T", vec![0, 1], 2)]);
        let ext = fd_extend_cq(&q, &fds).unwrap();
        assert_eq!(ext.query.atoms()[1].args.len(), 4, "U absorbed c");
        assert!(ext.query.head().contains(&q.var_id("c").unwrap()));
    }

    #[test]
    fn no_fds_is_identity() {
        let q = parse_cq("Q(x) <- R(x, y)").unwrap();
        let ext = fd_extend_cq(&q, &FdSet::default()).unwrap();
        assert_eq!(ext.query.atoms(), q.atoms());
        assert_eq!(ext.query.head(), q.head());
        assert!(ext.widened.is_empty());
    }
}
