//! Free-connex union-extension plans (Definitions 10 and 11).
//!
//! A UCQ is *free-connex* when every member has a free-connex union
//! extension. [`plan_free_connex`] decides this (within the search bounds)
//! and, on success, produces an executable certificate: the set of virtual
//! atoms each member's evaluation uses, plus a well-founded materialization
//! schedule with one [`Provenance`] per atom.

use crate::provides::{compute_availability, Availability, Provenance};
use crate::search::{ConnexOracle, SearchConfig};
use std::collections::HashMap;
use ucq_hypergraph::VSet;
use ucq_query::{Atom, Cq, Ucq};
use ucq_storage::fx_hash_of;

/// One virtual atom scheduled for materialization.
#[derive(Clone, Debug)]
pub struct PlannedAtom {
    /// The CQ (index in the union) whose extension carries this atom.
    pub target: usize,
    /// The atom's variables, in the target's variable space.
    pub vars: VSet,
    /// Fresh relation symbol for the materialized content.
    pub rel_name: String,
    /// How to fill it (Lemma 8).
    pub provenance: Provenance,
}

impl PlannedAtom {
    /// The atom as it appears in the extended query (arguments sorted by
    /// variable id, matching the materialized column order).
    pub fn as_atom(&self) -> Atom {
        Atom {
            rel: self.rel_name.clone(),
            args: self.vars.iter().collect(),
        }
    }
}

/// A free-connex certificate for a whole UCQ.
#[derive(Clone, Debug, Default)]
pub struct ExtensionPlan {
    /// Atoms in materialization order (dependencies first).
    pub atoms: Vec<PlannedAtom>,
    /// Per member: the variable sets of the virtual atoms its final
    /// free-connex evaluation uses (possibly empty).
    pub chosen: Vec<Vec<VSet>>,
}

impl ExtensionPlan {
    /// Whether the plan needs any union extension at all (false = all
    /// members are free-connex on their own, the Theorem 4 case).
    pub fn needs_extension(&self) -> bool {
        !self.atoms.is_empty()
    }

    /// The extended query for member `i` (the member itself when no atoms
    /// were chosen for it).
    pub fn extended_query(&self, ucq: &Ucq, i: usize) -> Cq {
        let extra: Vec<Atom> = self.chosen[i]
            .iter()
            .map(|&vars| self.atom_for(i, vars).as_atom())
            .collect();
        if extra.is_empty() {
            ucq.cqs()[i].clone()
        } else {
            ucq.cqs()[i].with_extra_atoms(&extra)
        }
    }

    /// Looks up the planned atom `(target, vars)`.
    pub fn atom_for(&self, target: usize, vars: VSet) -> &PlannedAtom {
        self.atoms
            .iter()
            .find(|a| a.target == target && a.vars == vars)
            .expect("chosen atoms are always planned")
    }
}

/// The materialized-relation name for planned atom `(target, vars)` filled
/// by `prov`. The name is derived from the plan's full dedup key — target,
/// variable set, *and* a hash of the provenance (provider, homomorphism,
/// connex set, uses) — so two plans over the same union that pick different
/// providers for the same atom can never alias in a shared instance or
/// context. (The old `@prov_{target}_{vars}` scheme collided exactly there.)
fn planned_rel_name(target: usize, vars: VSet, prov: &Provenance) -> String {
    let sig = fx_hash_of(&(prov.provider, &prov.hom, prov.s, &prov.uses));
    format!("@prov_{target}_{:x}_{sig:016x}", vars.0)
}

/// Decides free-connexity of the union (within `cfg`'s search bounds) and
/// builds the plan. `None` means *no certificate found* — for the classes
/// with proven dichotomies this coincides with "not free-connex".
pub fn plan_free_connex(ucq: &Ucq, cfg: &SearchConfig) -> Option<ExtensionPlan> {
    let mut oracle = ConnexOracle::default();

    // Fast path: every member free-connex by itself.
    if ucq.cqs().iter().all(Cq::is_free_connex) {
        return Some(ExtensionPlan {
            atoms: Vec::new(),
            chosen: vec![Vec::new(); ucq.len()],
        });
    }

    let avail = compute_availability(ucq, &mut oracle, cfg);
    let hypergraphs: Vec<_> = ucq.cqs().iter().map(|q| q.hypergraph()).collect();

    // Choose a free-connex extension per member.
    let mut chosen: Vec<Vec<VSet>> = Vec::with_capacity(ucq.len());
    for (i, h) in hypergraphs.iter().enumerate() {
        let pool = avail.pool_for(i, h, cfg.pool_cap);
        let atoms = oracle.find_extension(h, ucq.cqs()[i].free(), &pool, cfg)?;
        chosen.push(atoms);
    }

    Some(schedule_plan(&avail, chosen, &HashMap::new()))
}

/// Builds the executable plan from per-member chosen atom sets: schedules
/// materializations dependency-first and attaches a provenance to each.
///
/// `overrides` substitutes the provenance for specific *top-level* keys
/// (the cost-based planner's cheaper provider picks); dependencies inside
/// the DFS always follow [`Availability::resolve`], whose strictly
/// decreasing stages guarantee a well-founded order. An override whose own
/// dependency closure needs the overridden key is dropped back to
/// `resolve` (see [`sanitize_overrides`]), so by the time we get here every
/// dependency edge is resolve-backed and acyclic.
pub(crate) fn schedule_plan(
    avail: &Availability,
    chosen: Vec<Vec<VSet>>,
    overrides: &HashMap<(usize, VSet), Provenance>,
) -> ExtensionPlan {
    let prov_of = |key: (usize, VSet), top: bool| -> Provenance {
        if top {
            if let Some(p) = overrides.get(&key) {
                return p.clone();
            }
        }
        avail
            .resolve(key.0, key.1)
            .expect("planned atoms are always available")
            .clone()
    };

    // Schedule materializations: DFS over (target, vars) dependencies,
    // dependencies (the provenance's `uses`, in provider space) first.
    let mut order: Vec<((usize, VSet), Provenance)> = Vec::new();
    let mut seen: HashMap<(usize, VSet), ()> = HashMap::new();
    #[allow(clippy::type_complexity)]
    fn visit(
        key: (usize, VSet),
        top: bool,
        prov_of: &dyn Fn((usize, VSet), bool) -> Provenance,
        order: &mut Vec<((usize, VSet), Provenance)>,
        seen: &mut HashMap<(usize, VSet), ()>,
    ) {
        if seen.contains_key(&key) {
            return;
        }
        seen.insert(key, ());
        let prov = prov_of(key, top);
        for &u in &prov.uses {
            visit((prov.provider, u), false, prov_of, order, seen);
        }
        order.push((key, prov));
    }
    for (i, atoms) in chosen.iter().enumerate() {
        for &vars in atoms {
            visit((i, vars), true, &prov_of, &mut order, &mut seen);
        }
    }

    let atoms: Vec<PlannedAtom> = order
        .into_iter()
        .map(|((target, vars), provenance)| PlannedAtom {
            target,
            vars,
            rel_name: planned_rel_name(target, vars, &provenance),
            provenance,
        })
        .collect();

    ExtensionPlan { atoms, chosen }
}

/// Drops overrides that would break the well-founded schedule: a key that
/// some (possibly overridden) provenance reaches through its `resolve`-
/// backed dependency closure must itself be materialized with `resolve`,
/// or a dependency could be scheduled after its dependent. Iterates to a
/// fixed point because reverting an override only ever *shrinks* the
/// override set (closures are recomputed each round from scratch).
pub(crate) fn sanitize_overrides(
    avail: &Availability,
    overrides: &mut HashMap<(usize, VSet), Provenance>,
) {
    loop {
        // Dependency closure over resolve-backed edges, seeded with every
        // top-level provenance's direct uses.
        let mut frontier: Vec<(usize, VSet)> = overrides
            .values()
            .flat_map(|p| p.uses.iter().map(|&u| (p.provider, u)))
            .collect();
        let mut closure: HashMap<(usize, VSet), ()> = HashMap::new();
        while let Some(key) = frontier.pop() {
            if closure.contains_key(&key) {
                continue;
            }
            closure.insert(key, ());
            if let Some(p) = avail.resolve(key.0, key.1) {
                frontier.extend(p.uses.iter().map(|&u| (p.provider, u)));
            }
        }
        let conflicted: Vec<(usize, VSet)> = overrides
            .keys()
            .filter(|k| closure.contains_key(*k))
            .copied()
            .collect();
        if conflicted.is_empty() {
            return;
        }
        for k in conflicted {
            overrides.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_query::parse_ucq;

    #[test]
    fn all_free_connex_needs_no_atoms() {
        let u = parse_ucq(
            "Q1(x, y) <- R(x, y)\n\
             Q2(x, y) <- S(x, z), T(z, y), U(x, z, y)",
        )
        .unwrap();
        let plan = plan_free_connex(&u, &SearchConfig::default()).unwrap();
        assert!(!plan.needs_extension());
    }

    #[test]
    fn example2_plans_one_atom() {
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        let plan = plan_free_connex(&u, &SearchConfig::default()).unwrap();
        assert!(plan.needs_extension());
        assert_eq!(plan.chosen[1], vec![], "Q2 is already free-connex");
        assert_eq!(plan.chosen[0].len(), 1, "Q1 needs one virtual atom");
        let ext = plan.extended_query(&u, 0);
        assert!(ext.is_free_connex());
        assert_eq!(ext.atoms().len(), 4);
    }

    #[test]
    fn example13_plans_recursively() {
        let u = parse_ucq(
            "Q1(x, y, v, u) <- R1(x, z1), R2(z1, z2), R3(z2, z3), R4(z3, y), R5(y, v, u)\n\
             Q2(x, y, v, u) <- R1(x, y), R2(y, v), R3(v, z1), R4(z1, u), R5(u, t1, t2)\n\
             Q3(x, y, v, u) <- R1(x, z1), R2(z1, y), R3(y, v), R4(v, u), R5(u, t1, t2)",
        )
        .unwrap();
        let plan = plan_free_connex(&u, &SearchConfig::default())
            .expect("Example 13 is a free-connex UCQ");
        for i in 0..3 {
            let ext = plan.extended_query(&u, i);
            assert!(
                ext.is_free_connex(),
                "member {i} extension must be free-connex"
            );
        }
        // Dependencies precede dependents in the schedule.
        for (pos, atom) in plan.atoms.iter().enumerate() {
            for &u_vars in &atom.provenance.uses {
                let dep_pos = plan
                    .atoms
                    .iter()
                    .position(|a| a.target == atom.provenance.provider && a.vars == u_vars)
                    .expect("dependency scheduled");
                assert!(dep_pos < pos, "dependency must be materialized first");
            }
        }
    }

    #[test]
    fn example20_has_no_plan() {
        // Body-isomorphic pair that is not free-path guarded (Example 20):
        // no free-connex union extension exists (Theorem 29).
        let u = parse_ucq(
            "Q1(x, y, v) <- R1(x, z), R2(z, y), R3(y, v), R4(v, w)\n\
             Q2(x, y, v) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)",
        )
        .unwrap();
        assert!(plan_free_connex(&u, &SearchConfig::default()).is_none());
    }

    #[test]
    fn example21_plans_both_members() {
        // Example 21: same body as Example 20, bigger heads; both members
        // get a single virtual atom.
        let u = parse_ucq(
            "Q1(w, y, x, z) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)\n\
             Q2(x, y, w, v) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)",
        )
        .unwrap();
        let plan =
            plan_free_connex(&u, &SearchConfig::default()).expect("Example 21 is free-connex");
        assert!(plan.needs_extension());
        for i in 0..2 {
            assert!(plan.extended_query(&u, i).is_free_connex());
        }
    }

    #[test]
    fn single_hard_cq_has_no_plan() {
        let u = parse_ucq("Q(x, y) <- A(x, z), B(z, y)").unwrap();
        assert!(plan_free_connex(&u, &SearchConfig::default()).is_none());
    }
}
