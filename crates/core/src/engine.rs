//! The top-level engine: classify once, then evaluate instances with the
//! best applicable strategy.
//!
//! Two shapes of use:
//!
//! * **One-shot** — [`UcqEngine::enumerate`] builds a private context per
//!   call (unchanged public signature).
//! * **Session** — [`UcqEngine::session`] pins an instance and returns an
//!   [`EvalSession`] whose context (dictionary, interned relations,
//!   normalizations, [`IndexCache`](ucq_storage::IndexCache)) and
//!   preprocessed per-member engines persist across calls: repeated
//!   [`EvalSession::enumerate`]s skip the linear preprocessing entirely —
//!   the "serve traffic" shape.
//! * **Frozen session** — [`EvalSession::freeze`] snapshots the prepared
//!   session into a [`FrozenSession`]: `Send + Sync`, drivable from any
//!   number of threads at once, with no lock on the per-answer hot path
//!   (see [`ucq_storage::FrozenContext`]). Each [`FrozenSession::enumerate`]
//!   call hands the calling thread its own cursors and scratch.

use crate::algorithm1::Algorithm1;
use crate::classify::{classify_with, Classification, CqStatus, Verdict};
use crate::cost::CostedSearch;
use crate::naive_ucq::{evaluate_ucq_naive_ids_in, evaluate_ucq_naive_in};
use crate::pipeline::{UcqPipeline, UcqPipelinePrep};
use crate::plan::ExtensionPlan;
use crate::search::SearchConfig;
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use ucq_enumerate::{Enumerator, IdDecoder, IdVecEnumerator};
use ucq_query::Ucq;
use ucq_storage::sync::OnceLock;
use ucq_storage::{CtxView, Instance, Tuple};
use ucq_yannakakis::{CdyEngine, EvalError, IdTable};

/// Materializes the naive union on the id layer and wraps it in the
/// lazily-decoding value facade (ids stay interned under `ctx`; one decode
/// per answer actually pulled).
fn naive_id_answers(
    ucq: &Ucq,
    instance: &Instance,
    ctx: &CtxView,
) -> Result<IdDecoder<IdVecEnumerator>, EvalError> {
    let table = evaluate_ucq_naive_ids_in(ucq, instance, ctx)?;
    Ok(IdDecoder::new(
        IdVecEnumerator::new(table.width, table.data, table.n_rows),
        ctx.clone(),
    ))
}

/// Replays a pre-materialized naive answer table through the lazily
/// decoding value facade (the frozen-session serve path).
fn replay_id_table(table: &IdTable, ctx: &CtxView) -> IdDecoder<IdVecEnumerator> {
    IdDecoder::new(
        IdVecEnumerator::new(table.width, table.data.clone(), table.n_rows),
        ctx.clone(),
    )
}

/// Which evaluation strategy a run used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Algorithm 1 (Theorem 4): all members free-connex; constant writable
    /// memory during enumeration.
    Algorithm1,
    /// The Theorem 12 union-extension pipeline.
    UnionExtension,
    /// Materializing fallback for intractable/unknown queries.
    Naive,
}

/// Counters for the cost-based planner, snapshot per session alongside
/// [`ucq_storage::ContextStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Full cost-based plan searches run (one per plan-cache miss).
    pub plans_searched: usize,
    /// Candidate extension sets priced across all searches.
    pub candidates_costed: usize,
    /// Plan-cache hits: `(query fingerprint, stats epoch)` matched a plan
    /// stored by an earlier session over the same context.
    pub plan_cache_hits: usize,
}

/// Interior-mutable planner counters (sessions hand out `&self` streams).
#[derive(Default)]
struct PlannerCounters {
    plans_searched: Cell<usize>,
    candidates_costed: Cell<usize>,
    plan_cache_hits: Cell<usize>,
}

impl PlannerCounters {
    fn snapshot(&self) -> PlannerStats {
        PlannerStats {
            plans_searched: self.plans_searched.get(),
            candidates_costed: self.candidates_costed.get(),
            plan_cache_hits: self.plan_cache_hits.get(),
        }
    }
}

/// A classified UCQ ready to evaluate instances.
pub struct UcqEngine {
    ucq: Ucq,
    cfg: SearchConfig,
    classification: Classification,
    /// The instance-independent half of the costed planner (availability
    /// fixpoint + candidate extension sets), prepared lazily on the first
    /// plan-cache miss and shared by every later miss: fresh contexts
    /// re-*price* the candidates, they never re-*search*.
    costed: OnceLock<Option<CostedSearch>>,
}

impl UcqEngine {
    /// Classifies `ucq` with default search bounds.
    pub fn new(ucq: Ucq) -> UcqEngine {
        UcqEngine::with_config(ucq, &SearchConfig::default())
    }

    /// Classifies `ucq` with explicit search bounds.
    pub fn with_config(ucq: Ucq, cfg: &SearchConfig) -> UcqEngine {
        let classification = classify_with(&ucq, cfg);
        UcqEngine {
            ucq,
            cfg: cfg.clone(),
            classification,
            costed: OnceLock::new(),
        }
    }

    /// The original union.
    pub fn ucq(&self) -> &Ucq {
        &self.ucq
    }

    /// The classification (verdict, statuses, minimized union).
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The strategy [`UcqEngine::enumerate`] will pick.
    pub fn strategy(&self) -> Strategy {
        match &self.classification.verdict {
            Verdict::FreeConnex { plan } => {
                let all_fc = self
                    .classification
                    .statuses
                    .iter()
                    .all(|s| *s == CqStatus::FreeConnex);
                if all_fc && !plan.needs_extension() {
                    Strategy::Algorithm1
                } else {
                    Strategy::UnionExtension
                }
            }
            _ => Strategy::Naive,
        }
    }

    /// Evaluates over `instance`, returning an answer stream tagged with
    /// the strategy that produced it. `DelayClin` guarantees apply exactly
    /// when the strategy is not [`Strategy::Naive`]. Builds a private
    /// context; use [`UcqEngine::session`] to reuse preprocessing across
    /// repeated evaluations.
    pub fn enumerate(&self, instance: &Instance) -> Result<UcqAnswers, EvalError> {
        self.enumerate_in(&CtxView::new(), instance)
    }

    /// As [`UcqEngine::enumerate`], threading the shared session context
    /// through every member pipeline.
    ///
    /// This is a building block: for *repeated* evaluation of one
    /// instance, use [`UcqEngine::session`] instead — besides skipping
    /// preprocessing, the session prepares the Theorem 12 pipeline once,
    /// whereas calling `enumerate_in` in a loop with one long-lived `ctx`
    /// re-materializes the plan's virtual relations per call and pins each
    /// copy into the context's caches (contexts never evict).
    pub fn enumerate_in(
        &self,
        ctx: &CtxView,
        instance: &Instance,
    ) -> Result<UcqAnswers, EvalError> {
        let minimized = &self.classification.minimized;
        match self.strategy() {
            Strategy::Algorithm1 => Ok(UcqAnswers {
                strategy: Strategy::Algorithm1,
                inner: Box::new(Algorithm1::build_in(minimized, instance, ctx)?),
            }),
            Strategy::UnionExtension => {
                let plan = self.executable_plan(ctx, instance, None);
                Ok(UcqAnswers {
                    strategy: Strategy::UnionExtension,
                    inner: Box::new(UcqPipeline::build_in(minimized, &plan, instance, ctx)?),
                })
            }
            Strategy::Naive => Ok(UcqAnswers {
                strategy: Strategy::Naive,
                inner: Box::new(naive_id_answers(minimized, instance, ctx)?),
            }),
        }
    }

    /// The plan the union-extension strategy should execute over
    /// `instance`: the cached plan when `(query fingerprint, stats epoch)`
    /// matches, otherwise a fresh costing pass over the engine's prepared
    /// [`CostedSearch`], stored so the next session over this context skips
    /// the pricing too. Falls back to the classification's first-found
    /// certificate if the costed search comes up empty (it enumerates the
    /// same candidates, so this is belt-and-braces).
    fn executable_plan(
        &self,
        ctx: &CtxView,
        instance: &Instance,
        counters: Option<&PlannerCounters>,
    ) -> Arc<ExtensionPlan> {
        let minimized = &self.classification.minimized;
        // Intern every base relation up front: the epoch read below is then
        // stable across the search (stats collection only hits caches), and
        // a repeat session over the same instance reads the same epoch.
        for name in minimized.relation_names() {
            if let Some(rel) = instance.get_shared(name) {
                ctx.interned_rel(&rel);
            }
        }
        let fingerprint = minimized.fingerprint();
        let epoch = ctx.stats_epoch();
        if let Some(cached) = ctx.cached_plan(fingerprint, epoch) {
            if let Ok(plan) = cached.downcast::<ExtensionPlan>() {
                if let Some(c) = counters {
                    c.plan_cache_hits.set(c.plan_cache_hits.get() + 1);
                }
                return plan;
            }
        }
        if let Some(c) = counters {
            c.plans_searched.set(c.plans_searched.get() + 1);
        }
        let search = self
            .costed
            .get_or_init(|| CostedSearch::prepare(minimized, &self.cfg));
        let plan = match search.as_ref().map(|s| s.plan(instance, ctx)) {
            Some(costed) => {
                if let Some(c) = counters {
                    c.candidates_costed
                        .set(c.candidates_costed.get() + costed.candidates_costed);
                }
                Arc::new(costed.plan)
            }
            None => {
                let Verdict::FreeConnex { plan } = &self.classification.verdict else {
                    unreachable!("union-extension strategy implies a free-connex verdict");
                };
                Arc::new(plan.clone())
            }
        };
        ctx.store_plan(fingerprint, epoch, plan.clone());
        plan
    }

    /// Opens an evaluation session over `instance`: preprocessing (value
    /// interning, normalization, index builds, per-member CDY engines) is
    /// performed at most once and reused by every subsequent call.
    pub fn session(&self, instance: &Instance) -> EvalSession<'_> {
        self.session_in(&CtxView::new(), instance)
    }

    /// As [`UcqEngine::session`], but over a caller-provided context:
    /// repeated sessions share the dictionary, interned relations, indexes,
    /// statistics — and the plan cache, so the second session's build skips
    /// the cost-based plan search entirely (observable as
    /// [`PlannerStats::plan_cache_hits`]).
    pub fn session_in(&self, ctx: &CtxView, instance: &Instance) -> EvalSession<'_> {
        EvalSession {
            engine: self,
            instance: instance.clone(),
            ctx: ctx.clone(),
            prepared: RefCell::new(None),
            planner: PlannerCounters::default(),
        }
    }

    /// Forces the naive strategy (baseline for experiments).
    pub fn enumerate_naive(&self, instance: &Instance) -> Result<Vec<Tuple>, EvalError> {
        evaluate_ucq_naive_in(&self.classification.minimized, instance, &CtxView::new())
    }

    /// `Decide⟨Q⟩`: whether the union has at least one answer. For unions
    /// of free-connex members this is a pure preprocessing question (each
    /// member's CDY `decide()` after its linear pass); otherwise it asks
    /// the chosen enumeration strategy for a first answer.
    pub fn decide(&self, instance: &Instance) -> Result<bool, EvalError> {
        let ctx = CtxView::new();
        let minimized = &self.classification.minimized;
        if minimized
            .cqs()
            .iter()
            .all(|cq| matches!(crate::classify::cq_status(cq), CqStatus::FreeConnex))
        {
            for cq in minimized.cqs() {
                if CdyEngine::for_query_in(cq, instance, &ctx)?.decide() {
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        let mut ans = self.enumerate_in(&ctx, instance)?;
        Ok(ans.next().is_some())
    }
}

/// The per-strategy preprocessed state an [`EvalSession`] caches.
enum Prepared {
    /// Per-member CDY engines (Algorithm 1 restarts enumerators off them).
    Algorithm1(Vec<Arc<CdyEngine>>),
    /// The Theorem 12 prep: materializations folded into member engines.
    Union(UcqPipelinePrep),
    /// Naive fallback has no reusable enumeration structure beyond the
    /// context caches themselves.
    Naive,
}

/// A pinned `(classified query, instance)` pair with persistent caches —
/// the repeated-evaluation ("serve traffic") API.
///
/// ```
/// use ucq_core::UcqEngine;
/// use ucq_enumerate::Enumerator;
/// use ucq_query::parse_ucq;
/// use ucq_storage::{Instance, Relation};
///
/// let engine = UcqEngine::new(parse_ucq("Q(x, y) <- R(x, y)").unwrap());
/// let instance: Instance =
///     [("R", Relation::from_pairs([(1, 2), (3, 4)]))].into_iter().collect();
/// let session = engine.session(&instance);
/// for _ in 0..3 {
///     // Preprocessing runs once; each call just restarts enumeration.
///     assert_eq!(session.enumerate().unwrap().collect_all().len(), 2);
/// }
/// ```
pub struct EvalSession<'e> {
    engine: &'e UcqEngine,
    instance: Instance,
    ctx: CtxView,
    prepared: RefCell<Option<Prepared>>,
    planner: PlannerCounters,
}

impl EvalSession<'_> {
    /// The engine this session evaluates.
    pub fn engine(&self) -> &UcqEngine {
        self.engine
    }

    /// The shared context (dictionary + caches) of this session.
    pub fn context(&self) -> &CtxView {
        &self.ctx
    }

    /// The strategy session evaluations use.
    pub fn strategy(&self) -> Strategy {
        self.engine.strategy()
    }

    /// Planner counters for this session (plan searches, candidates
    /// priced, plan-cache hits).
    pub fn planner_stats(&self) -> PlannerStats {
        self.planner.snapshot()
    }

    fn ensure_prepared(&self) -> Result<(), EvalError> {
        if self.prepared.borrow().is_some() {
            return Ok(());
        }
        let minimized = &self.engine.classification.minimized;
        let prep = match self.engine.strategy() {
            Strategy::Algorithm1 => Prepared::Algorithm1(Algorithm1::member_engines(
                minimized,
                &self.instance,
                &self.ctx,
            )?),
            Strategy::UnionExtension => {
                let plan =
                    self.engine
                        .executable_plan(&self.ctx, &self.instance, Some(&self.planner));
                Prepared::Union(UcqPipelinePrep::prepare(
                    minimized,
                    &plan,
                    &self.instance,
                    &self.ctx,
                )?)
            }
            Strategy::Naive => Prepared::Naive,
        };
        *self.prepared.borrow_mut() = Some(prep);
        Ok(())
    }

    /// Starts an enumeration. The first call performs the linear
    /// preprocessing; subsequent calls only restart enumeration cursors.
    pub fn enumerate(&self) -> Result<UcqAnswers, EvalError> {
        self.ensure_prepared()?;
        let prepared = self.prepared.borrow();
        match prepared.as_ref().expect("just prepared") {
            Prepared::Algorithm1(engines) => Ok(UcqAnswers {
                strategy: Strategy::Algorithm1,
                inner: Box::new(Algorithm1::from_engines(engines.clone())),
            }),
            Prepared::Union(prep) => Ok(UcqAnswers {
                strategy: Strategy::UnionExtension,
                inner: Box::new(prep.start()),
            }),
            Prepared::Naive => Ok(UcqAnswers {
                strategy: Strategy::Naive,
                inner: Box::new(naive_id_answers(
                    &self.engine.classification.minimized,
                    &self.instance,
                    &self.ctx,
                )?),
            }),
        }
    }

    /// `Decide⟨Q⟩` against the pinned instance, reusing the session's
    /// preprocessed engines when available.
    pub fn decide(&self) -> Result<bool, EvalError> {
        self.ensure_prepared()?;
        let prepared = self.prepared.borrow();
        match prepared.as_ref().expect("just prepared") {
            Prepared::Algorithm1(engines) => Ok(engines.iter().any(|e| e.decide())),
            _ => {
                drop(prepared);
                let mut ans = self.enumerate()?;
                Ok(ans.next().is_some())
            }
        }
    }
}

impl<'e> EvalSession<'e> {
    /// Ends the build phase: runs the linear preprocessing if it has not
    /// run yet, snapshots the context into an immutable
    /// [`ucq_storage::FrozenContext`], and retargets the prepared engines
    /// onto the snapshot — no preprocessing is repeated. The result is
    /// `Send + Sync`: N threads can call [`FrozenSession::enumerate`]
    /// concurrently, each getting its own cursors, with zero locking on
    /// the per-answer path.
    ///
    /// For the naive strategy the answer table is materialized here, once,
    /// so post-freeze calls replay it instead of re-joining (and the ids
    /// land below the frozen watermark).
    pub fn freeze(self) -> Result<FrozenSession<'e>, EvalError> {
        self.ensure_prepared()?;
        let minimized = &self.engine.classification.minimized;
        let naive_table = match self.prepared.borrow().as_ref().expect("just prepared") {
            Prepared::Naive => Some(evaluate_ucq_naive_ids_in(
                minimized,
                &self.instance,
                &self.ctx,
            )?),
            _ => None,
        };
        let build_ctx = self.ctx.clone();
        let view = self.ctx.freeze();
        let prepared = match self.prepared.into_inner().expect("just prepared") {
            Prepared::Algorithm1(mut engines) => {
                for eng in &mut engines {
                    // A leftover live enumerator (pre-freeze `enumerate()`
                    // stream) pins the Arc; such an engine keeps the
                    // build-phase view — same ids, just mutex-guarded.
                    if let Some(e) = Arc::get_mut(eng) {
                        e.set_view(view.clone());
                    }
                }
                FrozenPrepared::Algorithm1(engines)
            }
            Prepared::Union(mut prep) => {
                prep.retarget(&view);
                FrozenPrepared::Union(prep)
            }
            Prepared::Naive => FrozenPrepared::Naive(naive_table.expect("materialized above")),
        };
        Ok(FrozenSession {
            engine: self.engine,
            instance: self.instance,
            ctx: view,
            build_ctx,
            prepared,
            planner: self.planner.snapshot(),
        })
    }
}

/// The per-strategy state a [`FrozenSession`] serves from. Unlike
/// [`Prepared`], every variant is immutable and shareable.
enum FrozenPrepared {
    /// Per-member CDY engines retargeted onto the frozen snapshot.
    Algorithm1(Vec<Arc<CdyEngine>>),
    /// The Theorem 12 prep retargeted onto the frozen snapshot.
    Union(UcqPipelinePrep),
    /// The naive answer table, materialized at freeze time; enumerations
    /// replay it.
    Naive(IdTable),
}

/// A frozen `(classified query, instance)` session: `Send + Sync`, served
/// concurrently by any number of threads. Produced by
/// [`EvalSession::freeze`]; see the module docs for the lifecycle.
///
/// ```
/// use std::collections::HashSet;
/// use ucq_core::UcqEngine;
/// use ucq_enumerate::Enumerator;
/// use ucq_query::parse_ucq;
/// use ucq_storage::{Instance, Relation, Tuple};
///
/// let engine = UcqEngine::new(parse_ucq("Q(x, y) <- R(x, y)").unwrap());
/// let instance: Instance =
///     [("R", Relation::from_pairs([(1, 2), (3, 4)]))].into_iter().collect();
/// let frozen = engine.session(&instance).freeze().unwrap();
/// let answers: Vec<HashSet<Tuple>> = std::thread::scope(|s| {
///     let handles: Vec<_> = (0..2)
///         .map(|_| s.spawn(|| frozen.enumerate().unwrap().collect_all().into_iter().collect()))
///         .collect();
///     handles.into_iter().map(|h| h.join().unwrap()).collect()
/// });
/// assert_eq!(answers[0], answers[1]);
/// assert_eq!(answers[0].len(), 2);
/// ```
pub struct FrozenSession<'e> {
    engine: &'e UcqEngine,
    instance: Instance,
    ctx: CtxView,
    /// The build-phase context this snapshot was frozen from, kept alive so
    /// [`FrozenSession::refreeze`] can ingest deltas into the *same*
    /// dictionary lineage and snapshot the next epoch without re-interning
    /// anything the previous epoch already holds.
    build_ctx: CtxView,
    prepared: FrozenPrepared,
    planner: PlannerStats,
}

impl FrozenSession<'_> {
    /// The engine this session evaluates.
    pub fn engine(&self) -> &UcqEngine {
        self.engine
    }

    /// The pinned instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The frozen context view (always [`CtxView::is_frozen`]).
    pub fn context(&self) -> &CtxView {
        &self.ctx
    }

    /// The strategy frozen evaluations use.
    pub fn strategy(&self) -> Strategy {
        self.engine.strategy()
    }

    /// Planner counters accumulated by the build-phase session this
    /// snapshot was frozen from.
    pub fn planner_stats(&self) -> PlannerStats {
        self.planner
    }

    /// Starts an enumeration over the frozen state. Callable from many
    /// threads at once (`&self`); each call returns an independent stream
    /// owning its cursors, dedup table and scratch, while all streams read
    /// the same frozen dictionary, relations and indexes lock-free.
    pub fn enumerate(&self) -> Result<UcqAnswers, EvalError> {
        match &self.prepared {
            FrozenPrepared::Algorithm1(engines) => Ok(UcqAnswers {
                strategy: Strategy::Algorithm1,
                inner: Box::new(Algorithm1::from_engines(engines.clone())),
            }),
            FrozenPrepared::Union(prep) => Ok(UcqAnswers {
                strategy: Strategy::UnionExtension,
                inner: Box::new(prep.start()),
            }),
            FrozenPrepared::Naive(table) => Ok(UcqAnswers {
                strategy: Strategy::Naive,
                inner: Box::new(replay_id_table(table, &self.ctx)),
            }),
        }
    }

    /// `Decide⟨Q⟩` against the frozen state (no preprocessing, no joins).
    pub fn decide(&self) -> Result<bool, EvalError> {
        match &self.prepared {
            FrozenPrepared::Algorithm1(engines) => Ok(engines.iter().any(|e| e.decide())),
            FrozenPrepared::Naive(table) => Ok(table.n_rows > 0),
            FrozenPrepared::Union(_) => {
                let mut ans = self.enumerate()?;
                Ok(ans.next().is_some())
            }
        }
    }

    /// The build-phase context behind this snapshot — the write side of the
    /// session. Deltas go here
    /// ([`EvalContext::insert_rows`](ucq_storage::EvalContext::insert_rows) /
    /// [`delete_rows`](ucq_storage::EvalContext::delete_rows) via the view),
    /// then [`FrozenSession::refreeze`] publishes them as the next epoch.
    pub fn build_context(&self) -> &CtxView {
        &self.build_ctx
    }

    #[cfg(test)]
    fn a1_engines(&self) -> Option<&[Arc<CdyEngine>]> {
        match &self.prepared {
            FrozenPrepared::Algorithm1(engines) => Some(engines),
            _ => None,
        }
    }
}

impl<'e> FrozenSession<'e> {
    /// Whether any relation this session's (minimized) query reads differs
    /// between the pinned instance and `instance` — by `Arc` identity, which
    /// is exactly what the delta-ingestion API preserves for untouched
    /// relations.
    fn touched(&self, instance: &Instance, names: &[&str]) -> bool {
        names.iter().any(
            |n| match (self.instance.get_shared(n), instance.get_shared(n)) {
                (Some(a), Some(b)) => !Arc::ptr_eq(&a, &b),
                (None, None) => false,
                _ => true,
            },
        )
    }

    /// Builds the **next epoch** of this frozen session over `instance`,
    /// doing work proportional to the delta rather than the database.
    ///
    /// `instance` is expected to differ from the pinned instance only in
    /// relations replaced through the delta-ingestion API
    /// (`insert_rows`/`delete_rows` on [`FrozenSession::build_context`],
    /// spliced in with
    /// [`Instance::with_relation_shared`](ucq_storage::Instance::with_relation_shared)),
    /// so untouched relations keep their `Arc` identity. The new snapshot is
    /// taken from the same build context, so every untouched relation,
    /// index, derived normalization and cached plan is *shared* with the
    /// previous epoch — only state downstream of a touched relation is
    /// rebuilt:
    ///
    /// * **Algorithm 1** — members whose relations are all untouched keep
    ///   their prepared engine (pinned to the previous epoch's view, which
    ///   stays valid: both epochs share one dictionary lineage); touched
    ///   members rebuild against the pre-seeded caches, so interning and
    ///   index work is already done.
    /// * **Union extension** — an untouched union clones the prep wholesale;
    ///   otherwise the plan is re-costed (the churn ledger bumps the stats
    ///   epoch past the replan threshold, so skew flips surface here) and
    ///   the pipeline re-prepares.
    /// * **Naive** — the materialized answer table is recomputed only when
    ///   touched.
    ///
    /// The old session keeps serving its own epoch untouched throughout —
    /// pair with [`ucq_storage::EpochCell`] to rotate live traffic.
    pub fn refreeze(&self, instance: &Instance) -> Result<FrozenSession<'e>, EvalError> {
        let minimized = &self.engine.classification.minimized;
        if !self.touched(instance, &minimized.relation_names()) {
            // Nothing the query reads changed: the next epoch *is* the
            // current one, minus the snapshot cost.
            let prepared = match &self.prepared {
                FrozenPrepared::Algorithm1(engines) => FrozenPrepared::Algorithm1(engines.clone()),
                FrozenPrepared::Union(prep) => FrozenPrepared::Union(prep.clone()),
                FrozenPrepared::Naive(table) => FrozenPrepared::Naive(table.clone()),
            };
            return Ok(FrozenSession {
                engine: self.engine,
                instance: instance.clone(),
                ctx: self.ctx.clone(),
                build_ctx: self.build_ctx.clone(),
                prepared,
                planner: self.planner,
            });
        }
        // Rebuild touched state against the build context *before* taking
        // the snapshot, so everything it interns, indexes, materializes or
        // plans lands below the new epoch's watermark (no overlay traffic
        // at serve time).
        let prepared = match &self.prepared {
            FrozenPrepared::Algorithm1(engines) => {
                let mut rebuilt: Vec<(usize, CdyEngine)> = Vec::new();
                let mut next = engines.clone();
                for (i, cq) in minimized.cqs().iter().enumerate() {
                    if self.touched(instance, &cq.relation_names()) {
                        rebuilt.push((i, CdyEngine::for_query_in(cq, instance, &self.build_ctx)?));
                    }
                }
                let view = self.build_ctx.freeze();
                for (i, mut eng) in rebuilt {
                    eng.set_view(view.clone());
                    next[i] = Arc::new(eng);
                }
                return Ok(FrozenSession {
                    engine: self.engine,
                    instance: instance.clone(),
                    ctx: view,
                    build_ctx: self.build_ctx.clone(),
                    prepared: FrozenPrepared::Algorithm1(next),
                    planner: self.planner,
                });
            }
            FrozenPrepared::Union(_) => {
                let plan = self.engine.executable_plan(&self.build_ctx, instance, None);
                FrozenPrepared::Union(UcqPipelinePrep::prepare(
                    minimized,
                    &plan,
                    instance,
                    &self.build_ctx,
                )?)
            }
            FrozenPrepared::Naive(_) => FrozenPrepared::Naive(evaluate_ucq_naive_ids_in(
                minimized,
                instance,
                &self.build_ctx,
            )?),
        };
        let view = self.build_ctx.freeze();
        let prepared = match prepared {
            FrozenPrepared::Union(mut prep) => {
                prep.retarget(&view);
                FrozenPrepared::Union(prep)
            }
            other => other,
        };
        Ok(FrozenSession {
            engine: self.engine,
            instance: instance.clone(),
            ctx: view,
            build_ctx: self.build_ctx.clone(),
            prepared,
            planner: self.planner,
        })
    }
}

/// A strategy-tagged answer stream. `Send`, so a serving thread can take
/// an enumeration with it (each stream owns its cursors and scratch).
pub struct UcqAnswers {
    strategy: Strategy,
    inner: Box<dyn Enumerator + Send>,
}

impl UcqAnswers {
    /// Which strategy produced this stream.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }
}

impl Enumerator for UcqAnswers {
    fn next(&mut self) -> Option<Tuple> {
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_ucq::evaluate_ucq_naive_set;
    use std::collections::HashSet;
    use ucq_query::parse_ucq;
    use ucq_storage::Relation;

    fn inst(rels: &[(&str, Vec<(i64, i64)>)]) -> Instance {
        rels.iter()
            .map(|(n, pairs)| (n.to_string(), Relation::from_pairs(pairs.iter().copied())))
            .collect()
    }

    fn check_strategy(text: &str, i: &Instance, expect: Strategy) {
        let u = parse_ucq(text).unwrap();
        let eng = UcqEngine::new(u.clone());
        assert_eq!(eng.strategy(), expect, "strategy for {text}");
        let mut ans = eng.enumerate(i).unwrap();
        let got: HashSet<Tuple> = ans.collect_all().into_iter().collect();
        let want = evaluate_ucq_naive_set(&u, i).unwrap();
        assert_eq!(got, want);
        // The session path must agree with the one-shot path, repeatedly.
        let session = eng.session(i);
        for _ in 0..2 {
            let mut ans = session.enumerate().unwrap();
            let via_session: HashSet<Tuple> = ans.collect_all().into_iter().collect();
            assert_eq!(via_session, want, "session answers for {text}");
        }
        assert_eq!(session.decide().unwrap(), !want.is_empty());
    }

    #[test]
    fn all_free_connex_uses_algorithm1() {
        let i = inst(&[("R", vec![(1, 2)]), ("S", vec![(1, 2), (5, 6)])]);
        check_strategy(
            "Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)",
            &i,
            Strategy::Algorithm1,
        );
    }

    #[test]
    fn example2_uses_pipeline() {
        let i = inst(&[
            ("R1", vec![(1, 2)]),
            ("R2", vec![(2, 3)]),
            ("R3", vec![(3, 4)]),
        ]);
        check_strategy(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
            &i,
            Strategy::UnionExtension,
        );
    }

    #[test]
    fn hard_query_falls_back_to_naive() {
        let i = inst(&[("A", vec![(1, 2)]), ("B", vec![(2, 3)])]);
        check_strategy("Q(x, y) <- A(x, z), B(z, y)", &i, Strategy::Naive);
    }

    #[test]
    fn redundancy_removed_before_evaluation() {
        // Example 1: the union equals Q2, so Algorithm 1 applies even
        // though Q1 alone is cyclic.
        let i = inst(&[
            ("R1", vec![(1, 2), (2, 3)]),
            ("R2", vec![(2, 4), (3, 4)]),
            ("R3", vec![(4, 1)]),
        ]);
        check_strategy(
            "Q1(x, y) <- R1(x, y), R2(y, z), R3(z, x)\n\
             Q2(x, y) <- R1(x, y), R2(y, z)",
            &i,
            Strategy::Algorithm1,
        );
    }

    #[test]
    fn session_preprocesses_once() {
        let u = parse_ucq("Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)").unwrap();
        let eng = UcqEngine::new(u);
        let i = inst(&[("R", vec![(1, 2), (3, 4)]), ("S", vec![(3, 4)])]);
        let session = eng.session(&i);
        session.enumerate().unwrap();
        let builds_after_first = session.context().stats().interned_builds;
        session.enumerate().unwrap();
        session.enumerate().unwrap();
        assert_eq!(
            session.context().stats().interned_builds,
            builds_after_first,
            "repeated session calls intern nothing new"
        );
    }

    #[test]
    fn repeated_sessions_hit_the_plan_cache() {
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        let eng = UcqEngine::new(u);
        assert_eq!(eng.strategy(), Strategy::UnionExtension);
        let i = inst(&[
            ("R1", vec![(1, 2)]),
            ("R2", vec![(2, 3)]),
            ("R3", vec![(3, 4)]),
        ]);
        let ctx = CtxView::new();
        let first = eng.session_in(&ctx, &i);
        let baseline: HashSet<Tuple> = first
            .enumerate()
            .unwrap()
            .collect_all()
            .into_iter()
            .collect();
        let p1 = first.planner_stats();
        assert_eq!(p1.plans_searched, 1, "first session runs the search");
        assert_eq!(p1.plan_cache_hits, 0);
        assert!(p1.candidates_costed >= 1, "at least one candidate priced");
        // Re-enumerating within one session prepares nothing new.
        first.enumerate().unwrap();
        assert_eq!(first.planner_stats(), p1);

        let second = eng.session_in(&ctx, &i);
        let again: HashSet<Tuple> = second
            .enumerate()
            .unwrap()
            .collect_all()
            .into_iter()
            .collect();
        assert_eq!(again, baseline);
        let p2 = second.planner_stats();
        assert_eq!(p2.plans_searched, 0, "second session skips the search");
        assert_eq!(p2.plan_cache_hits, 1, "cached plan reused");
        assert_eq!(p2.candidates_costed, 0);
    }

    #[test]
    fn churned_skew_flips_the_cheapest_provider() {
        use crate::cost::plan_free_connex_costed;
        // Q1's extension {x, z, y} has two providers: Q2 prices it off
        // R1 ⋈ R2, Q3 off R1 ⋈ R4. Which is cheapest depends on the data.
        let text = "Q1(x, y, w) <- R1(x, z), R2(z, y), R4(z, y), R3(y, w)\n\
                    Q2(x, y, w) <- R1(x, y), R2(y, w)\n\
                    Q3(x, y, w) <- R1(x, y), R4(y, w)";
        let u = parse_ucq(text).unwrap();
        let eng = UcqEngine::new(u.clone());
        assert_eq!(eng.strategy(), Strategy::UnionExtension);
        let base = inst(&[
            ("R1", (0..4).map(|i| (i, i + 1)).collect()),
            ("R2", (0..4).map(|i| (i + 1, i + 2)).collect()),
            ("R4", (0..4).map(|i| (i + 1, i + 2)).collect()),
            ("R3", (0..4).map(|i| (i + 2, i + 3)).collect()),
        ]);
        let ctx = CtxView::new();
        let first = eng.session_in(&ctx, &base);
        first.enumerate().unwrap();
        assert_eq!(first.planner_stats().plans_searched, 1);
        let uniform = plan_free_connex_costed(&u, &SearchConfig::default(), &base, &ctx).unwrap();
        let before = uniform.plan.atoms[0].provenance.provider;

        // Skew R2: a delta far past the 25% churn threshold bumps the
        // stats epoch, so the cached plan goes stale …
        let e0 = ctx.stats_epoch();
        let delta = Relation::from_pairs((0..400i64).map(|i| (i % 5, i + 10)));
        let r2 = ctx.insert_rows(&base.get_shared("R2").unwrap(), &delta);
        let skewed = base.with_relation_shared("R2", r2);
        assert!(ctx.stats_epoch() > e0, "heavy churn bumps the stats epoch");

        // … the next session re-searches instead of hitting the cache …
        let second = eng.session_in(&ctx, &skewed);
        second.enumerate().unwrap();
        let p2 = second.planner_stats();
        assert_eq!(p2.plan_cache_hits, 0, "stale plan must not be reused");
        assert_eq!(p2.plans_searched, 1, "churned stats force a re-search");

        // … and the re-costed plan routes the extension through the other
        // provider (R2's blow-up makes Q3's R1 ⋈ R4 the cheap one).
        let recosted =
            plan_free_connex_costed(&u, &SearchConfig::default(), &skewed, &ctx).unwrap();
        let after = recosted.plan.atoms[0].provenance.provider;
        assert_ne!(before, after, "skew flips the cheapest provider");

        // The flip never changes the answers.
        let got: HashSet<Tuple> = second
            .enumerate()
            .unwrap()
            .collect_all()
            .into_iter()
            .collect();
        assert_eq!(got, naive_set(text, &skewed));
    }

    fn naive_set(text: &str, i: &Instance) -> HashSet<Tuple> {
        evaluate_ucq_naive_set(&parse_ucq(text).unwrap(), i).unwrap()
    }

    fn collect(frozen: &FrozenSession<'_>) -> HashSet<Tuple> {
        frozen
            .enumerate()
            .unwrap()
            .collect_all()
            .into_iter()
            .collect()
    }

    #[test]
    fn refreeze_reuses_untouched_members() {
        let text = "Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)";
        let eng = UcqEngine::new(parse_ucq(text).unwrap());
        assert_eq!(eng.strategy(), Strategy::Algorithm1);
        let i = inst(&[("R", vec![(1, 2)]), ("S", vec![(5, 6)])]);
        let frozen = eng.session(&i).freeze().unwrap();
        assert_eq!(collect(&frozen), naive_set(text, &i));

        // Delta into R only; S keeps its Arc identity.
        let r2 = frozen
            .build_context()
            .insert_rows(&i.get_shared("R").unwrap(), &Relation::from_pairs([(3, 4)]));
        let i2 = i.with_relation_shared("R", r2);
        let next = frozen.refreeze(&i2).unwrap();
        assert_eq!(collect(&next), naive_set(text, &i2));
        // The old epoch still serves the old answers.
        assert_eq!(collect(&frozen), naive_set(text, &i));
        // Member order follows minimized.cqs(): Q1 reads R (rebuilt), Q2
        // reads S (shared with the previous epoch).
        let old = frozen.a1_engines().unwrap();
        let new = next.a1_engines().unwrap();
        assert!(!Arc::ptr_eq(&old[0], &new[0]), "touched member rebuilt");
        assert!(Arc::ptr_eq(&old[1], &new[1]), "untouched member shared");
    }

    #[test]
    fn refreeze_with_no_changes_shares_the_snapshot() {
        let eng = UcqEngine::new(parse_ucq("Q(x, y) <- R(x, y)").unwrap());
        let i = inst(&[("R", vec![(1, 2)])]);
        let frozen = eng.session(&i).freeze().unwrap();
        let next = frozen.refreeze(&i.clone()).unwrap();
        match (&frozen.ctx, &next.ctx) {
            (CtxView::Frozen(a), CtxView::Frozen(b)) => {
                assert!(Arc::ptr_eq(a, b), "no-op refreeze shares the snapshot")
            }
            _ => panic!("frozen sessions hold frozen views"),
        }
        assert_eq!(collect(&next), collect(&frozen));
    }

    #[test]
    fn refreeze_union_strategy_after_delete() {
        let text = "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
                    Q2(x, y, w) <- R1(x, y), R2(y, w)";
        let eng = UcqEngine::new(parse_ucq(text).unwrap());
        assert_eq!(eng.strategy(), Strategy::UnionExtension);
        let i = inst(&[
            ("R1", vec![(1, 2), (1, 5), (9, 7)]),
            ("R2", vec![(2, 3), (5, 3), (7, 0)]),
            ("R3", vec![(3, 4), (3, 6), (0, 2)]),
        ]);
        let frozen = eng.session(&i).freeze().unwrap();
        assert_eq!(collect(&frozen), naive_set(text, &i));

        let ctx = frozen.build_context();
        let r1 = ctx.delete_rows(
            &i.get_shared("R1").unwrap(),
            &Relation::from_pairs([(9, 7)]),
        );
        let r1 = ctx.insert_rows(&r1, &Relation::from_pairs([(8, 2)]));
        let i2 = i.with_relation_shared("R1", r1);
        let next = frozen.refreeze(&i2).unwrap();
        assert_eq!(collect(&next), naive_set(text, &i2));
        assert_eq!(collect(&frozen), naive_set(text, &i), "old epoch intact");
    }

    #[test]
    fn refreeze_naive_strategy_rematerializes() {
        let text = "Q(x, y) <- A(x, z), B(z, y)";
        let eng = UcqEngine::new(parse_ucq(text).unwrap());
        assert_eq!(eng.strategy(), Strategy::Naive);
        let i = inst(&[("A", vec![(1, 2)]), ("B", vec![(2, 3)])]);
        let frozen = eng.session(&i).freeze().unwrap();
        let a2 = frozen
            .build_context()
            .insert_rows(&i.get_shared("A").unwrap(), &Relation::from_pairs([(7, 2)]));
        let i2 = i.with_relation_shared("A", a2);
        let next = frozen.refreeze(&i2).unwrap();
        assert_eq!(collect(&next), naive_set(text, &i2));
        assert_eq!(collect(&frozen), naive_set(text, &i));
    }

    #[test]
    fn redundant_member_gets_no_stages() {
        // Example 1 shape: Q1 ⊆ Q2, and Q1 alone is cyclic (it would be
        // hopeless to plan). Union minimization must drop it before any
        // stage is planned: the executed plan has zero materializations and
        // zero chosen atoms for the surviving member.
        let u = parse_ucq(
            "Q1(x, y) <- R1(x, y), R2(y, z), R3(z, x)\n\
             Q2(x, y) <- R1(x, y), R2(y, z)",
        )
        .unwrap();
        let eng = UcqEngine::new(u);
        assert_eq!(
            eng.classification().minimized.len(),
            1,
            "the subsumed member is gone before planning"
        );
        let Verdict::FreeConnex { plan } = &eng.classification().verdict else {
            panic!("minimized union is free-connex");
        };
        assert!(!plan.needs_extension(), "no stages for a redundant union");
        assert!(plan.atoms.is_empty());
    }
}

#[cfg(test)]
mod decide_tests {
    use super::*;
    use ucq_query::parse_ucq;
    use ucq_storage::Relation;

    #[test]
    fn decide_free_connex_union() {
        let u = parse_ucq("Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)").unwrap();
        let eng = UcqEngine::new(u);
        let yes: Instance = [
            ("R", Relation::new(2)),
            ("S", Relation::from_pairs([(1, 1)])),
        ]
        .into_iter()
        .collect();
        assert!(eng.decide(&yes).unwrap());
        let no: Instance = [("R", Relation::new(2)), ("S", Relation::new(2))]
            .into_iter()
            .collect();
        assert!(!eng.decide(&no).unwrap());
    }

    #[test]
    fn decide_via_enumeration_for_hard_queries() {
        let u = parse_ucq("Q(x, y) <- A(x, z), B(z, y)").unwrap();
        let eng = UcqEngine::new(u);
        let yes: Instance = [
            ("A", Relation::from_pairs([(1, 2)])),
            ("B", Relation::from_pairs([(2, 3)])),
        ]
        .into_iter()
        .collect();
        assert!(eng.decide(&yes).unwrap());
        let no: Instance = [
            ("A", Relation::from_pairs([(1, 2)])),
            ("B", Relation::from_pairs([(9, 3)])),
        ]
        .into_iter()
        .collect();
        assert!(!eng.decide(&no).unwrap());
    }
}
