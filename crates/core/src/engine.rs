//! The top-level engine: classify once, then evaluate instances with the
//! best applicable strategy.
//!
//! Two shapes of use:
//!
//! * **One-shot** — [`UcqEngine::enumerate`] builds a private context per
//!   call (unchanged public signature).
//! * **Session** — [`UcqEngine::session`] pins an instance and returns an
//!   [`EvalSession`] whose context (dictionary, interned relations,
//!   normalizations, [`IndexCache`](ucq_storage::IndexCache)) and
//!   preprocessed per-member engines persist across calls: repeated
//!   [`EvalSession::enumerate`]s skip the linear preprocessing entirely —
//!   the "serve traffic" shape.
//! * **Frozen session** — [`EvalSession::freeze`] snapshots the prepared
//!   session into a [`FrozenSession`]: `Send + Sync`, drivable from any
//!   number of threads at once, with no lock on the per-answer hot path
//!   (see [`ucq_storage::FrozenContext`]). Each [`FrozenSession::enumerate`]
//!   call hands the calling thread its own cursors and scratch.

use crate::algorithm1::Algorithm1;
use crate::classify::{classify_with, Classification, CqStatus, Verdict};
use crate::cost::CostedSearch;
use crate::naive_ucq::{evaluate_ucq_naive_ids_in, evaluate_ucq_naive_in};
use crate::pipeline::{UcqPipeline, UcqPipelinePrep};
use crate::plan::ExtensionPlan;
use crate::search::SearchConfig;
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use ucq_enumerate::{Enumerator, IdDecoder, IdVecEnumerator};
use ucq_query::Ucq;
use ucq_storage::sync::OnceLock;
use ucq_storage::{CtxView, Instance, Tuple};
use ucq_yannakakis::{CdyEngine, EvalError, IdTable};

/// Materializes the naive union on the id layer and wraps it in the
/// lazily-decoding value facade (ids stay interned under `ctx`; one decode
/// per answer actually pulled).
fn naive_id_answers(
    ucq: &Ucq,
    instance: &Instance,
    ctx: &CtxView,
) -> Result<IdDecoder<IdVecEnumerator>, EvalError> {
    let table = evaluate_ucq_naive_ids_in(ucq, instance, ctx)?;
    Ok(IdDecoder::new(
        IdVecEnumerator::new(table.width, table.data, table.n_rows),
        ctx.clone(),
    ))
}

/// Replays a pre-materialized naive answer table through the lazily
/// decoding value facade (the frozen-session serve path).
fn replay_id_table(table: &IdTable, ctx: &CtxView) -> IdDecoder<IdVecEnumerator> {
    IdDecoder::new(
        IdVecEnumerator::new(table.width, table.data.clone(), table.n_rows),
        ctx.clone(),
    )
}

/// Which evaluation strategy a run used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Algorithm 1 (Theorem 4): all members free-connex; constant writable
    /// memory during enumeration.
    Algorithm1,
    /// The Theorem 12 union-extension pipeline.
    UnionExtension,
    /// Materializing fallback for intractable/unknown queries.
    Naive,
}

/// Counters for the cost-based planner, snapshot per session alongside
/// [`ucq_storage::ContextStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Full cost-based plan searches run (one per plan-cache miss).
    pub plans_searched: usize,
    /// Candidate extension sets priced across all searches.
    pub candidates_costed: usize,
    /// Plan-cache hits: `(query fingerprint, stats epoch)` matched a plan
    /// stored by an earlier session over the same context.
    pub plan_cache_hits: usize,
}

/// Interior-mutable planner counters (sessions hand out `&self` streams).
#[derive(Default)]
struct PlannerCounters {
    plans_searched: Cell<usize>,
    candidates_costed: Cell<usize>,
    plan_cache_hits: Cell<usize>,
}

impl PlannerCounters {
    fn snapshot(&self) -> PlannerStats {
        PlannerStats {
            plans_searched: self.plans_searched.get(),
            candidates_costed: self.candidates_costed.get(),
            plan_cache_hits: self.plan_cache_hits.get(),
        }
    }
}

/// A classified UCQ ready to evaluate instances.
pub struct UcqEngine {
    ucq: Ucq,
    cfg: SearchConfig,
    classification: Classification,
    /// The instance-independent half of the costed planner (availability
    /// fixpoint + candidate extension sets), prepared lazily on the first
    /// plan-cache miss and shared by every later miss: fresh contexts
    /// re-*price* the candidates, they never re-*search*.
    costed: OnceLock<Option<CostedSearch>>,
}

impl UcqEngine {
    /// Classifies `ucq` with default search bounds.
    pub fn new(ucq: Ucq) -> UcqEngine {
        UcqEngine::with_config(ucq, &SearchConfig::default())
    }

    /// Classifies `ucq` with explicit search bounds.
    pub fn with_config(ucq: Ucq, cfg: &SearchConfig) -> UcqEngine {
        let classification = classify_with(&ucq, cfg);
        UcqEngine {
            ucq,
            cfg: cfg.clone(),
            classification,
            costed: OnceLock::new(),
        }
    }

    /// The original union.
    pub fn ucq(&self) -> &Ucq {
        &self.ucq
    }

    /// The classification (verdict, statuses, minimized union).
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The strategy [`UcqEngine::enumerate`] will pick.
    pub fn strategy(&self) -> Strategy {
        match &self.classification.verdict {
            Verdict::FreeConnex { plan } => {
                let all_fc = self
                    .classification
                    .statuses
                    .iter()
                    .all(|s| *s == CqStatus::FreeConnex);
                if all_fc && !plan.needs_extension() {
                    Strategy::Algorithm1
                } else {
                    Strategy::UnionExtension
                }
            }
            _ => Strategy::Naive,
        }
    }

    /// Evaluates over `instance`, returning an answer stream tagged with
    /// the strategy that produced it. `DelayClin` guarantees apply exactly
    /// when the strategy is not [`Strategy::Naive`]. Builds a private
    /// context; use [`UcqEngine::session`] to reuse preprocessing across
    /// repeated evaluations.
    pub fn enumerate(&self, instance: &Instance) -> Result<UcqAnswers, EvalError> {
        self.enumerate_in(&CtxView::new(), instance)
    }

    /// As [`UcqEngine::enumerate`], threading the shared session context
    /// through every member pipeline.
    ///
    /// This is a building block: for *repeated* evaluation of one
    /// instance, use [`UcqEngine::session`] instead — besides skipping
    /// preprocessing, the session prepares the Theorem 12 pipeline once,
    /// whereas calling `enumerate_in` in a loop with one long-lived `ctx`
    /// re-materializes the plan's virtual relations per call and pins each
    /// copy into the context's caches (contexts never evict).
    pub fn enumerate_in(
        &self,
        ctx: &CtxView,
        instance: &Instance,
    ) -> Result<UcqAnswers, EvalError> {
        let minimized = &self.classification.minimized;
        match self.strategy() {
            Strategy::Algorithm1 => Ok(UcqAnswers {
                strategy: Strategy::Algorithm1,
                inner: Box::new(Algorithm1::build_in(minimized, instance, ctx)?),
            }),
            Strategy::UnionExtension => {
                let plan = self.executable_plan(ctx, instance, None);
                Ok(UcqAnswers {
                    strategy: Strategy::UnionExtension,
                    inner: Box::new(UcqPipeline::build_in(minimized, &plan, instance, ctx)?),
                })
            }
            Strategy::Naive => Ok(UcqAnswers {
                strategy: Strategy::Naive,
                inner: Box::new(naive_id_answers(minimized, instance, ctx)?),
            }),
        }
    }

    /// The plan the union-extension strategy should execute over
    /// `instance`: the cached plan when `(query fingerprint, stats epoch)`
    /// matches, otherwise a fresh costing pass over the engine's prepared
    /// [`CostedSearch`], stored so the next session over this context skips
    /// the pricing too. Falls back to the classification's first-found
    /// certificate if the costed search comes up empty (it enumerates the
    /// same candidates, so this is belt-and-braces).
    fn executable_plan(
        &self,
        ctx: &CtxView,
        instance: &Instance,
        counters: Option<&PlannerCounters>,
    ) -> Arc<ExtensionPlan> {
        let minimized = &self.classification.minimized;
        // Intern every base relation up front: the epoch read below is then
        // stable across the search (stats collection only hits caches), and
        // a repeat session over the same instance reads the same epoch.
        for name in minimized.relation_names() {
            if let Some(rel) = instance.get_shared(name) {
                ctx.interned_rel(&rel);
            }
        }
        let fingerprint = minimized.fingerprint();
        let epoch = ctx.stats_epoch();
        if let Some(cached) = ctx.cached_plan(fingerprint, epoch) {
            if let Ok(plan) = cached.downcast::<ExtensionPlan>() {
                if let Some(c) = counters {
                    c.plan_cache_hits.set(c.plan_cache_hits.get() + 1);
                }
                return plan;
            }
        }
        if let Some(c) = counters {
            c.plans_searched.set(c.plans_searched.get() + 1);
        }
        let search = self
            .costed
            .get_or_init(|| CostedSearch::prepare(minimized, &self.cfg));
        let plan = match search.as_ref().map(|s| s.plan(instance, ctx)) {
            Some(costed) => {
                if let Some(c) = counters {
                    c.candidates_costed
                        .set(c.candidates_costed.get() + costed.candidates_costed);
                }
                Arc::new(costed.plan)
            }
            None => {
                let Verdict::FreeConnex { plan } = &self.classification.verdict else {
                    unreachable!("union-extension strategy implies a free-connex verdict");
                };
                Arc::new(plan.clone())
            }
        };
        ctx.store_plan(fingerprint, epoch, plan.clone());
        plan
    }

    /// Opens an evaluation session over `instance`: preprocessing (value
    /// interning, normalization, index builds, per-member CDY engines) is
    /// performed at most once and reused by every subsequent call.
    pub fn session(&self, instance: &Instance) -> EvalSession<'_> {
        self.session_in(&CtxView::new(), instance)
    }

    /// As [`UcqEngine::session`], but over a caller-provided context:
    /// repeated sessions share the dictionary, interned relations, indexes,
    /// statistics — and the plan cache, so the second session's build skips
    /// the cost-based plan search entirely (observable as
    /// [`PlannerStats::plan_cache_hits`]).
    pub fn session_in(&self, ctx: &CtxView, instance: &Instance) -> EvalSession<'_> {
        EvalSession {
            engine: self,
            instance: instance.clone(),
            ctx: ctx.clone(),
            prepared: RefCell::new(None),
            planner: PlannerCounters::default(),
        }
    }

    /// Forces the naive strategy (baseline for experiments).
    pub fn enumerate_naive(&self, instance: &Instance) -> Result<Vec<Tuple>, EvalError> {
        evaluate_ucq_naive_in(&self.classification.minimized, instance, &CtxView::new())
    }

    /// `Decide⟨Q⟩`: whether the union has at least one answer. For unions
    /// of free-connex members this is a pure preprocessing question (each
    /// member's CDY `decide()` after its linear pass); otherwise it asks
    /// the chosen enumeration strategy for a first answer.
    pub fn decide(&self, instance: &Instance) -> Result<bool, EvalError> {
        let ctx = CtxView::new();
        let minimized = &self.classification.minimized;
        if minimized
            .cqs()
            .iter()
            .all(|cq| matches!(crate::classify::cq_status(cq), CqStatus::FreeConnex))
        {
            for cq in minimized.cqs() {
                if CdyEngine::for_query_in(cq, instance, &ctx)?.decide() {
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        let mut ans = self.enumerate_in(&ctx, instance)?;
        Ok(ans.next().is_some())
    }
}

/// The per-strategy preprocessed state an [`EvalSession`] caches.
enum Prepared {
    /// Per-member CDY engines (Algorithm 1 restarts enumerators off them).
    Algorithm1(Vec<Arc<CdyEngine>>),
    /// The Theorem 12 prep: materializations folded into member engines.
    Union(UcqPipelinePrep),
    /// Naive fallback has no reusable enumeration structure beyond the
    /// context caches themselves.
    Naive,
}

/// A pinned `(classified query, instance)` pair with persistent caches —
/// the repeated-evaluation ("serve traffic") API.
///
/// ```
/// use ucq_core::UcqEngine;
/// use ucq_enumerate::Enumerator;
/// use ucq_query::parse_ucq;
/// use ucq_storage::{Instance, Relation};
///
/// let engine = UcqEngine::new(parse_ucq("Q(x, y) <- R(x, y)").unwrap());
/// let instance: Instance =
///     [("R", Relation::from_pairs([(1, 2), (3, 4)]))].into_iter().collect();
/// let session = engine.session(&instance);
/// for _ in 0..3 {
///     // Preprocessing runs once; each call just restarts enumeration.
///     assert_eq!(session.enumerate().unwrap().collect_all().len(), 2);
/// }
/// ```
pub struct EvalSession<'e> {
    engine: &'e UcqEngine,
    instance: Instance,
    ctx: CtxView,
    prepared: RefCell<Option<Prepared>>,
    planner: PlannerCounters,
}

impl EvalSession<'_> {
    /// The engine this session evaluates.
    pub fn engine(&self) -> &UcqEngine {
        self.engine
    }

    /// The shared context (dictionary + caches) of this session.
    pub fn context(&self) -> &CtxView {
        &self.ctx
    }

    /// The strategy session evaluations use.
    pub fn strategy(&self) -> Strategy {
        self.engine.strategy()
    }

    /// Planner counters for this session (plan searches, candidates
    /// priced, plan-cache hits).
    pub fn planner_stats(&self) -> PlannerStats {
        self.planner.snapshot()
    }

    fn ensure_prepared(&self) -> Result<(), EvalError> {
        if self.prepared.borrow().is_some() {
            return Ok(());
        }
        let minimized = &self.engine.classification.minimized;
        let prep = match self.engine.strategy() {
            Strategy::Algorithm1 => Prepared::Algorithm1(Algorithm1::member_engines(
                minimized,
                &self.instance,
                &self.ctx,
            )?),
            Strategy::UnionExtension => {
                let plan =
                    self.engine
                        .executable_plan(&self.ctx, &self.instance, Some(&self.planner));
                Prepared::Union(UcqPipelinePrep::prepare(
                    minimized,
                    &plan,
                    &self.instance,
                    &self.ctx,
                )?)
            }
            Strategy::Naive => Prepared::Naive,
        };
        *self.prepared.borrow_mut() = Some(prep);
        Ok(())
    }

    /// Starts an enumeration. The first call performs the linear
    /// preprocessing; subsequent calls only restart enumeration cursors.
    pub fn enumerate(&self) -> Result<UcqAnswers, EvalError> {
        self.ensure_prepared()?;
        let prepared = self.prepared.borrow();
        match prepared.as_ref().expect("just prepared") {
            Prepared::Algorithm1(engines) => Ok(UcqAnswers {
                strategy: Strategy::Algorithm1,
                inner: Box::new(Algorithm1::from_engines(engines.clone())),
            }),
            Prepared::Union(prep) => Ok(UcqAnswers {
                strategy: Strategy::UnionExtension,
                inner: Box::new(prep.start()),
            }),
            Prepared::Naive => Ok(UcqAnswers {
                strategy: Strategy::Naive,
                inner: Box::new(naive_id_answers(
                    &self.engine.classification.minimized,
                    &self.instance,
                    &self.ctx,
                )?),
            }),
        }
    }

    /// `Decide⟨Q⟩` against the pinned instance, reusing the session's
    /// preprocessed engines when available.
    pub fn decide(&self) -> Result<bool, EvalError> {
        self.ensure_prepared()?;
        let prepared = self.prepared.borrow();
        match prepared.as_ref().expect("just prepared") {
            Prepared::Algorithm1(engines) => Ok(engines.iter().any(|e| e.decide())),
            _ => {
                drop(prepared);
                let mut ans = self.enumerate()?;
                Ok(ans.next().is_some())
            }
        }
    }
}

impl<'e> EvalSession<'e> {
    /// Ends the build phase: runs the linear preprocessing if it has not
    /// run yet, snapshots the context into an immutable
    /// [`ucq_storage::FrozenContext`], and retargets the prepared engines
    /// onto the snapshot — no preprocessing is repeated. The result is
    /// `Send + Sync`: N threads can call [`FrozenSession::enumerate`]
    /// concurrently, each getting its own cursors, with zero locking on
    /// the per-answer path.
    ///
    /// For the naive strategy the answer table is materialized here, once,
    /// so post-freeze calls replay it instead of re-joining (and the ids
    /// land below the frozen watermark).
    pub fn freeze(self) -> Result<FrozenSession<'e>, EvalError> {
        self.ensure_prepared()?;
        let minimized = &self.engine.classification.minimized;
        let naive_table = match self.prepared.borrow().as_ref().expect("just prepared") {
            Prepared::Naive => Some(evaluate_ucq_naive_ids_in(
                minimized,
                &self.instance,
                &self.ctx,
            )?),
            _ => None,
        };
        let view = self.ctx.freeze();
        let prepared = match self.prepared.into_inner().expect("just prepared") {
            Prepared::Algorithm1(mut engines) => {
                for eng in &mut engines {
                    // A leftover live enumerator (pre-freeze `enumerate()`
                    // stream) pins the Arc; such an engine keeps the
                    // build-phase view — same ids, just mutex-guarded.
                    if let Some(e) = Arc::get_mut(eng) {
                        e.set_view(view.clone());
                    }
                }
                FrozenPrepared::Algorithm1(engines)
            }
            Prepared::Union(mut prep) => {
                prep.retarget(&view);
                FrozenPrepared::Union(prep)
            }
            Prepared::Naive => FrozenPrepared::Naive(naive_table.expect("materialized above")),
        };
        Ok(FrozenSession {
            engine: self.engine,
            instance: self.instance,
            ctx: view,
            prepared,
            planner: self.planner.snapshot(),
        })
    }
}

/// The per-strategy state a [`FrozenSession`] serves from. Unlike
/// [`Prepared`], every variant is immutable and shareable.
enum FrozenPrepared {
    /// Per-member CDY engines retargeted onto the frozen snapshot.
    Algorithm1(Vec<Arc<CdyEngine>>),
    /// The Theorem 12 prep retargeted onto the frozen snapshot.
    Union(UcqPipelinePrep),
    /// The naive answer table, materialized at freeze time; enumerations
    /// replay it.
    Naive(IdTable),
}

/// A frozen `(classified query, instance)` session: `Send + Sync`, served
/// concurrently by any number of threads. Produced by
/// [`EvalSession::freeze`]; see the module docs for the lifecycle.
///
/// ```
/// use std::collections::HashSet;
/// use ucq_core::UcqEngine;
/// use ucq_enumerate::Enumerator;
/// use ucq_query::parse_ucq;
/// use ucq_storage::{Instance, Relation, Tuple};
///
/// let engine = UcqEngine::new(parse_ucq("Q(x, y) <- R(x, y)").unwrap());
/// let instance: Instance =
///     [("R", Relation::from_pairs([(1, 2), (3, 4)]))].into_iter().collect();
/// let frozen = engine.session(&instance).freeze().unwrap();
/// let answers: Vec<HashSet<Tuple>> = std::thread::scope(|s| {
///     let handles: Vec<_> = (0..2)
///         .map(|_| s.spawn(|| frozen.enumerate().unwrap().collect_all().into_iter().collect()))
///         .collect();
///     handles.into_iter().map(|h| h.join().unwrap()).collect()
/// });
/// assert_eq!(answers[0], answers[1]);
/// assert_eq!(answers[0].len(), 2);
/// ```
pub struct FrozenSession<'e> {
    engine: &'e UcqEngine,
    instance: Instance,
    ctx: CtxView,
    prepared: FrozenPrepared,
    planner: PlannerStats,
}

impl FrozenSession<'_> {
    /// The engine this session evaluates.
    pub fn engine(&self) -> &UcqEngine {
        self.engine
    }

    /// The pinned instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The frozen context view (always [`CtxView::is_frozen`]).
    pub fn context(&self) -> &CtxView {
        &self.ctx
    }

    /// The strategy frozen evaluations use.
    pub fn strategy(&self) -> Strategy {
        self.engine.strategy()
    }

    /// Planner counters accumulated by the build-phase session this
    /// snapshot was frozen from.
    pub fn planner_stats(&self) -> PlannerStats {
        self.planner
    }

    /// Starts an enumeration over the frozen state. Callable from many
    /// threads at once (`&self`); each call returns an independent stream
    /// owning its cursors, dedup table and scratch, while all streams read
    /// the same frozen dictionary, relations and indexes lock-free.
    pub fn enumerate(&self) -> Result<UcqAnswers, EvalError> {
        match &self.prepared {
            FrozenPrepared::Algorithm1(engines) => Ok(UcqAnswers {
                strategy: Strategy::Algorithm1,
                inner: Box::new(Algorithm1::from_engines(engines.clone())),
            }),
            FrozenPrepared::Union(prep) => Ok(UcqAnswers {
                strategy: Strategy::UnionExtension,
                inner: Box::new(prep.start()),
            }),
            FrozenPrepared::Naive(table) => Ok(UcqAnswers {
                strategy: Strategy::Naive,
                inner: Box::new(replay_id_table(table, &self.ctx)),
            }),
        }
    }

    /// `Decide⟨Q⟩` against the frozen state (no preprocessing, no joins).
    pub fn decide(&self) -> Result<bool, EvalError> {
        match &self.prepared {
            FrozenPrepared::Algorithm1(engines) => Ok(engines.iter().any(|e| e.decide())),
            FrozenPrepared::Naive(table) => Ok(table.n_rows > 0),
            FrozenPrepared::Union(_) => {
                let mut ans = self.enumerate()?;
                Ok(ans.next().is_some())
            }
        }
    }
}

/// A strategy-tagged answer stream. `Send`, so a serving thread can take
/// an enumeration with it (each stream owns its cursors and scratch).
pub struct UcqAnswers {
    strategy: Strategy,
    inner: Box<dyn Enumerator + Send>,
}

impl UcqAnswers {
    /// Which strategy produced this stream.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }
}

impl Enumerator for UcqAnswers {
    fn next(&mut self) -> Option<Tuple> {
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_ucq::evaluate_ucq_naive_set;
    use std::collections::HashSet;
    use ucq_query::parse_ucq;
    use ucq_storage::Relation;

    fn inst(rels: &[(&str, Vec<(i64, i64)>)]) -> Instance {
        rels.iter()
            .map(|(n, pairs)| (n.to_string(), Relation::from_pairs(pairs.iter().copied())))
            .collect()
    }

    fn check_strategy(text: &str, i: &Instance, expect: Strategy) {
        let u = parse_ucq(text).unwrap();
        let eng = UcqEngine::new(u.clone());
        assert_eq!(eng.strategy(), expect, "strategy for {text}");
        let mut ans = eng.enumerate(i).unwrap();
        let got: HashSet<Tuple> = ans.collect_all().into_iter().collect();
        let want = evaluate_ucq_naive_set(&u, i).unwrap();
        assert_eq!(got, want);
        // The session path must agree with the one-shot path, repeatedly.
        let session = eng.session(i);
        for _ in 0..2 {
            let mut ans = session.enumerate().unwrap();
            let via_session: HashSet<Tuple> = ans.collect_all().into_iter().collect();
            assert_eq!(via_session, want, "session answers for {text}");
        }
        assert_eq!(session.decide().unwrap(), !want.is_empty());
    }

    #[test]
    fn all_free_connex_uses_algorithm1() {
        let i = inst(&[("R", vec![(1, 2)]), ("S", vec![(1, 2), (5, 6)])]);
        check_strategy(
            "Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)",
            &i,
            Strategy::Algorithm1,
        );
    }

    #[test]
    fn example2_uses_pipeline() {
        let i = inst(&[
            ("R1", vec![(1, 2)]),
            ("R2", vec![(2, 3)]),
            ("R3", vec![(3, 4)]),
        ]);
        check_strategy(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
            &i,
            Strategy::UnionExtension,
        );
    }

    #[test]
    fn hard_query_falls_back_to_naive() {
        let i = inst(&[("A", vec![(1, 2)]), ("B", vec![(2, 3)])]);
        check_strategy("Q(x, y) <- A(x, z), B(z, y)", &i, Strategy::Naive);
    }

    #[test]
    fn redundancy_removed_before_evaluation() {
        // Example 1: the union equals Q2, so Algorithm 1 applies even
        // though Q1 alone is cyclic.
        let i = inst(&[
            ("R1", vec![(1, 2), (2, 3)]),
            ("R2", vec![(2, 4), (3, 4)]),
            ("R3", vec![(4, 1)]),
        ]);
        check_strategy(
            "Q1(x, y) <- R1(x, y), R2(y, z), R3(z, x)\n\
             Q2(x, y) <- R1(x, y), R2(y, z)",
            &i,
            Strategy::Algorithm1,
        );
    }

    #[test]
    fn session_preprocesses_once() {
        let u = parse_ucq("Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)").unwrap();
        let eng = UcqEngine::new(u);
        let i = inst(&[("R", vec![(1, 2), (3, 4)]), ("S", vec![(3, 4)])]);
        let session = eng.session(&i);
        session.enumerate().unwrap();
        let builds_after_first = session.context().stats().interned_builds;
        session.enumerate().unwrap();
        session.enumerate().unwrap();
        assert_eq!(
            session.context().stats().interned_builds,
            builds_after_first,
            "repeated session calls intern nothing new"
        );
    }

    #[test]
    fn repeated_sessions_hit_the_plan_cache() {
        let u = parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .unwrap();
        let eng = UcqEngine::new(u);
        assert_eq!(eng.strategy(), Strategy::UnionExtension);
        let i = inst(&[
            ("R1", vec![(1, 2)]),
            ("R2", vec![(2, 3)]),
            ("R3", vec![(3, 4)]),
        ]);
        let ctx = CtxView::new();
        let first = eng.session_in(&ctx, &i);
        let baseline: HashSet<Tuple> = first
            .enumerate()
            .unwrap()
            .collect_all()
            .into_iter()
            .collect();
        let p1 = first.planner_stats();
        assert_eq!(p1.plans_searched, 1, "first session runs the search");
        assert_eq!(p1.plan_cache_hits, 0);
        assert!(p1.candidates_costed >= 1, "at least one candidate priced");
        // Re-enumerating within one session prepares nothing new.
        first.enumerate().unwrap();
        assert_eq!(first.planner_stats(), p1);

        let second = eng.session_in(&ctx, &i);
        let again: HashSet<Tuple> = second
            .enumerate()
            .unwrap()
            .collect_all()
            .into_iter()
            .collect();
        assert_eq!(again, baseline);
        let p2 = second.planner_stats();
        assert_eq!(p2.plans_searched, 0, "second session skips the search");
        assert_eq!(p2.plan_cache_hits, 1, "cached plan reused");
        assert_eq!(p2.candidates_costed, 0);
    }

    #[test]
    fn redundant_member_gets_no_stages() {
        // Example 1 shape: Q1 ⊆ Q2, and Q1 alone is cyclic (it would be
        // hopeless to plan). Union minimization must drop it before any
        // stage is planned: the executed plan has zero materializations and
        // zero chosen atoms for the surviving member.
        let u = parse_ucq(
            "Q1(x, y) <- R1(x, y), R2(y, z), R3(z, x)\n\
             Q2(x, y) <- R1(x, y), R2(y, z)",
        )
        .unwrap();
        let eng = UcqEngine::new(u);
        assert_eq!(
            eng.classification().minimized.len(),
            1,
            "the subsumed member is gone before planning"
        );
        let Verdict::FreeConnex { plan } = &eng.classification().verdict else {
            panic!("minimized union is free-connex");
        };
        assert!(!plan.needs_extension(), "no stages for a redundant union");
        assert!(plan.atoms.is_empty());
    }
}

#[cfg(test)]
mod decide_tests {
    use super::*;
    use ucq_query::parse_ucq;
    use ucq_storage::Relation;

    #[test]
    fn decide_free_connex_union() {
        let u = parse_ucq("Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)").unwrap();
        let eng = UcqEngine::new(u);
        let yes: Instance = [
            ("R", Relation::new(2)),
            ("S", Relation::from_pairs([(1, 1)])),
        ]
        .into_iter()
        .collect();
        assert!(eng.decide(&yes).unwrap());
        let no: Instance = [("R", Relation::new(2)), ("S", Relation::new(2))]
            .into_iter()
            .collect();
        assert!(!eng.decide(&no).unwrap());
    }

    #[test]
    fn decide_via_enumeration_for_hard_queries() {
        let u = parse_ucq("Q(x, y) <- A(x, z), B(z, y)").unwrap();
        let eng = UcqEngine::new(u);
        let yes: Instance = [
            ("A", Relation::from_pairs([(1, 2)])),
            ("B", Relation::from_pairs([(2, 3)])),
        ]
        .into_iter()
        .collect();
        assert!(eng.decide(&yes).unwrap());
        let no: Instance = [
            ("A", Relation::from_pairs([(1, 2)])),
            ("B", Relation::from_pairs([(9, 3)])),
        ]
        .into_iter()
        .collect();
        assert!(!eng.decide(&no).unwrap());
    }
}
