//! The top-level engine: classify once, then evaluate instances with the
//! best applicable strategy.

use crate::algorithm1::Algorithm1;
use crate::classify::{classify_with, Classification, CqStatus, Verdict};
use crate::naive_ucq::evaluate_ucq_naive;
use crate::pipeline::UcqPipeline;
use crate::search::SearchConfig;
use ucq_enumerate::{Enumerator, VecEnumerator};
use ucq_query::Ucq;
use ucq_storage::{Instance, Tuple};
use ucq_yannakakis::EvalError;

/// Which evaluation strategy a run used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Algorithm 1 (Theorem 4): all members free-connex; constant writable
    /// memory during enumeration.
    Algorithm1,
    /// The Theorem 12 union-extension pipeline.
    UnionExtension,
    /// Materializing fallback for intractable/unknown queries.
    Naive,
}

/// A classified UCQ ready to evaluate instances.
pub struct UcqEngine {
    ucq: Ucq,
    classification: Classification,
}

impl UcqEngine {
    /// Classifies `ucq` with default search bounds.
    pub fn new(ucq: Ucq) -> UcqEngine {
        UcqEngine::with_config(ucq, &SearchConfig::default())
    }

    /// Classifies `ucq` with explicit search bounds.
    pub fn with_config(ucq: Ucq, cfg: &SearchConfig) -> UcqEngine {
        let classification = classify_with(&ucq, cfg);
        UcqEngine {
            ucq,
            classification,
        }
    }

    /// The original union.
    pub fn ucq(&self) -> &Ucq {
        &self.ucq
    }

    /// The classification (verdict, statuses, minimized union).
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The strategy [`UcqEngine::enumerate`] will pick.
    pub fn strategy(&self) -> Strategy {
        match &self.classification.verdict {
            Verdict::FreeConnex { plan } => {
                let all_fc = self
                    .classification
                    .statuses
                    .iter()
                    .all(|s| *s == CqStatus::FreeConnex);
                if all_fc && !plan.needs_extension() {
                    Strategy::Algorithm1
                } else {
                    Strategy::UnionExtension
                }
            }
            _ => Strategy::Naive,
        }
    }

    /// Evaluates over `instance`, returning an answer stream tagged with
    /// the strategy that produced it. `DelayClin` guarantees apply exactly
    /// when the strategy is not [`Strategy::Naive`].
    pub fn enumerate(&self, instance: &Instance) -> Result<UcqAnswers, EvalError> {
        let minimized = &self.classification.minimized;
        match self.strategy() {
            Strategy::Algorithm1 => Ok(UcqAnswers {
                strategy: Strategy::Algorithm1,
                inner: Box::new(Algorithm1::build(minimized, instance)?),
            }),
            Strategy::UnionExtension => {
                let Verdict::FreeConnex { plan } = &self.classification.verdict else {
                    unreachable!("strategy() checked the verdict");
                };
                Ok(UcqAnswers {
                    strategy: Strategy::UnionExtension,
                    inner: Box::new(UcqPipeline::build(minimized, plan, instance)?),
                })
            }
            Strategy::Naive => Ok(UcqAnswers {
                strategy: Strategy::Naive,
                inner: Box::new(VecEnumerator::new(evaluate_ucq_naive(
                    minimized, instance,
                )?)),
            }),
        }
    }

    /// Forces the naive strategy (baseline for experiments).
    pub fn enumerate_naive(&self, instance: &Instance) -> Result<Vec<Tuple>, EvalError> {
        evaluate_ucq_naive(&self.classification.minimized, instance)
    }

    /// `Decide⟨Q⟩`: whether the union has at least one answer. For unions
    /// of free-connex members this is a pure preprocessing question (each
    /// member's CDY `decide()` after its linear pass); otherwise it asks
    /// the chosen enumeration strategy for a first answer.
    pub fn decide(&self, instance: &Instance) -> Result<bool, EvalError> {
        let minimized = &self.classification.minimized;
        if minimized
            .cqs()
            .iter()
            .all(|cq| matches!(crate::classify::cq_status(cq), CqStatus::FreeConnex))
        {
            for cq in minimized.cqs() {
                if crate::pipeline_decide(cq, instance)? {
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        let mut ans = self.enumerate(instance)?;
        Ok(ans.next().is_some())
    }
}

/// A strategy-tagged answer stream.
pub struct UcqAnswers {
    strategy: Strategy,
    inner: Box<dyn Enumerator>,
}

impl UcqAnswers {
    /// Which strategy produced this stream.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }
}

impl Enumerator for UcqAnswers {
    fn next(&mut self) -> Option<Tuple> {
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_ucq::evaluate_ucq_naive_set;
    use std::collections::HashSet;
    use ucq_query::parse_ucq;
    use ucq_storage::Relation;

    fn inst(rels: &[(&str, Vec<(i64, i64)>)]) -> Instance {
        rels.iter()
            .map(|(n, pairs)| {
                (n.to_string(), Relation::from_pairs(pairs.iter().copied()))
            })
            .collect()
    }

    fn check_strategy(text: &str, i: &Instance, expect: Strategy) {
        let u = parse_ucq(text).unwrap();
        let eng = UcqEngine::new(u.clone());
        assert_eq!(eng.strategy(), expect, "strategy for {text}");
        let mut ans = eng.enumerate(i).unwrap();
        let got: HashSet<Tuple> = ans.collect_all().into_iter().collect();
        let want = evaluate_ucq_naive_set(&u, i).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn all_free_connex_uses_algorithm1() {
        let i = inst(&[("R", vec![(1, 2)]), ("S", vec![(1, 2), (5, 6)])]);
        check_strategy(
            "Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)",
            &i,
            Strategy::Algorithm1,
        );
    }

    #[test]
    fn example2_uses_pipeline() {
        let i = inst(&[
            ("R1", vec![(1, 2)]),
            ("R2", vec![(2, 3)]),
            ("R3", vec![(3, 4)]),
        ]);
        check_strategy(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
            &i,
            Strategy::UnionExtension,
        );
    }

    #[test]
    fn hard_query_falls_back_to_naive() {
        let i = inst(&[("A", vec![(1, 2)]), ("B", vec![(2, 3)])]);
        check_strategy("Q(x, y) <- A(x, z), B(z, y)", &i, Strategy::Naive);
    }

    #[test]
    fn redundancy_removed_before_evaluation() {
        // Example 1: the union equals Q2, so Algorithm 1 applies even
        // though Q1 alone is cyclic.
        let i = inst(&[
            ("R1", vec![(1, 2), (2, 3)]),
            ("R2", vec![(2, 4), (3, 4)]),
            ("R3", vec![(4, 1)]),
        ]);
        check_strategy(
            "Q1(x, y) <- R1(x, y), R2(y, z), R3(z, x)\n\
             Q2(x, y) <- R1(x, y), R2(y, z)",
            &i,
            Strategy::Algorithm1,
        );
    }
}

#[cfg(test)]
mod decide_tests {
    use super::*;
    use ucq_query::parse_ucq;
    use ucq_storage::Relation;

    #[test]
    fn decide_free_connex_union() {
        let u = parse_ucq("Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)").unwrap();
        let eng = UcqEngine::new(u);
        let yes: Instance =
            [("R", Relation::new(2)), ("S", Relation::from_pairs([(1, 1)]))]
                .into_iter()
                .collect();
        assert!(eng.decide(&yes).unwrap());
        let no: Instance =
            [("R", Relation::new(2)), ("S", Relation::new(2))].into_iter().collect();
        assert!(!eng.decide(&no).unwrap());
    }

    #[test]
    fn decide_via_enumeration_for_hard_queries() {
        let u = parse_ucq("Q(x, y) <- A(x, z), B(z, y)").unwrap();
        let eng = UcqEngine::new(u);
        let yes: Instance = [
            ("A", Relation::from_pairs([(1, 2)])),
            ("B", Relation::from_pairs([(2, 3)])),
        ]
        .into_iter()
        .collect();
        assert!(eng.decide(&yes).unwrap());
        let no: Instance = [
            ("A", Relation::from_pairs([(1, 2)])),
            ("B", Relation::from_pairs([(9, 3)])),
        ]
        .into_iter()
        .collect();
        assert!(!eng.decide(&no).unwrap());
    }
}
