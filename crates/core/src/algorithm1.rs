//! Algorithm 1 (Theorem 4): a union of free-connex CQs in `DelayClin` with
//! constant writable memory during enumeration.
//!
//! For two members the algorithm interleaves:
//!
//! ```text
//! while a ← Q1(I).next():
//!     if a ∉ Q2(I): print a
//!     else:         print Q2(I).next()      # always succeeds
//! while a ← Q2(I).next(): print a
//! ```
//!
//! printing `Q1(I) \ Q2(I)` in the first loop and `Q2(I)` split across
//! lines 5 and 7 — duplicate-free without any lookup table (unlike the
//! Cheater-based pipeline, whose dedup set grows with the output; this is
//! the `CD∘Lin`-friendly variant the paper's conclusion highlights). Unions
//! of `n` members nest recursively, treating the tail as one query.
//!
//! All member engines are built through one shared context view, so the
//! members' preprocessing shares interned relations and normalizations, and
//! the membership probes of line 4 run against interned ids with reused
//! scratch buffers — no allocation per probe.

use std::sync::Arc;
use ucq_enumerate::Enumerator;
use ucq_query::Ucq;
use ucq_storage::{CtxView, Instance, Tuple};
use ucq_yannakakis::{CdyEngine, ContainsScratch, EvalError, OwnedCdyIter};

/// Recursive union node. Each node carries a [`ContainsScratch`] for its
/// own engine's membership probes, so the line-4 checks reuse buffers
/// instead of allocating per answer.
enum Node {
    Leaf(OwnedCdyIter, ContainsScratch),
    Pair {
        first: OwnedCdyIter,
        first_scratch: ContainsScratch,
        rest: Box<Node>,
        first_done: bool,
    },
}

impl Node {
    fn contains(&mut self, t: &Tuple) -> bool {
        match self {
            Node::Leaf(it, scratch) => it.engine().contains_with(t, scratch),
            Node::Pair {
                first,
                first_scratch,
                rest,
                ..
            } => first.engine().contains_with(t, first_scratch) || rest.contains(t),
        }
    }

    fn next(&mut self) -> Option<Tuple> {
        match self {
            Node::Leaf(it, _) => it.next(),
            Node::Pair {
                first,
                first_scratch: _,
                rest,
                first_done,
            } => {
                while !*first_done {
                    match first.next() {
                        Some(a) => {
                            if !rest.contains(&a) {
                                return Some(a);
                            }
                            // Line 5: the duplicate budget pays for one
                            // fresh answer from the rest.
                            let b = rest.next();
                            debug_assert!(
                                b.is_some(),
                                "line 5 is called at most |Q1 ∩ rest| ≤ |rest| times"
                            );
                            if b.is_some() {
                                return b;
                            }
                            // Defensive: fall through and keep draining.
                        }
                        None => *first_done = true,
                    }
                }
                rest.next()
            }
        }
    }
}

/// The Algorithm 1 enumerator.
pub struct Algorithm1 {
    root: Node,
}

impl Algorithm1 {
    /// Preprocesses every member with CDY under a private context. Prefer
    /// [`Algorithm1::build_in`] (or the engine's session API) to share the
    /// context across members and calls.
    pub fn build(ucq: &Ucq, instance: &Instance) -> Result<Algorithm1, EvalError> {
        Algorithm1::build_in(ucq, instance, &CtxView::new())
    }

    /// Preprocesses every member with CDY (all must be free-connex) through
    /// the shared `ctx` and wires up the recursive interleaving.
    pub fn build_in(
        ucq: &Ucq,
        instance: &Instance,
        ctx: &CtxView,
    ) -> Result<Algorithm1, EvalError> {
        Ok(Algorithm1::from_engines(Algorithm1::member_engines(
            ucq, instance, ctx,
        )?))
    }

    /// Builds the per-member CDY engines (the preprocessing phase), shared
    /// so sessions can reuse them across repeated enumerations.
    pub fn member_engines(
        ucq: &Ucq,
        instance: &Instance,
        ctx: &CtxView,
    ) -> Result<Vec<Arc<CdyEngine>>, EvalError> {
        ucq.cqs()
            .iter()
            .map(|cq| CdyEngine::for_query_in(cq, instance, ctx).map(Arc::new))
            .collect()
    }

    /// Wires preprocessed member engines into the interleaving enumerator.
    /// The engines must come from [`Algorithm1::member_engines`] (every
    /// member free-connex, outputs = heads).
    pub fn from_engines(engines: Vec<Arc<CdyEngine>>) -> Algorithm1 {
        let mut iters: Vec<OwnedCdyIter> = engines.into_iter().map(OwnedCdyIter::new).collect();
        let mut node = Node::Leaf(
            iters.pop().expect("UCQs are non-empty"),
            ContainsScratch::default(),
        );
        while let Some(first) = iters.pop() {
            node = Node::Pair {
                first,
                first_scratch: ContainsScratch::default(),
                rest: Box::new(node),
                first_done: false,
            };
        }
        Algorithm1 { root: node }
    }
}

impl Enumerator for Algorithm1 {
    fn next(&mut self) -> Option<Tuple> {
        self.root.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_ucq::evaluate_ucq_naive_set;
    use std::collections::HashSet;
    use ucq_query::parse_ucq;
    use ucq_storage::Relation;

    fn inst(rels: &[(&str, Vec<(i64, i64)>)]) -> Instance {
        rels.iter()
            .map(|(n, pairs)| (n.to_string(), Relation::from_pairs(pairs.iter().copied())))
            .collect()
    }

    fn check(text: &str, i: &Instance) {
        let u = parse_ucq(text).unwrap();
        let mut alg = Algorithm1::build(&u, i).unwrap();
        let got = alg.collect_all();
        let set: HashSet<Tuple> = got.iter().cloned().collect();
        assert_eq!(got.len(), set.len(), "Algorithm 1 must be duplicate-free");
        let want = evaluate_ucq_naive_set(&u, i).unwrap();
        assert_eq!(set, want);
    }

    #[test]
    fn two_member_union_with_overlap() {
        let i = inst(&[
            ("R", vec![(1, 2), (3, 4), (5, 6)]),
            ("S", vec![(3, 4), (7, 8)]),
        ]);
        check("Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)", &i);
    }

    #[test]
    fn identical_members() {
        let i = inst(&[("R", vec![(1, 2), (3, 4)])]);
        check("Q1(x, y) <- R(x, y)\nQ2(a, b) <- R(a, b)", &i);
    }

    #[test]
    fn three_member_union() {
        let i = inst(&[
            ("R", vec![(1, 2), (9, 9)]),
            ("S", vec![(1, 2), (3, 4)]),
            ("T", vec![(3, 4), (5, 6), (9, 9)]),
        ]);
        check(
            "Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)\nQ3(u, v) <- T(u, v)",
            &i,
        );
    }

    #[test]
    fn joins_inside_members() {
        let i = inst(&[
            ("R", vec![(1, 2), (2, 3)]),
            ("S", vec![(2, 5), (3, 5)]),
            ("T", vec![(1, 5)]),
            ("U", vec![(5, 2), (5, 9)]),
        ]);
        check(
            "Q1(x, y, z) <- R(x, y), S(y, z)\nQ2(a, b, c) <- T(a, b), U(b, c)",
            &i,
        );
    }

    #[test]
    fn empty_members() {
        let i = inst(&[("R", vec![]), ("S", vec![(1, 1)])]);
        check("Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)", &i);
    }

    #[test]
    fn non_free_connex_member_rejected() {
        let u = parse_ucq("Q1(x, y) <- A(x, z), B(z, y)").unwrap();
        assert!(Algorithm1::build(&u, &Instance::new()).is_err());
    }

    #[test]
    fn shared_engines_restart_cleanly() {
        // Sessions rebuild enumerators from the same engines; both runs must
        // produce the full answer set.
        let u = parse_ucq("Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)").unwrap();
        let i = inst(&[("R", vec![(1, 2), (3, 4)]), ("S", vec![(3, 4), (5, 6)])]);
        let ctx = CtxView::new();
        let engines = Algorithm1::member_engines(&u, &i, &ctx).unwrap();
        let a = Algorithm1::from_engines(engines.clone()).collect_all();
        let b = Algorithm1::from_engines(engines).collect_all();
        assert_eq!(a.len(), 3);
        assert_eq!(a, b);
    }
}
