//! Algorithm 1 (Theorem 4): a union of free-connex CQs in `DelayClin` with
//! constant writable memory during enumeration.
//!
//! For two members the algorithm interleaves:
//!
//! ```text
//! while a ← Q1(I).next():
//!     if a ∉ Q2(I): print a
//!     else:         print Q2(I).next()      # always succeeds
//! while a ← Q2(I).next(): print a
//! ```
//!
//! printing `Q1(I) \ Q2(I)` in the first loop and `Q2(I)` split across
//! lines 5 and 7 — duplicate-free without any lookup table (unlike the
//! Cheater-based pipeline, whose dedup set grows with the output; this is
//! the `CD∘Lin`-friendly variant the paper's conclusion highlights). Unions
//! of `n` members nest recursively, treating the tail as one query.

use ucq_enumerate::Enumerator;
use ucq_query::Ucq;
use ucq_storage::{Instance, Tuple};
use ucq_yannakakis::{CdyEngine, EvalError, OwnedCdyIter};

/// Recursive union node.
enum Node {
    Leaf(OwnedCdyIter),
    Pair {
        first: OwnedCdyIter,
        rest: Box<Node>,
        first_done: bool,
    },
}

impl Node {
    fn contains(&self, t: &Tuple) -> bool {
        match self {
            Node::Leaf(it) => it.engine().contains(t),
            Node::Pair { first, rest, .. } => {
                first.engine().contains(t) || rest.contains(t)
            }
        }
    }

    fn next(&mut self) -> Option<Tuple> {
        match self {
            Node::Leaf(it) => it.next(),
            Node::Pair {
                first,
                rest,
                first_done,
            } => {
                while !*first_done {
                    match first.next() {
                        Some(a) => {
                            if !rest.contains(&a) {
                                return Some(a);
                            }
                            // Line 5: the duplicate budget pays for one
                            // fresh answer from the rest.
                            let b = rest.next();
                            debug_assert!(
                                b.is_some(),
                                "line 5 is called at most |Q1 ∩ rest| ≤ |rest| times"
                            );
                            if b.is_some() {
                                return b;
                            }
                            // Defensive: fall through and keep draining.
                        }
                        None => *first_done = true,
                    }
                }
                rest.next()
            }
        }
    }
}

/// The Algorithm 1 enumerator.
pub struct Algorithm1 {
    root: Node,
}

impl Algorithm1 {
    /// Preprocesses every member with CDY (all must be free-connex) and
    /// wires up the recursive interleaving.
    pub fn build(ucq: &Ucq, instance: &Instance) -> Result<Algorithm1, EvalError> {
        let mut iters: Vec<OwnedCdyIter> = Vec::with_capacity(ucq.len());
        for cq in ucq.cqs() {
            iters.push(CdyEngine::for_query(cq, instance)?.into_iter_owned());
        }
        let mut node = Node::Leaf(iters.pop().expect("UCQs are non-empty"));
        while let Some(first) = iters.pop() {
            node = Node::Pair {
                first,
                rest: Box::new(node),
                first_done: false,
            };
        }
        Ok(Algorithm1 { root: node })
    }
}

impl Enumerator for Algorithm1 {
    fn next(&mut self) -> Option<Tuple> {
        self.root.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_ucq::evaluate_ucq_naive_set;
    use std::collections::HashSet;
    use ucq_query::parse_ucq;
    use ucq_storage::Relation;

    fn inst(rels: &[(&str, Vec<(i64, i64)>)]) -> Instance {
        rels.iter()
            .map(|(n, pairs)| {
                (n.to_string(), Relation::from_pairs(pairs.iter().copied()))
            })
            .collect()
    }

    fn check(text: &str, i: &Instance) {
        let u = parse_ucq(text).unwrap();
        let mut alg = Algorithm1::build(&u, i).unwrap();
        let got = alg.collect_all();
        let set: HashSet<Tuple> = got.iter().cloned().collect();
        assert_eq!(got.len(), set.len(), "Algorithm 1 must be duplicate-free");
        let want = evaluate_ucq_naive_set(&u, i).unwrap();
        assert_eq!(set, want);
    }

    #[test]
    fn two_member_union_with_overlap() {
        let i = inst(&[
            ("R", vec![(1, 2), (3, 4), (5, 6)]),
            ("S", vec![(3, 4), (7, 8)]),
        ]);
        check("Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)", &i);
    }

    #[test]
    fn identical_members() {
        let i = inst(&[("R", vec![(1, 2), (3, 4)])]);
        check("Q1(x, y) <- R(x, y)\nQ2(a, b) <- R(a, b)", &i);
    }

    #[test]
    fn three_member_union() {
        let i = inst(&[
            ("R", vec![(1, 2), (9, 9)]),
            ("S", vec![(1, 2), (3, 4)]),
            ("T", vec![(3, 4), (5, 6), (9, 9)]),
        ]);
        check(
            "Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)\nQ3(u, v) <- T(u, v)",
            &i,
        );
    }

    #[test]
    fn joins_inside_members() {
        let i = inst(&[
            ("R", vec![(1, 2), (2, 3)]),
            ("S", vec![(2, 5), (3, 5)]),
            ("T", vec![(1, 5)]),
            ("U", vec![(5, 2), (5, 9)]),
        ]);
        check(
            "Q1(x, y, z) <- R(x, y), S(y, z)\nQ2(a, b, c) <- T(a, b), U(b, c)",
            &i,
        );
    }

    #[test]
    fn empty_members() {
        let i = inst(&[("R", vec![]), ("S", vec![(1, 1)])]);
        check("Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)", &i);
    }

    #[test]
    fn non_free_connex_member_rejected() {
        let u = parse_ucq("Q1(x, y) <- A(x, z), B(z, y)").unwrap();
        assert!(Algorithm1::build(&u, &Instance::new()).is_err());
    }
}
