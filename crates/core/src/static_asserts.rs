//! Compile-time thread-safety contract for the serve phase, colocated so
//! every shareability claim the crate makes is checked in one place (the
//! `ucq lint` L4 pass keeps this honest for `Frozen*`/`*Session` types).
//!
//! The whole point of freezing: the serve-phase session is shareable
//! across threads, and every answer stream — including the boxed
//! enumerator chain inside it — can move to the thread that drains it.
//! `EvalSession`/`FdSession` are deliberately absent: they are
//! single-threaded build-phase objects (see `analysis/allow.toml`).

use crate::engine::{FrozenSession, UcqAnswers};
use ucq_enumerate::Enumerator;

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<FrozenSession<'static>>();
    assert_send::<UcqAnswers>();
    // The enumerator chain FrozenSession::enumerate boxes into UcqAnswers.
    assert_send::<Box<dyn Enumerator + Send>>();
};
