//! Property tests for the context-threaded engine paths: whatever strategy
//! `UcqEngine` picks (Algorithm 1, the Theorem 12 pipeline, or the naive
//! fallback — all running through a shared `EvalContext`), its answers must
//! equal the naive baseline as multisets after deduplication, and the
//! session path must agree with the one-shot path call after call.

use proptest::prelude::*;
use std::collections::HashSet;
use ucq_core::{plan_free_connex, SearchConfig, UcqEngine, UcqPipeline};
use ucq_enumerate::Enumerator;
use ucq_query::{Cq, Ucq};
use ucq_storage::{Instance, Relation, Tuple, Value};

const VARS: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

/// A random union: 1–3 members over shared relation names, all with the
/// same head arity (a requirement of `Ucq::new`).
fn arb_ucq() -> impl Strategy<Value = Ucq> {
    let atom = proptest::collection::vec(0..6u32, 1..=3);
    let member = proptest::collection::vec(atom, 1..=3);
    (
        proptest::collection::vec(member, 1..=3),
        proptest::collection::vec(proptest::bool::ANY, 6),
        0..=2usize,
    )
        .prop_filter_map("valid union", |(members, head_bits, head_arity)| {
            let cqs: Vec<Cq> = members
                .iter()
                .enumerate()
                .filter_map(|(m, atoms)| {
                    let used: HashSet<u32> = atoms.iter().flatten().copied().collect();
                    // Pick `head_arity` head variables deterministically from
                    // the used ones, steered by head_bits.
                    let mut head: Vec<&str> = Vec::new();
                    for v in 0..6u32 {
                        if head.len() == head_arity {
                            break;
                        }
                        if used.contains(&v) && head_bits[v as usize] {
                            head.push(VARS[v as usize]);
                        }
                    }
                    for v in 0..6u32 {
                        if head.len() == head_arity {
                            break;
                        }
                        let name = VARS[v as usize];
                        if used.contains(&v) && !head.contains(&name) {
                            head.push(name);
                        }
                    }
                    if head.len() != head_arity {
                        return None;
                    }
                    let specs: Vec<(String, Vec<&str>)> = atoms
                        .iter()
                        .enumerate()
                        .map(|(i, args)| {
                            (
                                // Shared pool of relation names across
                                // members so unions actually overlap.
                                format!("R{}", (i + m) % 4),
                                args.iter().map(|&v| VARS[v as usize]).collect(),
                            )
                        })
                        .collect();
                    let refs: Vec<(&str, &[&str])> = specs
                        .iter()
                        .map(|(n, a)| (n.as_str(), a.as_slice()))
                        .collect();
                    Cq::build(&format!("Q{m}"), &head, &refs).ok()
                })
                .collect();
            if cqs.is_empty() {
                return None;
            }
            Ucq::new(cqs).ok()
        })
}

/// A random instance covering every relation the union mentions, with a
/// small domain so joins hit.
fn arb_instance(ucq: &Ucq) -> impl Strategy<Value = Instance> {
    let mut specs: Vec<(String, usize)> = ucq
        .cqs()
        .iter()
        .flat_map(|cq| cq.atoms().iter().map(|a| (a.rel.clone(), a.args.len())))
        .collect();
    specs.sort();
    specs.dedup();
    // A union can reuse one name at two arities; such instances are not
    // well-formed — drop the later arity (the engine reports a schema error
    // for the mismatched atom either way, on both compared paths).
    specs.dedup_by(|a, b| a.0 == b.0);
    let mut strategies = Vec::new();
    for (name, arity) in specs {
        let rows = proptest::collection::vec(proptest::collection::vec(0i64..4, arity), 0..10);
        strategies.push(rows.prop_map(move |rows| {
            let mut rel = Relation::new(arity);
            for row in &rows {
                let vals: Vec<Value> = row.iter().map(|&x| Value::Int(x)).collect();
                rel.push_row(&vals);
            }
            (name.clone(), rel)
        }));
    }
    strategies.prop_map(|pairs| pairs.into_iter().collect())
}

fn ucq_and_instance() -> impl Strategy<Value = (Ucq, Instance)> {
    arb_ucq().prop_flat_map(|u| {
        let inst = arb_instance(&u);
        (Just(u), inst)
    })
}

/// A value-level nested-loop oracle: enumerates every homomorphism by
/// backtracking directly over the row-major [`Relation`]s — no interning,
/// no indexes, no batched probes. This is the independent reference the
/// CSR-index/batched-probe paths are checked against.
fn value_level_cq(cq: &Cq, inst: &Instance, out: &mut HashSet<Tuple>) -> Result<(), ()> {
    fn descend(
        cq: &Cq,
        inst: &Instance,
        atom_idx: usize,
        binding: &mut Vec<Option<Value>>,
        out: &mut HashSet<Tuple>,
    ) {
        if atom_idx == cq.atoms().len() {
            let row: Vec<Value> = cq
                .head()
                .iter()
                .map(|&v| binding[v as usize].expect("safe heads are bound"))
                .collect();
            out.insert(Tuple::from_row(&row));
            return;
        }
        let atom = &cq.atoms()[atom_idx];
        let Some(rel) = inst.get(&atom.rel) else {
            return; // missing relations are empty
        };
        'rows: for row in rel.iter_rows() {
            let saved = binding.clone();
            for (&v, &val) in atom.args.iter().zip(row) {
                match binding[v as usize] {
                    Some(bound) if bound != val => {
                        *binding = saved;
                        continue 'rows;
                    }
                    _ => binding[v as usize] = Some(val),
                }
            }
            descend(cq, inst, atom_idx + 1, binding, out);
            *binding = saved;
        }
    }
    for atom in cq.atoms() {
        match inst.get(&atom.rel) {
            Some(rel) if rel.arity() != atom.args.len() => return Err(()),
            _ => {}
        }
    }
    let mut binding: Vec<Option<Value>> = vec![None; cq.n_vars() as usize];
    descend(cq, inst, 0, &mut binding, out);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The strategy-selected (context-threaded) enumeration equals the
    /// naive baseline as a multiset post-dedup: no duplicates in the
    /// stream, same answer set.
    #[test]
    fn engine_matches_naive((u, inst) in ucq_and_instance()) {
        let engine = UcqEngine::new(u);
        let naive = match engine.enumerate_naive(&inst) {
            Ok(answers) => answers,
            // Schema errors (arity clashes from generation) must be
            // reported identically by the strategy path.
            Err(_) => {
                prop_assert!(engine.enumerate(&inst).is_err());
                return Ok(());
            }
        };
        let want: HashSet<Tuple> = naive.into_iter().collect();
        let got = engine.enumerate(&inst).unwrap().collect_all();
        let got_set: HashSet<Tuple> = got.iter().cloned().collect();
        prop_assert_eq!(
            got.len(), got_set.len(),
            "DelayClin streams are duplicate-free ({:?})", engine.strategy()
        );
        prop_assert_eq!(&got_set, &want, "strategy {:?}", engine.strategy());
    }

    /// The CSR-index/batched-probe paths equal the value-level nested-loop
    /// oracle: `evaluate_ucq_naive` (flat-table join + `probe_batch`) and
    /// the engine's chosen `DelayClin` strategy must both produce exactly
    /// the oracle's answer set on random instances.
    #[test]
    fn csr_and_batched_probes_match_value_level_naive((u, inst) in ucq_and_instance()) {
        let mut want: HashSet<Tuple> = HashSet::new();
        let mut schema_ok = true;
        for cq in u.cqs() {
            if value_level_cq(cq, &inst, &mut want).is_err() {
                schema_ok = false;
                break;
            }
        }
        let engine = UcqEngine::new(u.clone());
        if !schema_ok {
            // Arity clashes must surface as errors on the id paths too.
            prop_assert!(ucq_core::evaluate_ucq_naive(&u, &inst).is_err());
            return Ok(());
        }
        let got: HashSet<Tuple> =
            ucq_core::evaluate_ucq_naive(&u, &inst).unwrap().into_iter().collect();
        prop_assert_eq!(&got, &want, "batched naive vs value-level oracle");
        let via_engine: HashSet<Tuple> =
            engine.enumerate(&inst).unwrap().collect_all().into_iter().collect();
        prop_assert_eq!(&via_engine, &want, "strategy {:?} vs oracle", engine.strategy());
    }

    /// The id-level Theorem 12 pipeline equals the value-level nested-loop
    /// oracle on every random union that plans as free-connex: same answer
    /// set after dedup, no duplicates in the stream, and the spine's
    /// decode discipline holds (`decoded == emitted`).
    #[test]
    fn id_pipeline_matches_value_level_oracle((u, inst) in ucq_and_instance()) {
        let Some(plan) = plan_free_connex(&u, &SearchConfig::default()) else {
            return Ok(()); // not free-connex: the pipeline does not apply
        };
        let mut want: HashSet<Tuple> = HashSet::new();
        let mut schema_ok = true;
        for cq in u.cqs() {
            if value_level_cq(cq, &inst, &mut want).is_err() {
                schema_ok = false;
                break;
            }
        }
        let built = UcqPipeline::build(&u, &plan, &inst);
        if !schema_ok {
            prop_assert!(built.is_err(), "arity clash must error on the id spine");
            return Ok(());
        }
        let mut p = built.unwrap();
        let got = p.collect_all();
        let got_set: HashSet<Tuple> = got.iter().cloned().collect();
        prop_assert_eq!(got.len(), got_set.len(), "pipeline stream is duplicate-free");
        prop_assert_eq!(&got_set, &want, "id pipeline vs value-level oracle");
        let s = p.stats();
        prop_assert_eq!(s.decoded, s.emitted, "decode exactly once per emission");
        prop_assert_eq!(s.emitted, got.len());
    }

    /// A frozen session equals the value-level nested-loop oracle: the
    /// freeze must preserve the answer set exactly (for every strategy,
    /// including the pre-materialized naive fallback), repeated frozen
    /// drains stay stable, and `decide` agrees with non-emptiness.
    #[test]
    fn frozen_session_matches_value_level_oracle((u, inst) in ucq_and_instance()) {
        let mut want: HashSet<Tuple> = HashSet::new();
        let mut schema_ok = true;
        for cq in u.cqs() {
            if value_level_cq(cq, &inst, &mut want).is_err() {
                schema_ok = false;
                break;
            }
        }
        let engine = UcqEngine::new(u);
        let session = engine.session(&inst);
        let frozen = match session.freeze() {
            // Arity clashes surface during freeze (it prepares) …
            Err(_) => {
                prop_assert!(!schema_ok, "freeze failed on a clean schema");
                return Ok(());
            }
            Ok(f) => f,
        };
        if !schema_ok {
            // … unless minimization dropped the clashing member entirely;
            // then the frozen stream must still equal the build-phase one.
            let build: HashSet<Tuple> =
                engine.enumerate(&inst).unwrap().collect_all().into_iter().collect();
            let got: HashSet<Tuple> =
                frozen.enumerate().unwrap().collect_all().into_iter().collect();
            prop_assert_eq!(&got, &build, "frozen vs build on minimized union");
            return Ok(());
        }
        for round in 0..2 {
            let got: HashSet<Tuple> =
                frozen.enumerate().unwrap().collect_all().into_iter().collect();
            prop_assert_eq!(
                &got, &want,
                "frozen round {} vs oracle ({:?})", round, frozen.strategy()
            );
        }
        prop_assert_eq!(frozen.decide().unwrap(), !want.is_empty());
    }

    /// The cost-based plan answers exactly like the first-found plan and
    /// the value-level nested-loop oracle: cost-based planning may change
    /// *which* providers materialize and in what order, never the answer
    /// set. Also pins search agreement — the costed planner finds a plan
    /// iff the first-found planner does.
    #[test]
    fn costed_plan_matches_first_found_and_oracle((u, inst) in ucq_and_instance()) {
        use ucq_core::plan_free_connex_costed;
        use ucq_storage::CtxView;

        let cfg = SearchConfig::default();
        let first = plan_free_connex(&u, &cfg);
        let ctx = CtxView::new();
        let costed = plan_free_connex_costed(&u, &cfg, &inst, &ctx);
        prop_assert_eq!(
            first.is_some(), costed.is_some(),
            "costed and first-found searches must agree on plan existence"
        );
        let (Some(first), Some(costed)) = (first, costed) else { return Ok(()); };
        prop_assert_eq!(costed.estimates.len(), costed.plan.atoms.len());

        let mut want: HashSet<Tuple> = HashSet::new();
        let mut schema_ok = true;
        for cq in u.cqs() {
            if value_level_cq(cq, &inst, &mut want).is_err() {
                schema_ok = false;
                break;
            }
        }
        let via_first = UcqPipeline::build_in(&u, &first, &inst, &ctx);
        let via_costed = UcqPipeline::build_in(&u, &costed.plan, &inst, &ctx);
        if !schema_ok {
            prop_assert!(via_first.is_err() && via_costed.is_err(), "arity clash errors on both");
            return Ok(());
        }
        let first_set: HashSet<Tuple> =
            via_first.unwrap().collect_all().into_iter().collect();
        let costed_answers = via_costed.unwrap().collect_all();
        let costed_set: HashSet<Tuple> = costed_answers.iter().cloned().collect();
        prop_assert_eq!(costed_answers.len(), costed_set.len(), "costed stream duplicate-free");
        prop_assert_eq!(&costed_set, &want, "costed plan vs value-level oracle");
        prop_assert_eq!(&costed_set, &first_set, "costed plan vs first-found plan");
    }

    /// Repeated session evaluations agree with the one-shot path.
    #[test]
    fn session_matches_oneshot((u, inst) in ucq_and_instance()) {
        let engine = UcqEngine::new(u);
        let Ok(reference) = engine.enumerate_naive(&inst) else { return Ok(()); };
        let want: HashSet<Tuple> = reference.into_iter().collect();
        let session = engine.session(&inst);
        for round in 0..2 {
            let got: HashSet<Tuple> =
                session.enumerate().unwrap().collect_all().into_iter().collect();
            prop_assert_eq!(&got, &want, "session round {}", round);
        }
        prop_assert_eq!(session.decide().unwrap(), !want.is_empty());
    }
}
