//! Model-checks the serve-phase races PR 7 layered on the freeze
//! protocol: the shared plan-cache insert race, the engine's lazily
//! prepared `CostedSearch` (`OnceLock`), and `CdyEngine`'s lazily built
//! row-sets — all through the *public* evaluation entry points, so the
//! production code paths themselves run under the explorer.
//!
//! Run with the seam active for full interleaving coverage:
//!
//! ```text
//! RUSTFLAGS="--cfg ucq_model_check" cargo test -p ucq-core --test model_check_plan_cache
//! ```
//!
//! Under the seam every lock/atomic in the pipeline is a decision point,
//! so the schedule space is huge; these tests cap exploration and accept
//! truncation — the point is that *every explored schedule* serves
//! correct answers, not that the space is exhausted. Under a plain
//! `cargo test` the same assertions run over the (few) spawn/join
//! interleavings.

use std::collections::HashSet;
use std::sync::Arc;
use ucq_core::UcqEngine;
use ucq_enumerate::Enumerator;
use ucq_query::{parse_cq, parse_ucq};
use ucq_storage::{CtxView, Instance, Relation, Tuple, Value};
use ucq_yannakakis::CdyEngine;

fn capped() -> shuttle::Config {
    shuttle::Config {
        max_schedules: 200,
        max_preemptions: 2,
    }
}

fn chain_instance() -> Instance {
    [
        ("R1", Relation::from_pairs([(1, 2), (5, 2)])),
        ("R2", Relation::from_pairs([(2, 3)])),
        ("R3", Relation::from_pairs([(3, 4)])),
    ]
    .into_iter()
    .collect()
}

/// Two serving threads race `enumerate_in` over one frozen context: both
/// may miss the plan cache, price a plan, and `store_plan` it — the last
/// insert wins, and every explored schedule must serve the exact answer
/// set either way. This also races `UcqEngine::costed`'s `get_or_init`.
#[test]
fn plan_cache_insert_race_serves_exact_answers() {
    let ucq = parse_ucq(
        "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
         Q2(x, y, w) <- R1(x, y), R2(y, w)",
    )
    .unwrap();
    let instance = Arc::new(chain_instance());
    let baseline: HashSet<Tuple> = UcqEngine::new(ucq.clone())
        .enumerate(&instance)
        .unwrap()
        .collect_all()
        .into_iter()
        .collect();
    assert!(!baseline.is_empty(), "degenerate baseline");

    let report = shuttle::model_with(capped(), move || {
        // Fresh engine + fresh frozen context per schedule, so the
        // OnceLock and the plan cache are racy in *every* schedule, not
        // just the first.
        let eng = Arc::new(UcqEngine::new(ucq.clone()));
        let ctx = CtxView::new().freeze();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let eng = Arc::clone(&eng);
                let ctx = ctx.clone();
                let instance = Arc::clone(&instance);
                let baseline = baseline.clone();
                shuttle::thread::spawn(move || {
                    let got: HashSet<Tuple> = eng
                        .enumerate_in(&ctx, &instance)
                        .expect("enumeration failed mid-race")
                        .collect_all()
                        .into_iter()
                        .collect();
                    assert_eq!(got, baseline, "racy plan produced wrong answers");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    assert!(
        report.schedules > 1,
        "explored only {} schedules",
        report.schedules
    );
}

/// `CdyEngine`'s per-node row-sets are built lazily via `OnceLock`
/// inside `contains`; two threads probing concurrently must agree with
/// the sequential truth on every explored schedule.
#[test]
fn row_set_once_lock_init_race_keeps_membership_exact() {
    let cq = parse_cq("Q(x, y) <- R(x, y), S(y, z)").unwrap();
    let instance: Instance = [
        ("R", Relation::from_pairs([(1, 2), (7, 8)])),
        ("S", Relation::from_pairs([(2, 3)])),
    ]
    .into_iter()
    .collect();
    let instance = Arc::new(instance);

    let report = shuttle::model_with(capped(), move || {
        let ctx = CtxView::new().freeze();
        let eng =
            Arc::new(CdyEngine::for_query_in(&cq, &instance, &ctx).expect("free-connex query"));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let eng = Arc::clone(&eng);
                shuttle::thread::spawn(move || {
                    let hit = Tuple::from_row(&[Value::Int(1), Value::Int(2)]);
                    let miss = Tuple::from_row(&[Value::Int(7), Value::Int(8)]);
                    assert!(eng.contains(&hit), "answer lost during row-set init race");
                    assert!(!eng.contains(&miss), "phantom answer during init race");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    assert!(
        report.schedules > 1,
        "explored only {} schedules",
        report.schedules
    );
}
