//! Property tests for classification and the DelayClin pipelines.
//!
//! The strongest one checks Theorem 29 exactness on random body-isomorphic
//! pairs: the planner certifies free-connexity **iff** both members are
//! free-path guarded and bypass guarded — i.e. Lemma 28's construction is
//! always found by the bounded search, and the guards are decided
//! correctly.

use proptest::prelude::*;
use std::collections::HashSet;
use ucq_core::{
    classify, evaluate_ucq_naive_set, plan_free_connex, SearchConfig, Strategy as EvalStrategy,
    UcqEngine, Verdict,
};
use ucq_query::{Cq, Ucq};
use ucq_storage::{Instance, Relation, Tuple, Value};

const VARS: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

/// A random self-join-free CQ over ≤ 6 variables with 1–4 atoms.
fn arb_cq(name: &'static str) -> impl Strategy<Value = Cq> {
    let atom = proptest::collection::vec(0..6u32, 1..=3);
    (
        proptest::collection::vec(atom, 1..=4),
        proptest::collection::vec(proptest::bool::ANY, 6),
    )
        .prop_filter_map("valid", move |(atoms, head_bits)| {
            let used: HashSet<u32> = atoms.iter().flatten().copied().collect();
            let head: Vec<&str> = (0..6u32)
                .filter(|v| head_bits[*v as usize] && used.contains(v))
                .map(|v| VARS[v as usize])
                .collect();
            let specs: Vec<(String, Vec<&str>)> = atoms
                .iter()
                .enumerate()
                .map(|(i, args)| {
                    (
                        format!("{name}R{i}"),
                        args.iter().map(|&v| VARS[v as usize]).collect(),
                    )
                })
                .collect();
            let refs: Vec<(&str, &[&str])> = specs
                .iter()
                .map(|(n, a)| (n.as_str(), a.as_slice()))
                .collect();
            Cq::build(name, &head, &refs).ok()
        })
}

/// A random body-isomorphic pair: one random acyclic self-join-free body,
/// two random heads of equal arity.
fn arb_body_iso_pair() -> impl Strategy<Value = Ucq> {
    let atom = proptest::collection::vec(0..6u32, 2..=3);
    (
        proptest::collection::vec(atom, 2..=4),
        proptest::collection::vec(0..6u32, 1..=4),
        proptest::collection::vec(0..6u32, 1..=4),
    )
        .prop_filter_map("valid pair", |(atoms, h1, h2)| {
            let used: Vec<u32> = {
                let s: HashSet<u32> = atoms.iter().flatten().copied().collect();
                let mut v: Vec<u32> = s.into_iter().collect();
                v.sort_unstable();
                v
            };
            let arity = h1.len().min(h2.len());
            let pick = |h: &[u32]| -> Vec<&str> {
                let mut seen = HashSet::new();
                h.iter()
                    .map(|i| used[*i as usize % used.len()])
                    .filter(|v| seen.insert(*v))
                    .take(arity)
                    .map(|v| VARS[v as usize])
                    .collect()
            };
            let head1 = pick(&h1);
            let head2 = pick(&h2);
            if head1.len() != head2.len() {
                return None;
            }
            let specs: Vec<(String, Vec<&str>)> = atoms
                .iter()
                .enumerate()
                .map(|(i, args)| {
                    (
                        format!("R{i}"),
                        args.iter().map(|&v| VARS[v as usize]).collect(),
                    )
                })
                .collect();
            let refs: Vec<(&str, &[&str])> = specs
                .iter()
                .map(|(n, a)| (n.as_str(), a.as_slice()))
                .collect();
            let q1 = Cq::build("Q1", &head1, &refs).ok()?;
            let q2 = Cq::build("Q2", &head2, &refs).ok()?;
            if !q1.is_acyclic() {
                return None;
            }
            Ucq::new(vec![q1, q2]).ok()
        })
}

/// Random instance over a union's relations.
fn arb_instance(ucq: &Ucq) -> impl Strategy<Value = Instance> {
    let specs: Vec<(String, usize)> = ucq
        .cqs()
        .iter()
        .flat_map(|cq| cq.atoms().iter().map(|a| (a.rel.clone(), a.args.len())))
        .collect();
    let mut strategies = Vec::new();
    for (name, arity) in specs {
        let rows = proptest::collection::vec(proptest::collection::vec(0i64..4, arity), 0..14);
        strategies.push(rows.prop_map(move |rows| {
            let mut rel = Relation::new(arity);
            for row in &rows {
                let vals: Vec<Value> = row.iter().map(|&x| Value::Int(x)).collect();
                rel.push_row(&vals);
            }
            (name.clone(), rel)
        }));
    }
    strategies.prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 29 exactness on random body-isomorphic acyclic pairs.
    #[test]
    fn theorem29_guards_decide_exactly(u in arb_body_iso_pair()) {
        use ucq_core::{align_body_isomorphic, guards};
        let aligned = align_body_isomorphic(&u).expect("built body-isomorphic");
        let h = aligned.body.hypergraph();
        let guarded = [(0usize, 1usize), (1, 0)].iter().all(|&(x, y)| {
            guards::is_free_path_guarded(&h, aligned.frees[x], aligned.frees[y])
                && guards::is_bypass_guarded(&aligned.body, aligned.frees[x], aligned.frees[y])
        });
        let plan = plan_free_connex(&u, &SearchConfig::default());
        prop_assert_eq!(
            plan.is_some(),
            guarded,
            "Theorem 29: free-connex iff guarded, for\n{}", u
        );
    }

    /// Whenever classification says free-connex, the pipeline output equals
    /// the naive union, duplicate-free, on random instances.
    #[test]
    fn tractable_verdicts_are_executable(
        (u, inst) in (arb_cq("Q1"), arb_cq("Q2"))
            .prop_filter_map("same arity", |(q1, q2)| Ucq::new(vec![q1, q2]).ok())
            .prop_flat_map(|u| {
                let inst = arb_instance(&u);
                (Just(u), inst)
            })
    ) {
        let engine = UcqEngine::new(u.clone());
        prop_assume!(engine.strategy() != EvalStrategy::Naive);
        let mut ans = engine.enumerate(&inst).expect("DelayClin strategy");
        let mut got = Vec::new();
        while let Some(t) = ucq_enumerate::Enumerator::next(&mut ans) {
            got.push(t);
        }
        let set: HashSet<Tuple> = got.iter().cloned().collect();
        prop_assert_eq!(got.len(), set.len(), "duplicates from pipeline");
        let naive = evaluate_ucq_naive_set(&engine.classification().minimized, &inst)
            .expect("naive");
        prop_assert_eq!(set, naive);
    }

    /// Minimization never changes semantics.
    #[test]
    fn minimization_preserves_semantics(
        (u, inst) in (arb_cq("Q1"), arb_cq("Q2"))
            .prop_filter_map("same arity", |(q1, q2)| Ucq::new(vec![q1, q2]).ok())
            .prop_flat_map(|u| {
                let inst = arb_instance(&u);
                (Just(u), inst)
            })
    ) {
        let c = classify(&u);
        let full = evaluate_ucq_naive_set(&u, &inst).expect("full");
        let min = evaluate_ucq_naive_set(&c.minimized, &inst).expect("minimized");
        prop_assert_eq!(full, min);
    }

    /// The classifier never crashes and always yields a verdict with
    /// consistent metadata on arbitrary two-member unions.
    #[test]
    fn classifier_total_on_random_pairs(
        u in (arb_cq("Q1"), arb_cq("Q2"))
            .prop_filter_map("same arity", |(q1, q2)| Ucq::new(vec![q1, q2]).ok())
    ) {
        let c = classify(&u);
        prop_assert_eq!(c.statuses.len(), c.minimized.len());
        prop_assert_eq!(c.kept.len(), c.minimized.len());
        if let Verdict::FreeConnex { plan } = &c.verdict {
            prop_assert_eq!(plan.chosen.len(), c.minimized.len());
        }
    }
}
