//! Multi-thread equivalence for frozen sessions: N threads draining one
//! [`FrozenSession`] must each produce exactly the single-threaded answer
//! multiset, for every strategy arm (Algorithm 1, the Theorem 12 union
//! pipeline, and the pre-materialized naive fallback).
//!
//! `UCQ_PAR_THREADS=4` is pinned so the preprocessing layer's sharded
//! builds also exercise their parallel paths regardless of host core
//! count.

use std::collections::HashMap;
use ucq_core::{Strategy, UcqEngine};
use ucq_enumerate::Enumerator;
use ucq_query::parse_ucq;
use ucq_storage::{Instance, Relation, Tuple};

/// Answers as a multiset: duplicate emissions must survive the comparison.
fn multiset(answers: Vec<Tuple>) -> HashMap<Tuple, usize> {
    let mut m = HashMap::new();
    for t in answers {
        *m.entry(t).or_insert(0usize) += 1;
    }
    m
}

/// A deterministic pseudo-random binary relation (splitmix-style hash of
/// the row index — no RNG dependency in this crate's tests).
fn scrambled_pairs(rows: usize, domain: i64, salt: u64) -> Relation {
    Relation::from_pairs((0..rows as u64).map(|i| {
        let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (
            (x as i64).rem_euclid(domain),
            ((x >> 17) as i64).rem_euclid(domain),
        )
    }))
}

/// Freezes the engine's session over `inst` and checks that `threads`
/// concurrent drains each reproduce the single-threaded multiset.
fn assert_threads_match(engine: &UcqEngine, inst: &Instance, threads: usize) {
    let frozen = engine
        .session(inst)
        .freeze()
        .unwrap_or_else(|e| panic!("freeze ({:?}): {e}", engine.strategy()));
    let want = multiset(frozen.enumerate().expect("reference drain").collect_all());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| s.spawn(|| multiset(frozen.enumerate().expect("drain").collect_all())))
            .collect();
        for h in handles {
            assert_eq!(
                h.join().expect("no panic"),
                want,
                "thread multiset diverged ({:?})",
                engine.strategy()
            );
        }
    });
    assert_eq!(frozen.decide().expect("decide"), !want.is_empty());
}

#[test]
fn four_threads_match_single_threaded_multiset_across_strategies() {
    std::env::set_var("UCQ_PAR_THREADS", "4");
    let cases = [
        // Full-head path: all members free-connex, no extension needed.
        (
            "Q(x, z, y) <- A(x, z), B(z, y)",
            Strategy::Algorithm1,
            vec![("A", 400usize, 40i64, 1u64), ("B", 400, 40, 2)],
        ),
        // Example 2: a hard CQ made tractable by a providing member.
        (
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
            Strategy::UnionExtension,
            vec![("R1", 200, 12, 3), ("R2", 200, 12, 4), ("R3", 200, 12, 5)],
        ),
        // Cyclic triangle: intractable, served by the pre-materialized
        // naive table.
        (
            "Q(x, y, z) <- R(x, y), S(y, z), T(z, x)",
            Strategy::Naive,
            vec![("R", 300, 10, 6), ("S", 300, 10, 7), ("T", 300, 10, 8)],
        ),
    ];
    for (text, strategy, rels) in cases {
        let engine = UcqEngine::new(parse_ucq(text).expect("well-formed"));
        assert_eq!(engine.strategy(), strategy, "case coverage drifted: {text}");
        let inst: Instance = rels
            .into_iter()
            .map(|(name, rows, domain, salt)| (name, scrambled_pairs(rows, domain, salt)))
            .collect();
        assert_threads_match(&engine, &inst, 4);
    }
}

#[test]
fn eight_threads_on_a_shared_union_session() {
    std::env::set_var("UCQ_PAR_THREADS", "4");
    let engine = UcqEngine::new(
        parse_ucq(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
        )
        .expect("well-formed"),
    );
    let inst: Instance = [
        ("R1", scrambled_pairs(500, 16, 21)),
        ("R2", scrambled_pairs(500, 16, 22)),
        ("R3", scrambled_pairs(500, 16, 23)),
    ]
    .into_iter()
    .collect();
    assert_threads_match(&engine, &inst, 8);
}

#[test]
fn frozen_session_agrees_with_unfrozen_session() {
    let engine = UcqEngine::new(parse_ucq("Q(x, z, y) <- A(x, z), B(z, y)").expect("well-formed"));
    let inst: Instance = [
        ("A", scrambled_pairs(250, 20, 31)),
        ("B", scrambled_pairs(250, 20, 32)),
    ]
    .into_iter()
    .collect();
    let session = engine.session(&inst);
    let before = multiset(
        session
            .enumerate()
            .expect("build-phase drain")
            .collect_all(),
    );
    let frozen = session.freeze().expect("freeze");
    let after = multiset(frozen.enumerate().expect("frozen drain").collect_all());
    assert_eq!(before, after, "freezing must not change the answer stream");
}
