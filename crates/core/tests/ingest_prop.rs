//! Property tests for delta ingestion + epoch re-freezing: random
//! insert/delete sequences interleaved with enumeration must keep the
//! incrementally-maintained frozen session (`insert_rows`/`delete_rows`
//! into the shared build context, then [`FrozenSession::refreeze`])
//! answer-identical to a from-scratch rebuild at every step — for all
//! three strategy arms (Algorithm 1, the union-extension pipeline, and
//! the naive fallback).

use proptest::prelude::*;
use std::collections::HashSet;
use ucq_core::{FrozenSession, Strategy as ArmStrategy, UcqEngine};
use ucq_enumerate::Enumerator;
use ucq_query::parse_ucq;
use ucq_storage::{Instance, Relation, Tuple, Value};

/// One churn step against a named binary relation.
#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<(i64, i64)>),
    Delete(Vec<(i64, i64)>),
}

/// A random insert/delete sequence over `n_rels` relations, rows drawn
/// from a small domain so deletes actually hit live rows and inserts
/// actually join.
fn arb_ops(n_rels: usize) -> impl Strategy<Value = Vec<(usize, Op)>> {
    let rows = proptest::collection::vec((0i64..8, 0i64..8), 1..4);
    let op = (0..n_rels, proptest::bool::ANY, rows).prop_map(|(r, del, rows)| {
        (
            r,
            if del {
                Op::Delete(rows)
            } else {
                Op::Insert(rows)
            },
        )
    });
    proptest::collection::vec(op, 1..10)
}

fn pairs_rel(rows: &[(i64, i64)]) -> Relation {
    Relation::from_pairs(rows.iter().copied())
}

fn base_instance(rels: &[&str], seeds: &[(i64, i64)]) -> Instance {
    rels.iter().map(|&name| (name, pairs_rel(seeds))).collect()
}

fn answers(frozen: &FrozenSession<'_>) -> HashSet<Tuple> {
    frozen
        .enumerate()
        .unwrap()
        .collect_all()
        .into_iter()
        .collect()
}

/// Drives one random churn sequence: each step rewrites one relation via
/// the shared build context (O(Δ) interning, CSR merge, tombstones),
/// refreezes the next epoch, and checks it against a fresh private-context
/// build of the same instance. The pre-churn epoch must keep answering
/// with its original answer set throughout (snapshot isolation).
fn check_sequence(
    text: &str,
    want_strategy: ArmStrategy,
    rels: &[&str],
    ops: Vec<(usize, Op)>,
) -> Result<(), TestCaseError> {
    let engine = UcqEngine::new(parse_ucq(text).unwrap());
    prop_assert_eq!(engine.strategy(), want_strategy);
    let seeds: Vec<(i64, i64)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
    let mut current = base_instance(rels, &seeds);
    let first = engine.session(&current).freeze().unwrap();
    let epoch0_want = answers(&first);
    let mut frozen = first.refreeze(&current).unwrap(); // no-op rotation
    for (step, (rel_idx, op)) in ops.into_iter().enumerate() {
        let name = rels[rel_idx % rels.len()];
        let base = current.get_shared(name).expect("base relation exists");
        let next_rel = match &op {
            Op::Insert(rows) => frozen.build_context().insert_rows(&base, &pairs_rel(rows)),
            Op::Delete(rows) => frozen.build_context().delete_rows(&base, &pairs_rel(rows)),
        };
        current = current.with_relation_shared(name, next_rel);
        frozen = frozen.refreeze(&current).unwrap();
        let got = answers(&frozen);
        let want: HashSet<Tuple> = engine
            .enumerate(&current)
            .unwrap()
            .collect_all()
            .into_iter()
            .collect();
        prop_assert_eq!(
            &got,
            &want,
            "step {} ({:?} on {}): incremental vs from-scratch ({:?})",
            step,
            op,
            name,
            engine.strategy()
        );
    }
    // The original epoch still serves its original answers: churn went
    // through fresh Arc handles, never through the frozen snapshot.
    prop_assert_eq!(&answers(&first), &epoch0_want, "epoch 0 drifted");
    Ok(())
}

/// A concrete i64 domain sanity check on the generator plumbing.
#[test]
fn delete_of_never_seen_values_is_a_noop() {
    let engine = UcqEngine::new(parse_ucq("Q(x, y) <- R(x, y)").unwrap());
    let inst: Instance = [("R", pairs_rel(&[(1, 2), (3, 4)]))].into_iter().collect();
    let frozen = engine.session(&inst).freeze().unwrap();
    let r2 = frozen
        .build_context()
        .delete_rows(&inst.get_shared("R").unwrap(), &pairs_rel(&[(77, 88)]));
    let inst2 = inst.with_relation_shared("R", r2);
    let next = frozen.refreeze(&inst2).unwrap();
    assert_eq!(answers(&next), answers(&frozen));
}

/// The interned mirrors and the value-level relations must agree after
/// churn: decoding the mirror back through the dictionary reproduces the
/// live rows exactly.
#[test]
fn mirror_decodes_back_to_live_rows_after_churn() {
    let engine = UcqEngine::new(parse_ucq("Q(x, y) <- R(x, y)").unwrap());
    let inst: Instance = [("R", pairs_rel(&[(1, 2), (3, 4), (5, 6)]))]
        .into_iter()
        .collect();
    let frozen = engine.session(&inst).freeze().unwrap();
    let ctx = frozen.build_context();
    let r = inst.get_shared("R").unwrap();
    let r = ctx.insert_rows(&r, &pairs_rel(&[(7, 8)]));
    let r = ctx.delete_rows(&r, &pairs_rel(&[(3, 4)]));
    let live: HashSet<Vec<Value>> = r.iter_rows().map(|row| row.to_vec()).collect();
    assert_eq!(live.len(), 3);
    assert!(!live.contains(&vec![Value::Int(3), Value::Int(4)]));
    assert!(live.contains(&vec![Value::Int(7), Value::Int(8)]));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Algorithm 1 arm: a union of two free-connex CQs over disjoint
    /// relations; churn hits either member.
    #[test]
    fn algorithm1_incremental_matches_rebuild(
        ops in arb_ops(2)
    ) {
        check_sequence(
            "Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)",
            ArmStrategy::Algorithm1,
            &["R", "S"],
            ops,
        )?;
    }

    /// Union-extension arm (the Theorem 12 pipeline): churn forces
    /// re-planning + re-preparation of the whole prep against the shared
    /// context.
    #[test]
    fn union_extension_incremental_matches_rebuild(
        ops in arb_ops(3)
    ) {
        check_sequence(
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
            ArmStrategy::UnionExtension,
            &["R1", "R2", "R3"],
            ops,
        )?;
    }

    /// Naive arm: a non-free-connex projection; refreeze rematerializes
    /// the answer table from the churned instance.
    #[test]
    fn naive_incremental_matches_rebuild(
        ops in arb_ops(2)
    ) {
        check_sequence(
            "Q(x, y) <- A(x, z), B(z, y)",
            ArmStrategy::Naive,
            &["A", "B"],
            ops,
        )?;
    }
}
