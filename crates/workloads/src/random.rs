//! Random instance generation for queries.
//!
//! Uniform tuples over a bounded domain: with `rows` tuples per relation and
//! domain size `Θ(rows / join_factor)`, multi-way joins have plentiful but
//! not explosive matches — the regime the delay experiments need.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use ucq_query::Ucq;
use ucq_storage::{Instance, Relation, Value};

/// Parameters for [`random_instance`].
#[derive(Clone, Copy, Debug)]
pub struct InstanceSpec {
    /// Tuples per relation.
    pub rows_per_relation: usize,
    /// Domain size (values drawn uniformly from `0..domain`).
    pub domain: i64,
    /// RNG seed (generation is deterministic given the spec).
    pub seed: u64,
}

impl InstanceSpec {
    /// A spec whose domain scales as `rows / 4` — dense enough for joins to
    /// produce output at every size.
    pub fn scaled(rows_per_relation: usize, seed: u64) -> InstanceSpec {
        InstanceSpec {
            rows_per_relation,
            domain: (rows_per_relation as i64 / 4).max(4),
            seed,
        }
    }
}

/// Generates an instance for every relation mentioned in `ucq`.
///
/// Panics if the union uses one relation name with two different arities.
pub fn random_instance(ucq: &Ucq, spec: &InstanceSpec) -> Instance {
    let mut arities: HashMap<&str, usize> = HashMap::new();
    for cq in ucq.cqs() {
        for atom in cq.atoms() {
            let prev = arities.insert(atom.rel.as_str(), atom.args.len());
            if let Some(p) = prev {
                assert_eq!(
                    p,
                    atom.args.len(),
                    "inconsistent arity for relation {}",
                    atom.rel
                );
            }
        }
    }
    let mut names: Vec<&str> = arities.keys().copied().collect();
    names.sort_unstable();

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut inst = Instance::new();
    for name in names {
        let arity = arities[name];
        let mut rel = Relation::with_capacity(arity, spec.rows_per_relation);
        let mut row = vec![Value::Int(0); arity];
        for _ in 0..spec.rows_per_relation {
            for slot in row.iter_mut() {
                *slot = Value::Int(rng.gen_range(0..spec.domain));
            }
            rel.push_row(&row);
        }
        rel.sort_dedup();
        inst.insert(name, rel);
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_query::parse_ucq;

    #[test]
    fn deterministic_given_seed() {
        let u = parse_ucq("Q(x, y) <- R(x, z), S(z, y)").unwrap();
        let spec = InstanceSpec {
            rows_per_relation: 100,
            domain: 20,
            seed: 7,
        };
        let a = random_instance(&u, &spec);
        let b = random_instance(&u, &spec);
        assert_eq!(a.get("R").unwrap().len(), b.get("R").unwrap().len());
        assert_eq!(
            a.get("R").unwrap().iter_rows().collect::<Vec<_>>(),
            b.get("R").unwrap().iter_rows().collect::<Vec<_>>()
        );
    }

    #[test]
    fn covers_all_relations_with_right_arities() {
        let u = parse_ucq("Q(x, y) <- R(x, z), S(z, y), T(x, y, z)").unwrap();
        let inst = random_instance(&u, &InstanceSpec::scaled(50, 1));
        assert_eq!(inst.get("R").unwrap().arity(), 2);
        assert_eq!(inst.get("T").unwrap().arity(), 3);
        assert!(inst.get("R").unwrap().len() <= 50);
    }

    #[test]
    fn joins_produce_output_at_scaled_density() {
        let u = parse_ucq("Q(x, z, y) <- R(x, z), S(z, y)").unwrap();
        let inst = random_instance(&u, &InstanceSpec::scaled(512, 42));
        let answers = ucq_core::evaluate_ucq_naive(&u, &inst).expect("evaluates");
        assert!(!answers.is_empty(), "scaled spec must produce join output");
    }

    #[test]
    #[should_panic(expected = "inconsistent arity")]
    fn inconsistent_arity_panics() {
        let u = parse_ucq("Q1(x) <- R(x, y)\nQ2(a) <- R(a)").unwrap();
        random_instance(&u, &InstanceSpec::scaled(10, 0));
    }
}
