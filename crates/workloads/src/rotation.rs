//! A churn-and-rotate load generator: delta ingestion + epoch re-freezing
//! under live serving traffic.
//!
//! Where [`crate::resilient::drive_resilient`] stresses one fixed snapshot
//! with misbehaving requests, this driver exercises the *write* side of
//! the serve lifecycle: requests resolve their session through a shared
//! [`EpochCell`] ([`Request::from_cell`]), and between request batches the
//! driver ingests a delta into the session's build context
//! (`insert_rows`), re-freezes the next epoch
//! ([`FrozenSession::refreeze`] — delta-proportional work), and installs
//! it into the cell *while the previous batch is still in flight*. The
//! report proves the zero-downtime claims:
//!
//! * nothing is shed because of a rotation (the pool never pauses);
//! * every drained request's answers equal a fresh-build oracle of some
//!   epoch at or after the one current when it was submitted — in-flight
//!   requests finish on their old epoch, later ones see the new one;
//! * with [`RotationSpec::fault_rotations`] (chaos suite, under
//!   `--cfg ucq_fault_inject`), a refreeze killed by an injected panic
//!   leaves the previous epoch installed and serving.

use crate::serving::ServingReport;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;
use ucq_core::{EvalError, UcqEngine};
use ucq_enumerate::Enumerator;
use ucq_serve::{serve, EpochCell, Request, ServeConfig};
use ucq_storage::{faults, Instance, Relation, Tuple};

/// The shape of one rotation run: pool size, batch size, and whether the
/// refreezes themselves run with the fault seam armed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RotationSpec {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Admission-queue bound.
    pub queue_capacity: usize,
    /// Requests submitted per phase (once before any rotation, then once
    /// after each delta — each batch still in flight when the next epoch
    /// installs).
    pub requests_per_phase: usize,
    /// Arm the `ucq_fault_inject` seam around each refreeze (a no-op
    /// without the cfg): injected panics abort the rotation, which must
    /// leave the previous epoch installed.
    pub fault_rotations: bool,
}

impl RotationSpec {
    /// A fault-free rotation run.
    pub fn steady(
        workers: usize,
        queue_capacity: usize,
        requests_per_phase: usize,
    ) -> RotationSpec {
        RotationSpec {
            workers,
            queue_capacity,
            requests_per_phase,
            fault_rotations: false,
        }
    }

    /// Arms the fault seam around every refreeze.
    pub fn with_faulted_rotations(mut self) -> RotationSpec {
        self.fault_rotations = true;
        self
    }
}

/// What one [`drive_rotation`] run proved. The serving ledger is in
/// [`RotationReport::serving`]; the rotation-specific counters classify
/// every drained request against per-epoch fresh-build oracles.
#[derive(Clone, Debug)]
pub struct RotationReport {
    /// Deltas the driver tried to rotate in.
    pub rotations_attempted: usize,
    /// Rotations that installed a new epoch (all of them, unless a faulted
    /// refreeze was aborted by an injected panic).
    pub rotations_installed: usize,
    /// The cell's epoch after the run (equals `rotations_installed`).
    pub final_epoch: u64,
    /// Drained requests whose answers matched the fresh-build oracle of an
    /// admissible epoch (at or after the epoch current at submission).
    pub matched: usize,
    /// The subset of `matched` that served exactly the epoch current at
    /// submission — when the final epoch is newer, these are requests that
    /// finished on an old epoch while rotation proceeded.
    pub pinned_to_submit_epoch: usize,
    /// The subset of `matched` that served a newer epoch than the one at
    /// submission (dequeued after an install).
    pub upgraded_epoch: usize,
    /// Drained requests matching no admissible oracle — always zero unless
    /// rotation broke snapshot isolation.
    pub mismatched: usize,
    /// The runtime's outcome ledger and latency numbers.
    pub serving: ServingReport,
}

impl RotationReport {
    /// Whether every drained request was oracle-identical to some
    /// admissible epoch.
    pub fn oracle_identical(&self) -> bool {
        self.mismatched == 0
    }
}

/// A fresh-build oracle: one-shot enumeration with a private context.
fn oracle(engine: &UcqEngine, instance: &Instance) -> Result<HashSet<Tuple>, EvalError> {
    Ok(engine
        .enumerate(instance)?
        .collect_all()
        .into_iter()
        .collect())
}

/// Serves `requests_per_phase` requests per epoch through a bounded pool
/// while rotating `deltas` into `churn_rel` one at a time: ingest via
/// `insert_rows` on the live session's build context, build the next epoch
/// with `refreeze`, install it into the shared [`EpochCell`] — all without
/// pausing the pool. Every drained request is checked against the
/// fresh-build oracles of the epochs it could legitimately have served.
pub fn drive_rotation(
    engine: &UcqEngine,
    instance: &Instance,
    churn_rel: &str,
    deltas: &[Relation],
    spec: &RotationSpec,
) -> Result<RotationReport, EvalError> {
    let config = ServeConfig::new(spec.workers, spec.queue_capacity)
        .expect("rotation spec needs positive workers and queue capacity");
    let mut expected = vec![oracle(engine, instance)?];
    let cell = Arc::new(EpochCell::from_arc(Arc::new(
        engine.session(instance).freeze()?,
    )));
    let mut current = instance.clone();
    let mut rotations_installed = 0usize;
    let t0 = Instant::now();
    let (outcome, stats) = serve(config, |handle| -> Result<_, EvalError> {
        let mut tickets = Vec::with_capacity((deltas.len() + 1) * spec.requests_per_phase);
        for phase in 0..=deltas.len() {
            for _ in 0..spec.requests_per_phase {
                let at_epoch = cell.epoch();
                let submitted_at = Instant::now();
                if let Ok(ticket) = handle.submit(Request::from_cell(Arc::clone(&cell))) {
                    tickets.push((at_epoch, submitted_at, ticket));
                }
            }
            let Some(delta) = deltas.get(phase) else {
                break;
            };
            // Rotate while this phase's requests are still in flight: O(Δ)
            // ingest into the shared build context, delta-only refreeze,
            // epoch install. The pool never stops admitting.
            let session = cell.load();
            let base = current
                .get_shared(churn_rel)
                .expect("churn relation exists in the instance");
            let next_rel = session.build_context().insert_rows(&base, delta);
            let next_instance = current.with_relation_shared(churn_rel, next_rel);
            let refrozen = if spec.fault_rotations {
                catch_unwind(AssertUnwindSafe(|| {
                    faults::armed(|| session.refreeze(&next_instance))
                }))
            } else {
                Ok(session.refreeze(&next_instance))
            };
            match refrozen {
                Ok(next) => {
                    cell.install(Arc::new(next?));
                    expected.push(oracle(engine, &next_instance)?);
                    current = next_instance;
                    rotations_installed += 1;
                }
                Err(_injected_panic) => {
                    // The rotation died mid-refreeze; the cell still holds
                    // the previous epoch and serving continues on it.
                }
            }
        }
        let mut first_answer_ns = Vec::with_capacity(tickets.len());
        let (mut total_answers, mut drains) = (0usize, 0usize);
        let (mut matched, mut pinned, mut upgraded, mut mismatched) = (0usize, 0, 0, 0);
        for (at_epoch, submitted_at, ticket) in tickets {
            if let Ok(served) = ticket.wait() {
                drains += 1;
                let answers = served.answers();
                total_answers += answers.len();
                if !answers.is_empty() {
                    first_answer_ns.push(submitted_at.elapsed().as_nanos() as u64);
                }
                let got: HashSet<Tuple> = answers.iter().cloned().collect();
                match expected[at_epoch as usize..]
                    .iter()
                    .position(|want| *want == got)
                {
                    Some(0) => {
                        matched += 1;
                        pinned += 1;
                    }
                    Some(_) => {
                        matched += 1;
                        upgraded += 1;
                    }
                    None => mismatched += 1,
                }
            }
        }
        Ok((
            first_answer_ns,
            total_answers,
            drains,
            matched,
            pinned,
            upgraded,
            mismatched,
        ))
    });
    let elapsed = t0.elapsed();
    let (mut first_answer_ns, total_answers, drains, matched, pinned, upgraded, mismatched) =
        outcome?;
    first_answer_ns.sort_unstable();
    Ok(RotationReport {
        rotations_attempted: deltas.len(),
        rotations_installed,
        final_epoch: cell.epoch(),
        matched,
        pinned_to_submit_epoch: pinned,
        upgraded_epoch: upgraded,
        mismatched,
        serving: ServingReport {
            threads: spec.workers,
            drains,
            total_answers,
            elapsed,
            first_answer_ns,
            submitted: stats.submitted,
            shed: stats.shed,
            partial: stats.partial,
            timed_out: stats.timed_out,
            panicked: stats.panicked,
            drained: stats.drained,
            queue_high_water: stats.queue_high_water,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_query::parse_ucq;

    fn deltas(n: usize, start: i64) -> Vec<Relation> {
        (0..n as i64)
            .map(|d| Relation::from_pairs([(start + 2 * d, start + 2 * d + 1)]))
            .collect()
    }

    #[test]
    fn algorithm1_rotation_is_oracle_identical_with_zero_shed() {
        let engine = UcqEngine::new(parse_ucq("Q1(x, y) <- R(x, y)\nQ2(a, b) <- S(a, b)").unwrap());
        let instance: Instance = [
            ("R", Relation::from_pairs((0..20).map(|i| (i, i + 1)))),
            ("S", Relation::from_pairs([(100, 101)])),
        ]
        .into_iter()
        .collect();
        let spec = RotationSpec::steady(2, 64, 8);
        let report = drive_rotation(&engine, &instance, "R", &deltas(3, 1000), &spec).unwrap();
        assert_eq!(report.rotations_installed, 3);
        assert_eq!(report.final_epoch, 3);
        assert!(report.oracle_identical(), "{report:?}");
        assert_eq!(report.serving.shed, 0, "rotation never sheds");
        assert_eq!(report.serving.drains, 4 * 8, "every request drained");
        assert_eq!(report.matched, 4 * 8);
    }

    #[test]
    fn union_extension_rotation_is_oracle_identical() {
        let engine = UcqEngine::new(
            parse_ucq(
                "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
                 Q2(x, y, w) <- R1(x, y), R2(y, w)",
            )
            .unwrap(),
        );
        let instance: Instance = [
            ("R1", Relation::from_pairs([(1, 2), (1, 5), (9, 7)])),
            ("R2", Relation::from_pairs([(2, 3), (5, 3), (7, 0)])),
            ("R3", Relation::from_pairs([(3, 4), (3, 6), (0, 2)])),
        ]
        .into_iter()
        .collect();
        let spec = RotationSpec::steady(2, 32, 4);
        let ds = vec![
            Relation::from_pairs([(8, 2)]),
            Relation::from_pairs([(8, 5), (6, 7)]),
        ];
        let report = drive_rotation(&engine, &instance, "R1", &ds, &spec).unwrap();
        assert_eq!(report.rotations_installed, 2);
        assert!(report.oracle_identical(), "{report:?}");
        assert_eq!(report.serving.shed, 0);
        assert!(report.serving.total_answers > 0);
    }

    #[test]
    fn rotation_accounting_balances() {
        let engine = UcqEngine::new(parse_ucq("Q(x, y) <- R(x, y)").unwrap());
        let instance: Instance = [("R", Relation::from_pairs([(1, 2), (3, 4)]))]
            .into_iter()
            .collect();
        let spec = RotationSpec::steady(1, 16, 3);
        let report = drive_rotation(&engine, &instance, "R", &deltas(2, 50), &spec).unwrap();
        assert_eq!(report.serving.submitted, 3 * 3);
        assert_eq!(
            report.matched + report.mismatched,
            report.serving.drains,
            "every drained request classified"
        );
        assert_eq!(
            report.pinned_to_submit_epoch + report.upgraded_epoch,
            report.matched
        );
    }
}
