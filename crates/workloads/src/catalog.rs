//! The paper catalog: every example query from Carmeli & Kröll (PODS 2019),
//! with the paper's verdict about it.
//!
//! The catalog is the golden data set for the classifier tests, the
//! `classify_catalog` example, and experiment E8.

use ucq_query::{parse_ucq, Ucq};

/// What the paper says about a catalog entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaperVerdict {
    /// In `DelayClin` (free-connex union, Theorems 4/12/35).
    Tractable,
    /// Not in `DelayClin` under the stated hypotheses.
    Intractable,
    /// Complexity open, no ad-hoc proof either.
    Open,
    /// Open for the general theorems but proven hard ad hoc in the paper
    /// (Example 31 with k = 4, Example 39 with k = 4): our classifier says
    /// `Unknown`, the executable reduction demonstrates the hardness.
    OpenButProvenHard,
}

/// A catalog entry.
#[derive(Clone, Debug)]
pub struct CatalogEntry {
    /// Stable identifier, e.g. `"example2"`.
    pub id: &'static str,
    /// Where it appears in the paper.
    pub paper_ref: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The query.
    pub ucq: Ucq,
    /// The paper's verdict.
    pub verdict: PaperVerdict,
}

fn entry(
    id: &'static str,
    paper_ref: &'static str,
    description: &'static str,
    text: &str,
    verdict: PaperVerdict,
) -> CatalogEntry {
    CatalogEntry {
        id,
        paper_ref,
        description,
        ucq: parse_ucq(text).expect("catalog queries are well-formed"),
        verdict,
    }
}

/// All catalog entries.
pub fn catalog() -> Vec<CatalogEntry> {
    vec![
        entry(
            "matmul_cq",
            "§2 (mat-mul hypothesis)",
            "The Boolean matrix multiplication query Π(x,y) <- A(x,z), B(z,y)",
            "Pi(x, y) <- A(x, z), B(z, y)",
            PaperVerdict::Intractable,
        ),
        entry(
            "full_path_cq",
            "Theorem 3(1)",
            "Free-connex two-hop path with full head",
            "Q(x, z, y) <- A(x, z), B(z, y)",
            PaperVerdict::Tractable,
        ),
        entry(
            "triangle_cq",
            "Theorem 3(3)",
            "Cyclic triangle query: even Decide is super-linear",
            "Q(x, y, z) <- R(x, y), S(y, z), T(z, x)",
            PaperVerdict::Intractable,
        ),
        entry(
            "example1",
            "Example 1",
            "Redundant union: Q1 ⊆ Q2, equivalent to the easy Q2",
            "Q1(x, y) <- R1(x, y), R2(y, z), R3(z, x)\n\
             Q2(x, y) <- R1(x, y), R2(y, z)",
            PaperVerdict::Tractable,
        ),
        entry(
            "example2",
            "Example 2 / Theorem 12",
            "Hard CQ made tractable by an easy CQ providing {x,z,y}",
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)",
            PaperVerdict::Tractable,
        ),
        entry(
            "example9",
            "Example 9",
            "Example 2 with an R4 filter: no body-homomorphism, hard",
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w), R4(y)",
            PaperVerdict::Intractable,
        ),
        entry(
            "example13",
            "Example 13",
            "Three intractable CQs whose union is tractable (recursive extensions)",
            "Q1(x, y, v, u) <- R1(x, z1), R2(z1, z2), R3(z2, z3), R4(z3, y), R5(y, v, u)\n\
             Q2(x, y, v, u) <- R1(x, y), R2(y, v), R3(v, z1), R4(z1, u), R5(u, t1, t2)\n\
             Q3(x, y, v, u) <- R1(x, z1), R2(z1, y), R3(y, v), R4(v, u), R5(u, t1, t2)",
            PaperVerdict::Tractable,
        ),
        entry(
            "example18",
            "Example 18 / Theorem 17",
            "Two cyclic CQs plus a hard acyclic one: triangle detection embeds",
            "Q1(x, y) <- R1(x, y), R2(y, u), R3(x, u)\n\
             Q2(x, y) <- R1(y, v), R2(v, x), R3(y, x)\n\
             Q3(x, y) <- R1(x, z), R2(y, z)",
            PaperVerdict::Intractable,
        ),
        entry(
            "example20",
            "Example 20 / Lemma 25",
            "Body-isomorphic pair, free-path not guarded: mat-mul embeds",
            "Q1(x, y, v) <- R1(x, z), R2(z, y), R3(y, v), R4(v, w)\n\
             Q2(x, y, v) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)",
            PaperVerdict::Intractable,
        ),
        entry(
            "example21",
            "Example 21 / Example 24",
            "Example 20 with wider heads: guarded both ways, tractable",
            "Q1(w, y, x, z) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)\n\
             Q2(x, y, w, v) <- R1(w, v), R2(v, y), R3(y, z), R4(z, x)",
            PaperVerdict::Tractable,
        ),
        entry(
            "example22",
            "Example 22 / Lemma 26",
            "Free-path guarded but not bypass guarded: 4-clique embeds",
            "Q1(x, y, t) <- R1(x, w, t), R2(y, w, t)\n\
             Q2(x, y, w) <- R1(x, w, t), R2(y, w, t)",
            PaperVerdict::Intractable,
        ),
        entry(
            "example30",
            "Example 30 (§5.1)",
            "Non-body-isomorphic pair with an unguarded-looking free-path: open",
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, t1), R2(t2, y), R3(w, t3)",
            PaperVerdict::Open,
        ),
        entry(
            "example31_k4",
            "Example 31, k = 4 (§5.1)",
            "Star body, all 3-of-4 heads: proven hard ad hoc via 4-clique",
            "Q1(x1, x2, x3) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q2(x1, x2, z) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q3(x1, x3, z) <- R1(x1, z), R2(x2, z), R3(x3, z)\n\
             Q4(x2, x3, z) <- R1(x1, z), R2(x2, z), R3(x3, z)",
            PaperVerdict::OpenButProvenHard,
        ),
        entry(
            "example36",
            "Example 36 (§5.2)",
            "Cyclic CQ resolved by a provided {t,y,z,w} atom: tractable",
            "Q1(x, y, z, w) <- R1(y, z, w, x), R2(t, y, w), R3(t, z, w), R4(t, y, z)\n\
             Q2(x, y, z, w) <- R1(x, z, w, v), R2(y, x, w)",
            PaperVerdict::Tractable,
        ),
        entry(
            "example37",
            "Example 37 (§5.2)",
            "Cycle guarded but free-path (x,z,y) unguarded: hard ad hoc \
             (mat-mul sketch in §5.2, outside the general theorems)",
            "Q1(x, y, v) <- R1(v, z, x), R2(y, v), R3(z, y)\n\
             Q2(x, y, v) <- R1(y, v, z), R2(x, y)",
            PaperVerdict::OpenButProvenHard,
        ),
        entry(
            "example38",
            "Example 38 (§5.2)",
            "Cyclic member, no free variable maps onto y: open",
            "Q1(x, z, y, v) <- R1(x, z, v), R2(z, y, v), R3(y, x, v)\n\
             Q2(x, z, y, v) <- R1(x, z, v), R2(y, t1, v), R3(t2, x, v)",
            PaperVerdict::Open,
        ),
        entry(
            "example39_k4",
            "Example 39 (§5.2)",
            "Extension removes the cycle but introduces a hyperclique: hard ad hoc",
            "Q1(x2, x3, x4) <- R1(x2, x3, x4), R2(x1, x3, x4), R3(x1, x2, x4)\n\
             Q2(x2, x3, x4) <- R1(x2, x3, x1), R2(x4, x3, v)",
            PaperVerdict::OpenButProvenHard,
        ),
        entry(
            "two_free_connex",
            "Theorem 4 / Algorithm 1",
            "A union of two free-connex CQs over different relations",
            "Q1(x, y) <- R(x, y)\n\
             Q2(a, b) <- S(a, z), T(z, b), U(a, z, b)",
            PaperVerdict::Tractable,
        ),
        entry(
            "theorem19_pair",
            "Theorem 19",
            "Two intractable, non-body-isomorphic CQs: intractable union",
            "Q1(x, y) <- R(x, z), S(z, y)\n\
             Q2(x, y) <- S(x, z), R(z, y)",
            PaperVerdict::Intractable,
        ),
        entry(
            "example2_plus",
            "Theorem 12 (three members)",
            "Example 2 with an extra free-connex member: still tractable",
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\n\
             Q2(x, y, w) <- R1(x, y), R2(y, w)\n\
             Q3(x, y, w) <- R4(x, y, w)",
            PaperVerdict::Tractable,
        ),
        entry(
            "cyclic_pair_thm17",
            "Theorem 17 (cyclic members)",
            "Two body-isomorphic cyclic CQs: Decide is already hard",
            "Q1(x, y) <- R1(x, y), R2(y, u), R3(x, u)\n\
             Q2(x, y) <- R1(y, v), R2(v, x), R3(y, x)",
            PaperVerdict::Intractable,
        ),
    ]
}

/// Looks an entry up by id.
pub fn by_id(id: &str) -> Option<CatalogEntry> {
    catalog().into_iter().find(|e| e.id == id)
}

/// The Example 31 family for arbitrary `k ≥ 3`: body `R_i(x_i, z)` for
/// `i < k`, one head per (k−1)-subset of `{z, x_1, …, x_{k−1}}`.
pub fn example31(k: usize) -> Ucq {
    assert!((3..=10).contains(&k), "supported k range");
    let body: Vec<String> = (1..k).map(|i| format!("R{i}(x{i}, z)")).collect();
    let body = body.join(", ");
    let mut vars: Vec<String> = (1..k).map(|i| format!("x{i}")).collect();
    vars.push("z".to_string());
    let mut rules = Vec::new();
    for (qi, skip) in (0..vars.len()).rev().enumerate() {
        let head: Vec<&str> = vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| (i != skip).then_some(v.as_str()))
            .collect();
        rules.push(format!("Q{}({}) <- {}", qi + 1, head.join(", "), body));
    }
    parse_ucq(&rules.join("\n")).expect("well-formed family")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_parses_and_ids_unique() {
        let c = catalog();
        assert!(c.len() >= 17);
        let ids: std::collections::HashSet<&str> = c.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), c.len());
    }

    #[test]
    fn by_id_finds_example2() {
        let e = by_id("example2").unwrap();
        assert_eq!(e.ucq.len(), 2);
        assert_eq!(e.verdict, PaperVerdict::Tractable);
        assert!(by_id("no_such_entry").is_none());
    }

    #[test]
    fn example31_family_shape() {
        let u = example31(4);
        assert_eq!(u.len(), 4);
        assert_eq!(u.head_arity(), 3);
        let u5 = example31(5);
        assert_eq!(u5.len(), 5);
        assert_eq!(u5.head_arity(), 4);
        assert_eq!(u5.cqs()[0].atoms().len(), 4);
    }

    #[test]
    fn example31_k4_matches_catalog_entry() {
        let family = example31(4);
        let fixed = by_id("example31_k4").unwrap().ucq;
        // Same number of members and same head arity; the first member's
        // head is {x1,x2,x3} in both.
        assert_eq!(family.len(), fixed.len());
        assert_eq!(family.head_arity(), fixed.head_arity());
    }
}
