//! Parametric query families for scaling studies.
//!
//! The catalog holds the paper's fixed examples; these generators produce
//! the natural families around them: path joins of any length (with full or
//! endpoint-only heads — the free-connex/hard axis of Theorem 3), star
//! joins (the Example 31 shape), and the general Example 39 family.

use ucq_query::{parse_cq, parse_ucq, Cq, Ucq};

/// A path join `Q(…) ← R1(x0,x1), …, Rk(x_{k-1},x_k)`.
///
/// With `full_head = true` every variable is free (free-connex for every
/// `k`); with `full_head = false` only the endpoints are free, which is the
/// hard projection (a length-`k` free-path) for every `k ≥ 2`.
pub fn path_cq(hops: usize, full_head: bool) -> Cq {
    assert!(hops >= 1, "need at least one atom");
    let head: Vec<String> = if full_head {
        (0..=hops).map(|i| format!("x{i}")).collect()
    } else {
        vec!["x0".to_string(), format!("x{hops}")]
    };
    let atoms: Vec<String> = (0..hops)
        .map(|i| format!("R{}(x{}, x{})", i + 1, i, i + 1))
        .collect();
    let text = format!("P{hops}({}) <- {}", head.join(", "), atoms.join(", "));
    parse_cq(&text).expect("generated query is well-formed")
}

/// A star join `Q(head…) ← R1(x1,z), …, Rk(xk,z)` with the given head
/// variables (use `"z"` and `"xi"` names).
pub fn star_cq(legs: usize, head: &[&str]) -> Cq {
    assert!(legs >= 1);
    let atoms: Vec<String> = (1..=legs).map(|i| format!("R{i}(x{i}, z)")).collect();
    let text = format!("S{legs}({}) <- {}", head.join(", "), atoms.join(", "));
    parse_cq(&text).expect("generated query is well-formed")
}

/// The general Example 39 family for `k ≥ 4`:
///
/// ```text
/// Q1(x2,…,xk) ← { R_i({x1..xk} \ {x_i}) | 1 ≤ i ≤ k−1 }
/// Q2(x2,…,xk) ← R1(x2,…,x_{k−1},x1), R2(xk,x3,…,x_{k−1},v)
/// ```
pub fn example39(k: usize) -> Ucq {
    assert!((4..=9).contains(&k), "supported k range");
    let all: Vec<String> = (1..=k).map(|i| format!("x{i}")).collect();
    let head = all[1..].join(", ");
    let q1_atoms: Vec<String> = (1..k)
        .map(|i| {
            let args: Vec<&str> = all
                .iter()
                .enumerate()
                .filter_map(|(j, v)| (j + 1 != i).then_some(v.as_str()))
                .collect();
            format!("R{i}({})", args.join(", "))
        })
        .collect();
    // R1(x2,…,x_{k−1},x1)
    let mut r1_args: Vec<&str> = all[1..k - 1].iter().map(String::as_str).collect();
    r1_args.push(&all[0]);
    // R2(xk,x3,…,x_{k−1},v)
    let mut r2_args: Vec<&str> = vec![&all[k - 1]];
    r2_args.extend(all[2..k - 1].iter().map(String::as_str));
    r2_args.push("v");
    let text = format!(
        "Q1({head}) <- {}\nQ2({head}) <- R1({}), R2({})",
        q1_atoms.join(", "),
        r1_args.join(", "),
        r2_args.join(", "),
    );
    parse_ucq(&text).expect("generated family is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_core::{classify, cq_status, CqStatus};

    #[test]
    fn path_family_tractability_axis() {
        for hops in 1..=5 {
            let full = path_cq(hops, true);
            assert_eq!(
                cq_status(&full),
                CqStatus::FreeConnex,
                "full head, {hops} hops"
            );
            let ends = path_cq(hops, false);
            if hops == 1 {
                assert_eq!(cq_status(&ends), CqStatus::FreeConnex);
            } else {
                assert_eq!(
                    cq_status(&ends),
                    CqStatus::AcyclicHard,
                    "endpoint projection of a {hops}-hop path is hard"
                );
            }
        }
    }

    #[test]
    fn star_family_shapes() {
        let all_legs = star_cq(3, &["x1", "x2", "x3", "z"]);
        assert_eq!(cq_status(&all_legs), CqStatus::FreeConnex);
        let no_center = star_cq(3, &["x1", "x2", "x3"]);
        assert_eq!(cq_status(&no_center), CqStatus::AcyclicHard);
    }

    #[test]
    fn example39_k4_matches_catalog() {
        let family = example39(4);
        let fixed = crate::catalog::by_id("example39_k4").unwrap().ucq;
        assert_eq!(family.len(), fixed.len());
        assert_eq!(family.head_arity(), fixed.head_arity());
        // Same per-member statuses.
        let fam_status: Vec<CqStatus> = family.cqs().iter().map(cq_status).collect();
        let fix_status: Vec<CqStatus> = fixed.cqs().iter().map(cq_status).collect();
        assert_eq!(fam_status, fix_status);
    }

    #[test]
    fn example39_family_is_open_for_all_k() {
        for k in 4..=6 {
            let u = example39(k);
            let c = classify(&u);
            assert!(
                !c.is_tractable(),
                "Example 39 (k={k}) must not classify tractable"
            );
        }
    }
}
