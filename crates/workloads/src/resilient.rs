//! A resilience-exercising load generator over the `ucq-serve` runtime.
//!
//! Where [`crate::serving::drive_frozen`] measures raw concurrent
//! enumeration throughput (every drain admitted, no budgets, no
//! failures), this driver pushes a configurable mix of well-behaved,
//! deadline'd, cancelled, and fault-armed requests through a bounded
//! worker pool and reports the full outcome ledger in the extended
//! [`ServingReport`] — sheds, timeouts, isolated panics, partials, and
//! the queue's high-water mark alongside the usual throughput and
//! latency numbers. The `e15_resilient_serving` experiment, the
//! `ucq serve-bench` CLI command, and the chaos suite all drive this one
//! entry point.

use crate::serving::ServingReport;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ucq_core::FrozenSession;
use ucq_serve::{serve, CancelToken, QueryBudget, Request, ServeConfig};

/// The shape of one resilient-serving run: pool size plus a deterministic
/// every-Nth mix of misbehaving requests.
///
/// A stride of `0` disables that ingredient; stride `n` applies it to
/// every `n`-th submitted request (1-based), so different ingredients
/// overlap on common multiples — deliberately, since real overload is
/// never one failure mode at a time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResilientSpec {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Admission-queue bound; smaller queues shed earlier.
    pub queue_capacity: usize,
    /// Total requests to submit.
    pub requests: usize,
    /// Every `n`-th request gets [`ResilientSpec::deadline`] as a
    /// wall-clock budget.
    pub deadline_every: usize,
    /// The deadline applied to deadline'd requests.
    pub deadline: Duration,
    /// Every `n`-th request carries a cancel token fired *before*
    /// submission — the request truncates at its first block boundary.
    pub cancel_every: usize,
    /// Answer cap applied to every request (`None` = uncapped).
    pub answer_cap: Option<usize>,
    /// Every `n`-th request arms the `ucq_fault_inject` seam for its
    /// storage operations (a no-op unless the cfg is active).
    pub fault_every: usize,
}

impl ResilientSpec {
    /// A well-behaved baseline: no deadlines, cancels, caps, or faults.
    pub fn steady(workers: usize, queue_capacity: usize, requests: usize) -> ResilientSpec {
        ResilientSpec {
            workers,
            queue_capacity,
            requests,
            deadline_every: 0,
            deadline: Duration::ZERO,
            cancel_every: 0,
            answer_cap: None,
            fault_every: 0,
        }
    }

    /// Deadlines every `n`-th request at `deadline`.
    pub fn with_deadline_every(mut self, n: usize, deadline: Duration) -> ResilientSpec {
        self.deadline_every = n;
        self.deadline = deadline;
        self
    }

    /// Pre-cancels every `n`-th request.
    pub fn with_cancel_every(mut self, n: usize) -> ResilientSpec {
        self.cancel_every = n;
        self
    }

    /// Caps every request at `cap` answers.
    pub fn with_answer_cap(mut self, cap: usize) -> ResilientSpec {
        self.answer_cap = Some(cap);
        self
    }

    /// Arms fault injection on every `n`-th request.
    pub fn with_faults_every(mut self, n: usize) -> ResilientSpec {
        self.fault_every = n;
        self
    }

    /// The canned chaos mix the `ucq serve-bench --chaos` command and the
    /// chaos suite use: overlapping deadlines (every 5th, 1ms), pre-fired
    /// cancels (every 7th), and fault-armed requests (every 3rd) through
    /// a deliberately tight queue.
    pub fn chaos(workers: usize, requests: usize) -> ResilientSpec {
        ResilientSpec::steady(workers, workers.max(2), requests)
            .with_deadline_every(5, Duration::from_millis(1))
            .with_cancel_every(7)
            .with_faults_every(3)
    }
}

fn every(stride: usize, index: usize) -> bool {
    stride > 0 && index.is_multiple_of(stride)
}

/// Submits `spec.requests` requests against `session` through a bounded
/// `ucq-serve` pool and reports the complete outcome ledger.
///
/// `first_answer_ns` here records the submit-to-resolution latency of
/// every request that produced at least one answer (complete or partial);
/// shed, cancelled-empty, and failed requests contribute to their outcome
/// counters instead.
pub fn drive_resilient<'e>(
    session: &Arc<FrozenSession<'e>>,
    spec: &ResilientSpec,
) -> ServingReport {
    let config = ServeConfig::new(spec.workers, spec.queue_capacity)
        .expect("resilient spec needs positive workers and queue capacity");
    let t0 = Instant::now();
    let ((mut first_answer_ns, total_answers, drains), stats) = serve(config, |handle| {
        let mut tickets = Vec::with_capacity(spec.requests);
        for i in 1..=spec.requests {
            let mut budget = QueryBudget::unlimited();
            if let Some(cap) = spec.answer_cap {
                budget = budget.with_max_answers(cap);
            }
            if every(spec.deadline_every, i) {
                budget = budget.with_timeout(spec.deadline);
            }
            let mut request = Request::new(Arc::clone(session)).with_budget(budget);
            if every(spec.cancel_every, i) {
                let token = CancelToken::new();
                token.cancel();
                request = request.with_cancel(token);
            }
            if every(spec.fault_every, i) {
                request = request.with_fault_injection();
            }
            let submitted_at = Instant::now();
            if let Ok(ticket) = handle.submit(request) {
                tickets.push((submitted_at, ticket));
            }
            // Shed submissions are already accounted by the runtime.
        }
        let mut latencies = Vec::with_capacity(tickets.len());
        let mut answers = 0usize;
        let mut drains = 0usize;
        for (submitted_at, ticket) in tickets {
            if let Ok(served) = ticket.wait() {
                drains += 1;
                let n = served.answers().len();
                answers += n;
                if n > 0 {
                    latencies.push(submitted_at.elapsed().as_nanos() as u64);
                }
            }
        }
        (latencies, answers, drains)
    });
    let elapsed = t0.elapsed();
    first_answer_ns.sort_unstable();
    ServingReport {
        threads: spec.workers,
        drains,
        total_answers,
        elapsed,
        first_answer_ns,
        submitted: stats.submitted,
        shed: stats.shed,
        partial: stats.partial,
        timed_out: stats.timed_out,
        panicked: stats.panicked,
        drained: stats.drained,
        queue_high_water: stats.queue_high_water,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_core::UcqEngine;
    use ucq_query::parse_ucq;
    use ucq_storage::{Instance, Relation};

    fn frozen_arc(rows: i64) -> (UcqEngine, Instance) {
        let u = parse_ucq("Q(x, y) <- R(x, y)").unwrap();
        let engine = UcqEngine::new(u);
        let pairs: Vec<(i64, i64)> = (0..rows).map(|i| (i, i + 1)).collect();
        let instance: Instance = [("R", Relation::from_pairs(pairs))].into_iter().collect();
        (engine, instance)
    }

    #[test]
    fn steady_spec_completes_everything() {
        let (engine, instance) = frozen_arc(20);
        let frozen = Arc::new(engine.session(&instance).freeze().unwrap());
        let report = drive_resilient(&frozen, &ResilientSpec::steady(2, 8, 6));
        assert_eq!(report.submitted, 6);
        assert_eq!(report.drains, 6);
        assert_eq!(report.total_answers, 6 * 20);
        assert_eq!(
            report.shed + report.partial + report.panicked + report.drained,
            0
        );
        assert_eq!(report.first_answer_ns.len(), 6);
    }

    #[test]
    fn cancel_stride_produces_partials() {
        let (engine, instance) = frozen_arc(50);
        let frozen = Arc::new(engine.session(&instance).freeze().unwrap());
        // Every 2nd of 6 requests pre-cancelled: exactly 3 partials.
        let spec = ResilientSpec::steady(2, 8, 6).with_cancel_every(2);
        let report = drive_resilient(&frozen, &spec);
        assert_eq!(report.submitted, 6);
        assert_eq!(report.partial, 3);
        assert_eq!(report.timed_out, 0, "cancellation is not a timeout");
        assert_eq!(
            report.total_answers,
            3 * 50,
            "uncancelled requests complete"
        );
    }

    #[test]
    fn answer_cap_bounds_every_request() {
        let (engine, instance) = frozen_arc(100);
        let frozen = Arc::new(engine.session(&instance).freeze().unwrap());
        let spec = ResilientSpec::steady(2, 8, 4).with_answer_cap(5);
        let report = drive_resilient(&frozen, &spec);
        assert_eq!(report.partial, 4, "all requests hit the cap");
        assert_eq!(report.total_answers, 4 * 5);
    }

    #[test]
    fn chaos_mix_strides_are_nontrivial() {
        let spec = ResilientSpec::chaos(4, 100);
        assert!(spec.deadline_every > 0);
        assert!(spec.cancel_every > 0);
        assert!(spec.fault_every > 0);
        assert!(spec.queue_capacity >= 2);
    }
}
