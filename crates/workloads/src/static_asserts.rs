//! Compile-time thread-safety contract for the serving harness,
//! colocated in one place per crate (mirroring `static_asserts` in
//! `ucq-storage` and `ucq-core`).
//!
//! [`ServingReport`](crate::serving::ServingReport) is aggregated across
//! scoped serving threads and handed back to whoever launched the run, so
//! it must stay plain shareable data.

use crate::serving::ServingReport;

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServingReport>();
};
