//! Workloads: the paper's query catalog, random instance generators, and
//! the concurrent-serving load generator.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod generators;
pub mod random;
pub mod resilient;
pub mod rotation;
pub mod serving;
mod static_asserts;

pub use catalog::{by_id, catalog, example31, CatalogEntry, PaperVerdict};
pub use generators::{example39, path_cq, star_cq};
pub use random::{random_instance, InstanceSpec};
pub use resilient::{drive_resilient, ResilientSpec};
pub use rotation::{drive_rotation, RotationReport, RotationSpec};
pub use serving::{drive_frozen, drive_frozen_fixed_work, ServingReport};
