//! Workloads: the paper's query catalog and random instance generators.

pub mod catalog;
pub mod generators;
pub mod random;

pub use catalog::{by_id, catalog, example31, CatalogEntry, PaperVerdict};
pub use generators::{example39, path_cq, star_cq};
pub use random::{random_instance, InstanceSpec};
