//! A concurrent-serving load generator: N OS threads draining one
//! [`FrozenSession`].
//!
//! This is the measurement harness behind the `e12_concurrent_serving`
//! experiment/bench: freeze a prepared session once, then spawn 1/2/4/8
//! enumeration threads against it and report aggregate answers/sec plus
//! the p99 first-answer delay. Every thread gets its own answer stream
//! (cursors, dedup table, scratch) from [`FrozenSession::enumerate`]; all
//! threads read the same frozen dictionary, relations and indexes with no
//! locking, so on a multi-core host throughput scales with the thread
//! count. On a single-core host the threads time-share one CPU and the
//! aggregate rate stays flat — the harness reports whatever the hardware
//! actually delivers.

use std::time::{Duration, Instant};
use ucq_core::FrozenSession;
use ucq_enumerate::Enumerator;

/// What one [`drive_frozen`] run measured.
#[derive(Clone, Debug)]
pub struct ServingReport {
    /// Number of serving threads.
    pub threads: usize,
    /// Full enumerations (drains) completed across all threads.
    pub drains: usize,
    /// Answers emitted across all drains.
    pub total_answers: usize,
    /// Wall-clock time from launch to the last thread finishing.
    pub elapsed: Duration,
    /// First-answer delay per drain, sorted ascending (empty drains — no
    /// first answer — are excluded).
    pub first_answer_ns: Vec<u64>,
    /// Requests offered to the runtime. For the plain [`drive_frozen`]
    /// harness (every drain admitted unconditionally) this equals
    /// `drains`; the resilient driver reports the true submission count
    /// including requests that were refused.
    pub submitted: usize,
    /// Requests refused at admission (queue full or closed).
    pub shed: usize,
    /// Requests truncated by their budget (deadline, caps, or cancel).
    pub partial: usize,
    /// The subset of `partial` truncated specifically by a deadline.
    pub timed_out: usize,
    /// Requests that panicked and were isolated by the runtime.
    pub panicked: usize,
    /// Requests abandoned in the queue at shutdown.
    pub drained: usize,
    /// The deepest the admission queue ever got (0 for the plain
    /// harness, which has no queue).
    pub queue_high_water: usize,
}

impl ServingReport {
    /// Aggregate throughput over the whole run.
    pub fn answers_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.total_answers as f64 / secs
    }

    /// The p99 first-answer delay (nearest-rank), in nanoseconds; `0` if
    /// no drain produced an answer.
    pub fn p99_first_answer_ns(&self) -> u64 {
        percentile(&self.first_answer_ns, 99)
    }

    /// The median first-answer delay, in nanoseconds.
    pub fn median_first_answer_ns(&self) -> u64 {
        percentile(&self.first_answer_ns, 50)
    }
}

/// Nearest-rank percentile over a sorted ascending slice.
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * pct).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Drives `threads` OS threads against one frozen session, each performing
/// `drains_per_thread` full enumerations, and collects the aggregate
/// throughput and per-drain first-answer delays.
///
/// The total work (`threads * drains_per_thread` drains) is what scaling
/// comparisons should hold fixed — see [`drive_frozen_fixed_work`].
pub fn drive_frozen(
    session: &FrozenSession<'_>,
    threads: usize,
    drains_per_thread: usize,
) -> ServingReport {
    assert!(threads > 0, "at least one serving thread");
    let t0 = Instant::now();
    let per_thread: Vec<(usize, Vec<u64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut answers = 0usize;
                    let mut delays = Vec::with_capacity(drains_per_thread);
                    for _ in 0..drains_per_thread {
                        let start = Instant::now();
                        let mut ans = session.enumerate().expect("frozen enumeration starts");
                        if ans.next().is_some() {
                            delays.push(start.elapsed().as_nanos() as u64);
                            answers += 1;
                            while ans.next().is_some() {
                                answers += 1;
                            }
                        }
                    }
                    (answers, delays)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serving thread panicked"))
            .collect()
    });
    let elapsed = t0.elapsed();
    let total_answers = per_thread.iter().map(|(a, _)| a).sum();
    let mut first_answer_ns: Vec<u64> = per_thread.into_iter().flat_map(|(_, d)| d).collect();
    first_answer_ns.sort_unstable();
    ServingReport {
        threads,
        drains: threads * drains_per_thread,
        total_answers,
        elapsed,
        first_answer_ns,
        submitted: threads * drains_per_thread,
        shed: 0,
        partial: 0,
        timed_out: 0,
        panicked: 0,
        drained: 0,
        queue_high_water: 0,
    }
}

/// As [`drive_frozen`], but holding the *total* number of drains fixed and
/// splitting them across the threads (`total_drains` must be divisible by
/// `threads`) — the fair scaling comparison: same work, more workers.
pub fn drive_frozen_fixed_work(
    session: &FrozenSession<'_>,
    threads: usize,
    total_drains: usize,
) -> ServingReport {
    assert_eq!(
        total_drains % threads,
        0,
        "total_drains must split evenly across threads"
    );
    drive_frozen(session, threads, total_drains / threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_core::UcqEngine;
    use ucq_query::parse_ucq;
    use ucq_storage::{Instance, Relation};

    #[test]
    fn drive_reports_totals() {
        let u = parse_ucq("Q(x, y) <- R(x, y)").unwrap();
        let engine = UcqEngine::new(u);
        let instance: Instance = [("R", Relation::from_pairs([(1, 2), (3, 4), (5, 6)]))]
            .into_iter()
            .collect();
        let frozen = engine.session(&instance).freeze().unwrap();
        let report = drive_frozen(&frozen, 2, 3);
        assert_eq!(report.threads, 2);
        assert_eq!(report.drains, 6);
        assert_eq!(report.total_answers, 6 * 3);
        assert_eq!(report.first_answer_ns.len(), 6);
        assert!(report.answers_per_sec() > 0.0);
        assert!(report.p99_first_answer_ns() >= report.median_first_answer_ns());
    }

    #[test]
    fn fixed_work_splits_evenly() {
        let u = parse_ucq("Q(x, y) <- R(x, y)").unwrap();
        let engine = UcqEngine::new(u);
        let instance: Instance = [("R", Relation::from_pairs([(7, 8)]))]
            .into_iter()
            .collect();
        let frozen = engine.session(&instance).freeze().unwrap();
        let report = drive_frozen_fixed_work(&frozen, 4, 8);
        assert_eq!(report.drains, 8);
        assert_eq!(report.total_answers, 8);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[5], 99), 5);
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 99), 99);
        assert_eq!(percentile(&xs, 50), 50);
    }

    #[test]
    fn percentile_extremes_clamp_to_the_data() {
        let xs: Vec<u64> = (1..=100).collect();
        // pct=0 would compute rank 0; nearest-rank clamps to the minimum.
        assert_eq!(percentile(&xs, 0), 1);
        assert_eq!(percentile(&xs, 100), 100);
        // Odd sizes: rank = ceil(len * pct / 100), still in bounds.
        let odd: Vec<u64> = vec![10, 20, 30];
        assert_eq!(percentile(&odd, 0), 10);
        assert_eq!(percentile(&odd, 50), 20);
        assert_eq!(percentile(&odd, 99), 30);
        assert_eq!(percentile(&odd, 100), 30);
        // Singleton: every percentile is the one sample.
        assert_eq!(percentile(&[7], 0), 7);
        assert_eq!(percentile(&[7], 100), 7);
    }

    #[test]
    fn empty_report_rates_are_zero_not_nan() {
        let report = ServingReport {
            threads: 1,
            drains: 0,
            total_answers: 0,
            elapsed: Duration::ZERO,
            first_answer_ns: Vec::new(),
            submitted: 0,
            shed: 0,
            partial: 0,
            timed_out: 0,
            panicked: 0,
            drained: 0,
            queue_high_water: 0,
        };
        // Zero elapsed must not divide: the rate is defined as 0, not NaN.
        assert_eq!(report.answers_per_sec(), 0.0);
        // No drain produced an answer: the delay percentiles are 0.
        assert_eq!(report.p99_first_answer_ns(), 0);
        assert_eq!(report.median_first_answer_ns(), 0);
    }

    #[test]
    fn all_empty_drains_report_no_delays() {
        let u = parse_ucq("Q(x, y) <- R(x, y)").unwrap();
        let engine = UcqEngine::new(u);
        // An empty relation: every drain completes with zero answers.
        let instance: Instance = [("R", Relation::from_pairs([]))].into_iter().collect();
        let frozen = engine.session(&instance).freeze().unwrap();
        let report = drive_frozen(&frozen, 2, 2);
        assert_eq!(report.drains, 4);
        assert_eq!(report.total_answers, 0);
        assert!(
            report.first_answer_ns.is_empty(),
            "empty drains must not record a first-answer delay"
        );
        assert_eq!(report.p99_first_answer_ns(), 0);
        assert_eq!(report.submitted, report.drains);
        assert_eq!(report.shed + report.panicked + report.drained, 0);
    }
}
