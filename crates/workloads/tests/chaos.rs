//! The chaos suite: fault-injected serving against an in-process oracle.
//!
//! ```text
//! RUSTFLAGS="--cfg ucq_fault_inject" cargo test -p ucq-workloads --test chaos
//! ```
//!
//! Without the cfg this file compiles to an empty (cleanly passing) test
//! binary — the hooks it drives are no-ops and the scenarios would assert
//! nothing. With the cfg, each scenario installs a deterministic
//! [`FaultPlan`], pushes a mix of fault-armed and clean requests through
//! a real `ucq-serve` pool, and checks the resilience contract:
//!
//! * clean requests co-scheduled with faulted ones still match the
//!   value-level oracle (`enumerate_naive`) exactly;
//! * the pool never wedges — every ticket resolves, workers join;
//! * every shed, timeout, panic, and completion is accounted exactly
//!   once (`ServeStats::is_balanced`).
//!
//! The fault plan is process-global, so the scenarios serialize on a
//! static mutex and reset the plan on exit (panic-safe via a drop guard).

#![cfg(ucq_fault_inject)]

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use ucq_core::UcqEngine;
use ucq_query::parse_ucq;
use ucq_serve::{
    serve, QueryBudget, Request, RequestError, RequestOutcome, ServeConfig, Served, Truncation,
};
use ucq_storage::faults::{self, FaultPlan, INJECTED_PANIC_MSG};
use ucq_storage::{Instance, Relation, Tuple, Value};

static SERIAL: Mutex<()> = Mutex::new(());

/// Serializes a scenario and installs its plan; clears the plan (and
/// releases the lock) on drop, even if the scenario's asserts panic.
struct Scenario<'a> {
    _guard: MutexGuard<'a, ()>,
}

impl Scenario<'_> {
    fn install(plan: FaultPlan) -> Scenario<'static> {
        let guard = match SERIAL.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        faults::install(plan);
        Scenario { _guard: guard }
    }
}

impl Drop for Scenario<'_> {
    fn drop(&mut self) {
        faults::clear();
    }
}

fn engine_and_instance(rows: usize) -> (UcqEngine, Instance) {
    let u = parse_ucq("Q(x, y) <- R(x, y)").unwrap();
    let engine = UcqEngine::new(u);
    let pairs: Vec<(i64, i64)> = (0..rows as i64).map(|i| (i, i + 1)).collect();
    let instance: Instance = [("R", Relation::from_pairs(pairs))].into_iter().collect();
    (engine, instance)
}

fn sorted(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort();
    tuples
}

/// Injected panics: armed requests die with the seam's message, clean
/// requests co-scheduled on the same pool stay oracle-identical, and the
/// workers keep serving after every panic.
#[test]
fn panics_are_isolated_and_clean_requests_stay_correct() {
    let _scenario = Scenario::install(FaultPlan {
        panic_every: 50,
        ..FaultPlan::default()
    });
    let (engine, instance) = engine_and_instance(300);
    let oracle = sorted(engine.enumerate_naive(&instance).unwrap());
    let frozen = Arc::new(engine.session(&instance).freeze().unwrap());

    let config = ServeConfig::new(2, 32).unwrap();
    let ((clean, faulted), stats) = serve(config, |handle| {
        let mut clean_tickets = Vec::new();
        let mut fault_tickets = Vec::new();
        // Interleave so clean and armed requests genuinely co-schedule.
        for _ in 0..8 {
            let armed = Request::new(Arc::clone(&frozen)).with_fault_injection();
            fault_tickets.push(handle.submit(armed).unwrap());
            let plain = Request::new(Arc::clone(&frozen));
            clean_tickets.push(handle.submit(plain).unwrap());
        }
        let clean: Vec<RequestOutcome> = clean_tickets.into_iter().map(|t| t.wait()).collect();
        let faulted: Vec<RequestOutcome> = fault_tickets.into_iter().map(|t| t.wait()).collect();
        (clean, faulted)
    });

    // Every clean request survived the co-scheduled panics bit-exact.
    for outcome in &clean {
        match outcome {
            Ok(served) => assert_eq!(
                sorted(served.answers().to_vec()),
                oracle,
                "a clean request diverged from the oracle under chaos"
            ),
            Err(e) => panic!("clean request failed: {e}"),
        }
    }
    // Armed requests either absorbed an injected panic (typed Internal
    // carrying the seam's message) or completed oracle-identical.
    let mut panicked = 0usize;
    for outcome in &faulted {
        match outcome {
            Err(RequestError::Internal { detail }) => {
                assert_eq!(detail, INJECTED_PANIC_MSG);
                panicked += 1;
            }
            Ok(served) => assert_eq!(sorted(served.answers().to_vec()), oracle),
            Err(e) => panic!("armed request failed atypically: {e}"),
        }
    }
    assert!(panicked > 0, "the panic schedule never fired");
    assert!(faults::injected().panics >= panicked as u64);
    assert_eq!(stats.panicked, panicked);
    assert_eq!(stats.submitted, 16);
    assert!(stats.is_balanced(), "unbalanced books: {stats:?}");
}

/// Injected per-operation delays push armed, deadline'd requests past
/// their budget: they must come back `Partial(Deadline)` within one block
/// while undelayed completions stay exact — and the books still balance.
#[test]
fn delays_force_deadline_timeouts_within_one_block() {
    let _scenario = Scenario::install(FaultPlan {
        delay_every: 4,
        delay_micros: 100,
        ..FaultPlan::default()
    });
    // 2000 answers span several 512-row budget blocks, so a mid-stream
    // deadline has boundaries to fire at.
    let (engine, instance) = engine_and_instance(2000);
    let frozen = Arc::new(engine.session(&instance).freeze().unwrap());

    let config = ServeConfig::new(2, 16).unwrap();
    let (outcomes, stats) = serve(config, |handle| {
        let tickets: Vec<_> = (0..4)
            .map(|_| {
                let req = Request::new(Arc::clone(&frozen))
                    .with_budget(QueryBudget::unlimited().with_timeout(Duration::from_millis(1)))
                    .with_fault_injection();
                handle.submit(req).unwrap()
            })
            .collect();
        tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
    });

    let mut timed_out = 0usize;
    for outcome in outcomes {
        match outcome.unwrap() {
            Served::Partial {
                answers,
                truncated_by: Truncation::Deadline,
            } => {
                // Cooperative enforcement: at most one block past the
                // boundary where the deadline was noticed.
                assert!(
                    answers.len() <= 1024,
                    "deadline overran a block: {} answers",
                    answers.len()
                );
                timed_out += 1;
            }
            Served::Partial { truncated_by, .. } => {
                panic!("unexpected truncation {truncated_by} under a deadline plan")
            }
            // A fast schedule may let a request finish inside its budget.
            Served::Complete { .. } => {}
        }
    }
    assert!(timed_out > 0, "the delay schedule never tripped a deadline");
    assert!(faults::injected().delays > 0);
    assert_eq!(stats.timed_out, timed_out);
    assert_eq!(stats.partial, timed_out);
    assert!(stats.is_balanced(), "unbalanced books: {stats:?}");
}

/// Forced overflow-overlay misses divert the frozen-dictionary fast path
/// through the overlay mutex; the diversion must be semantically
/// invisible — armed enumerations stay oracle-identical.
#[test]
fn forced_overlay_misses_are_semantically_invisible() {
    let _scenario = Scenario::install(FaultPlan {
        overlay_miss_every: 1,
        ..FaultPlan::default()
    });
    let (engine, instance) = engine_and_instance(200);
    let oracle = sorted(engine.enumerate_naive(&instance).unwrap());
    let frozen = Arc::new(engine.session(&instance).freeze().unwrap());

    let config = ServeConfig::new(2, 16).unwrap();
    let (outcomes, stats) = serve(config, |handle| {
        let tickets: Vec<_> = (0..6)
            .map(|_| {
                let req = Request::new(Arc::clone(&frozen)).with_fault_injection();
                handle.submit(req).unwrap()
            })
            .collect();
        tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
    });

    for outcome in outcomes {
        let served = outcome.unwrap();
        assert!(!served.is_partial());
        assert_eq!(sorted(served.into_answers()), oracle);
    }
    assert_eq!(stats.completed, 6);
    assert!(stats.is_balanced());

    // The enumeration path may or may not consult the dictionary; pin the
    // diversion itself at the storage layer: an armed lookup under an
    // every-visit miss plan must take the overlay path and still resolve
    // snapshot values correctly.
    let before = faults::injected().forced_misses;
    let (id, hit) = faults::armed(|| {
        let id = frozen.context().intern(Value::Int(7));
        (id, frozen.context().lookup(Value::Int(7)))
    });
    assert_eq!(hit, Some(id), "forced-miss lookup lost a value");
    assert!(
        faults::injected().forced_misses > before,
        "the miss schedule never fired on an armed intern/lookup"
    );
}

/// Overload under chaos: one delayed worker behind a two-deep queue and a
/// twelve-request burst — sheds must be typed, drains must resolve, and
/// shed + completed + partial + panicked + drained must equal submitted.
#[test]
fn overload_accounting_is_exact_under_chaos() {
    let _scenario = Scenario::install(FaultPlan {
        delay_every: 2,
        delay_micros: 200,
        ..FaultPlan::default()
    });
    let (engine, instance) = engine_and_instance(200);
    let frozen = Arc::new(engine.session(&instance).freeze().unwrap());

    let config = ServeConfig::new(1, 2).unwrap();
    let ((sheds, outcomes), stats) = serve(config, |handle| {
        let mut sheds = 0usize;
        let mut tickets = Vec::new();
        for _ in 0..12 {
            let req = Request::new(Arc::clone(&frozen)).with_fault_injection();
            match handle.submit(req) {
                Ok(t) => tickets.push(t),
                Err(RequestError::Overloaded { depth, capacity }) => {
                    assert_eq!(capacity, 2);
                    assert_eq!(depth, capacity);
                    sheds += 1;
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        let outcomes: Vec<RequestOutcome> = tickets.into_iter().map(|t| t.wait()).collect();
        (sheds, outcomes)
    });

    assert!(sheds > 0, "the burst never overflowed the two-deep queue");
    assert!(
        outcomes.iter().all(|o| o.is_ok()),
        "an admitted request failed"
    );
    assert_eq!(stats.submitted, 12);
    assert_eq!(stats.shed, sheds);
    assert_eq!(stats.completed, outcomes.len());
    assert_eq!(
        stats.shed + stats.completed + stats.partial + stats.panicked + stats.drained,
        stats.submitted,
        "accounting identity violated: {stats:?}"
    );
    assert!(stats.is_balanced());
    assert!(stats.queue_high_water <= 2);
}

/// Epoch rotation under injected refreeze panics: every armed refreeze
/// dies at its first probe site, so no rotation ever installs — and the
/// pool must keep serving the original epoch, oracle-identical, with a
/// balanced ledger. This is the crash-safety half of the zero-downtime
/// claim: a failed rebuild never takes down (or corrupts) serving.
#[test]
fn faulted_refreeze_leaves_previous_epoch_serving() {
    let _scenario = Scenario::install(FaultPlan {
        panic_every: 1,
        ..FaultPlan::default()
    });
    let engine = UcqEngine::new(parse_ucq("Q(x, y) <- R(x, y), S(y, w)").unwrap());
    let instance: Instance = [
        ("R", Relation::from_pairs((0..50).map(|i| (i, i % 10)))),
        ("S", Relation::from_pairs((0..10).map(|i| (i, i + 1)))),
    ]
    .into_iter()
    .collect();
    let deltas: Vec<Relation> = (0..3)
        .map(|d| Relation::from_pairs([(200 + d, d % 10)]))
        .collect();
    let spec = ucq_workloads::RotationSpec::steady(2, 64, 6).with_faulted_rotations();
    let report = ucq_workloads::drive_rotation(&engine, &instance, "R", &deltas, &spec).unwrap();

    assert_eq!(report.rotations_attempted, 3);
    assert_eq!(
        report.rotations_installed, 0,
        "panic_every=1 must abort every refreeze: {report:?}"
    );
    assert_eq!(report.final_epoch, 0, "the original epoch stays installed");
    assert!(
        faults::injected().panics >= 3,
        "the panic schedule never hit"
    );
    // Serving never noticed: nothing shed, nothing panicked (request
    // threads are unarmed), every drain matches the epoch-0 oracle.
    assert!(report.oracle_identical(), "{report:?}");
    assert_eq!(report.matched, report.serving.drains);
    assert_eq!(report.pinned_to_submit_epoch, report.serving.drains);
    assert_eq!(report.serving.shed, 0);
    assert_eq!(report.serving.panicked, 0);
    assert_eq!(
        report.serving.drains + report.serving.drained,
        report.serving.submitted,
        "rotation ledger does not balance: {report:?}"
    );
}

/// Epoch rotation with forced overlay misses armed around every refreeze:
/// the misses divert dictionary fast paths through the overlay lock but
/// are semantically invisible, so every rotation must install and serving
/// must stay oracle-identical across each epoch boundary.
#[test]
fn rotation_under_forced_overlay_misses_stays_oracle_identical() {
    let _scenario = Scenario::install(FaultPlan {
        overlay_miss_every: 1,
        ..FaultPlan::default()
    });
    let engine = UcqEngine::new(parse_ucq("Q(x, y) <- R(x, y), S(y, w)").unwrap());
    let instance: Instance = [
        ("R", Relation::from_pairs((0..40).map(|i| (i, i % 8)))),
        ("S", Relation::from_pairs((0..8).map(|i| (i, i + 1)))),
    ]
    .into_iter()
    .collect();
    let deltas: Vec<Relation> = (0..2)
        .map(|d| Relation::from_pairs([(300 + d, d % 8)]))
        .collect();
    let spec = ucq_workloads::RotationSpec::steady(2, 64, 5).with_faulted_rotations();
    let report = ucq_workloads::drive_rotation(&engine, &instance, "R", &deltas, &spec).unwrap();

    assert_eq!(
        report.rotations_installed, 2,
        "forced misses must not abort a rotation: {report:?}"
    );
    assert_eq!(report.final_epoch, 2);
    assert!(report.oracle_identical(), "{report:?}");
    assert_eq!(report.serving.shed, 0);
    assert_eq!(
        report.serving.drains + report.serving.drained,
        report.serving.submitted
    );

    // Pin the diversion on the rotated snapshot itself: an armed lookup
    // against the *new* epoch's frozen context must take the overlay path
    // and still resolve every value interned across the rotation.
    let session = engine.session(&instance).freeze().unwrap();
    let r2 = session
        .build_context()
        .insert_rows(&instance.get_shared("R").unwrap(), &deltas[0]);
    let rotated = session
        .refreeze(&instance.with_relation_shared("R", r2))
        .unwrap();
    let before = faults::injected().forced_misses;
    let hit = faults::armed(|| rotated.context().lookup(Value::Int(300)));
    assert!(hit.is_some(), "a delta value vanished across the rotation");
    assert!(
        faults::injected().forced_misses > before,
        "the miss schedule never fired on the rotated snapshot"
    );
}

/// The canned chaos mix through the workloads driver: whatever the
/// interleaving, the report's ledger must balance and the pool must
/// produce real answers.
#[test]
fn canned_chaos_mix_balances_its_ledger() {
    let _scenario = Scenario::install(FaultPlan {
        panic_every: 400,
        delay_every: 16,
        delay_micros: 50,
        overlay_miss_every: 8,
    });
    let (engine, instance) = engine_and_instance(600);
    let frozen = Arc::new(engine.session(&instance).freeze().unwrap());

    let spec = ucq_workloads::ResilientSpec::chaos(2, 30);
    let report = ucq_workloads::drive_resilient(&frozen, &spec);

    assert_eq!(report.submitted, 30);
    // This query cannot produce eval errors, so the ledger closes over
    // exactly these four outcome classes — `drains` counts the Ok
    // resolutions (complete + partial).
    assert_eq!(
        report.drains + report.shed + report.panicked + report.drained,
        report.submitted,
        "ledger does not balance: {report:?}"
    );
    assert!(report.total_answers > 0, "chaos starved every request");
    assert!(report.timed_out <= report.partial);
    // Latencies are recorded only for requests that produced answers.
    assert!(report.first_answer_ns.len() <= report.drains);
}
