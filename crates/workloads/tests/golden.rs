//! Golden test: the classifier reproduces the paper's verdict for every
//! catalog entry.

use ucq_core::{classify, Verdict};
use ucq_workloads::{catalog, PaperVerdict};

#[test]
fn classifier_matches_paper_on_whole_catalog() {
    for entry in catalog() {
        let c = classify(&entry.ucq);
        let ok = match entry.verdict {
            PaperVerdict::Tractable => matches!(c.verdict, Verdict::FreeConnex { .. }),
            PaperVerdict::Intractable => {
                matches!(c.verdict, Verdict::Intractable { .. })
            }
            // Open cases — including the two the paper settles ad hoc but
            // outside any general theorem — must come out Unknown: the
            // classifier only claims what the general results prove.
            PaperVerdict::Open | PaperVerdict::OpenButProvenHard => {
                matches!(c.verdict, Verdict::Unknown { .. })
            }
        };
        assert!(
            ok,
            "{} ({}): expected {:?}, classifier said {:?}",
            entry.id, entry.paper_ref, entry.verdict, c.verdict
        );
    }
}

#[test]
fn tractable_entries_have_executable_plans() {
    for entry in catalog() {
        if entry.verdict != PaperVerdict::Tractable {
            continue;
        }
        let c = classify(&entry.ucq);
        let Verdict::FreeConnex { plan } = &c.verdict else {
            panic!("{} must be free-connex", entry.id);
        };
        // Every member's extension must genuinely be free-connex.
        for i in 0..c.minimized.len() {
            let ext = plan.extended_query(&c.minimized, i);
            assert!(
                ext.is_free_connex(),
                "{}: member {i} extension not free-connex",
                entry.id
            );
        }
    }
}

#[test]
fn example31_family_is_union_guarded_but_unknown() {
    for k in 3..=6 {
        let u = ucq_workloads::example31(k);
        let c = classify(&u);
        // k = 3: Q1(x1,x2),Q2(x1,z),Q3(x2,z) over R1(x1,z),R2(x2,z).
        // Free-paths (x1,z,x2) are guarded by... {x1,z,x2} is not inside
        // any 2-variable head, so for k=3 Theorem 33 applies: intractable.
        // For k ≥ 4 every triple of a free-path fits some head: Unknown.
        if k == 3 {
            assert!(
                c.is_intractable(),
                "k=3 star union must be intractable, got {:?}",
                c.verdict
            );
        } else {
            assert!(
                matches!(c.verdict, Verdict::Unknown { .. }),
                "k={k} star union is open, got {:?}",
                c.verdict
            );
        }
    }
}
