//! The bounded admission queue: backpressure by shedding, not by blocking.
//!
//! Producers never wait — [`BoundedQueue::push`] on a full queue returns
//! the item back immediately ([`PushRefused::Full`]), which the runtime
//! converts into a typed `Overloaded` rejection. Consumers block on a
//! condvar until an item arrives or the queue closes; [`BoundedQueue::close`]
//! lets workers drain what was already admitted (graceful shutdown), while
//! [`BoundedQueue::abort`] hands the still-queued items back to the caller
//! so each can be resolved with a recorded outcome — the queue itself never
//! drops work silently.
//!
//! All synchronization goes through the `ucq_storage::sync` seam, so the
//! shutdown/drain protocol model-checks under `--cfg ucq_model_check`
//! exactly as it runs in production.

use std::collections::VecDeque;
use ucq_storage::sync::{lock_unpoisoned, wait_unpoisoned, Condvar, Mutex};

const LOCK_NAME: &str = "the bounded request queue";

/// Why a push was refused; the item comes back to the caller either way.
#[derive(Debug)]
pub enum PushRefused<T> {
    /// The queue was at capacity — admission control sheds the request.
    Full {
        /// The refused item, returned to the caller.
        item: T,
        /// The capacity it hit.
        capacity: usize,
    },
    /// The queue was closed.
    Closed {
        /// The refused item, returned to the caller.
        item: T,
    },
}

struct State<T> {
    items: VecDeque<T>,
    open: bool,
    high_water: usize,
}

/// A mutex+condvar bounded MPMC queue with non-blocking producers.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An open queue admitting at most `capacity` queued items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                open: true,
                high_water: 0,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Admits `item`, returning the queue depth after the push; refuses
    /// (returning the item) when full or closed. Never blocks.
    pub fn push(&self, item: T) -> Result<usize, PushRefused<T>> {
        let mut st = lock_unpoisoned(&self.state, LOCK_NAME);
        if !st.open {
            return Err(PushRefused::Closed { item });
        }
        if st.items.len() >= self.capacity {
            return Err(PushRefused::Full {
                item,
                capacity: self.capacity,
            });
        }
        st.items.push_back(item);
        let depth = st.items.len();
        if depth > st.high_water {
            st.high_water = depth;
        }
        drop(st);
        self.available.notify_one();
        Ok(depth)
    }

    /// Takes the next item, blocking while the queue is empty but open;
    /// `None` once the queue is closed *and* drained (the worker-exit
    /// signal).
    pub fn pop(&self) -> Option<T> {
        let mut st = lock_unpoisoned(&self.state, LOCK_NAME);
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if !st.open {
                return None;
            }
            st = wait_unpoisoned(&self.available, st, LOCK_NAME);
        }
    }

    /// Closes admission; already-queued items still drain through
    /// [`BoundedQueue::pop`], then blocked workers wake and exit.
    pub fn close(&self) {
        let mut st = lock_unpoisoned(&self.state, LOCK_NAME);
        st.open = false;
        drop(st);
        self.available.notify_all();
    }

    /// Closes admission *and* returns everything still queued, so the
    /// caller can record an outcome for each abandoned item.
    pub fn abort(&self) -> Vec<T> {
        let mut st = lock_unpoisoned(&self.state, LOCK_NAME);
        st.open = false;
        let drained = st.items.drain(..).collect();
        drop(st);
        self.available.notify_all();
        drained
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        lock_unpoisoned(&self.state, LOCK_NAME).items.len()
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        lock_unpoisoned(&self.state, LOCK_NAME).high_water
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}
