//! Panic-output shielding for isolated request panics.
//!
//! The runtime converts per-request panics into typed
//! `RequestError::Internal` results, so the default panic hook's stderr
//! report would be pure noise — a chaos run injects hundreds of panics on
//! purpose. [`install`] wraps the process panic hook once; panics raised
//! inside a [`shielded`] scope (the worker's `catch_unwind` region) are
//! silenced, every other panic still reports through the previous hook.

use std::cell::Cell;
use std::sync::OnceLock;

static INSTALLED: OnceLock<()> = OnceLock::new();

thread_local! {
    static SHIELDED: Cell<bool> = const { Cell::new(false) };
}

/// Installs the filtering panic hook (idempotent, first caller wins).
pub(crate) fn install() {
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SHIELDED.with(|s| s.get()) {
                return;
            }
            previous(info);
        }));
    });
}

/// Runs `f` with this thread's panics shielded from the hook; the flag is
/// restored even when `f` unwinds (that unwind is the point).
pub(crate) fn shielded<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            SHIELDED.with(|s| s.set(self.0));
        }
    }
    let prev = SHIELDED.with(|s| s.replace(true));
    let _restore = Restore(prev);
    f()
}
