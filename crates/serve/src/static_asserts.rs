//! Compile-time thread-safety contract for the serving runtime: the queue
//! and reply cells are shared across the pool's threads, and outcomes
//! cross a thread boundary on delivery.

use crate::queue::BoundedQueue;
use crate::reply::ReplySlot;
use crate::runtime::RequestOutcome;

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<BoundedQueue<RequestOutcome>>();
    assert_send_sync::<ReplySlot<RequestOutcome>>();
    assert_send::<RequestOutcome>();
};
