//! One-shot reply slots: how a worker hands a request's outcome back to
//! the submitter.
//!
//! A [`ReplySlot`] is written at most once ([`ReplySlot::deliver`] reports
//! whether the write landed, so the exactly-once accounting is checkable)
//! and read by a blocking [`ReplySlot::wait`] or a non-blocking
//! [`ReplySlot::try_take`]. Synchronization goes through the
//! `ucq_storage::sync` seam for the same reason as the queue: the
//! deliver/wait handshake is part of the model-checked shutdown protocol.

use ucq_storage::sync::{lock_unpoisoned, wait_unpoisoned, Condvar, Mutex};

const LOCK_NAME: &str = "a request reply slot";

/// A write-once, take-once rendezvous cell.
#[derive(Default)]
pub struct ReplySlot<T> {
    value: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> ReplySlot<T> {
    /// An empty slot.
    pub fn new() -> ReplySlot<T> {
        ReplySlot {
            value: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Delivers `value`; `false` if the slot was already occupied (the
    /// value is dropped — under the runtime's protocol this never
    /// happens, and the model test asserts it).
    pub fn deliver(&self, value: T) -> bool {
        let mut slot = lock_unpoisoned(&self.value, LOCK_NAME);
        if slot.is_some() {
            return false;
        }
        *slot = Some(value);
        drop(slot);
        self.ready.notify_all();
        true
    }

    /// Blocks until a value is delivered, then takes it.
    pub fn wait(&self) -> T {
        let mut slot = lock_unpoisoned(&self.value, LOCK_NAME);
        loop {
            if let Some(value) = slot.take() {
                return value;
            }
            slot = wait_unpoisoned(&self.ready, slot, LOCK_NAME);
        }
    }

    /// Takes the value if one has been delivered; never blocks.
    pub fn try_take(&self) -> Option<T> {
        lock_unpoisoned(&self.value, LOCK_NAME).take()
    }
}

impl<T> std::fmt::Debug for ReplySlot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let occupied = lock_unpoisoned(&self.value, LOCK_NAME).is_some();
        f.debug_struct("ReplySlot")
            .field("occupied", &occupied)
            .finish()
    }
}
