//! # ucq-serve — a resilient serving runtime over frozen sessions
//!
//! The constant-delay guarantees of Carmeli & Kröll's `DelayClin` classes
//! are *per-enumeration* guarantees; this crate supplies the
//! operational layer that makes them survivable under load. A hand-rolled
//! worker pool (no async runtime — the container is offline and the
//! workspace is dependency-free) admits [`Request`]s against shared
//! `Arc<FrozenSession>`s with:
//!
//! * bounded admission ([`queue::BoundedQueue`]) — a full queue sheds with
//!   typed [`RequestError::Overloaded`] backpressure instead of blocking
//!   or buffering unboundedly;
//! * cooperative per-request budgets ([`QueryBudget`] enforced by
//!   `Budgeted` at block boundaries) — deadline'd or cancelled requests
//!   terminate within one block, returning [`Served::Partial`];
//! * panic isolation — each request runs under `catch_unwind`, panics
//!   become [`RequestError::Internal`], workers keep serving;
//! * exactly-once accounting ([`ServeStats`]) — every submission resolves
//!   to exactly one counted outcome, checked by the chaos suite under
//!   `--cfg ucq_fault_inject` and model-checked (shutdown/drain protocol)
//!   under `--cfg ucq_model_check`.
//!
//! Entry point: [`serve`] scopes the pool to a body closure; inside it,
//! [`ServeHandle::submit`] returns a [`Ticket`] redeemable for the
//! request's outcome.

#![forbid(unsafe_code)]

pub mod queue;
pub mod reply;
pub mod runtime;
mod shield;
mod static_asserts;

pub use queue::{BoundedQueue, PushRefused};
pub use reply::ReplySlot;
pub use runtime::{
    serve, ConfigError, Request, RequestOutcome, ServeConfig, ServeHandle, ServeStats,
    SessionSource, Ticket,
};

// Re-export the request vocabulary so callers need only this crate.
pub use ucq_core::{RequestError, Served};
pub use ucq_enumerate::{CancelToken, QueryBudget, Truncation};
pub use ucq_storage::EpochCell;
