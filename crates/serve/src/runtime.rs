//! The serving runtime: a hand-rolled worker pool admitting requests
//! against shared [`FrozenSession`]s.
//!
//! Resilience properties, each enforced structurally rather than by
//! convention:
//!
//! * **Backpressure** — the request queue is bounded; a full queue sheds
//!   with a typed [`RequestError::Overloaded`] instead of queueing
//!   unboundedly or blocking the submitter.
//! * **Budgets** — every request carries a [`QueryBudget`] enforced
//!   cooperatively at block boundaries by [`Budgeted`]; a deadline'd or
//!   cancelled request terminates within one block and returns
//!   [`Served::Partial`] with the answers produced so far.
//! * **Panic isolation** — each request runs under `catch_unwind`; a
//!   panicking request becomes [`RequestError::Internal`] and the worker
//!   keeps serving.
//! * **Exactly-once accounting** — every submitted request resolves to
//!   exactly one outcome (shed, completed, partial, eval error, panic, or
//!   drained at shutdown); [`ServeStats::is_balanced`] checks the books.

use crate::queue::{BoundedQueue, PushRefused};
use crate::reply::ReplySlot;
use crate::shield;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use ucq_core::{FrozenSession, RequestError, Served};
use ucq_enumerate::{Budgeted, CancelToken, Enumerator, QueryBudget, Truncation};
use ucq_storage::faults;
use ucq_storage::sync::{AtomicUsize, Ordering};
use ucq_storage::EpochCell;

/// How a request resolves: answers (complete or partial) or a typed error.
pub type RequestOutcome = Result<Served, RequestError>;

/// A rejected pool configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A pool needs at least one worker.
    ZeroWorkers,
    /// A queue of capacity zero would shed everything.
    ZeroQueueCapacity,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "worker pool size must be positive"),
            ConfigError::ZeroQueueCapacity => write!(f, "request queue capacity must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validated pool shape: worker count and admission-queue bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    workers: usize,
    queue_capacity: usize,
}

impl ServeConfig {
    /// A pool of `workers` threads behind a queue admitting at most
    /// `queue_capacity` waiting requests.
    pub fn new(workers: usize, queue_capacity: usize) -> Result<ServeConfig, ConfigError> {
        if workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        Ok(ServeConfig {
            workers,
            queue_capacity,
        })
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The admission-queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }
}

/// Where a request finds its session: pinned to one snapshot, or resolved
/// from an [`EpochCell`] at dequeue time so live traffic picks up a
/// re-frozen epoch without restarting the pool.
pub enum SessionSource<'e> {
    /// One fixed snapshot for the request's whole life.
    Pinned(Arc<FrozenSession<'e>>),
    /// The *current* epoch, read when a worker starts the request. A
    /// request already running keeps the epoch it resolved — rotation
    /// never tears an in-flight enumeration.
    Cell(Arc<EpochCell<FrozenSession<'e>>>),
}

impl<'e> SessionSource<'e> {
    fn resolve(self) -> Arc<FrozenSession<'e>> {
        match self {
            SessionSource::Pinned(session) => session,
            SessionSource::Cell(cell) => cell.load(),
        }
    }
}

/// One enumeration request against a shared frozen session.
pub struct Request<'e> {
    source: SessionSource<'e>,
    budget: QueryBudget,
    cancel: Option<CancelToken>,
    inject_faults: bool,
}

impl<'e> Request<'e> {
    /// An unlimited request against `session`.
    pub fn new(session: Arc<FrozenSession<'e>>) -> Request<'e> {
        Request::from_source(SessionSource::Pinned(session))
    }

    /// An unlimited request that resolves the current epoch of `cell` when
    /// a worker picks it up — the zero-downtime rotation path: install a
    /// re-frozen session into the cell and subsequent requests serve the
    /// new epoch while in-flight ones finish on the old.
    pub fn from_cell(cell: Arc<EpochCell<FrozenSession<'e>>>) -> Request<'e> {
        Request::from_source(SessionSource::Cell(cell))
    }

    fn from_source(source: SessionSource<'e>) -> Request<'e> {
        Request {
            source,
            budget: QueryBudget::unlimited(),
            cancel: None,
            inject_faults: false,
        }
    }

    /// Attaches a [`QueryBudget`].
    pub fn with_budget(mut self, budget: QueryBudget) -> Request<'e> {
        self.budget = budget;
        self
    }

    /// Attaches an out-of-band [`CancelToken`].
    pub fn with_cancel(mut self, cancel: CancelToken) -> Request<'e> {
        self.cancel = Some(cancel);
        self
    }

    /// Arms the `ucq_fault_inject` seam for this request's storage
    /// operations (a no-op without the cfg): the chaos suite marks the
    /// requests it expects to misbehave, leaving co-scheduled requests as
    /// in-process oracles.
    pub fn with_fault_injection(mut self) -> Request<'e> {
        self.inject_faults = true;
        self
    }
}

/// A claim check for a submitted request.
pub struct Ticket {
    slot: Arc<ReplySlot<RequestOutcome>>,
}

impl Ticket {
    /// Blocks until the request resolves.
    pub fn wait(self) -> RequestOutcome {
        self.slot.wait()
    }

    /// The outcome if already resolved; never blocks.
    pub fn try_take(&self) -> Option<RequestOutcome> {
        self.slot.try_take()
    }
}

struct Job<'e> {
    request: Request<'e>,
    slot: Arc<ReplySlot<RequestOutcome>>,
}

#[derive(Default)]
struct StatsCells {
    submitted: AtomicUsize,
    completed: AtomicUsize,
    partial: AtomicUsize,
    timed_out: AtomicUsize,
    shed: AtomicUsize,
    panicked: AtomicUsize,
    eval_errors: AtomicUsize,
    drained: AtomicUsize,
}

/// End-of-run accounting snapshot: every submitted request shows up in
/// exactly one outcome counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests offered to [`ServeHandle::submit`].
    pub submitted: usize,
    /// Requests that enumerated to natural exhaustion.
    pub completed: usize,
    /// Requests truncated by their budget (deadline, caps, or cancel).
    pub partial: usize,
    /// The subset of `partial` truncated specifically by a deadline.
    pub timed_out: usize,
    /// Requests refused at admission (queue full or closed).
    pub shed: usize,
    /// Requests that panicked and were isolated.
    pub panicked: usize,
    /// Requests that failed with a typed evaluation error.
    pub eval_errors: usize,
    /// Requests abandoned in the queue by [`ServeHandle::abort`].
    pub drained: usize,
    /// The deepest the admission queue ever got.
    pub queue_high_water: usize,
}

impl ServeStats {
    /// Requests with a recorded outcome. `timed_out` is excluded: it
    /// subdivides `partial` rather than standing alone.
    pub fn accounted(&self) -> usize {
        self.completed + self.partial + self.shed + self.panicked + self.eval_errors + self.drained
    }

    /// Whether every submission is accounted exactly once.
    pub fn is_balanced(&self) -> bool {
        self.accounted() == self.submitted
    }
}

impl StatsCells {
    fn snapshot(&self, queue_high_water: usize) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            partial: self.partial.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            eval_errors: self.eval_errors.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            queue_high_water,
        }
    }

    fn record(&self, outcome: &RequestOutcome) {
        match outcome {
            Ok(served) => match served.truncation() {
                None => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                }
                Some(why) => {
                    self.partial.fetch_add(1, Ordering::Relaxed);
                    if why == Truncation::Deadline {
                        self.timed_out.fetch_add(1, Ordering::Relaxed);
                    }
                }
            },
            Err(RequestError::Internal { .. }) => {
                self.panicked.fetch_add(1, Ordering::Relaxed);
            }
            Err(RequestError::Eval(_)) => {
                self.eval_errors.fetch_add(1, Ordering::Relaxed);
            }
            // Admission-side outcomes are counted at the submit/abort
            // sites; a worker never produces them.
            Err(RequestError::Overloaded { .. }) | Err(RequestError::ShutDown) => {}
        }
    }
}

/// The submitter's view of a running pool, valid inside the [`serve`]
/// body closure.
pub struct ServeHandle<'scope, 'e> {
    queue: &'scope BoundedQueue<Job<'e>>,
    stats: &'scope StatsCells,
}

impl<'scope, 'e> ServeHandle<'scope, 'e> {
    /// Offers `request` to the pool. Admission is non-blocking: a full
    /// queue sheds with [`RequestError::Overloaded`], a closed one with
    /// [`RequestError::ShutDown`] — either way the request is accounted
    /// as shed and no ticket exists.
    pub fn submit(&self, request: Request<'e>) -> Result<Ticket, RequestError> {
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(ReplySlot::new());
        let job = Job {
            request,
            slot: Arc::clone(&slot),
        };
        match self.queue.push(job) {
            Ok(_depth) => Ok(Ticket { slot }),
            Err(PushRefused::Full { capacity, .. }) => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                Err(RequestError::Overloaded {
                    depth: capacity,
                    capacity,
                })
            }
            Err(PushRefused::Closed { .. }) => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                Err(RequestError::ShutDown)
            }
        }
    }

    /// Closes admission and abandons everything still queued; each
    /// abandoned request resolves its ticket with
    /// [`RequestError::ShutDown`] and is accounted as drained. In-flight
    /// requests still finish.
    pub fn abort(&self) {
        for job in self.queue.abort() {
            self.stats.drained.fetch_add(1, Ordering::Relaxed);
            job.slot.deliver(Err(RequestError::ShutDown));
        }
    }

    /// Requests currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }
}

/// Closes the queue when dropped, so workers drain and exit even if the
/// `serve` body panics — otherwise the scope would join-deadlock on
/// workers parked in `pop`.
struct CloseOnExit<'scope, 'e>(&'scope BoundedQueue<Job<'e>>);

impl Drop for CloseOnExit<'_, '_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Runs a worker pool for the duration of `body`: spawns
/// `config.workers()` threads, hands `body` a [`ServeHandle`] to submit
/// requests through, then (once `body` returns) closes admission, drains
/// the queue, joins the workers, and returns `body`'s result alongside
/// the final [`ServeStats`].
pub fn serve<'e, R>(
    config: ServeConfig,
    body: impl FnOnce(&ServeHandle<'_, 'e>) -> R,
) -> (R, ServeStats) {
    shield::install();
    let queue = BoundedQueue::new(config.queue_capacity());
    let stats = StatsCells::default();
    let result = std::thread::scope(|scope| {
        let _close = CloseOnExit(&queue);
        for _ in 0..config.workers() {
            scope.spawn(|| worker_loop(&queue, &stats));
        }
        let handle = ServeHandle {
            queue: &queue,
            stats: &stats,
        };
        body(&handle)
        // `_close` drops here: admission closes, parked workers wake,
        // drain the queue, and the scope joins them.
    });
    let snapshot = stats.snapshot(queue.high_water());
    (result, snapshot)
}

fn worker_loop<'e>(queue: &BoundedQueue<Job<'e>>, stats: &StatsCells) {
    while let Some(job) = queue.pop() {
        let outcome = run_request(job.request);
        stats.record(&outcome);
        job.slot.deliver(outcome);
    }
}

fn run_request(request: Request<'_>) -> RequestOutcome {
    let Request {
        source,
        budget,
        cancel,
        inject_faults,
    } = request;
    // Resolve the epoch once, up front: the whole request — including its
    // panic path — serves one consistent snapshot.
    let session = source.resolve();
    let enumerate = move || -> RequestOutcome {
        let answers = session.enumerate()?;
        let mut budgeted = Budgeted::new(answers, budget);
        if let Some(token) = cancel {
            budgeted = budgeted.with_cancel(token);
        }
        let answers = budgeted.collect_all();
        Ok(match budgeted.truncated_by() {
            None => Served::Complete { answers },
            Some(truncated_by) => Served::Partial {
                answers,
                truncated_by,
            },
        })
    };
    let guarded = move || {
        if inject_faults {
            faults::armed(enumerate)
        } else {
            enumerate()
        }
    };
    match shield::shielded(|| catch_unwind(AssertUnwindSafe(guarded))) {
        Ok(outcome) => outcome,
        Err(payload) => Err(RequestError::Internal {
            detail: panic_detail(payload),
        }),
    }
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(message) => *message,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(message) => (*message).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}
