//! Integration tests for the serving runtime against real frozen
//! sessions: completion, budgets, cancellation, shedding, shutdown, and
//! the exactly-once accounting invariant.

use std::sync::Arc;
use std::time::{Duration, Instant};
use ucq_core::UcqEngine;
use ucq_query::parse_ucq;
use ucq_serve::CancelToken;
use ucq_serve::{
    serve, BoundedQueue, ConfigError, PushRefused, QueryBudget, ReplySlot, Request, RequestError,
    ServeConfig, Served, Truncation,
};
use ucq_storage::{Instance, Relation, Tuple};

fn engine_and_instance(rows: usize) -> (UcqEngine, Instance) {
    let u = parse_ucq("Q(x, y) <- R(x, y)").unwrap();
    let engine = UcqEngine::new(u);
    let pairs: Vec<(i64, i64)> = (0..rows as i64).map(|i| (i, i + 1)).collect();
    let instance: Instance = [("R", Relation::from_pairs(pairs))].into_iter().collect();
    (engine, instance)
}

fn sorted(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort();
    tuples
}

#[test]
fn config_rejects_degenerate_shapes() {
    assert_eq!(ServeConfig::new(0, 4), Err(ConfigError::ZeroWorkers));
    assert_eq!(ServeConfig::new(4, 0), Err(ConfigError::ZeroQueueCapacity));
    let ok = ServeConfig::new(4, 8).unwrap();
    assert_eq!((ok.workers(), ok.queue_capacity()), (4, 8));
}

#[test]
fn pool_completes_requests_and_matches_oracle() {
    let (engine, instance) = engine_and_instance(100);
    let oracle = sorted(engine.enumerate_naive(&instance).unwrap());
    let frozen = Arc::new(engine.session(&instance).freeze().unwrap());

    let config = ServeConfig::new(3, 16).unwrap();
    let (answers, stats) = serve(config, |handle| {
        let tickets: Vec<_> = (0..8)
            .map(|_| handle.submit(Request::new(Arc::clone(&frozen))).unwrap())
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().unwrap())
            .collect::<Vec<_>>()
    });

    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.completed, 8);
    assert!(stats.is_balanced(), "unbalanced books: {stats:?}");
    for served in answers {
        assert!(!served.is_partial());
        assert_eq!(sorted(served.into_answers()), oracle);
    }
}

#[test]
fn max_answers_budget_truncates_exactly() {
    let (engine, instance) = engine_and_instance(1000);
    let frozen = Arc::new(engine.session(&instance).freeze().unwrap());

    let config = ServeConfig::new(1, 4).unwrap();
    let (outcome, stats) = serve(config, |handle| {
        let req = Request::new(Arc::clone(&frozen))
            .with_budget(QueryBudget::unlimited().with_max_answers(7));
        handle.submit(req).unwrap().wait()
    });

    match outcome.unwrap() {
        Served::Partial {
            answers,
            truncated_by,
        } => {
            assert_eq!(answers.len(), 7);
            assert_eq!(truncated_by, Truncation::MaxAnswers);
        }
        Served::Complete { .. } => panic!("budget did not truncate"),
    }
    assert_eq!(stats.partial, 1);
    assert_eq!(stats.timed_out, 0, "answer cap is not a timeout");
    assert!(stats.is_balanced());
}

#[test]
fn expired_deadline_terminates_within_one_block() {
    let (engine, instance) = engine_and_instance(5000);
    let frozen = Arc::new(engine.session(&instance).freeze().unwrap());

    let config = ServeConfig::new(1, 4).unwrap();
    let (outcome, stats) = serve(config, |handle| {
        // A deadline already in the past: the very first block-boundary
        // check fires, so the request returns at most one block of
        // answers instead of enumerating all 5000.
        let req = Request::new(Arc::clone(&frozen))
            .with_budget(QueryBudget::unlimited().with_deadline(Instant::now()));
        handle.submit(req).unwrap().wait()
    });

    match outcome.unwrap() {
        Served::Partial {
            answers,
            truncated_by,
        } => {
            assert_eq!(truncated_by, Truncation::Deadline);
            assert!(
                answers.len() <= 512,
                "deadline overran a block: {} answers",
                answers.len()
            );
        }
        Served::Complete { .. } => panic!("expired deadline did not truncate"),
    }
    assert_eq!(stats.partial, 1);
    assert_eq!(stats.timed_out, 1, "deadline truncation counts as timeout");
    assert!(stats.is_balanced());
}

#[test]
fn fired_cancel_token_truncates() {
    let (engine, instance) = engine_and_instance(2000);
    let frozen = Arc::new(engine.session(&instance).freeze().unwrap());
    let token = CancelToken::new();
    token.cancel();

    let config = ServeConfig::new(1, 4).unwrap();
    let (outcome, stats) = serve(config, |handle| {
        let req = Request::new(Arc::clone(&frozen)).with_cancel(token.clone());
        handle.submit(req).unwrap().wait()
    });

    match outcome.unwrap() {
        Served::Partial { truncated_by, .. } => {
            assert_eq!(truncated_by, Truncation::Cancelled);
        }
        Served::Complete { .. } => panic!("fired token did not truncate"),
    }
    assert_eq!(stats.partial, 1);
    assert_eq!(stats.timed_out, 0);
    assert!(stats.is_balanced());
}

#[test]
fn full_queue_sheds_with_typed_overload() {
    // One slow worker, a one-deep queue, and a burst of slow requests:
    // the first occupies the worker for many milliseconds (200k-answer
    // enumeration), the second queues, and the rest of the burst races a
    // full queue — at least one must shed. Every outcome, shed or served,
    // must still balance.
    let (engine, instance) = engine_and_instance(200_000);
    let frozen = Arc::new(engine.session(&instance).freeze().unwrap());

    let config = ServeConfig::new(1, 1).unwrap();
    let ((tickets, sheds), stats) = serve(config, |handle| {
        let mut tickets = Vec::new();
        let mut sheds = 0usize;
        for _ in 0..12 {
            match handle.submit(Request::new(Arc::clone(&frozen))) {
                Ok(t) => tickets.push(t),
                Err(RequestError::Overloaded { depth, capacity }) => {
                    assert_eq!(capacity, 1);
                    assert_eq!(depth, capacity);
                    sheds += 1;
                }
                Err(other) => panic!("unexpected admission error: {other}"),
            }
        }
        let served: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        (served, sheds)
    });

    assert!(sheds > 0, "burst never overflowed the one-deep queue");
    assert_eq!(stats.shed, sheds);
    assert_eq!(stats.submitted, 12);
    assert_eq!(stats.completed, tickets.len());
    assert!(tickets.iter().all(|t| t.is_ok()));
    assert!(stats.is_balanced(), "unbalanced books: {stats:?}");
}

#[test]
fn abort_drains_queue_and_sheds_later_submits() {
    let (engine, instance) = engine_and_instance(50);
    let frozen = Arc::new(engine.session(&instance).freeze().unwrap());

    let config = ServeConfig::new(1, 8).unwrap();
    let (late, stats) = serve(config, |handle| {
        handle.abort();
        // Admission is closed: the submit sheds with ShutDown.
        handle.submit(Request::new(Arc::clone(&frozen)))
    });

    match late {
        Err(RequestError::ShutDown) => {}
        Err(other) => panic!("submit after abort returned {other}"),
        Ok(_) => panic!("submit after abort was admitted"),
    }
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.shed, 1);
    assert!(stats.is_balanced());
}

#[test]
fn aborted_tickets_resolve_shutdown() {
    // Stall the single worker with a long enumeration, queue a few more
    // requests behind it, then abort: the queued tickets must resolve
    // (ShutDown), not hang, and be accounted as drained.
    let (engine, instance) = engine_and_instance(200_000);
    let frozen = Arc::new(engine.session(&instance).freeze().unwrap());

    let config = ServeConfig::new(1, 8).unwrap();
    let (outcomes, stats) = serve(config, |handle| {
        let tickets: Vec<_> = (0..4)
            .map(|_| handle.submit(Request::new(Arc::clone(&frozen))).unwrap())
            .collect();
        handle.abort();
        tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
    });

    let shut_down = outcomes
        .iter()
        .filter(|o| matches!(o, Err(RequestError::ShutDown)))
        .count();
    let served = outcomes.iter().filter(|o| o.is_ok()).count();
    assert_eq!(shut_down + served, 4, "a ticket vanished");
    assert_eq!(stats.drained, shut_down);
    assert_eq!(stats.completed, served);
    assert!(stats.is_balanced(), "unbalanced books: {stats:?}");
}

#[test]
fn queue_depth_high_water_is_tracked() {
    let (engine, instance) = engine_and_instance(200_000);
    let frozen = Arc::new(engine.session(&instance).freeze().unwrap());

    let config = ServeConfig::new(1, 8).unwrap();
    let (_, stats) = serve(config, |handle| {
        let tickets: Vec<_> = (0..5)
            .map(|_| handle.submit(Request::new(Arc::clone(&frozen))).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
    });
    assert!(
        stats.queue_high_water >= 1,
        "five submits against one busy worker never queued"
    );
    assert!(stats.queue_high_water <= 8);
    assert!(stats.is_balanced());
}

// ---------------------------------------------------------------------------
// Component-level tests: the queue and reply slot in isolation (the serve
// sources keep `#[cfg(test)]` modules out of `src/` so the L7 lint patrol
// covers every line that serves requests).

#[test]
fn bounded_queue_sheds_at_capacity_and_drains_after_close() {
    let q: BoundedQueue<u32> = BoundedQueue::new(2);
    assert_eq!(q.capacity(), 2);
    assert_eq!(q.push(1).unwrap(), 1);
    assert_eq!(q.push(2).unwrap(), 2);
    match q.push(3) {
        Err(PushRefused::Full { item, capacity }) => {
            assert_eq!(item, 3);
            assert_eq!(capacity, 2);
        }
        other => panic!("push into a full queue returned {other:?}"),
    }
    assert_eq!(q.depth(), 2);
    assert_eq!(q.high_water(), 2);

    q.close();
    match q.push(4) {
        Err(PushRefused::Closed { item }) => assert_eq!(item, 4),
        other => panic!("push into a closed queue returned {other:?}"),
    }
    // Already-admitted items still drain, then pop signals exit.
    assert_eq!(q.pop(), Some(1));
    assert_eq!(q.pop(), Some(2));
    assert_eq!(q.pop(), None);
    assert_eq!(q.pop(), None, "a closed, drained queue stays drained");
}

#[test]
fn bounded_queue_abort_returns_stranded_items() {
    let q: BoundedQueue<u32> = BoundedQueue::new(4);
    q.push(10).unwrap();
    q.push(11).unwrap();
    assert_eq!(q.abort(), vec![10, 11]);
    assert_eq!(q.depth(), 0);
    assert_eq!(q.pop(), None);
}

#[test]
fn reply_slot_delivers_exactly_once() {
    let slot: ReplySlot<u32> = ReplySlot::new();
    assert_eq!(slot.try_take(), None);
    assert!(slot.deliver(7));
    assert!(!slot.deliver(8), "second delivery must be refused");
    assert_eq!(slot.try_take(), Some(7));
    assert_eq!(slot.try_take(), None, "take-once semantics");
}

#[test]
fn reply_slot_wait_blocks_until_delivery() {
    let slot = Arc::new(ReplySlot::<u32>::new());
    let waiter = {
        let slot = Arc::clone(&slot);
        std::thread::spawn(move || slot.wait())
    };
    std::thread::sleep(Duration::from_millis(10));
    assert!(slot.deliver(42));
    assert_eq!(waiter.join().unwrap(), 42);
}
