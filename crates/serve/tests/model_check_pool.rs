//! Model-checks the pool's shutdown/drain protocol — the production
//! [`BoundedQueue`]/[`ReplySlot`] code — under exhaustive
//! bounded-preemption schedules:
//!
//! ```text
//! RUSTFLAGS="--cfg ucq_model_check" cargo test -p ucq-serve --test model_check_pool
//! ```
//!
//! Unlike the storage model suite, this one is compiled *only* under the
//! seam cfg: the queue parks workers on the seam condvar, and in a plain
//! build that is a real `std::sync::Condvar` wait, which would wedge the
//! compat executor's one-thread-at-a-time scheduler. Under the cfg the
//! wait is the modeled, yield-based one and every interleaving of
//! push/pop/close/abort is explored.
//!
//! Invariants checked across every schedule:
//! * no request is lost: every pushed item is either served (delivered by
//!   a worker) or handed back by `abort` — exactly once;
//! * every reply slot resolves exactly once (`deliver` never refused);
//! * workers join after `close`/`abort` — no deadlock, no wedged pool.

#![cfg(ucq_model_check)]

use std::sync::Arc;
use ucq_serve::{BoundedQueue, PushRefused, ReplySlot};

type Job = (u32, Arc<ReplySlot<u32>>);

const CONFIG: shuttle::Config = shuttle::Config {
    max_schedules: 50_000,
    max_preemptions: 2,
};

fn worker(queue: Arc<BoundedQueue<Job>>) -> shuttle::thread::JoinHandle<u32> {
    shuttle::thread::spawn(move || {
        let mut served = 0u32;
        while let Some((value, slot)) = queue.pop() {
            assert!(slot.deliver(value * 10), "double delivery to a slot");
            served += 1;
        }
        served
    })
}

/// Graceful shutdown: two workers race a producer that pushes three jobs
/// then closes. Every admitted job must be served exactly once and both
/// workers must join.
#[test]
fn close_drains_every_admitted_job() {
    let e = shuttle::explore_with(CONFIG, || {
        let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(4));
        let workers: Vec<_> = (0..2).map(|_| worker(Arc::clone(&queue))).collect();

        let slots: Vec<Arc<ReplySlot<u32>>> = (0..3).map(|_| Arc::new(ReplySlot::new())).collect();
        let mut admitted = 0u32;
        for (i, slot) in slots.iter().enumerate() {
            match queue.push((i as u32, Arc::clone(slot))) {
                Ok(_) => admitted += 1,
                Err(refused) => panic!("capacity-4 queue refused job {i}: {refused:?}"),
            }
        }
        queue.close();

        let served: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        let resolved = slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let got = s.try_take().expect("admitted job never resolved");
                assert_eq!(got, i as u32 * 10, "job resolved with the wrong value");
                1u32
            })
            .sum::<u32>();
        (admitted, served, resolved)
    });
    assert!(e.schedules > 1, "explored only {} schedules", e.schedules);
    assert!(!e.truncated, "schedule space unexpectedly truncated");
    for (admitted, served, resolved) in &e.outcomes {
        assert_eq!(*admitted, 3);
        assert_eq!(*served, 3, "a job was dropped or served twice");
        assert_eq!(*resolved, 3, "a slot resolved zero or multiple times");
    }
}

/// Abort mid-stream: a worker races a producer that pushes then aborts.
/// Each job must end up served or drained — never both, never neither.
#[test]
fn abort_accounts_every_job_exactly_once() {
    let e = shuttle::explore_with(CONFIG, || {
        let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(4));
        let w = worker(Arc::clone(&queue));

        let slots: Vec<Arc<ReplySlot<u32>>> = (0..2).map(|_| Arc::new(ReplySlot::new())).collect();
        for (i, slot) in slots.iter().enumerate() {
            queue.push((i as u32, Arc::clone(slot))).unwrap();
        }
        let drained = queue.abort();
        // Resolve drained jobs the way the runtime does (sentinel 999).
        for (_, slot) in &drained {
            assert!(slot.deliver(999), "drained job's slot already resolved");
        }

        let served = w.join().unwrap();
        let outcomes: Vec<u32> = slots
            .iter()
            .map(|s| s.try_take().expect("job neither served nor drained"))
            .collect();
        (served, drained.len() as u32, outcomes)
    });
    assert!(e.schedules > 1, "explored only {} schedules", e.schedules);
    assert!(!e.truncated);
    let mut saw_drain = false;
    let mut saw_serve = false;
    for (served, drained, outcomes) in &e.outcomes {
        assert_eq!(
            served + drained,
            2,
            "jobs lost or duplicated: served={served} drained={drained}"
        );
        saw_drain |= *drained > 0;
        saw_serve |= *served > 0;
        for (i, got) in outcomes.iter().enumerate() {
            assert!(
                *got == 999 || *got == i as u32 * 10,
                "job {i} resolved with corrupt value {got}"
            );
        }
    }
    // The race must actually be explored in both directions.
    assert!(saw_drain, "no schedule drained a job before the worker");
    assert!(saw_serve, "no schedule let the worker win the race");
}

/// Admission control under the model: a capacity-1 queue with a parked
/// consumer sheds the overflow push in every schedule, and the shed item
/// comes back intact.
#[test]
fn overflow_push_sheds_in_every_schedule() {
    let e = shuttle::explore_with(CONFIG, || {
        let queue: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        queue.push(1).unwrap();
        let refused = match queue.push(2) {
            Err(PushRefused::Full { item, capacity }) => (item, capacity),
            other => panic!("overflow push returned {other:?}"),
        };
        let consumer = {
            let queue = Arc::clone(&queue);
            shuttle::thread::spawn(move || queue.pop())
        };
        queue.close();
        let popped = consumer.join().unwrap();
        (refused, popped, queue.high_water())
    });
    assert!(e.schedules > 1, "explored only {} schedules", e.schedules);
    assert!(!e.truncated);
    for (refused, popped, high_water) in &e.outcomes {
        assert_eq!(*refused, (2, 1), "shed item or capacity corrupted");
        assert_eq!(*popped, Some(1), "admitted item lost");
        assert_eq!(*high_water, 1);
    }
}
