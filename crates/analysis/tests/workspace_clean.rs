//! The linter, self-hosted: a plain `cargo test` fails if any workspace
//! source violates L1–L6 without a reviewed waiver in
//! `analysis/allow.toml` — CI's `analysis` job is belt-and-braces on top.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = ucq_analysis::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/analysis");
    let outcome = ucq_analysis::lint_workspace(&root).expect("lint run failed");
    assert!(
        outcome.is_clean(),
        "workspace lint violations:\n{}",
        ucq_analysis::render(&outcome)
    );
    assert!(
        outcome.files_scanned > 30,
        "suspiciously few files scanned ({}) — walker broke?",
        outcome.files_scanned
    );
}
