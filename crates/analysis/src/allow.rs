//! The `analysis/allow.toml` waiver file: every lint exception is
//! committed, attributed, and reviewed.
//!
//! A hand-rolled parser for the TOML subset the file needs — `[[allow]]`
//! array-of-tables with string keys — so the linter stays dependency-free:
//!
//! ```toml
//! [[allow]]
//! code = "L3"                         # required: which lint
//! file = "crates/core/src/engine.rs"  # required: exact relative path
//! type = "RefCell"                    # optional: restrict to one ident
//! reason = "why this is sound"        # required, non-empty
//! ```
//!
//! Waivers that match nothing are themselves an error (`STALE`): a waiver
//! must die with the code it excused, or it silently re-opens the hole.

use crate::lints::Finding;

/// One parsed `[[allow]]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waiver {
    pub code: String,
    pub file: String,
    /// `None` waives every ident the lint flags in `file`.
    pub ident: Option<String>,
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for diagnostics.
    pub line: u32,
}

impl Waiver {
    /// Whether this waiver excuses `f`.
    pub fn matches(&self, f: &Finding) -> bool {
        self.code == f.code
            && self.file == f.file
            && self.ident.as_ref().is_none_or(|t| *t == f.ident)
    }
}

fn unquote(raw: &str, line_no: u32) -> Result<String, String> {
    let raw = raw.trim();
    let inner = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| {
            format!("allow.toml:{line_no}: expected a double-quoted string, got `{raw}`")
        })?;
    if inner.contains('"') || inner.contains('\\') {
        return Err(format!(
            "allow.toml:{line_no}: escapes are not supported in waiver strings"
        ));
    }
    Ok(inner.to_string())
}

/// Parses the waiver file contents. Unknown keys, bare tables, and
/// malformed entries are hard errors — the allowlist is security-adjacent
/// configuration and must not fail open.
pub fn parse(src: &str) -> Result<Vec<Waiver>, String> {
    struct Partial {
        code: Option<String>,
        file: Option<String>,
        ident: Option<String>,
        reason: Option<String>,
        line: u32,
    }
    let mut out: Vec<Waiver> = Vec::new();
    let mut cur: Option<Partial> = None;

    let mut finish = |cur: &mut Option<Partial>| -> Result<(), String> {
        if let Some(p) = cur.take() {
            let missing =
                |k: &str| format!("allow.toml:{}: [[allow]] entry is missing `{k}`", p.line);
            let w = Waiver {
                code: p.code.ok_or_else(|| missing("code"))?,
                file: p.file.ok_or_else(|| missing("file"))?,
                ident: p.ident,
                reason: p.reason.ok_or_else(|| missing("reason"))?,
                line: p.line,
            };
            if w.reason.trim().is_empty() {
                return Err(format!("allow.toml:{}: `reason` must not be empty", w.line));
            }
            if !matches!(
                w.code.as_str(),
                "L1" | "L2" | "L3" | "L4" | "L5" | "L6" | "L7"
            ) {
                return Err(format!(
                    "allow.toml:{}: unknown lint code `{}`",
                    w.line, w.code
                ));
            }
            out.push(w);
        }
        Ok(())
    };

    for (i, raw_line) in src.lines().enumerate() {
        let line_no = (i + 1) as u32;
        let line = match raw_line.find('#') {
            // A `#` outside quotes starts a comment; inside quotes it is
            // content. Quotes in this file never contain `#` (checked in
            // unquote), so a simple scan suffices.
            Some(pos)
                if !raw_line[..pos].contains('"')
                    || raw_line[..pos].matches('"').count() % 2 == 0 =>
            {
                &raw_line[..pos]
            }
            _ => raw_line,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut cur)?;
            cur = Some(Partial {
                code: None,
                file: None,
                ident: None,
                reason: None,
                line: line_no,
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "allow.toml:{line_no}: only [[allow]] tables are supported, got `{line}`"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("allow.toml:{line_no}: expected `key = \"value\"`"));
        };
        let Some(p) = cur.as_mut() else {
            return Err(format!(
                "allow.toml:{line_no}: `{}` outside an [[allow]] entry",
                key.trim()
            ));
        };
        let value = unquote(value, line_no)?;
        match key.trim() {
            "code" => p.code = Some(value),
            "file" => p.file = Some(value),
            "type" => p.ident = Some(value),
            "reason" => p.reason = Some(value),
            other => {
                return Err(format!("allow.toml:{line_no}: unknown key `{other}`"));
            }
        }
    }
    finish(&mut cur)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_and_minimal_entries() {
        let src = r#"
# workspace waivers
[[allow]]
code = "L3"
file = "crates/core/src/engine.rs"
type = "RefCell"
reason = "EvalSession is a single-threaded build-phase object"

[[allow]]
code = "L4"
file = "crates/core/src/engine.rs"
reason = "build-phase session types are intentionally !Sync"
"#;
        let ws = parse(src).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].ident.as_deref(), Some("RefCell"));
        assert_eq!(ws[1].ident, None);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let src = "[[allow]]\ncode = \"L3\"\nfile = \"x.rs\"\n";
        assert!(parse(src).unwrap_err().contains("missing `reason`"));
    }

    #[test]
    fn unknown_keys_and_codes_are_errors() {
        let bad_key = "[[allow]]\ncode = \"L3\"\nfile = \"x\"\nreason = \"r\"\nwho = \"me\"\n";
        assert!(parse(bad_key).unwrap_err().contains("unknown key"));
        let bad_code = "[[allow]]\ncode = \"L9\"\nfile = \"x\"\nreason = \"r\"\n";
        assert!(parse(bad_code).unwrap_err().contains("unknown lint code"));
    }

    #[test]
    fn waiver_matching_respects_type_restriction() {
        use crate::lints::Finding;
        let w = parse("[[allow]]\ncode = \"L3\"\nfile = \"a.rs\"\ntype = \"Rc\"\nreason = \"r\"\n")
            .unwrap();
        let f = |ident: &str| Finding {
            code: "L3",
            file: "a.rs".to_string(),
            line: 1,
            ident: ident.to_string(),
            message: String::new(),
        };
        assert!(w[0].matches(&f("Rc")));
        assert!(!w[0].matches(&f("RefCell")));
    }
}
