//! `ucq-analysis`: the workspace invariant linter behind `ucq lint`.
//!
//! A dependency-free static-analysis pass purpose-built for this
//! codebase: a hand-rolled Rust [lexer](lexer) feeds seven invariant
//! [lints](lints) (L1–L7) that mechanically enforce the hot-path
//! disciplines the enumeration engine's delay guarantees rest on, with an
//! explicit committed [allowlist](allow) (`analysis/allow.toml`) for the
//! few reviewed exceptions. See the README's "Static analysis & model
//! checking" section for the lint catalogue.
//!
//! The linter patrols every `.rs` file under the workspace's `src/`
//! directories (unit tests included — they share the files; integration
//! `tests/` directories are out of scope). It is wired in twice: as the
//! `ucq lint` CLI subcommand (CI's `analysis` job) and as this crate's
//! own `workspace_clean` integration test, so a plain `cargo test` also
//! fails on a violated invariant.

#![forbid(unsafe_code)]

pub mod allow;
pub mod lexer;
pub mod lints;

use allow::Waiver;
use lints::{Finding, SourceFile};
use std::path::{Path, PathBuf};

/// The result of linting a workspace.
#[derive(Debug)]
pub struct Outcome {
    /// Findings not excused by the allowlist, ordered (file, line, code).
    pub findings: Vec<Finding>,
    /// Findings excused by a waiver.
    pub waived: usize,
    /// Waivers that matched nothing (an error: stale waivers re-open the
    /// hole they once excused).
    pub stale: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// Whether the workspace is clean (no findings, no stale waivers).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale.is_empty()
    }
}

/// Walks up from `start` to the workspace root (the first ancestor whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The workspace-relative paths of every patrolled source file: the root
/// facade's `src/` plus every `src/` tree under `crates/` (including the
/// compat crates — L6 patrols them too).
fn patrolled_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut abs = Vec::new();
    collect_rs(&root.join("src"), &mut abs);
    let mut crate_dirs = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.filter_map(Result::ok) {
            let p = e.path();
            if p.is_dir() {
                if p.join("Cargo.toml").is_file() {
                    crate_dirs.push(p);
                } else {
                    stack.push(p);
                }
            }
        }
    }
    crate_dirs.sort();
    for c in crate_dirs {
        collect_rs(&c.join("src"), &mut abs);
    }
    Ok(abs)
}

/// Lints the workspace at `root` against `root/analysis/allow.toml` (an
/// absent allowlist means "no waivers").
pub fn lint_workspace(root: &Path) -> Result<Outcome, String> {
    let files = patrolled_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    if files.is_empty() {
        return Err(format!(
            "no source files found under {} — wrong root?",
            root.display()
        ));
    }
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push(SourceFile {
            rel,
            lexed: lexer::lex(&text),
        });
    }
    let raw = lints::run_all(&sources);

    let allow_path = root.join("analysis").join("allow.toml");
    let waivers = match std::fs::read_to_string(&allow_path) {
        Ok(text) => allow::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("reading {}: {e}", allow_path.display())),
    };

    let mut used = vec![false; waivers.len()];
    let mut findings = Vec::new();
    let mut waived = 0usize;
    for f in raw {
        match waivers.iter().position(|w| w.matches(&f)) {
            Some(i) => {
                used[i] = true;
                waived += 1;
            }
            None => findings.push(f),
        }
    }
    let stale = waivers
        .into_iter()
        .zip(used)
        .filter_map(|(w, u)| (!u).then_some(w))
        .collect();
    Ok(Outcome {
        findings,
        waived,
        stale,
        files_scanned: sources.len(),
    })
}

/// Renders an [`Outcome`] as the `ucq lint` report.
pub fn render(outcome: &Outcome) -> String {
    let mut s = String::new();
    for f in &outcome.findings {
        s.push_str(&format!(
            "{} {}:{} `{}` — {}\n",
            f.code, f.file, f.line, f.ident, f.message
        ));
    }
    for w in &outcome.stale {
        s.push_str(&format!(
            "STALE analysis/allow.toml:{} — waiver ({} {}{}) matches nothing; \
             delete it\n",
            w.line,
            w.code,
            w.file,
            w.ident
                .as_deref()
                .map(|t| format!(", type {t}"))
                .unwrap_or_default(),
        ));
    }
    s.push_str(&format!(
        "ucq lint: {} finding(s), {} waived, {} stale waiver(s); {} files scanned\n",
        outcome.findings.len(),
        outcome.waived,
        outcome.stale.len(),
        outcome.files_scanned,
    ));
    s
}
