//! A hand-rolled Rust lexer — just enough fidelity for invariant linting.
//!
//! No registry access means no `syn`; the lints only need a faithful
//! token stream (identifiers, punctuation, literals) plus the comment
//! list, with strings/char-literals/comments correctly skipped so that
//! `"unsafe"` in a string or `decode` in a doc comment never trips a
//! lint. Handles nested block comments, raw strings (`r#"…"#`, any hash
//! depth, `b`/`c` prefixes), raw identifiers (`r#type`), and the
//! lifetime-vs-char-literal ambiguity.

/// What a token is; enough granularity for pattern scans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `decode`, …).
    Ident,
    /// One punctuation character.
    Punct(char),
    /// String/char/number literal (text preserved).
    Literal,
    /// A lifetime (`'a`); distinct so `'a` never reads as ident `a`.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block, text includes the delimiters) at its
/// 1-based starting line.
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// A lexed source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Unterminated constructs are
/// tolerated (consumed to end of input): the linter must never panic on
/// the code it patrols.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();

    // Consumes a normal (escaped) string/char body starting *after* the
    // opening delimiter; returns the index just past the closing one.
    let scan_escaped = |mut i: usize, line: &mut u32, delim: char| -> usize {
        while i < n {
            match b[i] {
                '\\' => i += 2,
                '\n' => {
                    *line += 1;
                    i += 1;
                }
                c if c == delim => return i + 1,
                _ => i += 1,
            }
        }
        i
    };

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < n && (b[i + 1] == '/' || b[i + 1] == '*') {
            let start = i;
            let start_line = line;
            if b[i + 1] == '/' {
                while i < n && b[i] != '\n' {
                    i += 1;
                }
            } else {
                i += 2;
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }

        // String-literal prefixes: r"…", r#"…"#, b"…", br"…", c"…", cr"…",
        // and the raw identifier r#ident.
        if c == 'r' || c == 'b' || c == 'c' {
            let mut j = i + 1;
            let mut rawable = c == 'r';
            if (c == 'b' || c == 'c') && j < n && b[j] == 'r' {
                j += 1;
                rawable = true;
            }
            let mut hashes = 0usize;
            let mut k = j;
            while rawable && k < n && b[k] == '#' {
                hashes += 1;
                k += 1;
            }
            let is_raw_str = rawable && k < n && b[k] == '"';
            let is_plain_str = !rawable && hashes == 0 && j < n && b[j] == '"';
            if is_raw_str {
                let start_line = line;
                // Consume to `"` followed by `hashes` hashes; no escapes.
                let mut p = k + 1;
                'scan: while p < n {
                    if b[p] == '\n' {
                        line += 1;
                        p += 1;
                        continue;
                    }
                    if b[p] == '"' {
                        let mut h = 0usize;
                        while h < hashes && p + 1 + h < n && b[p + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            p += 1 + hashes;
                            break 'scan;
                        }
                    }
                    p += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: b[i..p.min(n)].iter().collect(),
                    line: start_line,
                });
                i = p;
                continue;
            }
            if is_plain_str {
                let start_line = line;
                let end = scan_escaped(j + 1, &mut line, '"');
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: b[i..end.min(n)].iter().collect(),
                    line: start_line,
                });
                i = end;
                continue;
            }
            if c == 'r' && hashes == 1 && k < n && is_ident_start(b[k]) {
                // Raw identifier: token text without the `r#`.
                let mut p = k;
                while p < n && is_ident_continue(b[p]) {
                    p += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: b[k..p].iter().collect(),
                    line,
                });
                i = p;
                continue;
            }
            // Fall through: a normal identifier starting with r/b/c.
        }

        if c == '"' {
            let start_line = line;
            let end = scan_escaped(i + 1, &mut line, '"');
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: b[i..end.min(n)].iter().collect(),
                line: start_line,
            });
            i = end;
            continue;
        }

        if c == '\'' {
            // Lifetime (`'a` not followed by `'`) vs char literal.
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut p = i + 1;
                while p < n && is_ident_continue(b[p]) {
                    p += 1;
                }
                if p < n && b[p] == '\'' {
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: b[i..=p].iter().collect(),
                        line,
                    });
                    i = p + 1;
                } else {
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: b[i + 1..p].iter().collect(),
                        line,
                    });
                    i = p;
                }
            } else {
                let start_line = line;
                let end = scan_escaped(i + 1, &mut line, '\'');
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: b[i..end.min(n)].iter().collect(),
                    line: start_line,
                });
                i = end;
            }
            continue;
        }

        if is_ident_start(c) {
            let mut p = i;
            while p < n && is_ident_continue(b[p]) {
                p += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: b[i..p].iter().collect(),
                line,
            });
            i = p;
            continue;
        }

        if c.is_ascii_digit() {
            let mut p = i;
            while p < n
                && (is_ident_continue(b[p])
                    || (b[p] == '.' && p + 1 < n && b[p + 1].is_ascii_digit()))
            {
                p += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: b[i..p].iter().collect(),
                line,
            });
            i = p;
            continue;
        }

        out.tokens.push(Token {
            kind: TokKind::Punct(c),
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // unsafe decode in a line comment
            /* nested /* unsafe */ still comment */
            let s = "unsafe decode Dictionary";
            let r = r#"unsafe " decode"#;
            let c = 'u';
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"decode".to_string()));
        assert!(!ids.contains(&"Dictionary".to_string()));
        assert!(ids.contains(&"real".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_identifiers_or_chars() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text == "'a'")
            .collect();
        assert_eq!(chars.len(), 1);
    }

    #[test]
    fn raw_identifiers_lex_to_their_name() {
        let ids = idents("let r#type = r#loop;");
        assert_eq!(ids, vec!["let", "type", "loop"]);
    }

    #[test]
    fn byte_and_c_strings_are_literals() {
        let src = r###"let a = b"decode"; let b2 = br##"Mutex"##; let c = c"lock";"###;
        let ids = idents(src);
        assert!(!ids.contains(&"decode".to_string()));
        assert!(!ids.contains(&"Mutex".to_string()));
        assert!(!ids.contains(&"lock".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\";\nfn g() {}\n";
        let lexed = lex(src);
        let g = lexed.tokens.iter().find(|t| t.text == "g").unwrap();
        assert_eq!(g.line, 3);
    }
}
