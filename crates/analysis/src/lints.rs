//! The workspace invariant lints L1–L7.
//!
//! Each lint mechanically enforces a discipline the engine's hot paths
//! established by convention (see README §"Static analysis & model
//! checking"):
//!
//! - **L1** `no-decode-in-block-pump` — no `decode*`/`Dictionary` access
//!   inside `next_block`/`extend_full_block` bodies: the block pump runs
//!   on the id layer; per-row decoding there destroys the constant-delay
//!   guarantee the pipeline exists to provide.
//! - **L2** `no-locks-in-enumerate` — no `Mutex`/`.lock()` in
//!   `crates/enumerate`: enumerators own their cursors; a lock in the
//!   answer loop is a delay-bound violation waiting to happen.
//! - **L3** `no-single-thread-cells` — no `RefCell`/`Rc` in
//!   `storage`/`core`/`yannakakis`: the serve phase shares everything
//!   across threads, and `!Sync` interior mutability propagates virally.
//! - **L4** `frozen-types-assert-send-sync` — every `pub` type named
//!   `Frozen*` or `*Session` carries a compile-time `Send + Sync` assert
//!   (the whole point of freezing is cross-thread sharing).
//! - **L5** `no-lock-unwrap` — no `unwrap()`/`expect()`/`unwrap_or_else`
//!   directly on lock results; the one sanctioned recovery point is
//!   `ucq_storage::sync::lock_unpoisoned`, which carries a diagnostic.
//! - **L6** `unsafe-needs-safety-comment` — every `unsafe` keyword is
//!   preceded (within 3 lines) by a `// SAFETY:` comment.
//! - **L7** `no-panics-in-serve` — no `.unwrap()`/`.expect()` and no
//!   panicking slice-index (`x[i]`) in `crates/serve/src`: the serving
//!   runtime's whole contract is that a request failure becomes a typed
//!   `RequestError`, never a worker panic. `catch_unwind` is the net,
//!   not the plan.
//!
//! Scopes: L1/L4/L5 patrol every workspace crate except the offline
//! `crates/compat/*` stand-ins; L2/L3/L7 patrol the named crates; L6
//! patrols everything, compat included.

use crate::lexer::{Lexed, TokKind, Token};

/// One lint hit, before allowlisting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Lint code, `"L1"`…`"L7"`.
    pub code: &'static str,
    /// Workspace-relative path (`crates/storage/src/frozen.rs`).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The offending identifier/type — what an `allow.toml` entry's
    /// `type` key matches against.
    pub ident: String,
    /// Human explanation.
    pub message: String,
}

/// A lexed source file tagged with its workspace-relative path.
pub struct SourceFile {
    pub rel: String,
    pub lexed: Lexed,
}

fn is_compat(rel: &str) -> bool {
    rel.starts_with("crates/compat/")
}

/// The crate a path belongs to (`crates/storage`), or `"."` for the root
/// facade's `src/`.
fn crate_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.first() == Some(&"crates") && parts.len() > 2 {
        if parts[1] == "compat" && parts.len() > 3 {
            format!("crates/compat/{}", parts[2])
        } else {
            format!("crates/{}", parts[1])
        }
    } else {
        ".".to_string()
    }
}

/// Runs every lint over `files` and returns the raw findings,
/// deterministically ordered (file, line, code).
pub fn run_all(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !is_compat(&f.rel) {
            lint_l1(f, &mut out);
            lint_l5(f, &mut out);
        }
        if f.rel.starts_with("crates/enumerate/src") {
            lint_l2(f, &mut out);
        }
        if [
            "crates/storage/src",
            "crates/core/src",
            "crates/yannakakis/src",
        ]
        .iter()
        .any(|p| f.rel.starts_with(p))
        {
            lint_l3(f, &mut out);
        }
        if f.rel.starts_with("crates/serve/src") {
            lint_l7(f, &mut out);
        }
        lint_l6(f, &mut out);
    }
    lint_l4(files, &mut out);
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.code).cmp(&(b.file.as_str(), b.line, b.code)));
    out
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    toks.get(i)
        .and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct(c))
}

/// Token index ranges (inclusive of braces) of the bodies of the named
/// functions. Tolerates bodyless trait-method declarations.
fn fn_bodies(toks: &[Token], names: &[&str]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("fn") {
            if let Some(name) = ident_at(toks, i + 1) {
                if names.contains(&name) {
                    let name = name.to_string();
                    // Find the body's `{` at paren/bracket depth 0,
                    // bailing on `;` (no body).
                    let mut j = i + 2;
                    let mut depth = 0i32;
                    let mut open = None;
                    while j < toks.len() {
                        match toks[j].kind {
                            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                            TokKind::Punct('{') if depth == 0 => {
                                open = Some(j);
                                break;
                            }
                            TokKind::Punct(';') if depth == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some(start) = open {
                        let mut braces = 0i32;
                        let mut k = start;
                        while k < toks.len() {
                            match toks[k].kind {
                                TokKind::Punct('{') => braces += 1,
                                TokKind::Punct('}') => {
                                    braces -= 1;
                                    if braces == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        out.push((start, k.min(toks.len() - 1), name));
                        i = k;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

fn lint_l1(f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &f.lexed.tokens;
    for (start, end, fn_name) in fn_bodies(toks, &["next_block", "extend_full_block"]) {
        for t in &toks[start..=end] {
            if t.kind != TokKind::Ident {
                continue;
            }
            if t.text.starts_with("decode") || t.text == "Dictionary" {
                out.push(Finding {
                    code: "L1",
                    file: f.rel.clone(),
                    line: t.line,
                    ident: t.text.clone(),
                    message: format!(
                        "`{}` inside `{fn_name}`: the block pump must stay on the \
                         id layer (decode once per emitted answer, never per row)",
                        t.text
                    ),
                });
            }
        }
    }
}

fn lint_l2(f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &f.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "Mutex" {
            out.push(Finding {
                code: "L2",
                file: f.rel.clone(),
                line: t.line,
                ident: t.text.clone(),
                message: "`Mutex` in the enumerate crate: enumerators own their \
                          state; locks break the per-answer delay bound"
                    .to_string(),
            });
        }
        if punct_at(toks, i, '.')
            && ident_at(toks, i + 1) == Some("lock")
            && punct_at(toks, i + 2, '(')
        {
            out.push(Finding {
                code: "L2",
                file: f.rel.clone(),
                line: t.line,
                ident: "lock".to_string(),
                message: "`.lock()` in the enumerate crate: no blocking in the \
                          answer loop"
                    .to_string(),
            });
        }
    }
}

fn lint_l3(f: &SourceFile, out: &mut Vec<Finding>) {
    for t in &f.lexed.tokens {
        if t.kind == TokKind::Ident && (t.text == "RefCell" || t.text == "Rc") {
            out.push(Finding {
                code: "L3",
                file: f.rel.clone(),
                line: t.line,
                ident: t.text.clone(),
                message: format!(
                    "`{}` in a serve-phase crate: `!Sync` interior mutability \
                     propagates into every type that embeds it",
                    t.text
                ),
            });
        }
    }
}

fn lint_l4(files: &[SourceFile], out: &mut Vec<Finding>) {
    use std::collections::{BTreeMap, BTreeSet};
    // crate -> (declared [name, file, line], asserted {name})
    let mut decls: BTreeMap<String, Vec<(String, String, u32)>> = BTreeMap::new();
    let mut asserted: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in files {
        if is_compat(&f.rel) {
            continue;
        }
        let krate = crate_of(&f.rel);
        let toks = &f.lexed.tokens;
        for i in 0..toks.len() {
            // `pub struct Name` / `pub enum Name` / `pub type Name`;
            // `pub(crate)` and friends are exempt (not part of the API).
            if ident_at(toks, i) == Some("pub") && !punct_at(toks, i + 1, '(') {
                if let Some(kw) = ident_at(toks, i + 1) {
                    if matches!(kw, "struct" | "enum" | "type" | "union") {
                        if let Some(name) = ident_at(toks, i + 2) {
                            if name.starts_with("Frozen") || name.ends_with("Session") {
                                decls.entry(krate.clone()).or_default().push((
                                    name.to_string(),
                                    f.rel.clone(),
                                    toks[i + 2].line,
                                ));
                            }
                        }
                    }
                }
            }
            // `assert_send_sync::<Name…>()`
            if ident_at(toks, i) == Some("assert_send_sync")
                && punct_at(toks, i + 1, ':')
                && punct_at(toks, i + 2, ':')
                && punct_at(toks, i + 3, '<')
            {
                if let Some(name) = ident_at(toks, i + 4) {
                    asserted
                        .entry(krate.clone())
                        .or_default()
                        .insert(name.to_string());
                }
            }
        }
    }
    for (krate, types) in decls {
        let have = asserted.get(&krate);
        for (name, file, line) in types {
            if have.is_none_or(|s| !s.contains(&name)) {
                out.push(Finding {
                    code: "L4",
                    file,
                    line,
                    ident: name.clone(),
                    message: format!(
                        "pub type `{name}` matches Frozen*/*Session but has no \
                         compile-time `assert_send_sync::<{name}>` in its crate \
                         (serve-phase types must be shareable by construction)"
                    ),
                });
            }
        }
    }
}

fn lint_l5(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.rel == "crates/storage/src/sync.rs" {
        return; // the sanctioned poison-recovery helper lives here
    }
    let toks = &f.lexed.tokens;
    for i in 0..toks.len() {
        if punct_at(toks, i, '.')
            && ident_at(toks, i + 1) == Some("lock")
            && punct_at(toks, i + 2, '(')
            && punct_at(toks, i + 3, ')')
            && punct_at(toks, i + 4, '.')
        {
            if let Some(m) = ident_at(toks, i + 5) {
                if matches!(m, "unwrap" | "expect" | "unwrap_or_else") {
                    out.push(Finding {
                        code: "L5",
                        file: f.rel.clone(),
                        line: toks[i + 1].line,
                        ident: m.to_string(),
                        message: format!(
                            "`.lock().{m}(…)` bypasses the sanctioned poison \
                             handler; use `ucq_storage::sync::lock_unpoisoned` \
                             so recovery carries a diagnostic"
                        ),
                    });
                }
            }
        }
    }
}

fn lint_l6(f: &SourceFile, out: &mut Vec<Finding>) {
    for t in &f.lexed.tokens {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            let covered = f.lexed.comments.iter().any(|c| {
                c.text.contains("SAFETY:") && c.line + 3 >= t.line && c.line <= t.line + 1
            });
            if !covered {
                out.push(Finding {
                    code: "L6",
                    file: f.rel.clone(),
                    line: t.line,
                    ident: "unsafe".to_string(),
                    message: "`unsafe` without a `// SAFETY:` comment within the \
                              3 preceding lines"
                        .to_string(),
                });
            }
        }
    }
}

/// Keywords that can legitimately precede `[` without the bracket being
/// an index expression (slice patterns, array types/literals in
/// bindings, `for [a, b] in …` destructuring, …).
fn keyword_before_bracket(word: &str) -> bool {
    matches!(
        word,
        "let"
            | "in"
            | "mut"
            | "ref"
            | "return"
            | "break"
            | "continue"
            | "match"
            | "if"
            | "else"
            | "move"
            | "as"
            | "const"
            | "static"
            | "use"
            | "pub"
            | "where"
            | "for"
            | "while"
            | "loop"
            | "fn"
            | "impl"
            | "dyn"
            | "type"
            | "struct"
            | "enum"
    )
}

fn lint_l7(f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &f.lexed.tokens;
    for i in 0..toks.len() {
        // `.unwrap(` / `.expect(` — any receiver. The request path must
        // bubble a typed error, not convert it into a worker panic.
        if punct_at(toks, i, '.') && punct_at(toks, i + 2, '(') {
            if let Some(m) = ident_at(toks, i + 1) {
                if matches!(m, "unwrap" | "expect") {
                    out.push(Finding {
                        code: "L7",
                        file: f.rel.clone(),
                        line: toks[i + 1].line,
                        ident: m.to_string(),
                        message: format!(
                            "`.{m}(…)` in the serving runtime: a request \
                             failure must surface as a typed `RequestError`, \
                             never ride the panic path (`catch_unwind` is \
                             the net, not the plan)"
                        ),
                    });
                }
            }
        }
        // `expr[...]` — a `[` whose previous token ends an expression
        // (non-keyword identifier, `)` or `]`) is a panicking index.
        // Array literals/types, slice patterns, attributes (`#[…]`) and
        // macro brackets (`vec![…]`) all have a different predecessor.
        if punct_at(toks, i, '[') && i > 0 {
            let prev = &toks[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !keyword_before_bracket(&prev.text),
                TokKind::Punct(')') | TokKind::Punct(']') => true,
                _ => false,
            };
            if indexes {
                out.push(Finding {
                    code: "L7",
                    file: f.rel.clone(),
                    line: toks[i].line,
                    ident: format!("{}[", prev.text),
                    message: "slice/array indexing in the serving runtime \
                              panics on a bad index; use `.get(…)` and \
                              handle the miss as a typed error"
                        .to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            lexed: lex(src),
        }
    }

    fn codes(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn l1_flags_decode_in_next_block_only() {
        let src = "
            impl E {
                fn helper(&self) { self.ctx.decode(id); }
                fn next_block(&mut self) -> usize {
                    let v = self.ctx.decode_tuple(ids);
                    v.len()
                }
            }";
        let fs = [file("crates/enumerate/src/x.rs", src)];
        let f = run_all(&fs);
        assert_eq!(codes(&f), vec!["L1"]);
        assert_eq!(f[0].ident, "decode_tuple");
    }

    #[test]
    fn l1_ignores_trait_declarations_without_bodies() {
        let src = "trait T { fn next_block(&mut self) -> usize; } fn decode() {}";
        let fs = [file("crates/enumerate/src/x.rs", src)];
        assert!(run_all(&fs).is_empty());
    }

    #[test]
    fn l2_flags_locks_in_enumerate_but_not_elsewhere() {
        let src = "fn f(m: &Mutex<u32>) { let _ = m.lock(); }";
        let inside = [file("crates/enumerate/src/hot.rs", src)];
        assert_eq!(codes(&run_all(&inside)), vec!["L2", "L2"]);
        let outside = [file("crates/workloads/src/serving.rs", src)];
        assert!(run_all(&outside).is_empty());
    }

    #[test]
    fn l3_flags_refcell_and_rc_in_patrolled_crates() {
        let src = "use std::cell::RefCell; use std::rc::Rc;";
        let fs = [file("crates/core/src/engine.rs", src)];
        let f = run_all(&fs);
        assert_eq!(codes(&f), vec!["L3", "L3"]); // RefCell and Rc (not `rc`)
                                                 // The same tokens outside the patrolled crates are fine.
        let fs = [file("crates/query/src/cq.rs", src)];
        assert!(run_all(&fs).is_empty());
    }

    #[test]
    fn l4_requires_assert_for_frozen_and_session_types() {
        let good = "pub struct FrozenThing; \
                    const _: () = { assert_send_sync::<FrozenThing>(); };";
        let fs = [file("crates/storage/src/a.rs", good)];
        assert!(run_all(&fs).is_empty());

        let bad = "pub struct EvalSession { x: u32 }";
        let fs = [file("crates/storage/src/b.rs", bad)];
        let f = run_all(&fs);
        assert_eq!(codes(&f), vec!["L4"]);
        assert_eq!(f[0].ident, "EvalSession");

        // pub(crate) types are exempt; so are non-matching names.
        let exempt = "pub(crate) struct FrozenInner; pub struct Cursor;";
        let fs = [file("crates/storage/src/c.rs", exempt)];
        assert!(run_all(&fs).is_empty());
    }

    #[test]
    fn l4_assert_may_live_in_a_sibling_file_of_the_same_crate() {
        let decl = file("crates/core/src/engine.rs", "pub struct FrozenSession;");
        let asserts = file(
            "crates/core/src/static_asserts.rs",
            "const _: () = { assert_send_sync::<FrozenSession>(); };",
        );
        assert!(run_all(&[decl, asserts]).is_empty());
    }

    #[test]
    fn l5_flags_lock_unwrap_outside_the_helper() {
        let src = "fn f(m: &Mutex<u32>) { let _ = m.lock().unwrap(); }";
        let fs = [file("crates/storage/src/context.rs", src)];
        assert_eq!(codes(&run_all(&fs)), vec!["L5"]);
        let fs = [file("crates/storage/src/sync.rs", src)];
        assert!(run_all(&fs).is_empty());
    }

    #[test]
    fn l7_flags_unwrap_expect_and_indexing_in_serve_only() {
        let src = "fn f(v: &[u32], m: Option<u32>) -> u32 { m.unwrap() + v[0] }";
        let inside = [file("crates/serve/src/runtime.rs", src)];
        let f = run_all(&inside);
        assert_eq!(codes(&f), vec!["L7", "L7"]);
        assert_eq!(f[0].ident, "unwrap");
        assert_eq!(f[1].ident, "v[");
        // The same code outside crates/serve/src is not L7's business
        // (serve's tests/ directory included — panicking asserts are the
        // point there).
        let outside = [file("crates/storage/src/x.rs", src)];
        assert!(run_all(&outside).is_empty());
        let tests_dir = [file("crates/serve/tests/runtime.rs", src)];
        assert!(run_all(&tests_dir).is_empty());
    }

    #[test]
    fn l7_flags_expect_and_chained_or_call_indexing() {
        let src =
            "fn f(g: &Grid) -> u32 { g.rows().expect(\"rows\"); g.row(0)[1] + g.cells[0][2] }";
        let fs = [file("crates/serve/src/queue.rs", src)];
        let f = run_all(&fs);
        assert_eq!(codes(&f), vec!["L7", "L7", "L7", "L7"]);
        assert_eq!(f[0].ident, "expect");
        assert_eq!(f[1].ident, ")[");
        assert_eq!(f[2].ident, "cells[");
        assert_eq!(f[3].ident, "][");
    }

    #[test]
    fn l7_ignores_non_indexing_brackets() {
        let src = "
            #[derive(Debug)]
            pub struct S { buf: [u8; 4] }
            fn f() -> Vec<u32> {
                let a = [1, 2, 3];
                let [x, ..] = a;
                for [p, q] in pairs() { use_both(p, q); }
                vec![x]
            }
            fn g(s: &str) -> Option<u32> { s.parse().ok() }";
        let fs = [file("crates/serve/src/reply.rs", src)];
        assert!(run_all(&fs).is_empty());
    }

    #[test]
    fn l6_requires_safety_comment_even_in_compat() {
        let bad = "fn f() { unsafe { g(); } }";
        let fs = [file("crates/compat/rand/src/lib.rs", bad)];
        assert_eq!(codes(&run_all(&fs)), vec!["L6"]);
        let good = "fn f() {\n    // SAFETY: g has no preconditions.\n    unsafe { g(); }\n}";
        let fs = [file("crates/compat/rand/src/lib.rs", good)];
        assert!(run_all(&fs).is_empty());
        // `unsafe` in strings and comments never counts.
        let quoted = "fn f() { let s = \"unsafe\"; } // unsafe mentioned";
        let fs = [file("crates/query/src/parse.rs", quoted)];
        assert!(run_all(&fs).is_empty());
    }
}
