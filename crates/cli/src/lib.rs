//! The `ucq` command-line tool.
//!
//! ```text
//! ucq classify <query-file>                 three-way verdict + certificate
//! ucq explain  <query-file> [<instance>]    per-member structure report;
//!                                           with an instance, a costed plan
//!                                           dump (stats, estimates, cache key)
//! ucq run      <query-file> <instance>      enumerate answers (DelayClin
//!                                           strategy when available)
//!              [--limit N] [--naive] [--stats]
//! ucq decide   <query-file> <instance>      answer existence
//! ucq catalog                               the paper's example table
//! ucq serve-bench <query-file> <instance>   resilient-serving load run
//!              [--workers N] [--requests N] [--queue N] [--chaos]
//! ucq lint     [<workspace-root>]           workspace invariant lints
//!                                           (L1–L7, see ucq-analysis)
//! ```
//!
//! Query files use the parser syntax (one rule per line); instance files use
//! the fact format of `ucq_storage::parse_instance`. All command logic lives
//! in this library so it is unit-testable; `main.rs` is a thin shim.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use ucq_core::{classify, plan_free_connex_costed, SearchConfig, Strategy, UcqEngine, Verdict};
use ucq_enumerate::Enumerator;
use ucq_query::{parse_ucq, Ucq};
use ucq_storage::{parse_instance, CtxView, Instance};

/// A CLI failure: message + suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn new(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 2,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Usage text.
pub const USAGE: &str = "usage:
  ucq classify <query-file>
  ucq explain  <query-file> [<instance-file>]
  ucq run      <query-file> <instance-file> [--limit N] [--naive] [--stats]
  ucq decide   <query-file> <instance-file>
  ucq catalog
  ucq serve-bench <query-file> <instance-file> [--workers N] [--requests N] [--queue N] [--chaos]
  ucq lint     [<workspace-root>]

query files: one rule per line, e.g.  Q(x, y) <- R(x, z), S(z, y)
instance files: facts, e.g.           R(1, 2). S(2, 3).";

/// Entry point: dispatches on argv (without the program name), returning
/// the text to print.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("classify") => {
            let [path] = expect_args(args, 1)?;
            cmd_classify(&load_query(&path)?)
        }
        Some("explain") => match &args[1..] {
            [q] => cmd_explain(&load_query(q)?, None),
            [q, i] => cmd_explain(&load_query(q)?, Some(&load_instance(i)?)),
            _ => Err(CliError::new(USAGE)),
        },
        Some("run") => {
            let (paths, flags) = split_flags(&args[1..]);
            if paths.len() != 2 {
                return Err(CliError::new(USAGE));
            }
            let limit = flag_value(&flags, "--limit")?
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|e| CliError::new(format!("bad --limit: {e}")))
                })
                .transpose()?;
            cmd_run(
                &load_query(&paths[0])?,
                &load_instance(&paths[1])?,
                limit,
                flags.iter().any(|f| f == "--naive"),
                flags.iter().any(|f| f == "--stats"),
            )
        }
        Some("decide") => {
            let [q, i] = expect_args(args, 2)?;
            cmd_decide(&load_query(&q)?, &load_instance(&i)?)
        }
        Some("catalog") => Ok(cmd_catalog()),
        Some("serve-bench") => {
            let (paths, flags) = split_flags(&args[1..]);
            if paths.len() != 2 {
                return Err(CliError::new(USAGE));
            }
            let workers = parsed_flag(&flags, "--workers")?.unwrap_or(4);
            let requests = parsed_flag(&flags, "--requests")?.unwrap_or(64);
            let queue = parsed_flag(&flags, "--queue")?;
            cmd_serve_bench(
                &load_query(&paths[0])?,
                &load_instance(&paths[1])?,
                workers,
                requests,
                queue,
                flags.iter().any(|f| f == "--chaos"),
            )
        }
        Some("lint") => match &args[1..] {
            [] => cmd_lint(None),
            [root] => cmd_lint(Some(root)),
            _ => Err(CliError::new(USAGE)),
        },
        Some("--help") | Some("-h") | Some("help") => Ok(USAGE.to_string()),
        _ => Err(CliError::new(USAGE)),
    }
}

fn expect_args<const N: usize>(args: &[String], n: usize) -> Result<[String; N], CliError> {
    let rest = &args[1..];
    if rest.len() != n {
        return Err(CliError::new(USAGE));
    }
    Ok(std::array::from_fn(|i| rest[i].clone()))
}

/// Flags that consume the following argument as their value.
const VALUE_FLAGS: [&str; 4] = ["--limit", "--workers", "--requests", "--queue"];

fn split_flags(rest: &[String]) -> (Vec<String>, Vec<String>) {
    let mut paths = Vec::new();
    let mut flags = Vec::new();
    let mut it = rest.iter().peekable();
    while let Some(a) = it.next() {
        if a.starts_with("--") {
            flags.push(a.clone());
            if VALUE_FLAGS.contains(&a.as_str()) {
                if let Some(v) = it.next() {
                    flags.push(v.clone());
                }
            }
        } else {
            paths.push(a.clone());
        }
    }
    (paths, flags)
}

fn flag_value(flags: &[String], name: &str) -> Result<Option<String>, CliError> {
    match flags.iter().position(|f| f == name) {
        None => Ok(None),
        Some(i) => flags
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| CliError::new(format!("{name} needs a value"))),
    }
}

fn parsed_flag(flags: &[String], name: &str) -> Result<Option<usize>, CliError> {
    flag_value(flags, name)?
        .map(|v| {
            v.parse::<usize>()
                .map_err(|e| CliError::new(format!("bad {name}: {e}")))
        })
        .transpose()
}

fn load_query(path: &str) -> Result<Ucq, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
    parse_ucq(&text).map_err(|e| CliError::new(format!("{path}: {e}")))
}

fn load_instance(path: &str) -> Result<Instance, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
    parse_instance(&text).map_err(|e| CliError::new(format!("{path}: {e}")))
}

fn cmd_classify(ucq: &Ucq) -> Result<String, CliError> {
    let c = classify(ucq);
    let mut out = String::new();
    let _ = writeln!(out, "query:\n{}", c.minimized);
    if c.kept.len() != ucq.len() {
        let _ = writeln!(
            out,
            "(redundant members removed; kept originals {:?})",
            c.kept
        );
    }
    let _ = writeln!(out, "\nper-member status (Theorem 3): {:?}", c.statuses);
    match &c.verdict {
        Verdict::FreeConnex { plan } => {
            let _ = writeln!(out, "verdict: FREE-CONNEX — in DelayClin");
            if plan.atoms.is_empty() {
                let _ = writeln!(out, "  all members free-connex (Theorem 4 / Algorithm 1)");
            }
            for atom in &plan.atoms {
                let _ = writeln!(
                    out,
                    "  virtual atom {} on member {} ← provided by member {} (S = {}, {} uses, stage {})",
                    atom.rel_name,
                    atom.target,
                    atom.provenance.provider,
                    atom.provenance.s,
                    atom.provenance.uses.len(),
                    atom.provenance.stage
                );
            }
        }
        Verdict::Intractable { witness } => {
            let _ = writeln!(
                out,
                "verdict: INTRACTABLE — {} (assuming {})",
                witness.reference(),
                witness.hypothesis()
            );
        }
        Verdict::Unknown { notes } => {
            let _ = writeln!(out, "verdict: UNKNOWN — outside the proven classes");
            for n in notes {
                let _ = writeln!(out, "  note: {n}");
            }
        }
    }
    Ok(out)
}

fn cmd_explain(ucq: &Ucq, inst: Option<&Instance>) -> Result<String, CliError> {
    let mut out = String::new();
    for (i, cq) in ucq.cqs().iter().enumerate() {
        let _ = writeln!(out, "member {i}: {cq}");
        let _ = writeln!(
            out,
            "  variables: {}  atoms: {}  self-join free: {}",
            cq.n_vars(),
            cq.atoms().len(),
            cq.is_self_join_free()
        );
        let _ = writeln!(
            out,
            "  acyclic: {}  free-connex: {}",
            cq.is_acyclic(),
            cq.is_free_connex()
        );
        let paths = cq.free_paths();
        if paths.is_empty() {
            let _ = writeln!(out, "  free-paths: none");
        } else {
            for p in paths {
                let names: Vec<&str> = p.0.iter().map(|&v| cq.var_name(v)).collect();
                let _ = writeln!(out, "  free-path: ({})", names.join(", "));
            }
        }
        let _ = writeln!(out);
    }
    if let Some(inst) = inst {
        out.push_str(&explain_plan(ucq, inst));
    }
    Ok(out)
}

/// The `EXPLAIN`-style dump: statistics the planner harvests, the plan
/// cache key, and the costed plan with per-atom cardinality estimates.
fn explain_plan(ucq: &Ucq, inst: &Instance) -> String {
    let mut out = String::new();
    let c = classify(ucq);
    let ctx = CtxView::new();
    let _ = writeln!(out, "planner (over the minimized union):");
    let _ = writeln!(out, "  statistics:");
    for name in c.minimized.relation_names() {
        match inst.get_shared(name) {
            Some(rel) => {
                let stats = ctx.rel_stats(&ctx.interned_rel(&rel));
                let _ = writeln!(
                    out,
                    "    {name}: {} rows, distinct {:?}, max fanout {:?}",
                    stats.rows, stats.distinct, stats.max_fanout
                );
                if let Some(churn) = ctx.churn_of(&rel) {
                    let _ = writeln!(
                        out,
                        "      storage: {} segment(s), {} live / {} dead rows, {:.1}% tombstones",
                        churn.segments,
                        churn.live_rows,
                        churn.dead_rows,
                        churn.tombstone_fraction * 100.0
                    );
                }
            }
            None => {
                let _ = writeln!(out, "    {name}: absent from the instance");
            }
        }
    }
    let ingest = ctx.ingest_stats();
    let _ = writeln!(
        out,
        "  dictionary: {} distinct value(s) interned; ingest: {} insert(s), {} delete(s), {} epoch bump(s)",
        ctx.dict_len(),
        ingest.inserts,
        ingest.deletes,
        ingest.epoch_bumps
    );
    let costed = plan_free_connex_costed(&c.minimized, &SearchConfig::default(), inst, &ctx);
    let _ = writeln!(
        out,
        "  plan cache key: fingerprint {:016x} @ stats epoch {}",
        c.minimized.fingerprint(),
        ctx.stats_epoch()
    );
    match costed {
        None => {
            let _ = writeln!(
                out,
                "  plan: none — no union extension makes every member free-connex"
            );
        }
        Some(cp) => {
            let _ = writeln!(out, "  candidates costed: {}", cp.candidates_costed);
            if cp.plan.atoms.is_empty() {
                let _ = writeln!(
                    out,
                    "  plan: all members free-connex — no materializations needed"
                );
            }
            for (atom, est) in cp.plan.atoms.iter().zip(&cp.estimates) {
                let _ = writeln!(
                    out,
                    "  materialize {} on member {} ← member {} (S = {}, stage {}), est ~{est:.0} rows",
                    atom.rel_name,
                    atom.target,
                    atom.provenance.provider,
                    atom.provenance.s,
                    atom.provenance.stage
                );
            }
        }
    }
    out
}

fn cmd_run(
    ucq: &Ucq,
    inst: &Instance,
    limit: Option<usize>,
    force_naive: bool,
    stats: bool,
) -> Result<String, CliError> {
    let engine = UcqEngine::new(ucq.clone());
    let mut out = String::new();
    let strategy = if force_naive {
        Strategy::Naive
    } else {
        engine.strategy()
    };
    let _ = writeln!(out, "strategy: {strategy:?}");
    let started = std::time::Instant::now();
    let mut count = 0usize;
    if force_naive {
        for t in engine
            .enumerate_naive(inst)
            .map_err(|e| CliError::new(e.to_string()))?
        {
            if limit.map(|l| count >= l).unwrap_or(false) {
                break;
            }
            let _ = writeln!(out, "{t}");
            count += 1;
        }
    } else {
        let mut ans = engine
            .enumerate(inst)
            .map_err(|e| CliError::new(e.to_string()))?;
        while let Some(t) = ans.next() {
            if limit.map(|l| count >= l).unwrap_or(false) {
                break;
            }
            let _ = writeln!(out, "{t}");
            count += 1;
        }
    }
    if stats {
        let _ = writeln!(
            out,
            "-- {count} answer(s) in {:?} over {} tuples",
            started.elapsed(),
            inst.total_tuples()
        );
    }
    Ok(out)
}

fn cmd_decide(ucq: &Ucq, inst: &Instance) -> Result<String, CliError> {
    let engine = UcqEngine::new(ucq.clone());
    let yes = engine
        .decide(inst)
        .map_err(|e| CliError::new(e.to_string()))?;
    Ok(format!("{}\n", if yes { "yes" } else { "no" }))
}

/// `ucq serve-bench`: freeze one session and push a request load through
/// the resilient `ucq-serve` worker pool, reporting the full outcome
/// ledger (completions, sheds, timeouts, panics, queue depth) alongside
/// throughput. `--chaos` switches from the steady all-clean mix to the
/// canned chaos mix (deadlines every 5th, pre-fired cancels every 7th,
/// fault-armed every 3rd — the faults only fire when the binary was built
/// with `--cfg ucq_fault_inject`).
fn cmd_serve_bench(
    ucq: &Ucq,
    inst: &Instance,
    workers: usize,
    requests: usize,
    queue: Option<usize>,
    chaos: bool,
) -> Result<String, CliError> {
    if workers == 0 || requests == 0 {
        return Err(CliError::new("--workers and --requests must be positive"));
    }
    let engine = UcqEngine::new(ucq.clone());
    let frozen = std::sync::Arc::new(
        engine
            .session(inst)
            .freeze()
            .map_err(|e| CliError::new(e.to_string()))?,
    );
    let mut spec = if chaos {
        ucq_workloads::ResilientSpec::chaos(workers, requests)
    } else {
        ucq_workloads::ResilientSpec::steady(workers, workers.max(2), requests)
    };
    if let Some(capacity) = queue {
        if capacity == 0 {
            return Err(CliError::new("--queue must be positive"));
        }
        spec.queue_capacity = capacity;
    }
    let report = ucq_workloads::drive_resilient(&frozen, &spec);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve-bench: {} worker(s), queue {}, {} request(s){}",
        spec.workers,
        spec.queue_capacity,
        spec.requests,
        if chaos { ", chaos mix" } else { "" }
    );
    let _ = writeln!(
        out,
        "  served {} (partial {}, timed out {}), shed {}, panicked {}, drained {}",
        report.drains,
        report.partial,
        report.timed_out,
        report.shed,
        report.panicked,
        report.drained
    );
    let _ = writeln!(
        out,
        "  ledger: {} of {} submitted accounted",
        report.drains + report.shed + report.panicked + report.drained,
        report.submitted
    );
    let _ = writeln!(
        out,
        "  {} answers in {:?} ({:.0} answers/sec), queue high-water {}",
        report.total_answers,
        report.elapsed,
        report.answers_per_sec(),
        report.queue_high_water
    );
    let _ = writeln!(
        out,
        "  latency (submit→resolution): median {} ns, p99 {} ns",
        report.median_first_answer_ns(),
        report.p99_first_answer_ns()
    );
    Ok(out)
}

/// `ucq lint`: run the L1–L7 workspace invariant lints (see the
/// `ucq-analysis` crate and the README's "Static analysis & model
/// checking" section). With no argument the workspace root is found by
/// walking up from the current directory; violations exit nonzero.
fn cmd_lint(root: Option<&str>) -> Result<String, CliError> {
    let root = match root {
        Some(p) => {
            let p = std::path::PathBuf::from(p);
            if !p.join("Cargo.toml").is_file() {
                return Err(CliError::new(format!(
                    "{}: not a workspace root (no Cargo.toml)",
                    p.display()
                )));
            }
            p
        }
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| CliError::new(format!("cannot read current dir: {e}")))?;
            ucq_analysis::find_workspace_root(&cwd).ok_or_else(|| {
                CliError::new(
                    "no workspace root above the current directory; pass one: ucq lint <root>",
                )
            })?
        }
    };
    let outcome = ucq_analysis::lint_workspace(&root).map_err(CliError::new)?;
    let report = ucq_analysis::render(&outcome);
    if outcome.is_clean() {
        Ok(report)
    } else {
        Err(CliError {
            message: report,
            code: 1,
        })
    }
}

fn cmd_catalog() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<16} {:<28} description", "id", "paper ref");
    for e in ucq_workloads::catalog() {
        let _ = writeln!(out, "{:<16} {:<28} {}", e.id, e.paper_ref, e.description);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!("ucq_cli_test_{name}_{}", std::process::id()));
        std::fs::write(&path, content).expect("temp write");
        path.to_string_lossy().into_owned()
    }

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn classify_example2() {
        let q = write_temp(
            "classify_q",
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\nQ2(x, y, w) <- R1(x, y), R2(y, w)",
        );
        let out = dispatch(&args(&["classify", &q])).unwrap();
        assert!(out.contains("FREE-CONNEX"), "{out}");
        assert!(out.contains("virtual atom"));
    }

    #[test]
    fn classify_hard_query() {
        let q = write_temp("classify_hard", "Q(x, y) <- A(x, z), B(z, y)");
        let out = dispatch(&args(&["classify", &q])).unwrap();
        assert!(out.contains("INTRACTABLE"), "{out}");
        assert!(out.contains("mat-mul"));
    }

    #[test]
    fn explain_lists_free_paths() {
        let q = write_temp("explain_q", "Q(x, y) <- A(x, z), B(z, y)");
        let out = dispatch(&args(&["explain", &q])).unwrap();
        assert!(out.contains("free-path: (x, z, y)"), "{out}");
    }

    #[test]
    fn explain_with_instance_dumps_costed_plan() {
        let q = write_temp(
            "explain_plan_q",
            "Q1(x, y, w) <- R1(x, z), R2(z, y), R3(y, w)\nQ2(x, y, w) <- R1(x, y), R2(y, w)",
        );
        let i = write_temp(
            "explain_plan_i",
            "R1(1, 2). R1(3, 4). R2(2, 5). R2(4, 6). R3(5, 7). R3(6, 8).",
        );
        let out = dispatch(&args(&["explain", &q, &i])).unwrap();
        assert!(out.contains("planner (over the minimized union):"), "{out}");
        assert!(out.contains("R1: 2 rows"), "{out}");
        assert!(
            out.contains("storage: 1 segment(s), 2 live / 0 dead rows, 0.0% tombstones"),
            "{out}"
        );
        assert!(out.contains("dictionary: "), "{out}");
        assert!(out.contains("plan cache key: fingerprint"), "{out}");
        assert!(out.contains("candidates costed:"), "{out}");
        assert!(out.contains("materialize @prov_"), "{out}");
        assert!(out.contains("est ~"), "{out}");
    }

    #[test]
    fn explain_with_instance_reports_missing_relations() {
        let q = write_temp("explain_missing_q", "Q(x, y) <- R(x, z), S(z, y), T(y)");
        let i = write_temp("explain_missing_i", "R(1, 2). S(2, 3).");
        let out = dispatch(&args(&["explain", &q, &i])).unwrap();
        assert!(out.contains("T: absent from the instance"), "{out}");
    }

    #[test]
    fn run_and_decide() {
        let q = write_temp("run_q", "Q(x, y) <- R(x, z), S(z, y)");
        let i = write_temp("run_i", "R(1, 2). S(2, 3). S(2, 4).");
        let out = dispatch(&args(&["run", &q, &i, "--stats"])).unwrap();
        assert!(out.contains("(1, 3)") && out.contains("(1, 4)"), "{out}");
        assert!(out.contains("2 answer(s)"), "{out}");

        let out = dispatch(&args(&["decide", &q, &i])).unwrap();
        assert_eq!(out, "yes\n");

        let empty = write_temp("run_empty", "R(1, 2).");
        let out = dispatch(&args(&["decide", &q, &empty])).unwrap();
        assert_eq!(out, "no\n");
    }

    #[test]
    fn run_with_limit_and_naive() {
        let q = write_temp("limit_q", "Q(x, y) <- R(x, y)");
        let i = write_temp("limit_i", "R(1, 1). R(2, 2). R(3, 3).");
        let out = dispatch(&args(&["run", &q, &i, "--limit", "2"])).unwrap();
        assert_eq!(out.lines().filter(|l| l.starts_with('(')).count(), 2);
        let out = dispatch(&args(&["run", &q, &i, "--naive"])).unwrap();
        assert!(out.contains("strategy: Naive"));
    }

    #[test]
    fn serve_bench_reports_a_balanced_ledger() {
        let q = write_temp("serve_q", "Q(x, y) <- R(x, y)");
        let i = write_temp("serve_i", "R(1, 2). R(3, 4). R(5, 6).");
        let out = dispatch(&args(&[
            "serve-bench",
            &q,
            &i,
            "--workers",
            "2",
            "--requests",
            "6",
            "--queue",
            "8",
        ]))
        .unwrap();
        assert!(out.contains("2 worker(s), queue 8, 6 request(s)"), "{out}");
        assert!(out.contains("served 6"), "{out}");
        assert!(out.contains("ledger: 6 of 6 submitted accounted"), "{out}");
        assert!(out.contains("18 answers"), "{out}");
    }

    #[test]
    fn serve_bench_chaos_mix_still_balances() {
        let q = write_temp("serve_chaos_q", "Q(x, y) <- R(x, y)");
        let i = write_temp("serve_chaos_i", "R(1, 2). R(3, 4).");
        let out = dispatch(&args(&[
            "serve-bench",
            &q,
            &i,
            "--workers",
            "2",
            "--requests",
            "10",
            "--chaos",
        ]))
        .unwrap();
        assert!(out.contains("chaos mix"), "{out}");
        assert!(out.contains("of 10 submitted accounted"), "{out}");
    }

    #[test]
    fn serve_bench_rejects_degenerate_flags() {
        let q = write_temp("serve_bad_q", "Q(x) <- R(x)");
        let i = write_temp("serve_bad_i", "R(1).");
        let err = dispatch(&args(&["serve-bench", &q, &i, "--workers", "0"])).unwrap_err();
        assert!(err.message.contains("must be positive"), "{}", err.message);
        let err = dispatch(&args(&["serve-bench", &q, &i, "--queue", "0"])).unwrap_err();
        assert!(err.message.contains("--queue"), "{}", err.message);
        let err = dispatch(&args(&["serve-bench", &q, &i, "--requests", "soon"])).unwrap_err();
        assert!(err.message.contains("bad --requests"), "{}", err.message);
    }

    #[test]
    fn catalog_prints_table() {
        let out = dispatch(&args(&["catalog"])).unwrap();
        assert!(out.contains("example13"));
        assert!(out.contains("Example 22"));
    }

    #[test]
    fn bad_usage_is_an_error() {
        assert!(dispatch(&args(&[])).is_err());
        assert!(dispatch(&args(&["frobnicate"])).is_err());
        assert!(dispatch(&args(&["classify"])).is_err());
        assert!(dispatch(&args(&["run", "only_one_path"])).is_err());
    }

    #[test]
    fn missing_file_reports_path() {
        let err = dispatch(&args(&["classify", "/no/such/file"])).unwrap_err();
        assert!(err.message.contains("/no/such/file"));
    }

    #[test]
    fn bad_limit_rejected() {
        let q = write_temp("badlimit_q", "Q(x) <- R(x)");
        let i = write_temp("badlimit_i", "R(1).");
        let err = dispatch(&args(&["run", &q, &i, "--limit", "soon"])).unwrap_err();
        assert!(err.message.contains("bad --limit"));
    }

    #[test]
    fn lint_reports_clean_workspace() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .to_string_lossy()
            .into_owned();
        let out = dispatch(&args(&["lint", &root])).unwrap();
        assert!(out.contains("0 finding(s)"), "{out}");
        assert!(out.contains("files scanned"), "{out}");
    }

    #[test]
    fn lint_rejects_a_non_workspace_root() {
        let err = dispatch(&args(&["lint", "/no/such/workspace"])).unwrap_err();
        assert!(
            err.message.contains("not a workspace root"),
            "{}",
            err.message
        );
    }

    #[test]
    fn help_prints_usage() {
        assert_eq!(dispatch(&args(&["--help"])).unwrap(), USAGE);
    }
}
