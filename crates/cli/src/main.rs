//! Thin shim over [`ucq_cli::dispatch`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ucq_cli::dispatch(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.code);
        }
    }
}
