//! The Cheater's Lemma compiler (Lemma 5).
//!
//! Lemma 5 turns an algorithm whose delay is usually `d` but occasionally
//! linear, and which may emit each result up to `m` times, into a proper
//! `DelayClin` enumerator: simulate the inner algorithm, deduplicate with a
//! lookup table, park fresh results in a queue, and release one result per
//! `m·d` simulated steps. Because at least one fresh result arrives per `m`
//! inner outputs, the queue never underflows before exhaustion.
//!
//! [`Cheater`] realizes this on real hardware: each `next()` call pumps up
//! to `pump_budget` inner results (the `m` of the lemma) into the
//! dedup/queue machinery, then pops one answer. When the queue is empty it
//! keeps pumping until a fresh answer appears or the inner algorithm is
//! exhausted, matching the lemma's accounting: the number of such extended
//! waits is bounded by the (constant) number of linear-delay moments of the
//! inner algorithm.

use crate::enumerator::Enumerator;
use std::collections::VecDeque;
use std::sync::Arc;
use ucq_storage::{EvalContext, FastSet, InlineKey, RowSet, Tuple};

/// Runtime counters of a [`Cheater`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheaterStats {
    /// Results pulled from the inner enumerator.
    pub inner_results: usize,
    /// Results suppressed as duplicates.
    pub duplicates: usize,
    /// Results released downstream.
    pub emitted: usize,
    /// Maximum number of parked results observed (queue high-water mark).
    pub queue_high_water: usize,
}

/// The dedup lookup table: value rows boxed per insert, or — when an
/// [`EvalContext`] is available — interned [`InlineKey`]s, which avoid the
/// per-insert heap allocation for tuples up to 4 columns.
enum DedupSet {
    Values(RowSet),
    Interned {
        ctx: Arc<EvalContext>,
        set: FastSet<InlineKey>,
    },
}

impl DedupSet {
    fn insert(&mut self, t: &Tuple) -> bool {
        match self {
            DedupSet::Values(set) => set.insert(t.values()),
            DedupSet::Interned { ctx, set } => set.insert(ctx.intern_key(t.values())),
        }
    }
}

/// Deduplicating, pacing wrapper around an enumerator (Lemma 5).
pub struct Cheater<E: Enumerator> {
    inner: E,
    inner_done: bool,
    seen: DedupSet,
    queue: VecDeque<Tuple>,
    pump_budget: usize,
    stats: CheaterStats,
}

impl<E: Enumerator> Cheater<E> {
    /// Wraps `inner`, pumping up to `pump_budget ≥ 1` inner results per
    /// emitted answer (the duplication bound `m` of Lemma 5).
    pub fn new(inner: E, pump_budget: usize) -> Cheater<E> {
        assert!(pump_budget >= 1, "pump budget must be positive");
        Cheater {
            inner,
            inner_done: false,
            seen: DedupSet::Values(RowSet::default()),
            queue: VecDeque::new(),
            pump_budget,
            stats: CheaterStats::default(),
        }
    }

    /// As [`Cheater::new`], deduplicating through the session's dictionary:
    /// answers are interned into inline id keys instead of boxed value rows.
    pub fn with_context(inner: E, pump_budget: usize, ctx: Arc<EvalContext>) -> Cheater<E> {
        let mut c = Cheater::new(inner, pump_budget);
        c.seen = DedupSet::Interned {
            ctx,
            set: FastSet::default(),
        };
        c
    }

    /// Wraps with the default budget of 2 (each result produced at most
    /// twice, as in the Theorem 12 pipeline where an answer can surface once
    /// during provider materialization and once during its own query's
    /// enumeration).
    pub fn with_default_budget(inner: E) -> Cheater<E> {
        Cheater::new(inner, 2)
    }

    /// The counters so far.
    pub fn stats(&self) -> CheaterStats {
        self.stats
    }

    fn pump_one(&mut self) -> bool {
        match self.inner.next() {
            Some(t) => {
                self.stats.inner_results += 1;
                if self.seen.insert(&t) {
                    self.queue.push_back(t);
                    self.stats.queue_high_water = self.stats.queue_high_water.max(self.queue.len());
                } else {
                    self.stats.duplicates += 1;
                }
                true
            }
            None => {
                self.inner_done = true;
                false
            }
        }
    }
}

impl<E: Enumerator> Enumerator for Cheater<E> {
    fn next(&mut self) -> Option<Tuple> {
        // Budgeted pump: the lemma's "md(x) computation steps".
        let mut pumped = 0;
        while pumped < self.pump_budget && !self.inner_done {
            if !self.pump_one() {
                break;
            }
            pumped += 1;
        }
        // If nothing is parked, keep simulating until a fresh result
        // appears — this happens at most once per linear-delay moment of
        // the inner algorithm.
        while self.queue.is_empty() && !self.inner_done {
            self.pump_one();
        }
        let out = self.queue.pop_front();
        if out.is_some() {
            self.stats.emitted += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerator::VecEnumerator;

    fn t(x: i64) -> Tuple {
        Tuple::from(&[x][..])
    }

    #[test]
    fn deduplicates_preserving_first_occurrence_order() {
        let inner = VecEnumerator::new(vec![t(1), t(2), t(1), t(3), t(2)]);
        let mut c = Cheater::new(inner, 2);
        assert_eq!(c.collect_all(), vec![t(1), t(2), t(3)]);
        let s = c.stats();
        assert_eq!(s.inner_results, 5);
        assert_eq!(s.duplicates, 2);
        assert_eq!(s.emitted, 3);
    }

    #[test]
    fn all_duplicates_yield_single_answer() {
        let inner = VecEnumerator::new(vec![t(7); 100]);
        let mut c = Cheater::new(inner, 3);
        assert_eq!(c.collect_all(), vec![t(7)]);
        assert_eq!(c.stats().duplicates, 99);
    }

    #[test]
    fn empty_inner_is_empty() {
        let mut c = Cheater::new(VecEnumerator::new(vec![]), 2);
        assert_eq!(c.next(), None);
        assert_eq!(c.next(), None);
    }

    #[test]
    fn queue_banks_results_with_large_budget() {
        // Budget larger than the stream: everything is pumped on the first
        // call, then drained from the queue.
        let inner = VecEnumerator::new((0..10).map(t).collect());
        let mut c = Cheater::new(inner, 100);
        let got = c.collect_all();
        assert_eq!(got.len(), 10);
        assert!(c.stats().queue_high_water >= 9);
    }

    #[test]
    fn output_set_equals_input_set() {
        let inner = VecEnumerator::new(vec![t(3), t(3), t(1), t(2), t(1)]);
        let mut c = Cheater::new(inner, 1);
        let mut got = c.collect_all();
        got.sort();
        assert_eq!(got, vec![t(1), t(2), t(3)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_rejected() {
        let _ = Cheater::new(VecEnumerator::new(vec![]), 0);
    }

    #[test]
    fn context_backed_dedup_matches_value_dedup() {
        let items = vec![t(1), t(2), t(1), t(3), t(2), t(3), t(4)];
        let plain = Cheater::new(VecEnumerator::new(items.clone()), 2).collect_all();
        let ctx = Arc::new(EvalContext::new());
        let mut interned = Cheater::with_context(VecEnumerator::new(items), 2, ctx);
        assert_eq!(interned.collect_all(), plain);
        assert_eq!(interned.stats().duplicates, 3);
    }
}
