//! The Cheater's Lemma compiler (Lemma 5), on the id spine.
//!
//! Lemma 5 turns an algorithm whose delay is usually `d` but occasionally
//! linear, and which may emit each result up to `m` times, into a proper
//! `DelayClin` enumerator: simulate the inner algorithm, deduplicate with a
//! lookup table, park fresh results in a queue, and release one result per
//! `m·d` simulated steps. Because at least one fresh result arrives per `m`
//! inner outputs, the queue never underflows before exhaustion.
//!
//! [`Cheater`] realizes this on real hardware over an [`IdEnumerator`]:
//! the inner algorithm's answers arrive as whole [`IdBlock`]s of interned
//! id rows, dedup runs in an [`IdSet`] over packed `u128` row keys
//! (inline keys beyond 4 columns — no per-answer heap allocation, no
//! value decode either way), and fresh answers are parked *as id rows* in
//! one flat queue buffer. Values are decoded exactly once, when
//! an answer crosses the value-level [`Enumerator::next`] boundary — and
//! not at all through the [`Cheater::next_ids`] escape hatch that id-aware
//! callers (benches, the union evaluator, future async sessions) use.
//!
//! **Lemma 5 accounting.** The pump budget is still counted in inner
//! *results*, not blocks: each [`next`](Enumerator::next) call processes up
//! to `pump_budget` (the lemma's `m`) buffered inner answers, then releases
//! one. Blocks only amortize the virtual-call and buffer overhead of
//! *producing* those answers: refills ramp from `pump_budget` rows
//! (the first `next` does no more eager work than the lemma's simulation
//! step, so `Decide`-style early-exit callers stay cheap) doubling up to
//! [`DEFAULT_BLOCK_ROWS`], so the work done inside any single `next`
//! call stays bounded by a constant independent of the instance. When the
//! queue is empty the compiler keeps pumping until a fresh answer appears
//! or the inner algorithm is exhausted, matching the lemma: the number of
//! such extended waits is bounded by the (constant) number of linear-delay
//! moments of the inner algorithm.

use crate::enumerator::Enumerator;
use crate::idenum::{IdEnumerator, DEFAULT_BLOCK_ROWS};
use ucq_storage::{CtxView, IdBlock, IdSet, Tuple, ValueId};

/// Runtime counters of a [`Cheater`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheaterStats {
    /// Results pulled from the inner enumerator.
    pub inner_results: usize,
    /// Results suppressed as duplicates.
    pub duplicates: usize,
    /// Results released downstream.
    pub emitted: usize,
    /// Maximum number of parked results observed (queue high-water mark).
    pub queue_high_water: usize,
    /// Results actually decoded to values (emissions through the value
    /// facade; [`Cheater::next_ids`] emissions never decode).
    pub decoded: usize,
    /// Blocks pulled from the inner enumerator.
    pub blocks_pumped: usize,
}

/// Rejected [`Cheater`] configuration: Lemma 5's duplication bound `m`
/// (the pump budget) must be at least 1.
///
/// The serving runtime constructs enumerators on worker threads, where a
/// constructor panic would burn a `catch_unwind` on a statically-known
/// configuration mistake — [`Cheater::try_new`] surfaces it as a value
/// instead; the panicking [`Cheater::new`] delegates to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PumpBudgetError;

impl std::fmt::Display for PumpBudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("pump budget must be positive (Lemma 5's duplication bound m >= 1)")
    }
}

impl std::error::Error for PumpBudgetError {}

/// Deduplicating, pacing wrapper around an id enumerator (Lemma 5).
pub struct Cheater<E: IdEnumerator> {
    inner: E,
    inner_done: bool,
    ctx: CtxView,
    arity: usize,
    /// Dedup table over id rows — packed `u128` keys up to 4 columns,
    /// inline-key spill beyond (see [`IdSet`]).
    seen: IdSet,
    /// The block currently being consumed (`cursor` rows already
    /// processed); refilled from `inner` when drained.
    block: IdBlock,
    cursor: usize,
    /// Rows requested by the next refill: starts at `pump_budget` (so
    /// early-exit consumers — `decide`, first-answer probes — never pay
    /// for a full block of eager production) and doubles per refill up to
    /// the block capacity, converging to full-block amortization on long
    /// drains.
    fill_target: usize,
    /// Parked fresh answers as flat id rows, consumed front to back;
    /// compacted amortized-O(1) so memory tracks the high-water mark, not
    /// the total emitted.
    queue: Vec<ValueId>,
    q_head: usize,
    q_rows: usize,
    pump_budget: usize,
    stats: CheaterStats,
}

impl<E: IdEnumerator> Cheater<E> {
    /// Wraps `inner`, pumping up to `pump_budget ≥ 1` inner results per
    /// emitted answer (the duplication bound `m` of Lemma 5). Emitted
    /// answers decode through `ctx`'s dictionary. Panics on a zero
    /// budget; serving-path callers use [`Cheater::try_new`].
    pub fn new(inner: E, pump_budget: usize, ctx: CtxView) -> Cheater<E> {
        match Cheater::try_new(inner, pump_budget, ctx) {
            Ok(cheater) => cheater,
            Err(e) => panic!("{e}"),
        }
    }

    /// As [`Cheater::new`], but a zero `pump_budget` is a typed error
    /// instead of a panic.
    pub fn try_new(
        inner: E,
        pump_budget: usize,
        ctx: CtxView,
    ) -> Result<Cheater<E>, PumpBudgetError> {
        if pump_budget == 0 {
            return Err(PumpBudgetError);
        }
        let arity = inner.arity();
        Ok(Cheater {
            inner,
            inner_done: false,
            ctx,
            arity,
            seen: IdSet::new(),
            block: IdBlock::new(arity, DEFAULT_BLOCK_ROWS.max(pump_budget)),
            cursor: 0,
            fill_target: pump_budget,
            queue: Vec::new(),
            q_head: 0,
            q_rows: 0,
            pump_budget,
            stats: CheaterStats::default(),
        })
    }

    /// Wraps with the default budget of 2 (each result produced at most
    /// twice, as in the Theorem 12 pipeline where an answer can surface once
    /// during provider materialization and once during its own query's
    /// enumeration).
    pub fn with_default_budget(inner: E, ctx: CtxView) -> Cheater<E> {
        Cheater::new(inner, 2, ctx)
    }

    /// As [`Cheater::new`] with a distinct-answer cardinality hint: the
    /// dedup table preallocates for `expected_answers` keys, skipping the
    /// growth rehashes an unhinted drain pays on large outputs. A lower
    /// bound is safe (the table still grows); callers with any output
    /// estimate — the pipeline's materialized early-answer count, a
    /// session's previous run — should pass it.
    pub fn with_capacity_hint(
        inner: E,
        pump_budget: usize,
        ctx: CtxView,
        expected_answers: usize,
    ) -> Cheater<E> {
        let mut c = Cheater::new(inner, pump_budget, ctx);
        c.seen = IdSet::with_capacity(expected_answers);
        c
    }

    /// The counters so far.
    pub fn stats(&self) -> CheaterStats {
        self.stats
    }

    /// Rows currently parked.
    #[inline]
    fn queued(&self) -> usize {
        self.q_rows - self.q_head
    }

    /// Reclaims the consumed queue prefix once it dominates: clearing on
    /// full drain, shifting when more than half is consumed. Amortized O(1)
    /// per row; keeps queue memory at the high-water mark.
    fn maybe_compact(&mut self) {
        if self.q_head == 0 {
            return;
        }
        if self.q_head == self.q_rows {
            self.queue.clear();
            self.q_head = 0;
            self.q_rows = 0;
        } else if self.q_head >= self.q_rows - self.q_head {
            self.queue.copy_within(self.q_head * self.arity.., 0);
            self.q_rows -= self.q_head;
            self.q_head = 0;
            self.queue.truncate(self.q_rows * self.arity);
        }
    }

    /// Processes one buffered inner result (refilling the block when
    /// drained — the only place inner blocks are pumped); returns `false`
    /// when the inner enumerator is exhausted.
    fn pump_one(&mut self) -> bool {
        if self.cursor == self.block.len() {
            if self.inner_done {
                return false;
            }
            let cap = DEFAULT_BLOCK_ROWS.max(self.pump_budget);
            self.block.clear();
            self.block.set_max_rows(self.fill_target.min(cap));
            self.fill_target = (self.fill_target * 2).min(cap);
            self.cursor = 0;
            if self.inner.next_block(&mut self.block) == 0 {
                self.inner_done = true;
                return false;
            }
            self.stats.blocks_pumped += 1;
        }
        let row = self.block.row(self.cursor);
        self.cursor += 1;
        self.stats.inner_results += 1;
        if self.seen.insert(row) {
            self.queue.extend_from_slice(row);
            self.q_rows += 1;
            self.stats.queue_high_water = self.stats.queue_high_water.max(self.queued());
        } else {
            self.stats.duplicates += 1;
        }
        true
    }

    /// The Lemma 5 step: budgeted pump, then pop the oldest parked answer.
    /// Returns the popped row's position in the queue buffer.
    fn next_range(&mut self) -> Option<(usize, usize)> {
        self.maybe_compact();
        // Budgeted pump: the lemma's "m·d(x) computation steps".
        let mut pumped = 0;
        while pumped < self.pump_budget {
            if !self.pump_one() {
                break;
            }
            pumped += 1;
        }
        // If nothing is parked, keep simulating until a fresh result
        // appears — this happens at most once per linear-delay moment of
        // the inner algorithm.
        while self.queued() == 0 {
            if !self.pump_one() {
                break;
            }
        }
        if self.queued() == 0 {
            return None;
        }
        let start = self.q_head * self.arity;
        self.q_head += 1;
        self.stats.emitted += 1;
        Some((start, start + self.arity))
    }

    /// Releases the next answer as a borrowed id row — the escape hatch for
    /// id-aware callers; the decode to values is skipped entirely. The row
    /// stays valid until the next call on this compiler.
    pub fn next_ids(&mut self) -> Option<&[ValueId]> {
        let (start, end) = self.next_range()?;
        Some(&self.queue[start..end])
    }
}

impl<E: IdEnumerator> Enumerator for Cheater<E> {
    fn next(&mut self) -> Option<Tuple> {
        let (start, end) = self.next_range()?;
        self.stats.decoded += 1;
        Some(
            self.ctx
                .decode_tuple(self.queue[start..end].iter().copied()),
        )
    }
}

/// A paced, deduplicated stream is itself an id enumerator, so Cheater
/// stages compose with the rest of the spine (block-level delay
/// measurement, id-level drains, chained unions).
impl<E: IdEnumerator> IdEnumerator for Cheater<E> {
    fn arity(&self) -> usize {
        self.arity
    }

    fn next_block(&mut self, block: &mut IdBlock) -> usize {
        let mut n = 0;
        while !block.is_full() {
            match self.next_range() {
                Some((start, end)) => {
                    // Split borrows: the queue slice feeds the caller block.
                    block.push_row(&self.queue[start..end]);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idenum::IdVecEnumerator;
    use ucq_storage::Value;

    /// Interns value rows and wraps them in an id replay enumerator.
    fn id_stream(ctx: &CtxView, rows: &[[i64; 1]]) -> IdVecEnumerator {
        let ids: Vec<ValueId> = rows
            .iter()
            .flat_map(|r| r.iter().map(|&x| ctx.intern(Value::Int(x))))
            .collect();
        IdVecEnumerator::from_flat(1, ids)
    }

    fn t(x: i64) -> Tuple {
        Tuple::from(&[x][..])
    }

    #[test]
    fn deduplicates_preserving_first_occurrence_order() {
        let ctx = CtxView::new();
        let inner = id_stream(&ctx, &[[1], [2], [1], [3], [2]]);
        let mut c = Cheater::new(inner, 2, ctx);
        assert_eq!(c.collect_all(), vec![t(1), t(2), t(3)]);
        let s = c.stats();
        assert_eq!(s.inner_results, 5);
        assert_eq!(s.duplicates, 2);
        assert_eq!(s.emitted, 3);
        assert_eq!(s.decoded, s.emitted, "decode only at emission");
        assert!(s.blocks_pumped >= 1);
    }

    #[test]
    fn all_duplicates_yield_single_answer() {
        let ctx = CtxView::new();
        let inner = id_stream(&ctx, &[[7]; 100]);
        let mut c = Cheater::new(inner, 3, ctx);
        assert_eq!(c.collect_all(), vec![t(7)]);
        let s = c.stats();
        assert_eq!(s.duplicates, 99);
        assert_eq!(s.decoded, 1, "99 duplicates never decode");
    }

    #[test]
    fn empty_inner_is_empty() {
        let ctx = CtxView::new();
        let mut c = Cheater::new(IdVecEnumerator::new(1, Vec::new(), 0), 2, ctx);
        assert_eq!(c.next(), None);
        assert_eq!(c.next(), None);
        assert_eq!(c.stats().blocks_pumped, 0);
    }

    #[test]
    fn queue_banks_results_with_large_budget() {
        // Budget larger than the stream: everything is pumped on the first
        // call, then drained from the queue.
        let ctx = CtxView::new();
        let rows: Vec<[i64; 1]> = (0..10).map(|i| [i]).collect();
        let mut c = Cheater::new(id_stream(&ctx, &rows), 100, ctx);
        let got = c.collect_all();
        assert_eq!(got.len(), 10);
        assert!(c.stats().queue_high_water >= 9);
    }

    #[test]
    fn release_pacing_counts_inner_results_not_blocks() {
        // Lemma 5 pacing on an all-unique stream with budget m = 3: each
        // `next` processes exactly m inner results (never a whole block),
        // so after k emissions exactly 3k results have been consumed.
        let ctx = CtxView::new();
        let rows: Vec<[i64; 1]> = (0..30).map(|i| [i]).collect();
        let mut c = Cheater::new(id_stream(&ctx, &rows), 3, ctx);
        for k in 1..=5usize {
            assert!(c.next().is_some());
            assert_eq!(c.stats().inner_results, 3 * k, "budget is per result");
            assert_eq!(c.stats().emitted, k);
        }
    }

    #[test]
    fn first_next_does_no_eager_block_work() {
        // Early-exit consumers (Decide) must not pay for a full block: the
        // refill ramp starts at the pump budget.
        let ctx = CtxView::new();
        let rows: Vec<[i64; 1]> = (0..2000).map(|i| [i]).collect();
        let mut c = Cheater::new(id_stream(&ctx, &rows), 2, ctx);
        assert!(c.next().is_some());
        let s = c.stats();
        assert_eq!(s.inner_results, 2, "first call pumps exactly the budget");
        assert_eq!(s.blocks_pumped, 1);
    }

    #[test]
    fn no_duplicates_over_id_enumerator() {
        let ctx = CtxView::new();
        let rows: Vec<[i64; 1]> = (0..200).map(|i| [i % 17]).collect();
        let mut c = Cheater::new(id_stream(&ctx, &rows), 2, ctx);
        let got = c.collect_all();
        let mut sorted = got.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(got.len(), sorted.len(), "no duplicates emitted");
        assert_eq!(got.len(), 17);
    }

    #[test]
    fn output_set_equals_input_set() {
        let ctx = CtxView::new();
        let inner = id_stream(&ctx, &[[3], [3], [1], [2], [1]]);
        let mut c = Cheater::new(inner, 1, ctx);
        let mut got = c.collect_all();
        got.sort();
        assert_eq!(got, vec![t(1), t(2), t(3)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_rejected() {
        let ctx = CtxView::new();
        let _ = Cheater::new(IdVecEnumerator::new(1, Vec::new(), 0), 0, ctx);
    }

    #[test]
    fn next_ids_skips_decode() {
        let ctx = CtxView::new();
        let want: Vec<ValueId> = [5i64, 6, 5]
            .iter()
            .map(|&x| ctx.intern(Value::Int(x)))
            .collect();
        let inner = IdVecEnumerator::from_flat(1, want.clone());
        let mut c = Cheater::new(inner, 2, ctx.clone());
        let mut got: Vec<ValueId> = Vec::new();
        while let Some(row) = c.next_ids() {
            got.extend_from_slice(row);
        }
        assert_eq!(got, vec![want[0], want[1]]);
        let s = c.stats();
        assert_eq!(s.emitted, 2);
        assert_eq!(s.decoded, 0, "id emissions never decode");
    }

    #[test]
    fn cheater_as_id_enumerator_composes() {
        let ctx = CtxView::new();
        let inner = id_stream(&ctx, &[[1], [2], [1], [3]]);
        let mut c = Cheater::new(inner, 2, ctx.clone());
        let (ids, rows) = c.collect_ids();
        assert_eq!(rows, 3);
        assert_eq!(ids.len(), 3);
        assert_eq!(c.stats().decoded, 0);
    }

    #[test]
    fn capacity_hint_changes_nothing_observable() {
        let ctx = CtxView::new();
        let rows: Vec<[i64; 1]> = (0..100).map(|i| [i % 7]).collect();
        let plain = Cheater::new(id_stream(&ctx, &rows), 2, ctx.clone()).collect_all();
        let mut hinted = Cheater::with_capacity_hint(id_stream(&ctx, &rows), 2, ctx.clone(), 7);
        assert_eq!(hinted.collect_all(), plain);
        // Undershooting the hint is safe too.
        let mut low = Cheater::with_capacity_hint(id_stream(&ctx, &rows), 2, ctx.clone(), 1);
        assert_eq!(low.collect_all(), plain);
    }

    #[test]
    fn wide_rows_spill_to_inline_keys() {
        // Arity 5 exceeds the packed-u128 dedup; the spilled path must
        // dedup identically.
        let ctx = CtxView::new();
        let mut ids: Vec<ValueId> = Vec::new();
        for r in [[1i64, 2, 3, 4, 5], [6, 7, 8, 9, 10], [1, 2, 3, 4, 5]] {
            ids.extend(r.iter().map(|&x| ctx.intern(Value::Int(x))));
        }
        let mut c = Cheater::new(IdVecEnumerator::from_flat(5, ids), 2, ctx);
        let got = c.collect_all();
        assert_eq!(got.len(), 2);
        assert_eq!(c.stats().duplicates, 1);
    }

    #[test]
    fn nullary_stream_dedups_to_one() {
        let ctx = CtxView::new();
        let inner = IdVecEnumerator::new(0, Vec::new(), 5);
        let mut c = Cheater::new(inner, 2, ctx);
        assert_eq!(c.collect_all(), vec![Tuple::empty()]);
        assert_eq!(c.stats().duplicates, 4);
    }

    #[test]
    fn queue_memory_compacts_under_steady_state() {
        // Budget 1 on an all-unique stream: one in, one out. The flat queue
        // must compact instead of retaining every emitted row.
        let ctx = CtxView::new();
        let rows: Vec<[i64; 1]> = (0..10_000).map(|i| [i]).collect();
        let mut c = Cheater::new(id_stream(&ctx, &rows), 1, ctx);
        let mut n = 0;
        while c.next_ids().is_some() {
            n += 1;
            assert!(c.queue.len() <= 8, "queue buffer stays near high-water");
        }
        assert_eq!(n, 10_000);
    }
}
