//! The enumerator abstraction.
//!
//! Enumeration algorithms in the `DelayClin` model have two phases: a
//! preprocessing phase (run by constructors) and an enumeration phase that
//! emits answers one at a time. [`Enumerator`] models the second phase;
//! unlike `Iterator` it is object-safe by construction here (fixed item
//! type) so pipelines can mix heterogeneous stages.

use ucq_storage::Tuple;

/// A pull-based producer of answer tuples.
pub trait Enumerator {
    /// Produces the next answer, or `None` when exhausted.
    fn next(&mut self) -> Option<Tuple>;

    /// Drains everything into a vector (test/bench helper).
    fn collect_all(&mut self) -> Vec<Tuple>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        while let Some(t) = self.next() {
            out.push(t);
        }
        out
    }
}

/// Enumerates a pre-materialized vector.
#[derive(Debug, Clone)]
pub struct VecEnumerator {
    items: std::vec::IntoIter<Tuple>,
}

impl VecEnumerator {
    /// Wraps a vector of answers.
    pub fn new(items: Vec<Tuple>) -> VecEnumerator {
        VecEnumerator {
            items: items.into_iter(),
        }
    }
}

impl Enumerator for VecEnumerator {
    fn next(&mut self) -> Option<Tuple> {
        self.items.next()
    }
}

/// Chains several enumerators back to back.
pub struct ChainEnumerator {
    stages: Vec<Box<dyn Enumerator>>,
    current: usize,
}

impl ChainEnumerator {
    /// Chains the given stages in order.
    pub fn new(stages: Vec<Box<dyn Enumerator>>) -> ChainEnumerator {
        ChainEnumerator { stages, current: 0 }
    }
}

impl Enumerator for ChainEnumerator {
    fn next(&mut self) -> Option<Tuple> {
        while self.current < self.stages.len() {
            if let Some(t) = self.stages[self.current].next() {
                return Some(t);
            }
            self.current += 1;
        }
        None
    }
}

/// Wraps a closure as an enumerator.
pub struct FnEnumerator<F: FnMut() -> Option<Tuple>> {
    f: F,
}

impl<F: FnMut() -> Option<Tuple>> FnEnumerator<F> {
    /// Wraps `f`; enumeration ends at the first `None`.
    pub fn new(f: F) -> FnEnumerator<F> {
        FnEnumerator { f }
    }
}

impl<F: FnMut() -> Option<Tuple>> Enumerator for FnEnumerator<F> {
    fn next(&mut self) -> Option<Tuple> {
        (self.f)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: i64) -> Tuple {
        Tuple::from(&[x][..])
    }

    #[test]
    fn vec_enumerator_yields_in_order() {
        let mut e = VecEnumerator::new(vec![t(1), t(2)]);
        assert_eq!(e.next(), Some(t(1)));
        assert_eq!(e.next(), Some(t(2)));
        assert_eq!(e.next(), None);
        assert_eq!(e.next(), None, "stays exhausted");
    }

    #[test]
    fn chain_concatenates() {
        let mut e = ChainEnumerator::new(vec![
            Box::new(VecEnumerator::new(vec![t(1)])),
            Box::new(VecEnumerator::new(vec![])),
            Box::new(VecEnumerator::new(vec![t(2), t(3)])),
        ]);
        assert_eq!(e.collect_all(), vec![t(1), t(2), t(3)]);
    }

    #[test]
    fn fn_enumerator_counts_down() {
        let mut n = 3i64;
        let mut e = FnEnumerator::new(move || {
            if n == 0 {
                None
            } else {
                n -= 1;
                Some(t(n))
            }
        });
        assert_eq!(e.collect_all(), vec![t(2), t(1), t(0)]);
    }
}
