//! Wall-clock delay instrumentation.
//!
//! `DelayClin` is a RAM-model class; on real hardware we *measure* the delay
//! between consecutive answers and report distribution statistics. A query
//! is "constant delay" operationally when its per-answer delay statistics
//! stay flat as the instance grows — exactly what the experiment harness
//! plots (EXPERIMENTS.md).

use crate::enumerator::Enumerator;
use crate::idenum::IdEnumerator;
use std::time::{Duration, Instant};
use ucq_storage::{IdBlock, Tuple};

/// Per-run delay measurements.
#[derive(Clone, Debug, Default)]
pub struct DelayProfile {
    /// Time spent before the enumerator was handed over (preprocessing).
    pub preprocessing: Duration,
    /// Gaps between consecutive `next()` returns (first gap = time to the
    /// first answer).
    pub delays_ns: Vec<u64>,
    /// Total wall-clock time of the enumeration phase.
    pub total: Duration,
}

impl DelayProfile {
    /// Number of answers produced.
    pub fn count(&self) -> usize {
        self.delays_ns.len()
    }

    /// Maximum observed delay.
    pub fn max_ns(&self) -> u64 {
        self.delays_ns.iter().copied().max().unwrap_or(0)
    }

    /// Mean delay in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.delays_ns.is_empty() {
            return 0.0;
        }
        self.delays_ns.iter().sum::<u64>() as f64 / self.delays_ns.len() as f64
    }

    /// The `q`-quantile (0.0–1.0) of the delay distribution.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.delays_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.delays_ns.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Median delay.
    pub fn median_ns(&self) -> u64 {
        self.quantile_ns(0.5)
    }

    /// 99th-percentile delay.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "prep={:?} answers={} median={}ns p99={}ns max={}ns total={:?}",
            self.preprocessing,
            self.count(),
            self.median_ns(),
            self.p99_ns(),
            self.max_ns(),
            self.total
        )
    }
}

/// Runs `build` (timed as preprocessing), then drains the enumerator it
/// returns, timing every answer gap. Returns the answers and the profile.
pub fn measure<E, F>(build: F) -> (Vec<Tuple>, DelayProfile)
where
    E: Enumerator,
    F: FnOnce() -> E,
{
    let t0 = Instant::now();
    let mut e = build();
    let preprocessing = t0.elapsed();

    let mut delays_ns = Vec::new();
    let start = Instant::now();
    let mut last = start;
    let mut answers = Vec::new();
    while let Some(t) = e.next() {
        let now = Instant::now();
        delays_ns.push(now.duration_since(last).as_nanos() as u64);
        last = now;
        answers.push(t);
    }
    let total = start.elapsed();
    (
        answers,
        DelayProfile {
            preprocessing,
            delays_ns,
            total,
        },
    )
}

/// As [`measure`], but drains an id-level enumerator block-at-a-time
/// ([`IdEnumerator::next_block`]) with `block_rows` rows per block,
/// skipping the per-answer decode entirely. Returns the answer count and
/// the profile.
///
/// Gap attribution mirrors the Lemma 5 accounting (pump budgets count
/// inner *results*, not blocks): each block's wall-clock gap is split
/// evenly over the rows it delivered, with the rounding remainder on the
/// last row so the total is exact. The mean therefore equals the true
/// per-answer rate; quantiles describe the paced (amortized) delay rather
/// than the raw block cadence.
pub fn measure_ids<E, F>(build: F, block_rows: usize) -> (usize, DelayProfile)
where
    E: IdEnumerator,
    F: FnOnce() -> E,
{
    let t0 = Instant::now();
    let mut e = build();
    let preprocessing = t0.elapsed();

    let mut block = IdBlock::new(e.arity(), block_rows);
    let mut delays_ns = Vec::new();
    let start = Instant::now();
    let mut last = start;
    let mut answers = 0usize;
    loop {
        block.clear();
        let k = e.next_block(&mut block);
        if k == 0 {
            break;
        }
        let now = Instant::now();
        let gap = now.duration_since(last).as_nanos() as u64;
        last = now;
        answers += k;
        let per = gap / k as u64;
        delays_ns.extend(std::iter::repeat_n(per, k - 1));
        delays_ns.push(gap - per * (k as u64 - 1));
    }
    let total = start.elapsed();
    (
        answers,
        DelayProfile {
            preprocessing,
            delays_ns,
            total,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerator::VecEnumerator;
    use crate::idenum::IdVecEnumerator;
    use ucq_storage::ValueId;

    fn t(x: i64) -> Tuple {
        Tuple::from(&[x][..])
    }

    #[test]
    fn measure_counts_answers() {
        let (answers, prof) = measure(|| VecEnumerator::new(vec![t(1), t(2), t(3)]));
        assert_eq!(answers.len(), 3);
        assert_eq!(prof.count(), 3);
        assert!(prof.max_ns() >= prof.median_ns());
    }

    #[test]
    fn empty_profile_statistics() {
        let p = DelayProfile::default();
        assert_eq!(p.count(), 0);
        assert_eq!(p.max_ns(), 0);
        assert_eq!(p.mean_ns(), 0.0);
        assert_eq!(p.median_ns(), 0);
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let p = DelayProfile {
            preprocessing: Duration::ZERO,
            delays_ns: vec![5, 1, 9, 3, 7],
            total: Duration::ZERO,
        };
        assert_eq!(p.quantile_ns(0.0), 1);
        assert_eq!(p.median_ns(), 5);
        assert_eq!(p.quantile_ns(1.0), 9);
        assert_eq!(p.p99_ns(), 9);
    }

    #[test]
    fn measure_ids_counts_answers_and_preserves_totals() {
        let ids: Vec<ValueId> = (0..10).map(ValueId).collect();
        let (answers, prof) = measure_ids(|| IdVecEnumerator::from_flat(2, ids), 3);
        assert_eq!(answers, 5);
        assert_eq!(prof.count(), 5, "one delay entry per answer, not per block");
        // Split gaps sum back to the measured total (within the final
        // partial-block gap, which is included).
        assert!(prof.delays_ns.iter().sum::<u64>() <= prof.total.as_nanos() as u64);
    }

    #[test]
    fn summary_mentions_count() {
        let (_, prof) = measure(|| VecEnumerator::new(vec![t(1)]));
        assert!(prof.summary().contains("answers=1"));
    }
}
