//! Per-request enumeration budgets, enforced cooperatively at block
//! boundaries.
//!
//! The serving runtime (`crates/serve`) must guarantee that a slow,
//! deadline'd, or cancelled request terminates promptly *without*
//! preempting the enumeration mid-block: the id spine produces answers in
//! blocks of [`DEFAULT_BLOCK_ROWS`] rows, so checking the budget once per
//! block keeps the enforcement overhead off the per-answer hot path while
//! bounding overrun to a single block — precisely the granularity the
//! Cheater's Lemma pacing already works at. [`Budgeted`] wraps any
//! value-level [`Enumerator`] with that discipline; [`QueryBudget`] is the
//! declarative limit set, [`CancelToken`] the out-of-band kill switch, and
//! [`Truncation`] records which limit actually fired.
//!
//! This module deliberately uses no locks (lint L2: no `Mutex` in the
//! enumerate crate) — cancellation is one relaxed-atomic read per block.

use crate::enumerator::Enumerator;
use crate::idenum::DEFAULT_BLOCK_ROWS;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use ucq_storage::Tuple;

/// Declarative per-request limits; `None` everywhere means unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Wall-clock deadline, checked at block boundaries: the request
    /// terminates within one block of the deadline passing.
    pub deadline: Option<Instant>,
    /// Maximum answers to emit (checked exactly; the first suppressed
    /// answer marks the stream truncated).
    pub max_answers: Option<usize>,
    /// Maximum budget-check blocks ([`DEFAULT_BLOCK_ROWS`] answers each)
    /// to enter.
    pub max_blocks: Option<usize>,
}

impl QueryBudget {
    /// No limits.
    pub fn unlimited() -> QueryBudget {
        QueryBudget::default()
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> QueryBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> QueryBudget {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Caps the number of emitted answers.
    pub fn with_max_answers(mut self, n: usize) -> QueryBudget {
        self.max_answers = Some(n);
        self
    }

    /// Caps the number of enumeration blocks.
    pub fn with_max_blocks(mut self, n: usize) -> QueryBudget {
        self.max_blocks = Some(n);
        self
    }

    /// Whether any limit is set.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.max_answers.is_some() || self.max_blocks.is_some()
    }
}

/// Why a [`Budgeted`] stream stopped before natural exhaustion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Truncation {
    /// The wall-clock deadline passed.
    Deadline,
    /// The answer cap was reached (more answers existed).
    MaxAnswers,
    /// The block cap was reached.
    MaxBlocks,
    /// The [`CancelToken`] fired.
    Cancelled,
}

impl std::fmt::Display for Truncation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Truncation::Deadline => "deadline",
            Truncation::MaxAnswers => "max-answers",
            Truncation::MaxBlocks => "max-blocks",
            Truncation::Cancelled => "cancelled",
        })
    }
}

/// A cloneable out-of-band cancellation flag; one relaxed load per block
/// on the enumeration side.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fires the token; every [`Budgeted`] holding a clone truncates at
    /// its next block boundary.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// An [`Enumerator`] adapter enforcing a [`QueryBudget`] at block
/// boundaries.
///
/// Deadline, cancellation, and the block cap are checked once every
/// `stride` answers (default [`DEFAULT_BLOCK_ROWS`], the id spine's block
/// size), so a firing limit stops the stream within one block. The answer
/// cap is exact: the stream reports [`Truncation::MaxAnswers`] only if at
/// least one more answer actually existed.
pub struct Budgeted<E> {
    inner: E,
    budget: QueryBudget,
    cancel: Option<CancelToken>,
    stride: usize,
    answers: usize,
    blocks: usize,
    truncated: Option<Truncation>,
    done: bool,
}

impl<E: Enumerator> Budgeted<E> {
    /// Wraps `inner` under `budget` with the default block stride.
    pub fn new(inner: E, budget: QueryBudget) -> Budgeted<E> {
        Budgeted {
            inner,
            budget,
            cancel: None,
            stride: DEFAULT_BLOCK_ROWS,
            answers: 0,
            blocks: 0,
            truncated: None,
            done: false,
        }
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Budgeted<E> {
        self.cancel = Some(token);
        self
    }

    /// Overrides the budget-check stride (clamped to ≥ 1); test and
    /// fine-grained-latency knob.
    pub fn with_stride(mut self, stride: usize) -> Budgeted<E> {
        self.stride = stride.max(1);
        self
    }

    /// Why the stream was cut short, if it was.
    pub fn truncated_by(&self) -> Option<Truncation> {
        self.truncated
    }

    /// Answers emitted so far.
    pub fn answers_emitted(&self) -> usize {
        self.answers
    }

    /// Budget-check blocks entered so far.
    pub fn blocks_entered(&self) -> usize {
        self.blocks
    }

    /// Unwraps the inner enumerator.
    pub fn into_inner(self) -> E {
        self.inner
    }

    fn truncate(&mut self, why: Truncation) -> Option<Tuple> {
        self.truncated = Some(why);
        self.done = true;
        None
    }
}

impl<E: Enumerator> Enumerator for Budgeted<E> {
    fn next(&mut self) -> Option<Tuple> {
        if self.done {
            return None;
        }
        if self.answers.is_multiple_of(self.stride) {
            // Block boundary (including before the very first answer).
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return self.truncate(Truncation::Cancelled);
                }
            }
            if let Some(deadline) = self.budget.deadline {
                if Instant::now() >= deadline {
                    return self.truncate(Truncation::Deadline);
                }
            }
            if let Some(max) = self.budget.max_blocks {
                if self.blocks >= max {
                    return self.truncate(Truncation::MaxBlocks);
                }
            }
            self.blocks += 1;
        }
        if let Some(max) = self.budget.max_answers {
            if self.answers >= max {
                // Exact truncation semantics: only report MaxAnswers if
                // the inner stream really had more to give.
                return match self.inner.next() {
                    Some(_) => self.truncate(Truncation::MaxAnswers),
                    None => {
                        self.done = true;
                        None
                    }
                };
            }
        }
        match self.inner.next() {
            Some(t) => {
                self.answers += 1;
                Some(t)
            }
            None => {
                self.done = true;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerator::VecEnumerator;

    fn t(x: i64) -> Tuple {
        Tuple::from(&[x][..])
    }

    fn stream(n: i64) -> VecEnumerator {
        VecEnumerator::new((0..n).map(t).collect())
    }

    #[test]
    fn unlimited_budget_passes_everything_through() {
        let mut b = Budgeted::new(stream(5), QueryBudget::unlimited());
        assert_eq!(b.collect_all().len(), 5);
        assert_eq!(b.truncated_by(), None);
        assert_eq!(b.answers_emitted(), 5);
    }

    #[test]
    fn max_answers_cuts_exactly() {
        let mut b = Budgeted::new(stream(10), QueryBudget::unlimited().with_max_answers(3));
        assert_eq!(b.collect_all().len(), 3);
        assert_eq!(b.truncated_by(), Some(Truncation::MaxAnswers));
    }

    #[test]
    fn max_answers_equal_to_stream_is_not_a_truncation() {
        let mut b = Budgeted::new(stream(3), QueryBudget::unlimited().with_max_answers(3));
        assert_eq!(b.collect_all().len(), 3);
        assert_eq!(b.truncated_by(), None, "nothing was actually suppressed");
    }

    #[test]
    fn max_blocks_bounds_work_in_strides() {
        let mut b =
            Budgeted::new(stream(100), QueryBudget::unlimited().with_max_blocks(2)).with_stride(10);
        assert_eq!(b.collect_all().len(), 20);
        assert_eq!(b.truncated_by(), Some(Truncation::MaxBlocks));
        assert_eq!(b.blocks_entered(), 2);
    }

    #[test]
    fn expired_deadline_stops_within_one_stride() {
        let past = Instant::now() - Duration::from_millis(1);
        let mut b =
            Budgeted::new(stream(100), QueryBudget::unlimited().with_deadline(past)).with_stride(4);
        let got = b.collect_all().len();
        assert_eq!(
            got, 0,
            "deadline already passed: truncate at the first boundary"
        );
        assert_eq!(b.truncated_by(), Some(Truncation::Deadline));
    }

    #[test]
    fn mid_stream_deadline_overruns_at_most_one_stride() {
        // The deadline is checked only at boundaries, so up to one full
        // stride of answers may still be emitted after it passes.
        let mut b = Budgeted::new(
            stream(100),
            QueryBudget::unlimited().with_deadline(Instant::now()),
        )
        .with_stride(8);
        let got = b.collect_all().len();
        assert!(got <= 8, "overran more than one stride: {got}");
        assert_eq!(b.truncated_by(), Some(Truncation::Deadline));
    }

    #[test]
    fn cancel_token_truncates_at_next_boundary() {
        let token = CancelToken::new();
        let mut b = Budgeted::new(stream(100), QueryBudget::unlimited())
            .with_cancel(token.clone())
            .with_stride(5);
        let mut got = Vec::new();
        for _ in 0..3 {
            got.extend(b.next());
        }
        token.cancel();
        while let Some(t) = b.next() {
            got.push(t);
        }
        assert_eq!(got.len(), 5, "ran to the stride boundary, then stopped");
        assert_eq!(b.truncated_by(), Some(Truncation::Cancelled));
    }

    #[test]
    fn budget_builder_composes() {
        let budget = QueryBudget::unlimited()
            .with_timeout(Duration::from_secs(3600))
            .with_max_answers(7)
            .with_max_blocks(9);
        assert!(budget.is_limited());
        assert!(budget.deadline.is_some());
        assert_eq!(budget.max_answers, Some(7));
        assert_eq!(budget.max_blocks, Some(9));
        assert!(!QueryBudget::unlimited().is_limited());
    }

    #[test]
    fn exhausted_budgeted_stream_stays_exhausted() {
        let mut b = Budgeted::new(stream(2), QueryBudget::unlimited().with_max_answers(1));
        assert_eq!(b.next(), Some(t(0)));
        assert_eq!(b.next(), None);
        assert_eq!(b.next(), None, "stays exhausted after truncation");
        assert_eq!(b.truncated_by(), Some(Truncation::MaxAnswers));
    }
}
