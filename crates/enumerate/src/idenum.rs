//! The id-level enumeration spine: block-at-a-time producers of interned
//! answer rows.
//!
//! The value-level [`Enumerator`](crate::Enumerator) decodes every answer
//! to an owned [`Tuple`] — one heap allocation and one dictionary sweep
//! per answer, paid even for answers that a downstream stage (the Cheater
//! dedup, a counting bench, the union evaluator) immediately discards.
//! [`IdEnumerator`] is the spine underneath: stages exchange whole
//! [`IdBlock`]s of flat [`ValueId`] rows, and values are decoded exactly
//! once, at the API boundary, by whichever facade needs them
//! ([`IdDecoder`], or [`Cheater::next`](crate::Cheater)).
//!
//! The contract of [`IdEnumerator::next_block`]: append rows to the block
//! until it [`is_full`](IdBlock::is_full) or the producer is exhausted,
//! and return the number of rows appended. A return of `0` on a non-full
//! block means exhausted (and must stay `0` on every later call). Blocks
//! are caller-owned and reused, so a drain performs O(answers / block)
//! virtual calls and zero per-answer allocations.

use crate::enumerator::Enumerator;
use ucq_storage::{CtxView, IdBlock, Tuple, ValueId};

/// Default rows per block for drains that pick their own block size.
pub const DEFAULT_BLOCK_ROWS: usize = 512;

/// A pull-based, block-at-a-time producer of interned answer rows.
pub trait IdEnumerator {
    /// Ids per answer row (the block stride).
    fn arity(&self) -> usize;

    /// Appends rows to `block` until it is full or this producer is
    /// exhausted; returns the number of rows appended (`0` = exhausted).
    /// `block.arity()` must equal [`IdEnumerator::arity`].
    fn next_block(&mut self, block: &mut IdBlock) -> usize;

    /// Drains everything, returning `(flat ids, row count)` (test/bench
    /// helper).
    fn collect_ids(&mut self) -> (Vec<ValueId>, usize)
    where
        Self: Sized,
    {
        let mut block = IdBlock::new(self.arity(), DEFAULT_BLOCK_ROWS);
        let mut ids = Vec::new();
        let mut rows = 0;
        loop {
            block.clear();
            let n = self.next_block(&mut block);
            if n == 0 {
                return (ids, rows);
            }
            ids.extend_from_slice(block.ids());
            rows += n;
        }
    }
}

impl IdEnumerator for Box<dyn IdEnumerator> {
    fn arity(&self) -> usize {
        (**self).arity()
    }

    fn next_block(&mut self, block: &mut IdBlock) -> usize {
        (**self).next_block(block)
    }
}

impl IdEnumerator for Box<dyn IdEnumerator + Send> {
    fn arity(&self) -> usize {
        (**self).arity()
    }

    fn next_block(&mut self, block: &mut IdBlock) -> usize {
        (**self).next_block(block)
    }
}

/// Replays a pre-materialized flat id table (the id-level analogue of
/// [`VecEnumerator`](crate::VecEnumerator)); used for the pipeline's early
/// answers and for materialized (naive) answer sets.
#[derive(Clone, Debug)]
pub struct IdVecEnumerator {
    arity: usize,
    ids: Vec<ValueId>,
    n_rows: usize,
    pos: usize,
}

impl IdVecEnumerator {
    /// Wraps a flat run of `n_rows` rows, `arity` ids each. For arity 0 the
    /// run is empty and `n_rows` alone carries the content.
    pub fn new(arity: usize, ids: Vec<ValueId>, n_rows: usize) -> IdVecEnumerator {
        assert_eq!(ids.len(), arity * n_rows, "partial row in flat table");
        IdVecEnumerator {
            arity,
            ids,
            n_rows,
            pos: 0,
        }
    }

    /// Wraps a flat run of positive-arity rows, inferring the row count.
    pub fn from_flat(arity: usize, ids: Vec<ValueId>) -> IdVecEnumerator {
        assert!(arity > 0, "use `new` for arity-0 tables");
        let n_rows = ids.len() / arity;
        IdVecEnumerator::new(arity, ids, n_rows)
    }
}

impl IdEnumerator for IdVecEnumerator {
    fn arity(&self) -> usize {
        self.arity
    }

    fn next_block(&mut self, block: &mut IdBlock) -> usize {
        debug_assert_eq!(block.arity(), self.arity);
        let take = (self.n_rows - self.pos).min(block.remaining());
        if take == 0 {
            return 0;
        }
        let start = self.pos * self.arity;
        block.extend_flat(&self.ids[start..start + take * self.arity], take);
        self.pos += take;
        take
    }
}

/// Chains several id enumerators back to back (all must share one arity).
/// One `next_block` call may drain the tail of one stage and continue into
/// the next, so block fills stay large across stage boundaries.
pub struct IdChainEnumerator {
    arity: usize,
    stages: Vec<Box<dyn IdEnumerator + Send>>,
    current: usize,
}

impl IdChainEnumerator {
    /// Chains the given stages in order. Stages are `Send` so a chain
    /// (and the pipeline above it) can be handed to a serving thread.
    pub fn new(arity: usize, stages: Vec<Box<dyn IdEnumerator + Send>>) -> IdChainEnumerator {
        for s in &stages {
            assert_eq!(s.arity(), arity, "chained stages must share one arity");
        }
        IdChainEnumerator {
            arity,
            stages,
            current: 0,
        }
    }
}

impl IdEnumerator for IdChainEnumerator {
    fn arity(&self) -> usize {
        self.arity
    }

    fn next_block(&mut self, block: &mut IdBlock) -> usize {
        let mut total = 0;
        while self.current < self.stages.len() && !block.is_full() {
            let n = self.stages[self.current].next_block(block);
            if n == 0 {
                self.current += 1;
            } else {
                total += n;
            }
        }
        total
    }
}

/// The value-level facade over an id enumerator: pulls blocks and decodes
/// each block through the session dictionary in one `decode_rows` call —
/// a build-phase context is locked once per *block*, not once per row
/// (a frozen context reads lock-free either way). This is what keeps
/// `Tuple`-yielding public APIs unchanged above the id spine.
pub struct IdDecoder<E: IdEnumerator> {
    inner: E,
    ctx: CtxView,
    block: IdBlock,
    decoded: Vec<Tuple>,
    cursor: usize,
    done: bool,
}

impl<E: IdEnumerator> IdDecoder<E> {
    /// Wraps `inner`, decoding through `ctx`'s dictionary.
    pub fn new(inner: E, ctx: CtxView) -> IdDecoder<E> {
        let block = IdBlock::new(inner.arity(), DEFAULT_BLOCK_ROWS);
        IdDecoder {
            inner,
            ctx,
            block,
            decoded: Vec::new(),
            cursor: 0,
            done: false,
        }
    }

    /// The wrapped id enumerator (consumes the facade).
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: IdEnumerator> Enumerator for IdDecoder<E> {
    fn next(&mut self) -> Option<Tuple> {
        if self.cursor == self.decoded.len() {
            if self.done {
                return None;
            }
            self.block.clear();
            self.decoded.clear();
            self.cursor = 0;
            if self.inner.next_block(&mut self.block) == 0 {
                self.done = true;
                return None;
            }
            self.decoded = if self.block.arity() == 0 {
                // Nullary rows are a count, not ids (Boolean answers).
                vec![Tuple::empty(); self.block.len()]
            } else {
                self.ctx.decode_rows(self.block.arity(), self.block.ids())
            };
        }
        let t = std::mem::replace(&mut self.decoded[self.cursor], Tuple::empty());
        self.cursor += 1;
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucq_storage::Value;

    fn ids(xs: &[u32]) -> Vec<ValueId> {
        xs.iter().map(|&x| ValueId(x)).collect()
    }

    #[test]
    fn vec_enumerator_fills_blocks() {
        let mut e = IdVecEnumerator::from_flat(2, ids(&[1, 2, 3, 4, 5, 6]));
        let mut block = IdBlock::new(2, 2);
        assert_eq!(e.next_block(&mut block), 2);
        assert_eq!(block.row(1), ids(&[3, 4]).as_slice());
        block.clear();
        assert_eq!(e.next_block(&mut block), 1);
        assert_eq!(block.row(0), ids(&[5, 6]).as_slice());
        block.clear();
        assert_eq!(e.next_block(&mut block), 0, "stays exhausted");
    }

    #[test]
    fn collect_ids_round_trips() {
        let flat = ids(&[7, 8, 9, 10]);
        let (got, rows) = IdVecEnumerator::from_flat(2, flat.clone()).collect_ids();
        assert_eq!(got, flat);
        assert_eq!(rows, 2);
    }

    #[test]
    fn chain_crosses_stage_boundaries_within_one_block() {
        let mut e = IdChainEnumerator::new(
            1,
            vec![
                Box::new(IdVecEnumerator::from_flat(1, ids(&[1]))),
                Box::new(IdVecEnumerator::new(1, Vec::new(), 0)),
                Box::new(IdVecEnumerator::from_flat(1, ids(&[2, 3]))),
            ],
        );
        let mut block = IdBlock::new(1, 8);
        assert_eq!(e.next_block(&mut block), 3, "one call spans all stages");
        assert_eq!(block.ids(), ids(&[1, 2, 3]).as_slice());
        block.clear();
        assert_eq!(e.next_block(&mut block), 0);
    }

    #[test]
    fn nullary_replay_counts_rows() {
        let mut e = IdVecEnumerator::new(0, Vec::new(), 3);
        let (flat, rows) = e.collect_ids();
        assert!(flat.is_empty());
        assert_eq!(rows, 3);
    }

    #[test]
    fn decoder_yields_tuples() {
        let ctx = CtxView::new();
        let a = ctx.intern(Value::Int(10));
        let b = ctx.intern(Value::Int(20));
        let inner = IdVecEnumerator::from_flat(2, vec![a, b, b, a]);
        let mut d = IdDecoder::new(inner, ctx);
        assert_eq!(
            d.collect_all(),
            vec![Tuple::from(&[10i64, 20][..]), Tuple::from(&[20i64, 10][..])]
        );
        assert_eq!(d.next(), None);
    }
}
