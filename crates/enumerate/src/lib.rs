//! Enumeration framework: the value-level [`Enumerator`] abstraction, the
//! id-level block-at-a-time spine ([`IdEnumerator`]/[`IdBlock`]), the
//! Cheater's Lemma compiler ([`Cheater`], Lemma 5 of the paper), and
//! wall-clock delay instrumentation ([`DelayProfile`]).
//!
//! # The id-level spine
//!
//! Answers flow between stages as blocks of interned
//! [`ValueId`](ucq_storage::ValueId) rows; the decode to owned
//! [`Tuple`](ucq_storage::Tuple)s happens exactly once, at the outermost
//! API boundary (an [`IdDecoder`] facade or [`Cheater`]'s value-level
//! `next`), and not at all for answers that dedup discards or that
//! id-aware callers consume through [`Cheater::next_ids`]. Lemma 5's
//! pacing accounting is preserved: pump budgets count inner *results*,
//! blocks only amortize virtual-call and buffer overhead (see
//! [`cheater`]).

#![forbid(unsafe_code)]

pub mod budget;
pub mod cheater;
pub mod delay;
pub mod enumerator;
pub mod idenum;

pub use budget::{Budgeted, CancelToken, QueryBudget, Truncation};
pub use cheater::{Cheater, CheaterStats, PumpBudgetError};
pub use delay::{measure, measure_ids, DelayProfile};
pub use enumerator::{ChainEnumerator, Enumerator, FnEnumerator, VecEnumerator};
pub use idenum::{IdChainEnumerator, IdDecoder, IdEnumerator, IdVecEnumerator, DEFAULT_BLOCK_ROWS};

pub use ucq_storage::IdBlock;
