//! Enumeration framework: the [`Enumerator`] abstraction, the Cheater's
//! Lemma compiler ([`Cheater`], Lemma 5 of the paper), and wall-clock delay
//! instrumentation ([`DelayProfile`]).

pub mod cheater;
pub mod delay;
pub mod enumerator;

pub use cheater::{Cheater, CheaterStats};
pub use delay::{measure, DelayProfile};
pub use enumerator::{ChainEnumerator, Enumerator, FnEnumerator, VecEnumerator};
