//! Database instances.

use crate::relation::Relation;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A database instance: a mapping from relation names to relations.
///
/// Relations are reference-counted so that pipeline stages (which overlay
/// virtual relations on a base instance) can share storage without copying
/// tuples.
#[derive(Clone, Default)]
pub struct Instance {
    relations: HashMap<String, Arc<Relation>>,
}

impl Instance {
    /// An empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Inserts (or replaces) a relation.
    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations.insert(name.into(), Arc::new(rel));
    }

    /// Inserts a pre-shared relation.
    pub fn insert_shared(&mut self, name: impl Into<String>, rel: Arc<Relation>) {
        self.relations.insert(name.into(), rel);
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name).map(|r| &**r)
    }

    /// Looks up a shared handle by name.
    pub fn get_shared(&self, name: &str) -> Option<Arc<Relation>> {
        self.relations.get(name).cloned()
    }

    /// Whether a relation of this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// A cheap copy of this instance with one extra/overridden relation.
    #[must_use]
    pub fn with_relation(&self, name: impl Into<String>, rel: Relation) -> Instance {
        let mut copy = self.clone();
        copy.insert(name, rel);
        copy
    }

    /// A cheap copy of this instance with one extra/overridden pre-shared
    /// relation — the delta-ingestion path: [`EvalContext::insert_rows`]
    /// (crate::EvalContext::insert_rows) hands back an `Arc<Relation>`
    /// whose caches are already seeded, and this splices it in without
    /// cloning tuples or disturbing the other relations' identities.
    #[must_use]
    pub fn with_relation_shared(&self, name: impl Into<String>, rel: Arc<Relation>) -> Instance {
        let mut copy = self.clone();
        copy.insert_shared(name, rel);
        copy
    }

    /// Relation names in unspecified order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Total number of tuples across all relations — the `|I|` of the
    /// linear-preprocessing bound.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Number of relations.
    pub fn n_relations(&self) -> usize {
        self.relations.len()
    }
}

impl<S: Into<String>> FromIterator<(S, Relation)> for Instance {
    fn from_iter<T: IntoIterator<Item = (S, Relation)>>(iter: T) -> Instance {
        let mut inst = Instance::new();
        for (name, rel) in iter {
            inst.insert(name, rel);
        }
        inst
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.names().collect();
        names.sort_unstable();
        writeln!(
            f,
            "Instance({} relations, {} tuples)",
            names.len(),
            self.total_tuples()
        )?;
        for n in names {
            writeln!(f, "{n}: {:?}", self.get(n).expect("name listed"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut inst = Instance::new();
        inst.insert("R", Relation::from_pairs([(1, 2)]));
        assert!(inst.contains("R"));
        assert!(!inst.contains("S"));
        assert_eq!(inst.get("R").unwrap().len(), 1);
        assert!(inst.get("S").is_none());
    }

    #[test]
    fn from_iterator() {
        let inst: Instance = [
            ("R", Relation::from_pairs([(1, 2)])),
            ("S", Relation::from_pairs([(2, 3), (4, 5)])),
        ]
        .into_iter()
        .collect();
        assert_eq!(inst.n_relations(), 2);
        assert_eq!(inst.total_tuples(), 3);
    }

    #[test]
    fn with_relation_is_overlay() {
        let base: Instance = [("R", Relation::from_pairs([(1, 2)]))]
            .into_iter()
            .collect();
        let ext = base.with_relation("V", Relation::from_pairs([(9, 9)]));
        assert!(!base.contains("V"));
        assert!(ext.contains("V"));
        assert!(ext.contains("R"));
        // The base relation is shared, not copied.
        assert!(Arc::ptr_eq(
            &base.get_shared("R").unwrap(),
            &ext.get_shared("R").unwrap()
        ));
    }

    #[test]
    fn replace_overrides() {
        let base: Instance = [("R", Relation::from_pairs([(1, 2)]))]
            .into_iter()
            .collect();
        let ext = base.with_relation("R", Relation::from_pairs([(7, 7), (8, 8)]));
        assert_eq!(base.get("R").unwrap().len(), 1);
        assert_eq!(ext.get("R").unwrap().len(), 2);
    }
}
