//! Owned answer tuples.

use crate::value::Value;
use std::fmt;

/// An owned tuple of values — the unit of enumeration output.
///
/// Relations store rows in flat arrays ([`crate::relation::Relation`]);
/// `Tuple` is used at API boundaries: enumerator items, dedup keys, index
/// keys.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Tuple(pub Box<[Value]>);

impl Tuple {
    /// Creates a tuple from a row slice.
    #[inline]
    pub fn from_row(row: &[Value]) -> Tuple {
        Tuple(row.into())
    }

    /// Creates an empty (arity-0) tuple — the single answer of a Boolean
    /// query.
    #[inline]
    pub fn empty() -> Tuple {
        Tuple(Box::new([]))
    }

    /// The tuple's arity.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values as a slice.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Projects onto the given column positions.
    #[inline]
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple(cols.iter().map(|&c| self.0[c]).collect())
    }

    /// Applies [`Value::untag`] to every component (the `τ` translation of
    /// the Lemma 14 reduction).
    #[inline]
    pub fn untag(&self) -> Tuple {
        Tuple(self.0.iter().map(|v| v.untag()).collect())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        Tuple(v.into_boxed_slice())
    }
}

impl From<&[i64]> for Tuple {
    fn from(v: &[i64]) -> Tuple {
        Tuple(v.iter().map(|&x| Value::Int(x)).collect())
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_arity() {
        let t: Tuple = vec![Value::Int(1), Value::Bottom].into();
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(Tuple::empty().arity(), 0);
    }

    #[test]
    fn from_ints() {
        let t: Tuple = (&[1i64, 2, 3][..]).into();
        assert_eq!(t.values(), &[Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn projection() {
        let t: Tuple = (&[10i64, 20, 30][..]).into();
        assert_eq!(t.project(&[2, 0]), (&[30i64, 10][..]).into());
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    fn untag_is_componentwise() {
        let t: Tuple = vec![Value::tagged(1, 5), Value::Int(6), Value::Bottom].into();
        assert_eq!(
            t.untag(),
            vec![Value::Int(5), Value::Int(6), Value::Bottom].into()
        );
    }

    #[test]
    fn display() {
        let t: Tuple = (&[1i64, 2][..]).into();
        assert_eq!(t.to_string(), "(1, 2)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }
}
