//! Database values.
//!
//! The paper's reductions build instances whose constants are either plain
//! integers, the filler constant `⊥`, or *tagged* constants such as
//! `(c, x₁)` — a value concatenated with a variable name so that different
//! variables range over disjoint domains (Lemma 14, Examples 18/31/39).
//! [`Value`] covers all three shapes as a compact, copyable enum.

use std::fmt;

/// A single database constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Value {
    /// The filler constant `⊥` used by the lower-bound encodings.
    Bottom,
    /// A plain integer constant.
    Int(i64),
    /// A constant tagged with a variable identifier: the `(c, v)` pairs of
    /// the disjoint-domain encodings. `tag` is a caller-chosen namespace
    /// (typically a variable index).
    Tagged {
        /// The namespace tag (e.g. variable id).
        tag: u32,
        /// The underlying constant.
        val: i64,
    },
}

impl Value {
    /// Convenience constructor for tagged values.
    #[inline]
    pub fn tagged(tag: u32, val: i64) -> Value {
        Value::Tagged { tag, val }
    }

    /// The underlying integer of an [`Value::Int`] or [`Value::Tagged`];
    /// `None` for `⊥`.
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Bottom => None,
            Value::Int(v) => Some(v),
            Value::Tagged { val, .. } => Some(val),
        }
    }

    /// Strips a tag, turning `Tagged { _, v }` into `Int(v)`. `Int` and
    /// `Bottom` are returned unchanged. This is the `τ` direction of the
    /// Lemma 14 exact reduction.
    #[inline]
    pub fn untag(self) -> Value {
        match self {
            Value::Tagged { val, .. } => Value::Int(val),
            other => other,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bottom => write!(f, "⊥"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Tagged { tag, val } => write!(f, "({val}#{tag})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_size_is_compact() {
        // Two words: keeps row storage cache-friendly.
        assert!(std::mem::size_of::<Value>() <= 16);
    }

    #[test]
    fn ordering_and_equality() {
        assert_eq!(Value::Int(3), Value::from(3));
        assert_ne!(Value::Int(3), Value::tagged(0, 3));
        assert_ne!(Value::tagged(0, 3), Value::tagged(1, 3));
        assert!(Value::Bottom < Value::Int(i64::MIN));
    }

    #[test]
    fn untag_strips_only_tags() {
        assert_eq!(Value::tagged(7, 42).untag(), Value::Int(42));
        assert_eq!(Value::Int(42).untag(), Value::Int(42));
        assert_eq!(Value::Bottom.untag(), Value::Bottom);
    }

    #[test]
    fn as_int() {
        assert_eq!(Value::Bottom.as_int(), None);
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::tagged(1, 5).as_int(), Some(5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Bottom.to_string(), "⊥");
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::tagged(3, 9).to_string(), "(9#3)");
    }
}
