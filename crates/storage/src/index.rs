//! Hash indexes over relations, in CSR layout.
//!
//! The constant-delay enumeration phase relies on O(1) lookups of the rows
//! matching a separator binding; [`HashIndex`] groups the row ids of an
//! interned columnar relation ([`IdRel`]) by a key-column projection.
//!
//! # CSR layout
//!
//! Groups live in one flat arena instead of one `Vec` per key:
//!
//! ```text
//!              key map (per shard): InlineKey -> gid
//!                        |
//!                        v
//!   offsets:  [ 0 , 3 , 5 , 6 , ... , n_rows ]     (n_groups + 1)
//!               |   |
//!               v   v
//!   row_ids:  [ 2 7 9 | 0 4 | 1 | ... ]            (n_rows)
//!              '--g0--'
//! ```
//!
//! `get(key)` resolves the group id through the key map and returns
//! `&row_ids[offsets[g]..offsets[g+1]]` — a borrowed slice into the arena.
//! A build does two scans of the relation in a count-then-fill scheme
//! (scan 1 assigns group ids and counts; scan 2 scatters row ids through a
//! running-offset cursor), touching two dense output allocations instead of
//! one heap vector per distinct key. Row ids within a group stay in
//! ascending row order.
//!
//! # Batched probes
//!
//! [`HashIndex::probe_batch`] probes a flat run of keys (`stride` ids per
//! key) and yields `(probe_index, row_ids)` per key, memoizing consecutive
//! duplicate keys so a *sorted* run hashes each distinct key once. For
//! single-column keys the duplicate run is measured up front with an
//! unrolled 8-wide compare loop (`run_len_1`), so long runs skip even the
//! per-key compare.
//! Sortedness is an optimization, not a requirement: unsorted runs return
//! exactly the same groups, just without the dedup savings. The join and
//! semijoin inner loops gather key runs per block and probe in bulk, which
//! keeps the key map and the arena hot in cache across a block instead of
//! alternating with unrelated work per row.
//!
//! # Parallel builds
//!
//! Above [`par::PAR_ROW_THRESHOLD`](crate::par::PAR_ROW_THRESHOLD) rows
//! (and when the machine has spare cores — see [`crate::par::workers_for`]),
//! a build shards rows by key-hash range across `std::thread::scope`
//! workers: rows are routed by the top bits of their key hash, each worker
//! builds the CSR segment of its shard, and segments are merged by
//! concatenation — group ids are shifted by a per-shard base and the shard
//! key maps are kept (values rewritten in place), so the merge re-hashes
//! nothing. Keys cannot straddle shards (equal keys hash equally), which is
//! what makes the merge a concatenation; the same shard boundaries are the
//! hand-out unit a future multi-threaded session will use.
//!
//! Keys are [`InlineKey`]s — inline `[ValueId]` arrays, no per-row boxing
//! for keys up to 4 columns — and probes take **borrowed** `&[ValueId]`
//! slices, so the per-answer hot path never allocates.
//!
//! [`RowSet`] is the value-level row set kept for answer-boundary dedup
//! (e.g. the Cheater's Lemma compiler), where tuples are already decoded.

use crate::dictionary::ValueId;
use crate::hash::{fast_map_with_capacity, fx_hash_of, FastMap};
use crate::idrel::IdRel;
use crate::key::InlineKey;
use crate::par;
use crate::relation::Relation;
use crate::value::Value;
use std::collections::HashSet;

/// Groups the rows of a relation by their projection onto `key_cols`, in
/// CSR layout (see the module docs).
///
/// Groups carry stable integer ids so that enumeration cursors can be stored
/// as plain `(group, position)` pairs without borrowing the index.
#[derive(Clone, Debug)]
pub struct HashIndex {
    key_cols: Vec<usize>,
    /// Key → group id, one map per build shard (exactly one for sequential
    /// builds). Probes route by the top `shard_bits` of the key hash.
    shards: Vec<FastMap<InlineKey, u32>>,
    shard_bits: u32,
    /// Group `g` occupies `row_ids[offsets[g]..offsets[g + 1]]`.
    offsets: Vec<u32>,
    /// The flat row-id arena, grouped by key, ascending within a group.
    row_ids: Vec<u32>,
}

/// Map capacity heuristic: most indexed relations have far fewer distinct
/// keys than rows; start at a quarter and let at most two growth steps
/// absorb key-heavy inputs.
#[inline]
fn key_capacity_hint(rows: usize) -> usize {
    rows / 4 + 16
}

impl HashIndex {
    /// Builds an index over `rel` keyed on `key_cols` (positions).
    ///
    /// Dispatches to the sharded parallel builder for relations above the
    /// parallel row threshold when worker threads are available, and to the
    /// sequential two-pass CSR builder otherwise (see the module docs).
    pub fn build(rel: &IdRel, key_cols: &[usize]) -> HashIndex {
        if rel.has_tombstones() {
            return HashIndex::build_seq_live(rel, key_cols);
        }
        let workers = par::workers_for(rel.len());
        if workers > 1 && !key_cols.is_empty() {
            HashIndex::build_parallel(rel, key_cols, workers)
        } else {
            HashIndex::build_seq(rel, key_cols)
        }
    }

    /// The tombstone-aware build: [`HashIndex::build_seq`] over only the
    /// live rows of `rel` (dead rows never enter the arena, so probes pay
    /// no per-row liveness check). Cold: churned base mirrors normally
    /// reach the cache through [`HashIndex::merge_appended`]; this is the
    /// from-scratch fallback.
    #[cold]
    pub fn build_seq_live(rel: &IdRel, key_cols: &[usize]) -> HashIndex {
        let cols: Vec<&[ValueId]> = key_cols.iter().map(|&c| rel.col(c)).collect();
        let live: Vec<u32> = (0..rel.len())
            .filter(|&r| rel.is_live(r))
            .map(|r| r as u32)
            .collect();
        let mut map: FastMap<InlineKey, u32> =
            fast_map_with_capacity(key_capacity_hint(live.len()));
        let mut row_gids: Vec<u32> = Vec::with_capacity(live.len());
        let mut counts: Vec<u32> = Vec::new();
        let mut buf: Vec<ValueId> = Vec::with_capacity(key_cols.len());
        for &i in &live {
            buf.clear();
            buf.extend(cols.iter().map(|c| c[i as usize]));
            let gid = match map.get(buf.as_slice()) {
                Some(&g) => g,
                None => {
                    let g = counts.len() as u32;
                    map.insert(InlineKey::from_slice(&buf), g);
                    counts.push(0);
                    g
                }
            };
            counts[gid as usize] += 1;
            row_gids.push(gid);
        }
        let (offsets, local_ids) = scatter_csr(&mut counts, &row_gids, 0);
        // Local positions → physical row ids.
        let row_ids = local_ids.iter().map(|&p| live[p as usize]).collect();
        HashIndex {
            key_cols: key_cols.to_vec(),
            shards: vec![map],
            shard_bits: 0,
            offsets,
            row_ids,
        }
    }

    /// Merges the delta segment of `rel` (physical rows `old_rows..`) into
    /// this index — the same concatenation idea as the parallel build's
    /// shard merge, turned 90° into ingest-time incrementality. The shard
    /// key maps are cloned as-is (cloning a hash map re-hashes nothing);
    /// only delta rows are hashed, so the merge is O(Δ + arena), never
    /// O(n · hash). Rows of `rel` that have been tombstoned since the
    /// index was built (including old rows) are dropped from the arena, so
    /// probes stay liveness-check-free. Groups whose rows all died keep
    /// their gid with an empty slice — [`HashIndex::contains_key`] and
    /// [`HashIndex::get`] treat them as absent.
    ///
    /// `self` must have been built over exactly the first `old_rows`
    /// physical rows of `rel` (with no tombstones at build time).
    pub fn merge_appended(&self, rel: &IdRel, old_rows: usize) -> HashIndex {
        debug_assert!(old_rows <= rel.len(), "index covers rows the rel lost");
        let stride = self.key_cols.len();
        let cols: Vec<&[ValueId]> = self.key_cols.iter().map(|&c| rel.col(c)).collect();
        let mut shards = self.shards.clone();
        let old_groups = self.n_keys();
        // Surviving members per old group, then delta adds per (possibly
        // fresh) group.
        let mut counts: Vec<u32> = Vec::with_capacity(old_groups + 16);
        for g in 0..old_groups {
            let members = &self.row_ids[self.offsets[g] as usize..self.offsets[g + 1] as usize];
            counts.push(members.iter().filter(|&&r| rel.is_live(r as usize)).count() as u32);
        }
        let mut delta_rows: Vec<(u32, u32)> = Vec::with_capacity(rel.len() - old_rows);
        let mut buf: Vec<ValueId> = Vec::with_capacity(stride);
        for r in old_rows..rel.len() {
            if !rel.is_live(r) {
                continue;
            }
            buf.clear();
            buf.extend(cols.iter().map(|c| c[r]));
            let shard = if self.shard_bits == 0 {
                0
            } else {
                (fx_hash_of(buf.as_slice()) >> (64 - self.shard_bits)) as usize
            };
            let next = counts.len() as u32;
            let gid = *shards[shard]
                .entry(InlineKey::from_slice(&buf))
                .or_insert(next);
            if gid == next {
                counts.push(0);
            }
            counts[gid as usize] += 1;
            delta_rows.push((gid, r as u32));
        }
        // Prefix-sum the counts into offsets and reuse them as scatter
        // cursors (the `scatter_csr` scheme, split so old survivors land
        // before delta rows — both sides ascend, and every delta row id is
        // greater than every old one, so groups stay ascending).
        let mut offsets: Vec<u32> = Vec::with_capacity(counts.len() + 1);
        offsets.push(0);
        let mut acc = 0u32;
        for c in counts.iter_mut() {
            let start = acc;
            acc += *c;
            *c = start;
            offsets.push(acc);
        }
        let mut row_ids = vec![0u32; acc as usize];
        for g in 0..old_groups {
            let members = &self.row_ids[self.offsets[g] as usize..self.offsets[g + 1] as usize];
            for &r in members {
                if rel.is_live(r as usize) {
                    let cursor = &mut counts[g];
                    row_ids[*cursor as usize] = r;
                    *cursor += 1;
                }
            }
        }
        for (gid, r) in delta_rows {
            let cursor = &mut counts[gid as usize];
            row_ids[*cursor as usize] = r;
            *cursor += 1;
        }
        HashIndex {
            key_cols: self.key_cols.clone(),
            shards,
            shard_bits: self.shard_bits,
            offsets,
            row_ids,
        }
    }

    /// The sequential count-then-fill CSR build: scan 1 resolves each row's
    /// group id (one hash per row) and counts group sizes; scan 2 scatters
    /// row ids into the flat arena through running-offset cursors.
    pub fn build_seq(rel: &IdRel, key_cols: &[usize]) -> HashIndex {
        let n = rel.len();
        let cols: Vec<&[ValueId]> = key_cols.iter().map(|&c| rel.col(c)).collect();
        let mut map: FastMap<InlineKey, u32> = fast_map_with_capacity(key_capacity_hint(n));
        let mut row_gids: Vec<u32> = Vec::with_capacity(n);
        let mut counts: Vec<u32> = Vec::new();
        let mut buf: Vec<ValueId> = Vec::with_capacity(key_cols.len());
        for i in 0..n {
            buf.clear();
            buf.extend(cols.iter().map(|c| c[i]));
            // Probe borrowed first: the key is only materialized (inline, no
            // heap for ≤ 4 columns) for the first row of each group.
            let gid = match map.get(buf.as_slice()) {
                Some(&g) => g,
                None => {
                    let g = counts.len() as u32;
                    map.insert(InlineKey::from_slice(&buf), g);
                    counts.push(0);
                    g
                }
            };
            counts[gid as usize] += 1;
            row_gids.push(gid);
        }
        let (offsets, row_ids) = scatter_csr(&mut counts, &row_gids, 0);
        HashIndex {
            key_cols: key_cols.to_vec(),
            shards: vec![map],
            shard_bits: 0,
            offsets,
            row_ids,
        }
    }

    /// The pre-CSR fallback builder, kept behind the same API: groups are
    /// materialized as per-key vectors — with the key map preallocated via
    /// the capacity heuristic and every group vector reserved from a first
    /// counting pass — then flattened into the CSR arena. Equivalent output
    /// to [`HashIndex::build_seq`] (asserted by tests); useful as a
    /// reference when reviewing the CSR builders.
    pub fn build_grouped(rel: &IdRel, key_cols: &[usize]) -> HashIndex {
        let n = rel.len();
        let cols: Vec<&[ValueId]> = key_cols.iter().map(|&c| rel.col(c)).collect();
        let mut map: FastMap<InlineKey, u32> = fast_map_with_capacity(key_capacity_hint(n));
        let mut counts: Vec<u32> = Vec::new();
        let mut buf: Vec<ValueId> = Vec::with_capacity(key_cols.len());
        // Counting pass: assign group ids and sizes.
        for i in 0..n {
            buf.clear();
            buf.extend(cols.iter().map(|c| c[i]));
            match map.get(buf.as_slice()) {
                Some(&g) => counts[g as usize] += 1,
                None => {
                    map.insert(InlineKey::from_slice(&buf), counts.len() as u32);
                    counts.push(1);
                }
            }
        }
        // Fill pass into exactly-reserved group vectors.
        let mut groups: Vec<Vec<u32>> = counts
            .iter()
            .map(|&c| Vec::with_capacity(c as usize))
            .collect();
        for i in 0..n {
            buf.clear();
            buf.extend(cols.iter().map(|c| c[i]));
            let g = map[buf.as_slice()];
            groups[g as usize].push(i as u32);
        }
        // Flatten to the CSR arena.
        let mut offsets: Vec<u32> = Vec::with_capacity(groups.len() + 1);
        let mut row_ids: Vec<u32> = Vec::with_capacity(n);
        offsets.push(0);
        for g in &groups {
            row_ids.extend_from_slice(g);
            offsets.push(row_ids.len() as u32);
        }
        HashIndex {
            key_cols: key_cols.to_vec(),
            shards: vec![map],
            shard_bits: 0,
            offsets,
            row_ids,
        }
    }

    /// The sharded parallel build: rows are routed to `2^shard_bits` shards
    /// by the top bits of their key hash, each shard builds its CSR segment
    /// on a scoped worker thread, and segments merge by concatenation (group
    /// ids shifted by a per-shard base; shard key maps kept as-is with their
    /// values rewritten) — no key is re-hashed during the merge.
    pub fn build_parallel(rel: &IdRel, key_cols: &[usize], workers: usize) -> HashIndex {
        debug_assert!(
            !rel.has_tombstones(),
            "tombstoned relations build through build_seq_live"
        );
        let n = rel.len();
        // Shard count: the largest power of two *within* the worker bound,
        // so neither build phase spawns more threads than `workers`.
        let shard_bits = workers.max(2).ilog2();
        let n_shards = 1usize << shard_bits;
        let cols: Vec<&[ValueId]> = key_cols.iter().map(|&c| rel.col(c)).collect();

        // Route rows to shards (parallel over contiguous row ranges; each
        // worker returns one ascending row list per shard, so per-shard
        // concatenation in worker order preserves ascending row order).
        let ranges = par::row_ranges(n, workers);
        let routed: Vec<Vec<Vec<u32>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|range| {
                    let range = range.clone();
                    let cols = &cols;
                    scope.spawn(move || {
                        let mut out: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
                        let mut buf: Vec<ValueId> = Vec::with_capacity(cols.len());
                        for i in range {
                            buf.clear();
                            buf.extend(cols.iter().map(|c| c[i]));
                            let shard = (fx_hash_of(buf.as_slice()) >> (64 - shard_bits)) as usize;
                            out[shard].push(i as u32);
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let shard_rows: Vec<Vec<u32>> = (0..n_shards)
            .map(|s| {
                let mut rows = Vec::with_capacity(routed.iter().map(|r| r[s].len()).sum());
                for r in &routed {
                    rows.extend_from_slice(&r[s]);
                }
                rows
            })
            .collect();

        // Per-shard CSR builds (parallel over shards).
        struct Segment {
            map: FastMap<InlineKey, u32>,
            offsets: Vec<u32>,
            row_ids: Vec<u32>,
        }
        let mut segments: Vec<Segment> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_rows
                .iter()
                .map(|rows| {
                    let cols = &cols;
                    scope.spawn(move || {
                        let mut map: FastMap<InlineKey, u32> =
                            fast_map_with_capacity(key_capacity_hint(rows.len()));
                        let mut row_gids: Vec<u32> = Vec::with_capacity(rows.len());
                        let mut counts: Vec<u32> = Vec::new();
                        let mut buf: Vec<ValueId> = Vec::with_capacity(cols.len());
                        for &i in rows {
                            buf.clear();
                            buf.extend(cols.iter().map(|c| c[i as usize]));
                            let gid = match map.get(buf.as_slice()) {
                                Some(&g) => g,
                                None => {
                                    let g = counts.len() as u32;
                                    map.insert(InlineKey::from_slice(&buf), g);
                                    counts.push(0);
                                    g
                                }
                            };
                            counts[gid as usize] += 1;
                            row_gids.push(gid);
                        }
                        let (offsets, local_ids) = scatter_csr(&mut counts, &row_gids, 0);
                        // Local positions → global row ids.
                        let row_ids = local_ids.iter().map(|&p| rows[p as usize]).collect();
                        Segment {
                            map,
                            offsets,
                            row_ids,
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Merge segments by concatenation: shift each shard's group ids by
        // the running group base and its offsets by the running row base.
        let mut offsets: Vec<u32> =
            Vec::with_capacity(segments.iter().map(|s| s.map.len()).sum::<usize>() + 1);
        let mut row_ids: Vec<u32> = Vec::with_capacity(n);
        offsets.push(0);
        let mut shards: Vec<FastMap<InlineKey, u32>> = Vec::with_capacity(n_shards);
        for seg in &mut segments {
            let gid_base = (offsets.len() - 1) as u32;
            let row_base = row_ids.len() as u32;
            offsets.extend(seg.offsets.iter().skip(1).map(|&o| o + row_base));
            row_ids.extend_from_slice(&seg.row_ids);
            if gid_base != 0 {
                for g in seg.map.values_mut() {
                    *g += gid_base;
                }
            }
            shards.push(std::mem::take(&mut seg.map));
        }
        HashIndex {
            key_cols: key_cols.to_vec(),
            shards,
            shard_bits,
            offsets,
            row_ids,
        }
    }

    /// The key columns this index was built on.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// The stable group id for `key`, if present. Borrowed key — no
    /// allocation.
    #[inline]
    pub fn gid_of(&self, key: &[ValueId]) -> Option<u32> {
        let map = if self.shard_bits == 0 {
            &self.shards[0]
        } else {
            &self.shards[(fx_hash_of(key) >> (64 - self.shard_bits)) as usize]
        };
        map.get(key).copied()
    }

    /// The row ids of a group.
    #[inline]
    pub fn group(&self, gid: u32) -> &[u32] {
        let g = gid as usize;
        &self.row_ids[self.offsets[g] as usize..self.offsets[g + 1] as usize]
    }

    /// Row ids whose key equals `key`. Empty slice when absent. Borrowed
    /// key — no allocation.
    #[inline]
    pub fn get(&self, key: &[ValueId]) -> &[u32] {
        match self.gid_of(key) {
            Some(g) => self.group(g),
            None => &[],
        }
    }

    /// Whether any row matches `key`. Borrowed key — no allocation. A
    /// group emptied by tombstone merges counts as absent.
    #[inline]
    pub fn contains_key(&self, key: &[ValueId]) -> bool {
        self.gid_of(key).is_some_and(|g| !self.group(g).is_empty())
    }

    /// Number of groups, including groups a tombstone merge has emptied
    /// (gids are stable across merges, so empty groups keep their slot).
    pub fn n_keys(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The largest group size — the worst-case fanout of the key. Read
    /// straight off the CSR offsets (one O(n_keys) scan, no row data).
    pub fn max_group_len(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// `(non-empty groups, largest group)` in one offsets scan — the stats
    /// harvest; excludes groups a tombstone merge emptied, so distinct
    /// counts stay exact on churned relations.
    pub fn group_stats(&self) -> (usize, usize) {
        let mut nonempty = 0usize;
        let mut max = 0usize;
        for w in self.offsets.windows(2) {
            let len = (w[1] - w[0]) as usize;
            nonempty += usize::from(len > 0);
            max = max.max(len);
        }
        (nonempty, max)
    }

    /// Probes a flat run of keys (`stride` ids per key; `keys.len()` must be
    /// a multiple of `stride`) and yields `(probe_index, row_ids)` for every
    /// key in run order, with an empty slice for absent keys.
    ///
    /// Consecutive equal keys are resolved without re-hashing (a slice
    /// compare replaces the hash + map probe), so sorted runs pay one lookup
    /// per distinct key. Sortedness is **not** required for correctness.
    /// `stride` must be non-zero and equal to the key width of the index;
    /// nullary-key indexes are probed with [`HashIndex::get`]`(&[])`.
    pub fn probe_batch<'k>(&self, keys: &'k [ValueId], stride: usize) -> ProbeBatch<'_, 'k> {
        // Chaos hook (inert outside `--cfg ucq_fault_inject`): one visit
        // per probe block, the injection site for per-block delays and
        // panics on the join path.
        crate::faults::on_probe();
        assert!(stride > 0, "probe_batch requires a non-empty key stride");
        assert_eq!(
            stride,
            self.key_cols.len(),
            "stride must match the index key width"
        );
        assert_eq!(keys.len() % stride, 0, "partial key in probe run");
        ProbeBatch {
            idx: self,
            keys,
            stride,
            pos: 0,
            run_end: 0,
            run_gid: None,
        }
    }

    /// Iterates over `(key, row ids)` groups.
    pub fn iter(&self) -> impl Iterator<Item = (&[ValueId], &[u32])> {
        self.shards
            .iter()
            .flat_map(|m| m.iter())
            .map(|(k, &g)| (k.as_slice(), self.group(g)))
    }
}

/// Turns per-group `counts` and per-row group ids into `(offsets, row_ids)`
/// by prefix-summing the counts (reused as scatter cursors) and scattering
/// `base + i` for each row `i`. Row ids stay ascending within each group.
fn scatter_csr(counts: &mut [u32], row_gids: &[u32], base: u32) -> (Vec<u32>, Vec<u32>) {
    let mut offsets: Vec<u32> = Vec::with_capacity(counts.len() + 1);
    offsets.push(0);
    let mut acc = 0u32;
    for c in counts.iter_mut() {
        let start = acc;
        acc += *c;
        *c = start;
        offsets.push(acc);
    }
    let mut row_ids = vec![0u32; row_gids.len()];
    for (i, &g) in row_gids.iter().enumerate() {
        let cursor = &mut counts[g as usize];
        row_ids[*cursor as usize] = base + i as u32;
        *cursor += 1;
    }
    (offsets, row_ids)
}

/// Length of the prefix of `keys` equal to `key`, scanned in unrolled
/// chunks of 8 with a scalar tail — the stride-1 fast path of
/// [`HashIndex::probe_batch`]. The 8-wide all-equal check compiles to a
/// handful of vectorizable `u32` compares, so long duplicate runs (sorted
/// single-column key gathers) cost a fraction of a compare per key.
#[inline]
fn run_len_1(keys: &[ValueId], key: ValueId) -> usize {
    let mut n = 0;
    for chunk in keys.chunks_exact(8) {
        if chunk.iter().all(|&k| k == key) {
            n += 8;
        } else {
            break;
        }
    }
    while n < keys.len() && keys[n] == key {
        n += 1;
    }
    n
}

/// The iterator returned by [`HashIndex::probe_batch`].
pub struct ProbeBatch<'a, 'k> {
    idx: &'a HashIndex,
    keys: &'k [ValueId],
    stride: usize,
    pos: usize,
    /// Probes before `run_end` share the memoized `run_gid`: when a key is
    /// resolved, the run of equal keys following it is measured up front
    /// (chunked compares for stride 1, pairwise slice compares otherwise),
    /// so duplicates skip both the hash and the per-call key compare.
    run_end: usize,
    run_gid: Option<u32>,
}

impl<'a> Iterator for ProbeBatch<'a, '_> {
    type Item = (usize, &'a [u32]);

    #[inline]
    fn next(&mut self) -> Option<(usize, &'a [u32])> {
        let start = self.pos * self.stride;
        if start >= self.keys.len() {
            return None;
        }
        if self.pos >= self.run_end {
            let key = &self.keys[start..start + self.stride];
            self.run_gid = self.idx.gid_of(key);
            let rest = &self.keys[start + self.stride..];
            self.run_end = self.pos
                + 1
                + if self.stride == 1 {
                    run_len_1(rest, key[0])
                } else {
                    rest.chunks_exact(self.stride)
                        .take_while(|c| *c == key)
                        .count()
                };
        }
        let i = self.pos;
        self.pos += 1;
        Some((i, self.run_gid.map_or(&[], |g| self.idx.group(g))))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.keys.len() / self.stride - self.pos;
        (rest, Some(rest))
    }
}

/// A set of full (decoded) value rows for O(1) membership tests at the
/// answer boundary.
#[derive(Clone, Debug, Default)]
pub struct RowSet {
    set: HashSet<Box<[Value]>>,
}

impl RowSet {
    /// Builds a set of all rows of `rel`.
    pub fn build(rel: &Relation) -> RowSet {
        let mut set = HashSet::with_capacity(rel.len());
        set.extend(rel.iter_rows().map(Box::<[Value]>::from));
        RowSet { set }
    }

    /// Builds a set of the projections of all rows of `rel` onto `cols`.
    pub fn build_projected(rel: &Relation, cols: &[usize]) -> RowSet {
        let mut set = HashSet::with_capacity(rel.len());
        let mut buf: Vec<Value> = Vec::with_capacity(cols.len());
        for row in rel.iter_rows() {
            buf.clear();
            buf.extend(cols.iter().map(|&c| row[c]));
            set.insert(buf.as_slice().into());
        }
        RowSet { set }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, row: &[Value]) -> bool {
        self.set.contains(row)
    }

    /// Inserts a row; returns whether it was new.
    pub fn insert(&mut self, row: &[Value]) -> bool {
        self.set.insert(row.into())
    }

    /// Number of rows in the set.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Dictionary;

    fn iv(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    fn interned_pairs(pairs: &[(i64, i64)]) -> (IdRel, Dictionary) {
        let mut dict = Dictionary::new();
        let rel = Relation::from_pairs(pairs.iter().copied());
        (IdRel::from_relation(&rel, &mut dict), dict)
    }

    /// A pseudo-random many-row relation with duplicate-heavy keys.
    fn synthetic_rel(rows: usize, domain: u32) -> IdRel {
        let mut rel = IdRel::new(2);
        let mut x = 0x2545_f491u32;
        for _ in 0..rows {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            rel.push_row(&[ValueId(x % domain), ValueId((x >> 8) % domain)]);
        }
        rel
    }

    fn assert_same_index(a: &HashIndex, b: &HashIndex) {
        assert_eq!(a.n_keys(), b.n_keys());
        for (key, rows) in a.iter() {
            assert_eq!(b.get(key), rows, "group mismatch for {key:?}");
        }
    }

    #[test]
    fn index_groups_rows() {
        let (r, dict) = interned_pairs(&[(1, 10), (1, 20), (2, 30)]);
        let idx = HashIndex::build(&r, &[0]);
        let one = dict.lookup(Value::Int(1)).unwrap();
        let two = dict.lookup(Value::Int(2)).unwrap();
        assert_eq!(idx.get(&[one]), &[0, 1]);
        assert_eq!(idx.get(&[two]), &[2]);
        assert_eq!(idx.get(&[ValueId(999)]), &[] as &[u32]);
        assert_eq!(idx.n_keys(), 2);
        assert!(idx.contains_key(&[one]));
    }

    #[test]
    fn index_on_empty_key_groups_everything() {
        let (r, _) = interned_pairs(&[(1, 10), (2, 20)]);
        let idx = HashIndex::build(&r, &[]);
        assert_eq!(idx.get(&[]), &[0, 1]);
    }

    #[test]
    fn index_on_second_column() {
        let (r, dict) = interned_pairs(&[(1, 10), (2, 10)]);
        let idx = HashIndex::build(&r, &[1]);
        let ten = dict.lookup(Value::Int(10)).unwrap();
        assert_eq!(idx.get(&[ten]), &[0, 1]);
    }

    #[test]
    fn max_group_len_reads_offsets() {
        let (r, _) = interned_pairs(&[(1, 10), (1, 20), (1, 30), (2, 40)]);
        let idx = HashIndex::build(&r, &[0]);
        assert_eq!(idx.max_group_len(), 3);
        let empty = HashIndex::build(&IdRel::new(2), &[0]);
        assert_eq!(empty.max_group_len(), 0);
    }

    #[test]
    fn iter_covers_all_groups() {
        let (r, _) = interned_pairs(&[(1, 10), (1, 20), (2, 30)]);
        let idx = HashIndex::build(&r, &[0]);
        let total: usize = idx.iter().map(|(_, rows)| rows.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn grouped_fallback_matches_csr_build() {
        let rel = synthetic_rel(2_000, 37);
        for key_cols in [&[0usize][..], &[1], &[0, 1], &[1, 0]] {
            let csr = HashIndex::build_seq(&rel, key_cols);
            let grouped = HashIndex::build_grouped(&rel, key_cols);
            assert_same_index(&csr, &grouped);
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let rel = synthetic_rel(5_000, 101);
        for workers in [2usize, 3, 4] {
            let seq = HashIndex::build_seq(&rel, &[0]);
            let par = HashIndex::build_parallel(&rel, &[0], workers);
            assert_same_index(&seq, &par);
            // Row order inside each group must stay ascending.
            for (_, rows) in par.iter() {
                assert!(rows.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn parallel_build_two_column_key() {
        let rel = synthetic_rel(3_000, 11);
        let seq = HashIndex::build_seq(&rel, &[0, 1]);
        let par = HashIndex::build_parallel(&rel, &[0, 1], 4);
        assert_same_index(&seq, &par);
    }

    #[test]
    fn probe_batch_matches_repeated_get_on_sorted_run() {
        let rel = synthetic_rel(1_000, 17);
        let idx = HashIndex::build_seq(&rel, &[0]);
        // A sorted run with duplicates and misses.
        let mut keys: Vec<ValueId> = (0..40).map(|v| ValueId(v / 2)).collect();
        keys.sort();
        let batched: Vec<(usize, Vec<u32>)> = idx
            .probe_batch(&keys, 1)
            .map(|(i, rows)| (i, rows.to_vec()))
            .collect();
        assert_eq!(batched.len(), keys.len());
        for (i, rows) in batched {
            assert_eq!(rows.as_slice(), idx.get(&keys[i..=i]), "probe {i}");
        }
    }

    #[test]
    fn probe_batch_matches_repeated_get_on_unsorted_run() {
        let rel = synthetic_rel(1_000, 17);
        let idx = HashIndex::build_seq(&rel, &[0, 1]);
        let mut keys: Vec<ValueId> = Vec::new();
        let mut x = 7u32;
        for _ in 0..64 {
            x = x.wrapping_mul(2654435761).wrapping_add(1);
            keys.push(ValueId(x % 17));
            keys.push(ValueId((x >> 5) % 17));
        }
        for (i, rows) in idx.probe_batch(&keys, 2) {
            assert_eq!(rows, idx.get(&keys[i * 2..i * 2 + 2]));
        }
    }

    #[test]
    fn stride1_run_fast_path_matches_get() {
        // Runs crossing the 8-wide chunk boundary: lengths 1, 7, 8, 9, 17,
        // 64, including absent keys, exercise both the chunked loop and the
        // scalar tail.
        let rel = synthetic_rel(1_000, 17);
        let idx = HashIndex::build_seq(&rel, &[0]);
        let mut keys: Vec<ValueId> = Vec::new();
        for (v, run) in [(0u32, 1usize), (1, 7), (2, 8), (3, 9), (99, 17), (4, 64)] {
            keys.extend(std::iter::repeat_n(ValueId(v), run));
        }
        let mut seen = 0;
        for (i, rows) in idx.probe_batch(&keys, 1) {
            assert_eq!(rows, idx.get(&keys[i..=i]), "probe {i}");
            seen += 1;
        }
        assert_eq!(seen, keys.len());
        assert_eq!(run_len_1(&keys, ValueId(0)), 1);
        assert_eq!(run_len_1(&keys[1..], ValueId(1)), 7);
        assert_eq!(run_len_1(&keys[16..], ValueId(3)), 9);
        assert_eq!(run_len_1(&[], ValueId(3)), 0);
    }

    /// Every key present in `a` resolves to the same group in `b` and vice
    /// versa — ignoring empty groups (a tombstone merge keeps their gids).
    fn assert_same_live_groups(a: &HashIndex, b: &HashIndex) {
        for (key, rows) in a.iter() {
            assert_eq!(b.get(key), rows, "group mismatch for {key:?}");
        }
        for (key, rows) in b.iter() {
            assert_eq!(a.get(key), rows, "group mismatch for {key:?}");
        }
    }

    /// Appends `extra` synthetic rows and tombstones every row whose first
    /// key id is divisible by `kill_mod` — the churn shape the merge and
    /// live-build paths must agree on.
    fn churned_rel(base_rows: usize, extra: usize, kill_mod: u32) -> (IdRel, usize) {
        let mut rel = synthetic_rel(base_rows + extra, 23);
        if kill_mod > 0 {
            rel.mark_deleted_where(|row| row[0].0 % kill_mod == 0);
        }
        (rel, base_rows)
    }

    #[test]
    fn merge_appended_matches_fresh_live_build() {
        for (extra, kill_mod) in [(50usize, 0u32), (50, 3), (0, 3), (7, 1)] {
            let (rel, old_rows) = churned_rel(200, extra, kill_mod);
            // The index predates the churn: build it over the base prefix
            // (synthetic_rel is deterministic, so the prefix matches).
            let base = synthetic_rel(200, 23);
            for key_cols in [&[0usize][..], &[1], &[0, 1]] {
                let idx = HashIndex::build_seq(&base, key_cols);
                let merged = idx.merge_appended(&rel, old_rows);
                let fresh = HashIndex::build_seq_live(&rel, key_cols);
                assert_same_live_groups(&merged, &fresh);
                for (_, rows) in merged.iter() {
                    assert!(rows.windows(2).all(|w| w[0] < w[1]), "ascending groups");
                }
            }
        }
    }

    #[test]
    fn merge_appended_from_parallel_base() {
        let mut rel = synthetic_rel(5_000, 101);
        let idx = HashIndex::build_parallel(&rel, &[0], 4);
        let old_rows = rel.len();
        for _ in 0..60 {
            let last = rel.at(rel.len() - 1, 0);
            rel.push_row(&[ValueId(last.0.wrapping_mul(7) % 101), ValueId(3)]);
        }
        rel.mark_deleted_where(|row| row[1].0 % 4 == 0);
        let merged = idx.merge_appended(&rel, old_rows);
        let fresh = HashIndex::build_seq_live(&rel, &[0]);
        assert_same_live_groups(&merged, &fresh);
    }

    #[test]
    fn emptied_groups_read_as_absent() {
        let (r, dict) = interned_pairs(&[(1, 10), (1, 20), (2, 30)]);
        let idx = HashIndex::build_seq(&r, &[0]);
        let one = dict.lookup(Value::Int(1)).unwrap();
        let two = dict.lookup(Value::Int(2)).unwrap();
        let mut churned = r.clone();
        churned.mark_deleted_where(|row| row[0] == one);
        let merged = idx.merge_appended(&churned, churned.len());
        assert!(!merged.contains_key(&[one]), "emptied group is absent");
        assert_eq!(merged.get(&[one]), &[] as &[u32]);
        assert!(merged.contains_key(&[two]));
        assert_eq!(merged.get(&[two]), &[2]);
    }

    #[test]
    fn build_routes_tombstoned_rels_to_live_build() {
        let (mut r, dict) = interned_pairs(&[(1, 10), (2, 20), (3, 30)]);
        let two = dict.lookup(Value::Int(2)).unwrap();
        r.mark_deleted_where(|row| row[0] == two);
        let idx = HashIndex::build(&r, &[0]);
        assert_eq!(idx.n_keys(), 2, "dead rows never enter the index");
        assert!(!idx.contains_key(&[two]));
        // Nullary key: the everything-group holds only live rows.
        let all = HashIndex::build(&r, &[]);
        assert_eq!(all.get(&[]), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn probe_batch_rejects_zero_stride() {
        let (r, _) = interned_pairs(&[(1, 10)]);
        let idx = HashIndex::build(&r, &[0]);
        let _ = idx.probe_batch(&[], 0);
    }

    #[test]
    fn rowset_membership() {
        let r = Relation::from_pairs([(1, 2), (3, 4)]);
        let s = RowSet::build(&r);
        assert!(s.contains(&iv(&[1, 2])));
        assert!(!s.contains(&iv(&[2, 1])));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn rowset_projected() {
        let r = Relation::from_pairs([(1, 2), (1, 3)]);
        let s = RowSet::build_projected(&r, &[0]);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&iv(&[1])));
    }

    #[test]
    fn rowset_insert_reports_novelty() {
        let mut s = RowSet::default();
        assert!(s.insert(&iv(&[1])));
        assert!(!s.insert(&iv(&[1])));
        assert!(!s.is_empty());
    }
}
