//! Hash indexes over relations.
//!
//! The constant-delay enumeration phase relies on O(1) lookups of the rows
//! matching a separator binding; [`HashIndex`] groups the row ids of an
//! interned columnar relation ([`IdRel`]) by a key-column projection. Keys
//! are [`InlineKey`]s — inline `[ValueId]` arrays — built once per row via
//! a single `entry` pass (no double hashing, no per-row boxing for keys up
//! to 4 columns), and probed with **borrowed** `&[ValueId]` slices, so the
//! per-answer hot path never allocates.
//!
//! [`RowSet`] is the value-level row set kept for answer-boundary dedup
//! (e.g. the Cheater's Lemma compiler), where tuples are already decoded.

use crate::dictionary::ValueId;
use crate::idrel::IdRel;
use crate::key::InlineKey;
use crate::relation::Relation;
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// Groups the rows of a relation by their projection onto `key_cols`.
///
/// Groups carry stable integer ids so that enumeration cursors can be stored
/// as plain `(group, position)` pairs without borrowing the index.
#[derive(Clone, Debug)]
pub struct HashIndex {
    key_cols: Vec<usize>,
    map: HashMap<InlineKey, u32>,
    groups: Vec<Vec<u32>>,
}

impl HashIndex {
    /// Builds an index over `rel` keyed on `key_cols` (positions).
    ///
    /// Single pass, one hash per row: the group id is resolved through
    /// `entry`, and the key is only materialized (inline, no heap for ≤ 4
    /// columns) when it is actually inserted.
    pub fn build(rel: &IdRel, key_cols: &[usize]) -> HashIndex {
        let mut map: HashMap<InlineKey, u32> = HashMap::with_capacity(rel.len());
        let mut groups: Vec<Vec<u32>> = Vec::new();
        let mut buf: Vec<ValueId> = Vec::with_capacity(key_cols.len());
        for i in 0..rel.len() {
            buf.clear();
            buf.extend(key_cols.iter().map(|&c| rel.col(c)[i]));
            let gid = *map.entry(InlineKey::from_slice(&buf)).or_insert_with(|| {
                groups.push(Vec::new());
                (groups.len() - 1) as u32
            });
            groups[gid as usize].push(i as u32);
        }
        HashIndex {
            key_cols: key_cols.to_vec(),
            map,
            groups,
        }
    }

    /// The key columns this index was built on.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// The stable group id for `key`, if present. Borrowed key — no
    /// allocation.
    #[inline]
    pub fn gid_of(&self, key: &[ValueId]) -> Option<u32> {
        self.map.get(key).copied()
    }

    /// The row ids of a group.
    #[inline]
    pub fn group(&self, gid: u32) -> &[u32] {
        &self.groups[gid as usize]
    }

    /// Row ids whose key equals `key`. Empty slice when absent. Borrowed
    /// key — no allocation.
    #[inline]
    pub fn get(&self, key: &[ValueId]) -> &[u32] {
        match self.gid_of(key) {
            Some(g) => self.group(g),
            None => &[],
        }
    }

    /// Whether any row matches `key`. Borrowed key — no allocation.
    #[inline]
    pub fn contains_key(&self, key: &[ValueId]) -> bool {
        self.map.contains_key(key)
    }

    /// Number of distinct keys.
    pub fn n_keys(&self) -> usize {
        self.map.len()
    }

    /// Iterates over `(key, row ids)` groups.
    pub fn iter(&self) -> impl Iterator<Item = (&[ValueId], &[u32])> {
        self.map
            .iter()
            .map(|(k, &g)| (k.as_slice(), self.groups[g as usize].as_slice()))
    }
}

/// A set of full (decoded) value rows for O(1) membership tests at the
/// answer boundary.
#[derive(Clone, Debug, Default)]
pub struct RowSet {
    set: HashSet<Box<[Value]>>,
}

impl RowSet {
    /// Builds a set of all rows of `rel`.
    pub fn build(rel: &Relation) -> RowSet {
        RowSet {
            set: rel.iter_rows().map(Into::into).collect(),
        }
    }

    /// Builds a set of the projections of all rows of `rel` onto `cols`.
    pub fn build_projected(rel: &Relation, cols: &[usize]) -> RowSet {
        let mut set = HashSet::with_capacity(rel.len());
        let mut buf: Vec<Value> = Vec::with_capacity(cols.len());
        for row in rel.iter_rows() {
            buf.clear();
            buf.extend(cols.iter().map(|&c| row[c]));
            set.insert(buf.as_slice().into());
        }
        RowSet { set }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, row: &[Value]) -> bool {
        self.set.contains(row)
    }

    /// Inserts a row; returns whether it was new.
    pub fn insert(&mut self, row: &[Value]) -> bool {
        self.set.insert(row.into())
    }

    /// Number of rows in the set.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Dictionary;

    fn iv(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    fn interned_pairs(pairs: &[(i64, i64)]) -> (IdRel, Dictionary) {
        let mut dict = Dictionary::new();
        let rel = Relation::from_pairs(pairs.iter().copied());
        (IdRel::from_relation(&rel, &mut dict), dict)
    }

    #[test]
    fn index_groups_rows() {
        let (r, dict) = interned_pairs(&[(1, 10), (1, 20), (2, 30)]);
        let idx = HashIndex::build(&r, &[0]);
        let one = dict.lookup(Value::Int(1)).unwrap();
        let two = dict.lookup(Value::Int(2)).unwrap();
        assert_eq!(idx.get(&[one]), &[0, 1]);
        assert_eq!(idx.get(&[two]), &[2]);
        assert_eq!(idx.get(&[ValueId(999)]), &[] as &[u32]);
        assert_eq!(idx.n_keys(), 2);
        assert!(idx.contains_key(&[one]));
    }

    #[test]
    fn index_on_empty_key_groups_everything() {
        let (r, _) = interned_pairs(&[(1, 10), (2, 20)]);
        let idx = HashIndex::build(&r, &[]);
        assert_eq!(idx.get(&[]), &[0, 1]);
    }

    #[test]
    fn index_on_second_column() {
        let (r, dict) = interned_pairs(&[(1, 10), (2, 10)]);
        let idx = HashIndex::build(&r, &[1]);
        let ten = dict.lookup(Value::Int(10)).unwrap();
        assert_eq!(idx.get(&[ten]), &[0, 1]);
    }

    #[test]
    fn iter_covers_all_groups() {
        let (r, _) = interned_pairs(&[(1, 10), (1, 20), (2, 30)]);
        let idx = HashIndex::build(&r, &[0]);
        let total: usize = idx.iter().map(|(_, rows)| rows.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn rowset_membership() {
        let r = Relation::from_pairs([(1, 2), (3, 4)]);
        let s = RowSet::build(&r);
        assert!(s.contains(&iv(&[1, 2])));
        assert!(!s.contains(&iv(&[2, 1])));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn rowset_projected() {
        let r = Relation::from_pairs([(1, 2), (1, 3)]);
        let s = RowSet::build_projected(&r, &[0]);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&iv(&[1])));
    }

    #[test]
    fn rowset_insert_reports_novelty() {
        let mut s = RowSet::default();
        assert!(s.insert(&iv(&[1])));
        assert!(!s.insert(&iv(&[1])));
        assert!(!s.is_empty());
    }
}
