//! Inline index keys.
//!
//! Hash-index and dedup keys are short sequences of [`ValueId`]s (separator
//! projections — almost always 1–4 columns). [`InlineKey`] stores up to
//! [`InlineKey::INLINE`] ids inline with no heap allocation, spilling to a
//! boxed slice only beyond that, and hashes/compares exactly like the
//! `[ValueId]` slice it represents — so a `HashMap<InlineKey, _>` can be
//! probed with a **borrowed** `&[ValueId]` key (via `Borrow`), which is what
//! makes enumeration-phase index lookups allocation-free.

use crate::dictionary::ValueId;
use std::borrow::Borrow;
use std::hash::{Hash, Hasher};

/// A short `[ValueId]` key with inline storage (SmallVec-style).
#[derive(Clone, Debug)]
pub enum InlineKey {
    /// Up to [`InlineKey::INLINE`] ids stored in place.
    Inline {
        /// Number of valid ids in `ids`.
        len: u8,
        /// The ids; positions `len..` are padding.
        ids: [ValueId; InlineKey::INLINE],
    },
    /// Keys longer than [`InlineKey::INLINE`] (rare: wide separators).
    Spilled(Box<[ValueId]>),
}

impl InlineKey {
    /// Maximum inline length.
    pub const INLINE: usize = 4;

    /// Builds a key from a slice. Allocation-free when
    /// `ids.len() <= InlineKey::INLINE`.
    #[inline]
    pub fn from_slice(ids: &[ValueId]) -> InlineKey {
        if ids.len() <= InlineKey::INLINE {
            let mut buf = [ValueId::BOTTOM; InlineKey::INLINE];
            buf[..ids.len()].copy_from_slice(ids);
            InlineKey::Inline {
                len: ids.len() as u8,
                ids: buf,
            }
        } else {
            InlineKey::Spilled(ids.into())
        }
    }

    /// The key as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[ValueId] {
        match self {
            InlineKey::Inline { len, ids } => &ids[..*len as usize],
            InlineKey::Spilled(ids) => ids,
        }
    }

    /// Key length.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the key is empty (nullary separators).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PartialEq for InlineKey {
    #[inline]
    fn eq(&self, other: &InlineKey) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for InlineKey {}

/// Hash must agree with `<[ValueId] as Hash>` so that borrowed-slice map
/// probes (`HashMap::get::<[ValueId]>`) find inline keys.
impl Hash for InlineKey {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl Borrow<[ValueId]> for InlineKey {
    #[inline]
    fn borrow(&self) -> &[ValueId] {
        self.as_slice()
    }
}

impl From<&[ValueId]> for InlineKey {
    fn from(ids: &[ValueId]) -> InlineKey {
        InlineKey::from_slice(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashMap;

    fn ids(xs: &[u32]) -> Vec<ValueId> {
        xs.iter().map(|&x| ValueId(x)).collect()
    }

    fn hash_of<T: Hash + ?Sized>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn inline_and_spilled_roundtrip() {
        for n in 0..=6usize {
            let v = ids(&(0..n as u32).collect::<Vec<_>>());
            let k = InlineKey::from_slice(&v);
            assert_eq!(k.as_slice(), v.as_slice());
            assert_eq!(k.len(), n);
            assert_eq!(
                matches!(k, InlineKey::Inline { .. }),
                n <= InlineKey::INLINE
            );
        }
    }

    #[test]
    fn hash_matches_slice_hash() {
        for v in [
            ids(&[]),
            ids(&[3]),
            ids(&[1, 2, 3, 4]),
            ids(&[1, 2, 3, 4, 5]),
        ] {
            let k = InlineKey::from_slice(&v);
            assert_eq!(hash_of(&k), hash_of(v.as_slice()));
        }
    }

    #[test]
    fn borrowed_probe_finds_inline_keys() {
        let mut map: HashMap<InlineKey, u32> = HashMap::new();
        map.insert(InlineKey::from_slice(&ids(&[1, 2])), 10);
        map.insert(InlineKey::from_slice(&ids(&[1, 2, 3, 4, 5])), 20);
        let probe: &[ValueId] = &ids(&[1, 2]);
        assert_eq!(map.get(probe), Some(&10));
        let probe: &[ValueId] = &ids(&[1, 2, 3, 4, 5]);
        assert_eq!(map.get(probe), Some(&20));
        let probe: &[ValueId] = &ids(&[9]);
        assert_eq!(map.get(probe), None);
    }

    #[test]
    fn equality_ignores_padding() {
        let a = InlineKey::from_slice(&ids(&[7]));
        let b = match InlineKey::from_slice(&ids(&[7, 8])) {
            InlineKey::Inline { ids, .. } => InlineKey::Inline { len: 1, ids },
            k => k,
        };
        assert_eq!(a, b);
    }
}
