//! Compile-time thread-safety contract for the two-phase context
//! lifecycle, colocated so every shareability claim the crate makes is
//! checked in one place (the `ucq lint` L4 pass keeps this honest for
//! `Frozen*` types).
//!
//! The build phase is shareable (mutex-guarded), the frozen phase is
//! shareable (immutable snapshot + overflow mutex behind the watermark
//! flag), and the unifying view inherits both.

use crate::context::EvalContext;
use crate::frozen::{CtxView, FrozenContext};

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EvalContext>();
    assert_send_sync::<FrozenContext>();
    assert_send_sync::<CtxView>();
};
